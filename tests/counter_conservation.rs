//! Flow-conservation invariants across the PMU hierarchy.
//!
//! A real PMU's counters obey accounting identities because each counts a
//! physical token crossing a physical boundary. The simulated PMUs must
//! obey the same identities — this is what makes the profiler's arithmetic
//! (shares, ratios, Little's law) meaningful. These tests run whole
//! workloads and check the books balance.

use pmu::{ChaEvent, CoreEvent, CxlEvent, M2pEvent, SystemDelta, TorDrdScen, TorRfoScen};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn run(app: &str, ops: u64, policy: MemPolicy) -> SystemDelta {
    let mut m = Machine::new(MachineConfig::spr());
    m.attach(
        0,
        Workload::new(app, workloads::build(app, ops, 9).unwrap(), policy),
    );
    let start = m.pmu.snapshot(0);
    for _ in 0..3_000 {
        if m.run_epoch().all_done {
            break;
        }
    }
    m.pmu.snapshot(m.now()).delta(&start)
}

/// Every M2S Req produces exactly one S2M DRS, which lands as one M2PCIe BL
/// entry and one device read CAS; same for RwD → NDR → AK → write CAS.
#[test]
fn cxl_transaction_conservation() {
    for app in ["STREAM", "GUPS", "505.mcf_r"] {
        let d = run(app, 120_000, MemPolicy::Cxl);
        let req = d.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq);
        let drs = d.cxl_sum(CxlEvent::TxcPackBufInsertsMemData);
        let bl = d.m2p_sum(M2pEvent::TxcInsertsBl);
        let rd_cas = d.cxl_sum(CxlEvent::DevMcRdCas);
        assert_eq!(req, drs, "{app}: Req vs DRS");
        assert_eq!(req, bl, "{app}: Req vs BL");
        assert_eq!(req, rd_cas, "{app}: Req vs read CAS");
        let rwd = d.cxl_sum(CxlEvent::RxcPackBufInsertsMemData);
        let ndr = d.cxl_sum(CxlEvent::TxcPackBufInsertsMemReq);
        let ak = d.m2p_sum(M2pEvent::TxcInsertsAk);
        let wr_cas = d.cxl_sum(CxlEvent::DevMcWrCas);
        assert_eq!(rwd, ndr, "{app}: RwD vs NDR");
        assert_eq!(rwd, ak, "{app}: RwD vs AK");
        assert_eq!(rwd, wr_cas, "{app}: RwD vs write CAS");
        // M2PCIe ingress carries both directions' requests.
        assert_eq!(
            d.m2p_sum(M2pEvent::RxcInserts),
            req + rwd,
            "{app}: ingress total"
        );
    }
}

/// Retired-load accounting: L1 hits + FB hits + L1 misses ≥ all loads that
/// completed through those states; L2 hit + L2 miss = L2 demand lookups.
#[test]
fn core_cache_accounting() {
    let d = run("503.bwaves_r", 150_000, MemPolicy::Cxl);
    let l2_hit = d.core_sum(CoreEvent::L2RqstsDemandDataRdHit);
    let l2_miss = d.core_sum(CoreEvent::L2RqstsDemandDataRdMiss);
    let l2_refs = d.core_sum(CoreEvent::L2RqstsAllDemandDataRd);
    assert_eq!(
        l2_hit + l2_miss,
        l2_refs,
        "L2 DRd hit+miss must equal references"
    );
    // Every offcore demand data read corresponds to an L2 DRd true miss.
    assert_eq!(d.core_sum(CoreEvent::OffcoreRequestsDemandDataRd), l2_miss);
    // Loads are partitioned into L1 hits, LFB merges, and true misses that
    // allocated a fill; the first two plus the L2 lookups cover all loads.
    let l1_hit = d.core_sum(CoreEvent::MemLoadRetiredL1Hit);
    let fb_hit = d.core_sum(CoreEvent::MemLoadRetiredL1FbHit);
    let l1_miss = d.core_sum(CoreEvent::MemLoadRetiredL1Miss);
    let loads = d.core_sum(CoreEvent::MemTransRetiredLoadCount);
    assert_eq!(l1_hit + l1_miss, loads, "L1 hit + L1 miss = retired loads");
    assert!(fb_hit <= l1_miss, "FB merges are a subset of L1 misses");
}

/// TOR inserts with the CXL target must equal the device's Req count for a
/// read-only CXL workload (every LLC miss toward CXL becomes one M2S Req).
#[test]
fn tor_vs_device_reads() {
    let mut m = Machine::new(MachineConfig::spr());
    m.attach(
        0,
        Workload::new(
            "ro",
            Box::new(simarch::trace::SeqReadTrace::new(32 << 20, 120_000)),
            MemPolicy::Cxl,
        ),
    );
    let start = m.pmu.snapshot(0);
    for _ in 0..3_000 {
        if m.run_epoch().all_done {
            break;
        }
    }
    let d = m.pmu.snapshot(m.now()).delta(&start);
    let tor_cxl = d.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl))
        + d.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissCxl))
        + d.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissCxl))
        + d.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::MissCxl));
    let req = d.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq);
    assert_eq!(tor_cxl, req, "every CXL-target TOR entry is one M2S Req");
}

/// The ocr.* scenario counters must tile: any_response equals the sum of
/// the disjoint destination scenarios.
#[test]
fn ocr_scenarios_tile_any_response() {
    use pmu::RespScenario as S;
    let d = run(
        "649.fotonik3d_s",
        150_000,
        MemPolicy::Interleave { cxl_fraction: 0.5 },
    );
    for mk in [
        CoreEvent::OcrDemandDataRd as fn(S) -> CoreEvent,
        CoreEvent::OcrRfo,
        CoreEvent::OcrL2HwPfDrd,
    ] {
        let any = d.core_sum(mk(S::AnyResponse));
        let parts = d.core_sum(mk(S::L3HitSnoopLocal))
            + d.core_sum(mk(S::SncDistantL3))
            + d.core_sum(mk(S::RemoteCacheHit))
            + d.core_sum(mk(S::LocalDram))
            + d.core_sum(mk(S::SncDistantDram))
            + d.core_sum(mk(S::RemoteDram))
            + d.core_sum(mk(S::CxlDram));
        assert_eq!(any, parts, "scenario tiling for {:?}", mk(S::AnyResponse));
    }
}

/// MissLocalCaches must equal the memory-destination scenarios (it is the
/// complement of cache hits within any_response).
#[test]
fn miss_local_caches_is_memory_sum() {
    use pmu::RespScenario as S;
    let d = run(
        "519.lbm_r",
        150_000,
        MemPolicy::Interleave { cxl_fraction: 0.5 },
    );
    let miss = d.core_sum(CoreEvent::OcrDemandDataRd(S::MissLocalCaches));
    let mem = d.core_sum(CoreEvent::OcrDemandDataRd(S::LocalDram))
        + d.core_sum(CoreEvent::OcrDemandDataRd(S::SncDistantDram))
        + d.core_sum(CoreEvent::OcrDemandDataRd(S::RemoteDram))
        + d.core_sum(CoreEvent::OcrDemandDataRd(S::RemoteCacheHit))
        + d.core_sum(CoreEvent::OcrDemandDataRd(S::CxlDram));
    assert_eq!(miss, mem);
}

/// The nested stall hierarchy must be monotone:
/// stalls_l1d ⊇ stalls_l2 ⊇ stalls_l3.
#[test]
fn stall_counters_are_nested() {
    for policy in [MemPolicy::Local, MemPolicy::Cxl] {
        let d = run("505.mcf_r", 80_000, policy);
        let s1 = d.core_sum(CoreEvent::MemoryActivityStallsL1dMiss);
        let s2 = d.core_sum(CoreEvent::MemoryActivityStallsL2Miss);
        let s3 = d.core_sum(CoreEvent::CycleActivityStallsL3Miss);
        assert!(s1 >= s2, "stalls_l1d {s1} < stalls_l2 {s2}");
        assert!(s2 >= s3, "stalls_l2 {s2} < stalls_l3 {s3}");
        assert!(s3 > 0, "a chase must stall below the LLC");
    }
}

/// Occupancy ÷ inserts gives a sane mean latency at every station.
#[test]
fn occupancy_derived_latencies_are_sane() {
    let d = run("GUPS", 120_000, MemPolicy::Cxl);
    let cfg = MachineConfig::spr();
    let tor_lat = d.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissCxl)) as f64
        / d.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl))
            .max(1) as f64;
    // A CXL round trip from the CHA is bounded below by link+media and above
    // by a generously-queued multiple.
    let floor = (cfg.flexbus_latency + cfg.cxl_media_latency) as f64;
    assert!(
        tor_lat >= floor,
        "TOR CXL latency {tor_lat} below physical floor {floor}"
    );
    assert!(
        tor_lat < floor * 20.0,
        "TOR CXL latency {tor_lat} absurdly high"
    );
    let dev_lat = d.cxl_sum(CxlEvent::DevMcRpqOccupancy) as f64
        / d.cxl_sum(CxlEvent::DevMcRdCas).max(1) as f64;
    assert!(dev_lat >= cfg.cxl_media_latency as f64 * 0.9);
}
