//! The §3 characterisation trends: local vs CXL comparisons of the core,
//! CHA, and uncore PMUs (paper Figures 2, 3, 4). We do not match absolute
//! numbers — the substrate is a simulator — but every *direction* the paper
//! reports must hold.

use pmu::{ChaEvent, CoreEvent, CxlEvent, IaScen, ImcEvent, M2pEvent, SystemDelta};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// Run an app under a policy and return the whole-run counter delta.
fn run(app: &str, ops: u64, policy: MemPolicy, cfg: MachineConfig) -> (SystemDelta, u64) {
    let mut m = Machine::new(cfg);
    m.attach(
        0,
        Workload::new(app, workloads::build(app, ops, 7).unwrap(), policy),
    );
    let start = m.pmu.snapshot(0);
    let mut last = None;
    for _ in 0..5_000 {
        let e = m.run_epoch();
        let done = e.all_done;
        last = Some(e.snapshot);
        if done {
            break;
        }
    }
    let snap = last.expect("at least one epoch");
    let cycles = snap.cycle;
    (snap.delta(&start), cycles)
}

fn pair(app: &str, ops: u64) -> (SystemDelta, u64, SystemDelta, u64) {
    let (dl, cl) = run(app, ops, MemPolicy::Local, MachineConfig::spr());
    let (dc, cc) = run(app, ops, MemPolicy::Cxl, MachineConfig::spr());
    (dl, cl, dc, cc)
}

#[test]
fn fig2a_sb_stalls_grow_under_cxl_for_write_heavy_apps() {
    let (dl, _, dc, _) = pair("519.lbm_r", 400_000);
    let sb = |d: &SystemDelta| {
        d.core_sum(CoreEvent::ResourceStallsSb) + d.core_sum(CoreEvent::ExeActivityBoundOnStores)
    };
    assert!(
        sb(&dc) > sb(&dl),
        "CXL SB stalls {} must exceed local {} (paper: 1.9-2.0x)",
        sb(&dc),
        sb(&dl)
    );
}

#[test]
fn fig2b_l1d_stall_and_response_grow_under_cxl() {
    let (dl, _, dc, _) = pair("505.mcf_r", 120_000);
    let stalls = |d: &SystemDelta| d.core_sum(CoreEvent::MemoryActivityStallsL1dMiss);
    assert!(
        stalls(&dc) > stalls(&dl),
        "paper: 2.1x more L1D-miss stalls under CXL"
    );
    // Mean load latency must rise as well.
    let lat = |d: &SystemDelta| {
        d.core_sum(CoreEvent::MemTransRetiredLoadLatency) as f64
            / d.core_sum(CoreEvent::MemTransRetiredLoadCount).max(1) as f64
    };
    assert!(
        lat(&dc) > 1.5 * lat(&dl),
        "CXL mean load latency {:.0} vs local {:.0}",
        lat(&dc),
        lat(&dl)
    );
}

#[test]
fn fig2e_l2_stalls_grow_under_cxl() {
    let (dl, _, dc, _) = pair("505.mcf_r", 120_000);
    let s = |d: &SystemDelta| d.core_sum(CoreEvent::MemoryActivityStallsL2Miss);
    assert!(s(&dc) > s(&dl), "paper: 2.7x more L2-miss stalls under CXL");
}

#[test]
fn fig3a_llc_stalls_grow_under_cxl() {
    let (dl, _, dc, _) = pair("505.mcf_r", 120_000);
    let s = |d: &SystemDelta| d.core_sum(CoreEvent::CycleActivityStallsL3Miss);
    assert!(
        s(&dc) > s(&dl),
        "paper: 2.1x more LLC-miss stalls under CXL"
    );
}

#[test]
fn fig3c_miss_destinations_shift_from_dram_to_cxl() {
    let (dl, _, dc, _) = pair("503.bwaves_r", 400_000);
    let cxl_miss = |d: &SystemDelta| d.cha_sum(ChaEvent::TorInsertsIa(IaScen::MissCxl));
    assert_eq!(
        cxl_miss(&dl),
        0,
        "local run must have no CXL-target TOR inserts"
    );
    assert!(cxl_miss(&dc) > 0);
}

#[test]
fn fig3de_miss_occupancy_rises_under_cxl() {
    let (dl, cl, dc, cc) = pair("505.mcf_r", 120_000);
    let occ = |d: &SystemDelta, cycles: u64| {
        d.cha_sum(ChaEvent::TorOccupancyIa(IaScen::MissLlc)) as f64 / cycles.max(1) as f64
    };
    assert!(
        occ(&dc, cc) > occ(&dl, cl),
        "paper: LLC miss occupancy rises up to 4.8x under CXL"
    );
}

#[test]
fn fig4a_imc_queues_idle_under_cxl_traffic() {
    let (dl, _, dc, _) = pair("STREAM", 400_000);
    let rpq = |d: &SystemDelta| d.imc_sum(ImcEvent::RpqCyclesNe);
    assert!(rpq(&dl) > 0, "local streaming must exercise the RPQ");
    assert_eq!(rpq(&dc), 0, "paper Fig 4-a: CXL traffic bypasses the IMC");
}

#[test]
fn fig4b_m2pcie_carries_the_cxl_loads_and_stores() {
    let (dl, _, dc, _) = pair("519.lbm_r", 400_000);
    assert_eq!(dl.m2p_sum(M2pEvent::TxcInsertsBl), 0);
    assert!(
        dc.m2p_sum(M2pEvent::TxcInsertsBl) > 0,
        "CXL loads return BL data entries"
    );
    assert!(
        dc.m2p_sum(M2pEvent::TxcInsertsAk) > 0,
        "CXL stores return AK acknowledgements"
    );
    // M2S/S2M conservation at the device.
    assert_eq!(
        dc.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq),
        dc.m2p_sum(M2pEvent::TxcInsertsBl),
        "every Req produces one DRS/BL"
    );
    assert_eq!(
        dc.cxl_sum(CxlEvent::RxcPackBufInsertsMemData),
        dc.m2p_sum(M2pEvent::TxcInsertsAk),
        "every RwD produces one NDR/AK"
    );
}

#[test]
fn cxl_run_takes_longer_end_to_end() {
    let (_, cl, _, cc) = pair("505.mcf_r", 100_000);
    assert!(
        cc as f64 > 1.5 * cl as f64,
        "CXL run {cc} cycles must be well beyond local {cl} for a latency-bound app"
    );
}

#[test]
fn mlc_style_latency_calibration() {
    // §2.3 headline numbers: local ~103ns, CXL ~355ns random-access latency.
    // Pointer chasing measures pure load-to-use latency.
    let cfg = MachineConfig::spr();
    let measure = |policy| {
        let mut m = Machine::new(cfg.clone());
        let chase = workloads::PointerChase::new(32 << 20, 60_000, 3);
        m.attach(0, Workload::new("mlc", Box::new(chase), policy));
        let start = m.pmu.snapshot(0);
        let mut last = None;
        for _ in 0..2_000 {
            let e = m.run_epoch();
            let done = e.all_done;
            last = Some(e.snapshot);
            if done {
                break;
            }
        }
        let d = last.unwrap().delta(&start);
        let lat_cycles = d.core_sum(CoreEvent::MemTransRetiredLoadLatency) as f64
            / d.core_sum(CoreEvent::MemTransRetiredLoadCount).max(1) as f64;
        cfg.cycles_to_ns((lat_cycles) as u64)
    };
    let local = measure(MemPolicy::Local);
    let cxl = measure(MemPolicy::Cxl);
    assert!(
        (70.0..160.0).contains(&local),
        "local latency {local:.1} ns (paper 103.2)"
    );
    assert!(
        (280.0..450.0).contains(&cxl),
        "cxl latency {cxl:.1} ns (paper 355.3)"
    );
    assert!(cxl / local > 2.0, "paper ratio ≈ 3.4x");
}

#[test]
fn three_memory_tiers_order_correctly() {
    // §2.3: local (103.2 ns) < NUMA remote (163.6 ns) < CXL (355.3 ns), and
    // the bandwidth order is the reverse.
    let cfg = MachineConfig::spr();
    let lat = |policy| {
        let mut m = Machine::new(cfg.clone());
        let chase = workloads::PointerChase::new(32 << 20, 50_000, 3);
        m.attach(0, Workload::new("mlc", Box::new(chase), policy));
        let start = m.pmu.snapshot(0);
        let mut last = None;
        for _ in 0..3_000 {
            let e = m.run_epoch();
            let done = e.all_done;
            last = Some(e.snapshot);
            if done {
                break;
            }
        }
        let d = last.unwrap().delta(&start);
        d.core_sum(CoreEvent::MemTransRetiredLoadLatency) as f64
            / d.core_sum(CoreEvent::MemTransRetiredLoadCount).max(1) as f64
    };
    let local = lat(MemPolicy::Local);
    let remote = lat(MemPolicy::RemoteNuma);
    let cxl = lat(MemPolicy::Cxl);
    assert!(local < remote, "local {local:.0} !< remote {remote:.0}");
    assert!(remote < cxl, "remote {remote:.0} !< cxl {cxl:.0}");
    // Paper ratios: remote/local ≈ 1.59, cxl/local ≈ 3.44.
    assert!(
        (1.2..2.2).contains(&(remote / local)),
        "remote/local {:.2}",
        remote / local
    );
    assert!(
        (2.4..4.5).contains(&(cxl / local)),
        "cxl/local {:.2}",
        cxl / local
    );
}

#[test]
fn emr_shows_same_trends_with_smaller_deltas() {
    // §3.6: EMR's larger LLC shrinks the stall increase but keeps the sign.
    let app = "554.roms_r";
    let ops = 300_000;
    let ratio = |cfg: MachineConfig| {
        let (dl, _, dc, _) = {
            let (a, b) = (
                run(app, ops, MemPolicy::Local, cfg.clone()),
                run(app, ops, MemPolicy::Cxl, cfg),
            );
            (a.0, a.1, b.0, b.1)
        };
        dc.core_sum(CoreEvent::MemoryActivityStallsL1dMiss) as f64
            / dl.core_sum(CoreEvent::MemoryActivityStallsL1dMiss).max(1) as f64
    };
    let spr = ratio(MachineConfig::spr());
    let emr = ratio(MachineConfig::emr());
    assert!(
        spr > 1.0,
        "SPR CXL/local stall ratio {spr:.2} must exceed 1"
    );
    assert!(
        emr > 1.0,
        "EMR CXL/local stall ratio {emr:.2} must exceed 1"
    );
}
