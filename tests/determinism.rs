//! Whole-stack determinism: a run is a pure function of
//! `(MachineConfig, workload spec, seed)` — byte-identical counters,
//! reports, and materializer contents across repetitions.

use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn run_once(seed: u64) -> (u64, String, usize) {
    let mut machine = Machine::new(MachineConfig::tiny());
    machine.attach(
        0,
        Workload::new(
            "GUPS",
            workloads::build("GUPS", 150_000, seed).unwrap(),
            MemPolicy::Interleave { cxl_fraction: 0.5 },
        ),
    );
    machine.attach(
        1,
        Workload::new(
            "YCSB-B",
            workloads::build("YCSB-B", 150_000, seed).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let report = profiler.run(2_000);
    // Drop the header line: it reports wall-clock profiler overhead, the
    // one legitimately non-deterministic quantity.
    let body: String = report
        .render()
        .lines()
        .skip(1)
        .collect::<Vec<_>>()
        .join("\n");
    (report.cycles, body, profiler.materializer.db.len())
}

#[test]
fn identical_seeds_identical_everything() {
    let a = run_once(1234);
    let b = run_once(1234);
    assert_eq!(a.0, b.0, "cycle counts differ");
    assert_eq!(a.1, b.1, "rendered reports differ");
    assert_eq!(a.2, b.2, "materializer row counts differ");
}

#[test]
fn different_seeds_different_execution() {
    let a = run_once(1);
    let b = run_once(2);
    // Different random access patterns must change timing.
    assert_ne!(
        a.1, b.1,
        "reports identical across seeds — RNG not plumbed through?"
    );
}

#[test]
fn counter_state_is_bit_identical_across_runs() {
    let snap = |seed: u64| {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "PR",
                workloads::build("PR", 80_000, seed).unwrap(),
                MemPolicy::Cxl,
            ),
        );
        m.run_to_completion(2_000).expect("machine must not stall");
        m.pmu.snapshot(m.now())
    };
    let a = snap(7);
    let b = snap(7);
    for (x, y) in a.pmu.cores.iter().zip(b.pmu.cores.iter()) {
        assert_eq!(x.raw(), y.raw());
    }
    assert_eq!(a.pmu.chas[0].raw(), b.pmu.chas[0].raw());
    for (x, y) in a.pmu.imcs.iter().zip(b.pmu.imcs.iter()) {
        assert_eq!(x.raw(), y.raw());
    }
    for (x, y) in a.pmu.cxls.iter().zip(b.pmu.cxls.iter()) {
        assert_eq!(x.raw(), y.raw());
    }
}
