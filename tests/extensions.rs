//! Extension coverage: software prefetch end-to-end, multi-device
//! topologies, and the CXL 3.x DevLoad QoS telemetry (§3.5's "we'll explore
//! it in the future" — the simulated device supports it today).

use pmu::{CoreEvent, CxlEvent, M2pEvent, SystemDelta};
use simarch::cxl::DevLoad;
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use workloads::{PointerChase, SwPrefetchAhead};

fn run_machine(mut m: Machine, max: u64) -> SystemDelta {
    let start = m.pmu.snapshot(0);
    for _ in 0..max {
        if m.run_epoch().all_done {
            break;
        }
    }
    m.pmu.snapshot(m.now()).delta(&start)
}

#[test]
fn software_prefetch_hides_pointer_chase_latency() {
    let ops = 60_000;
    let run = |swpf: bool| -> (SystemDelta, u64) {
        let mut m = Machine::new(MachineConfig::spr());
        let chase = PointerChase::new(32 << 20, ops, 3);
        let trace: Box<dyn simarch::TraceSource> = if swpf {
            Box::new(SwPrefetchAhead::new(chase, 8))
        } else {
            Box::new(chase)
        };
        m.attach(0, Workload::new("chase", trace, MemPolicy::Cxl));
        let start = m.pmu.snapshot(0);
        for _ in 0..5_000 {
            if m.run_epoch().all_done {
                break;
            }
        }
        let now = m.now();
        (m.pmu.snapshot(now).delta(&start), now)
    };
    let (plain, t_plain) = run(false);
    let (pf, t_pf) = run(true);
    // The SWPF counters must light up.
    assert!(
        pf.core_sum(CoreEvent::L2RqstsSwpfMiss) > 0,
        "software prefetches must reach L2 and miss"
    );
    assert_eq!(plain.core_sum(CoreEvent::L2RqstsSwpfMiss), 0);
    // And the prefetched run must finish meaningfully faster: the demand
    // loads now merge into in-flight prefetch fills.
    assert!(
        (t_pf as f64) < 0.8 * t_plain as f64,
        "swpf run {t_pf} not faster than plain {t_plain}"
    );
    let lat = |d: &SystemDelta| {
        d.core_sum(CoreEvent::MemTransRetiredLoadLatency) as f64
            / d.core_sum(CoreEvent::MemTransRetiredLoadCount).max(1) as f64
    };
    assert!(lat(&pf) < 0.8 * lat(&plain), "mean load latency must drop");
}

#[test]
fn two_cxl_devices_isolate_traffic() {
    let mut cfg = MachineConfig::spr();
    cfg.cxl_devices = 2;
    let mut m = Machine::new(cfg);
    // Core 0 → device 0; core 1 → device 1.
    let mut wl0 = Workload::new(
        "dev0",
        workloads::build("STREAM", 60_000, 1).unwrap(),
        MemPolicy::Cxl,
    );
    wl0.cxl_device = 0;
    let mut wl1 = Workload::new(
        "dev1",
        workloads::build("STREAM", 60_000, 2).unwrap(),
        MemPolicy::Cxl,
    );
    wl1.cxl_device = 1;
    m.attach(0, wl0);
    m.attach(1, wl1);
    let d = run_machine(m, 3_000);
    // Both devices must carry comparable traffic, and each request stream
    // must stay on its own port.
    let req0 = d.pmu.cxls[0].read(CxlEvent::RxcPackBufInsertsMemReq);
    let req1 = d.pmu.cxls[1].read(CxlEvent::RxcPackBufInsertsMemReq);
    assert!(
        req0 > 0 && req1 > 0,
        "both devices must see traffic ({req0}, {req1})"
    );
    let ratio = req0 as f64 / req1 as f64;
    assert!((0.5..2.0).contains(&ratio), "traffic imbalance {ratio}");
    assert_eq!(
        d.pmu.m2ps[0].read(M2pEvent::RxcInserts),
        req0 + d.pmu.cxls[0].read(CxlEvent::RxcPackBufInsertsMemData),
        "port-0 conservation"
    );
}

#[test]
fn devload_telemetry_tracks_saturation() {
    // Idle machine: light load.
    let m = Machine::new(MachineConfig::spr());
    assert_eq!(m.dev_load(0), DevLoad::Light);

    // Saturate the device from all four cores.
    let mut m = Machine::new(MachineConfig::spr());
    for c in 0..4 {
        m.attach(
            c,
            Workload::new(
                format!("mbw-{c}"),
                Box::new(workloads::Mbw::new(24 << 20, 400_000, 1.0)),
                MemPolicy::Cxl,
            ),
        );
    }
    let mut seen_loaded = false;
    for _ in 0..50 {
        let e = m.run_epoch();
        if m.dev_load(0) >= DevLoad::Optimal {
            seen_loaded = true;
        }
        if e.all_done {
            break;
        }
    }
    // Device backlog drains at epoch boundaries, so at least at some point
    // during saturation the QoS class must have escalated past Light.
    assert!(
        seen_loaded,
        "DevLoad never escalated under 4-core saturation"
    );
}

#[test]
fn swpf_merges_into_drd_path_at_the_uncore() {
    // §2.2 path #4: SW prefetch merges into DRd after L1D. PFBuilder's
    // uncore rows therefore fold ocr.swpf into the DRd column.
    use pathfinder::builder::PfBuilder;
    use pathfinder::model::{HitLevel, PathGroup};
    let mut m = Machine::new(MachineConfig::spr());
    let chase = PointerChase::new(16 << 20, 40_000, 3);
    m.attach(
        0,
        Workload::new(
            "swpf",
            Box::new(SwPrefetchAhead::new(chase, 8)),
            MemPolicy::Cxl,
        ),
    );
    let d = run_machine(m, 3_000);
    let map = PfBuilder::build(&d);
    let drd_cxl = map.per_core[0].get(HitLevel::CxlMemory, PathGroup::Drd);
    assert!(
        drd_cxl > 0,
        "SWPF-carried traffic must appear on the DRd path"
    );
}
