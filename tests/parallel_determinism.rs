//! The scenario fan-out must be invisible in the artefacts: rendering the
//! same grid under `--jobs 1` and `--jobs N` has to produce byte-identical
//! tables and CSV text, no matter how the OS interleaved the workers.
//!
//! This exercises the same pipeline the figure binaries use — a grid of
//! independent `Machine` runs mapped through `map_scenarios`, then rendered
//! from the merged, index-ordered results — and compares the rendered bytes
//! across worker counts.

use bench::scenario::{map_scenarios, Jobs};
use bench::{run_machine, Pin};
use pmu::CoreEvent;
use simarch::{MachineConfig, MemPolicy};

/// Render one grid cell the way a figure binary would: a CSV row of
/// counter sums and the final cycle count.
fn render_cell(app: &str, policy: MemPolicy, seed: u64) -> String {
    let (d, cycles) = run_machine(
        MachineConfig::tiny(),
        vec![Pin::app(0, app, 15_000, policy, seed).unwrap()],
    );
    format!(
        "{app},{policy:?},{cycles},{},{},{},{}",
        d.core_sum(CoreEvent::InstRetired),
        d.core_sum(CoreEvent::MemLoadRetiredL1Miss),
        d.core_sum(CoreEvent::ResourceStallsSb),
        d.core_sum(CoreEvent::CpuClkUnhalted),
    )
}

/// The full artefact: header line plus one row per grid cell, in grid order.
fn render_grid(jobs: Jobs) -> String {
    let grid: Vec<(&str, MemPolicy, u64)> = ["STREAM", "GUPS", "fft", "radix"]
        .iter()
        .flat_map(|&app| {
            [
                (app, MemPolicy::Local, 11),
                (app, MemPolicy::Cxl, 11),
                (app, MemPolicy::Interleave { cxl_fraction: 0.5 }, 11),
            ]
        })
        .collect();
    let rows = map_scenarios(jobs, &grid, |_, &(app, policy, seed)| {
        render_cell(app, policy, seed)
    });
    let mut out = String::from("app,policy,cycles,inst,l1_miss,sb_stall,clk\n");
    for row in &rows {
        out.push_str(row);
        out.push('\n');
    }
    out
}

#[test]
fn parallel_rendering_is_byte_identical_to_serial() {
    let serial = render_grid(Jobs::Serial);
    // Sanity: the artefact is non-trivial — every cell produced real work.
    assert_eq!(serial.lines().count(), 13);
    for line in serial.lines().skip(1) {
        let cycles: u64 = line.split(',').nth(2).unwrap().parse().unwrap();
        assert!(cycles > 0, "grid cell did no work: {line}");
    }
    for jobs in [2, 4, 8] {
        let parallel = render_grid(Jobs::Workers(jobs));
        assert_eq!(
            parallel, serial,
            "--jobs {jobs} artefact must be byte-identical to serial"
        );
    }
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    // Two identically-configured parallel runs race their workers
    // differently; the index-ordered merge must hide that entirely.
    let a = render_grid(Jobs::Workers(4));
    let b = render_grid(Jobs::Workers(4));
    assert_eq!(a, b);
}
