//! End-to-end anomaly diagnosis: inject each fault class as ground truth
//! and assert the detector names the faulted stage from counters alone.
//!
//! This is the acceptance test for the `simarch::faults` +
//! `core::analyzer` pipeline: a healthy run of the same workload records
//! the baseline, a second run executes under a fault plan, and
//! `AnomalyDetector::diagnose` must recover the injected (stage, class)
//! pair for all five fault classes.

use pathfinder::profiler::{ProfileSpec, Profiler};
use pathfinder::{Anomaly, AnomalyDetector, HealthyBaseline};
use pmu::SystemDelta;
use simarch::trace::SeqReadTrace;
use simarch::{
    FaultClass, FaultPlan, FaultWindow, Machine, MachineConfig, MemPolicy, StageId, Workload,
};

const EPOCHS: u64 = 4;
/// Half the tiny config's 100k-cycle epoch: long enough that a queue
/// stall dominates the epoch's mean residency.
const STALL_CYCLES: u64 = 50_000;

fn machine(policy: MemPolicy) -> Machine {
    let mut m = Machine::new(MachineConfig::tiny());
    m.attach(
        0,
        Workload::new("diag", Box::new(SeqReadTrace::new(1 << 20, 40_000)), policy),
    );
    m
}

/// Run `EPOCHS` epochs under `plan` and return the digest over all of them.
fn run_digest(policy: MemPolicy, plan: FaultPlan) -> SystemDelta {
    let mut m = machine(policy);
    m.set_fault_plan(plan);
    let start = m.pmu.snapshot(m.now());
    let mut last = None;
    for _ in 0..EPOCHS {
        last = Some(m.run_epoch().snapshot);
    }
    last.unwrap().delta(&start)
}

/// Baseline from a healthy run, then diagnose a faulted run of the same
/// workload.
fn diagnose(policy: MemPolicy, plan: FaultPlan) -> Anomaly {
    let healthy = run_digest(policy, FaultPlan::new());
    let det = AnomalyDetector::new(HealthyBaseline::from_delta(&healthy));
    assert!(
        det.diagnose(&healthy).is_none(),
        "healthy run must diagnose healthy against its own baseline"
    );
    let faulted = run_digest(policy, plan);
    det.diagnose(&faulted)
        .expect("injected fault must be diagnosed")
}

fn full_run(class: FaultClass, stage: StageId, severity: u64) -> FaultPlan {
    FaultPlan::new()
        .with(FaultWindow {
            class,
            stage,
            start_epoch: 0,
            end_epoch: EPOCHS,
            severity,
        })
        .unwrap()
}

#[test]
fn link_degradation_is_attributed_to_the_port() {
    let a = diagnose(
        MemPolicy::Cxl,
        full_run(FaultClass::LinkDegrade, StageId::cxl(0), 12),
    );
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("cxl0", FaultClass::LinkDegrade)
    );
}

#[test]
fn device_throttling_is_attributed_to_the_port() {
    let a = diagnose(
        MemPolicy::Cxl,
        full_run(FaultClass::DevThrottle, StageId::cxl(0), 12),
    );
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("cxl0", FaultClass::DevThrottle)
    );
}

#[test]
fn poisoned_lines_are_attributed_to_the_port() {
    let a = diagnose(
        MemPolicy::Cxl,
        full_run(FaultClass::PoisonedLine, StageId::cxl(0), 2),
    );
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("cxl0", FaultClass::PoisonedLine)
    );
    assert!(a.score > 1.25, "score reports the read amplification");
}

#[test]
fn imc_stall_is_attributed_to_the_imc() {
    let a = diagnose(
        MemPolicy::Local,
        full_run(FaultClass::QueueStall, StageId::imc(), STALL_CYCLES),
    );
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("imc0", FaultClass::QueueStall)
    );
}

#[test]
fn cha_stall_is_attributed_to_the_cha() {
    let a = diagnose(
        MemPolicy::Local,
        full_run(FaultClass::QueueStall, StageId::cha(), STALL_CYCLES),
    );
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("cha0", FaultClass::QueueStall)
    );
}

#[test]
fn pmu_dropout_is_attributed_to_the_frozen_bank() {
    let a = diagnose(
        MemPolicy::Local,
        full_run(FaultClass::PmuDropout, StageId::imc(), 0),
    );
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("imc0", FaultClass::PmuDropout)
    );
}

/// The profiler surfaces the diagnosis end-to-end: baseline in, faulted
/// run profiled, anomaly rendered in the report.
#[test]
fn profiler_reports_the_anomaly() {
    let healthy = run_digest(MemPolicy::Cxl, FaultPlan::new());

    let mut m = machine(MemPolicy::Cxl);
    m.set_fault_plan(full_run(FaultClass::DevThrottle, StageId::cxl(0), 12));
    let mut p = Profiler::new(m, ProfileSpec::default());
    p.set_anomaly_baseline(HealthyBaseline::from_delta(&healthy));
    let report = p.run(EPOCHS);

    let a = report
        .anomaly
        .as_ref()
        .expect("report must carry the anomaly");
    assert_eq!(
        (a.stage.as_str(), a.class),
        ("cxl0", FaultClass::DevThrottle)
    );
    assert!(report.render().contains("anomaly: dev_throttle at cxl0"));
}
