//! Case-7 integration: TPP over the live machine actually moves pages,
//! shifts traffic from the CXL device to the IMC, and improves runtime.

use pathfinder::model::HitLevel;
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use tiering::{Tpp, TppConfig};
use workloads::Gups;

const OPS: u64 = 600_000;

fn gups_machine(seed: u64) -> Machine {
    let mut machine = Machine::new(MachineConfig::tiny());
    let gups = Gups::new(16 << 20, OPS, seed).hot_set(0.25, 0.9);
    machine.attach(
        0,
        Workload::new(
            "GUPS",
            Box::new(gups),
            MemPolicy::Interleave { cxl_fraction: 0.9 },
        ),
    );
    machine
}

struct Outcome {
    cycles: u64,
    local_hits: u64,
    cxl_hits: u64,
    migrations: usize,
    cxl_resident_end: usize,
}

fn run(with_tpp: bool) -> Outcome {
    let mut profiler = Profiler::new(gups_machine(9), ProfileSpec::default());
    let mut tpp = Tpp::new(TppConfig {
        promote_threshold: 2.0,
        ..Default::default()
    });
    let mut migrations = 0;
    loop {
        let e = profiler.profile_epoch();
        if with_tpp {
            let m = profiler.machine();
            let migs = tpp.epoch(&e.page_heat, &|asid, vpage| {
                m.page_node(asid as usize, vpage)
            });
            let m = profiler.machine_mut();
            for mig in migs {
                if m.migrate_page(mig.asid as usize, mig.vpage, mig.to) {
                    migrations += 1;
                }
            }
        }
        if e.all_done {
            break;
        }
    }
    let r = profiler.report();
    Outcome {
        cycles: r.cycles,
        local_hits: r.path_map.total.level_total(HitLevel::LocalDram),
        cxl_hits: r.path_map.total.level_total(HitLevel::CxlMemory),
        migrations,
        cxl_resident_end: profiler.machine().cxl_resident_pages(0),
    }
}

#[test]
fn tpp_migrates_hot_pages_and_improves_gups() {
    let off = run(false);
    let on = run(true);

    assert!(
        on.migrations > 50,
        "TPP migrated only {} pages",
        on.migrations
    );
    assert!(
        on.cxl_resident_end < off.cxl_resident_end,
        "CXL residency must shrink: {} vs {}",
        on.cxl_resident_end,
        off.cxl_resident_end
    );
    // Figure-13 shape: local hits up, CXL hits down.
    assert!(
        on.local_hits > off.local_hits,
        "local hits must rise ({} vs {})",
        on.local_hits,
        off.local_hits
    );
    assert!(
        on.cxl_hits < off.cxl_hits,
        "CXL hits must fall ({} vs {})",
        on.cxl_hits,
        off.cxl_hits
    );
    // Paper: GUPS throughput improves ~3x; demand only a solid win here.
    assert!(
        off.cycles as f64 / on.cycles as f64 > 1.2,
        "TPP speedup only {:.2}x ({} vs {} cycles)",
        off.cycles as f64 / on.cycles as f64,
        off.cycles,
        on.cycles
    );
}

#[test]
fn tpp_is_idempotent_once_hot_set_is_local() {
    let mut profiler = Profiler::new(gups_machine(11), ProfileSpec::default());
    let mut tpp = Tpp::new(TppConfig {
        promote_threshold: 2.0,
        ..Default::default()
    });
    let mut last_burst = 0;
    for _ in 0..60 {
        let e = profiler.profile_epoch();
        let m = profiler.machine();
        let migs = tpp.epoch(&e.page_heat, &|asid, vpage| {
            m.page_node(asid as usize, vpage)
        });
        last_burst = migs.len();
        let m = profiler.machine_mut();
        for mig in migs {
            m.migrate_page(mig.asid as usize, mig.vpage, mig.to);
        }
        if e.all_done {
            break;
        }
    }
    // Once the hot set has been promoted, steady-state migration activity
    // must die down (no thrashing).
    assert!(
        last_burst < 32,
        "still migrating {last_burst} pages per epoch at steady state"
    );
}
