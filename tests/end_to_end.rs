//! Cross-crate integration: full profiler scenarios over the simulated
//! machine, exercising workloads → simarch → pmu → pathfinder → tsdb.

use pathfinder::model::{Component, HitLevel, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
use pathfinder::Report;
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn profile(app: &str, ops: u64, policy: MemPolicy, cfg: MachineConfig) -> Report {
    let mut machine = Machine::new(cfg);
    let trace = workloads::build(app, ops, 42).expect("registered app");
    machine.attach(0, Workload::new(app, trace, policy));
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    profiler.run(3_000)
}

#[test]
fn stencil_over_cxl_is_prefetch_dominated_at_the_uncore() {
    // Case 1: for 649.fotonik3d_s the uncore hot path is HWPF and CXL
    // memory hits far exceed local LLC hits (8.1x in the paper).
    let r = profile(
        "649.fotonik3d_s",
        600_000,
        MemPolicy::Cxl,
        MachineConfig::spr(),
    );
    let m = &r.path_map;
    let total = m.total.uncore_total();
    assert!(total > 0);
    let (hot, share) = PathGroup::ALL
        .iter()
        .map(|&p| {
            let v: u64 = HitLevel::ALL
                .iter()
                .filter(|l| l.is_uncore())
                .map(|l| m.total.get(*l, p))
                .sum();
            (p, v as f64 / total as f64)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert_eq!(
        hot,
        PathGroup::HwPf,
        "uncore hot path must be HWPF (share {share:.2})"
    );
    let cxl = r.path_map.total.level_total(HitLevel::CxlMemory);
    let llc = r.path_map.total.level_total(HitLevel::LocalLlc).max(1);
    assert!(
        cxl > 2 * llc,
        "CXL hits ({cxl}) must dominate local LLC hits ({llc}) for a streaming CXL run"
    );
}

#[test]
fn pointer_chase_over_cxl_stalls_mostly_in_the_uncore() {
    // Case 2 / Figure 6: for memory-latency-bound apps the DRd stall mass
    // sits at FlexBus+MC and the CXL DIMM, not in the core caches.
    let r = profile("505.mcf_r", 150_000, MemPolicy::Cxl, MachineConfig::spr());
    let pct = r.stalls.percentages(PathGroup::Drd);
    let uncore = pct[Component::Llc.idx()]
        + pct[Component::Cha.idx()]
        + pct[Component::FlexBusMc.idx()]
        + pct[Component::CxlDimm.idx()];
    assert!(r.stalls.path_total(PathGroup::Drd) > 0.0);
    assert!(uncore > 50.0, "uncore stall share {uncore:.1}% too small");
}

#[test]
fn local_run_attributes_zero_cxl_stall() {
    let r = profile("505.mcf_r", 100_000, MemPolicy::Local, MachineConfig::spr());
    assert_eq!(r.stalls.total(), 0.0);
    assert_eq!(r.path_map.total.level_total(HitLevel::CxlMemory), 0);
    assert!(r.path_map.total.level_total(HitLevel::LocalDram) > 0);
}

#[test]
fn culprit_moves_to_flexbus_under_cxl_saturation() {
    // Case 4/5: saturating the CXL device from several cores makes the
    // shared FlexBus+MC (or the DIMM behind it) the culprit.
    let mut machine = Machine::new(MachineConfig::spr());
    for c in 0..4 {
        machine.attach(
            c,
            Workload::new(
                format!("MBW-{c}"),
                workloads::build("MBW", 250_000, c as u64).unwrap(),
                MemPolicy::Cxl,
            ),
        );
    }
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let r = profiler.run(3_000);
    let culprit = r.culprit.expect("saturated run must have a culprit");
    assert!(
        matches!(culprit.component, Component::FlexBusMc | Component::CxlDimm),
        "culprit was {:?}",
        culprit
    );
}

#[test]
fn materializer_tracks_phase_changes_of_phased_apps() {
    // Case 6: a gcc-like phased app produces clusterable locality windows.
    let mut machine = Machine::new(MachineConfig::tiny());
    machine.attach(
        0,
        Workload::new(
            "602.gcc_s",
            workloads::build("602.gcc_s", 900_000, 5).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    profiler.run(3_000);
    let windows = profiler
        .materializer
        .locality_windows(0, HitLevel::CxlMemory);
    assert!(
        windows.len() >= 2,
        "phased app must show multiple locality windows, got {}",
        windows.len()
    );
}

#[test]
fn emr_and_spr_share_counter_semantics() {
    // §3.6 PMU generality: the same profiling pipeline runs unchanged on
    // the EMR preset and shows the same qualitative shape.
    for cfg in [MachineConfig::spr(), MachineConfig::emr()] {
        let name = cfg.name;
        let r = profile("519.lbm_r", 300_000, MemPolicy::Cxl, cfg);
        assert!(
            r.path_map.total.level_total(HitLevel::CxlMemory) > 0,
            "{name}: no CXL hits"
        );
        assert!(r.stalls.total() > 0.0, "{name}: no stall attribution");
    }
}

#[test]
fn report_renders_all_sections() {
    let r = profile("GUPS", 100_000, MemPolicy::Cxl, MachineConfig::tiny());
    let text = r.render();
    for needle in [
        "PathFinder report",
        "Path map",
        "stall breakdown",
        "culprit",
    ] {
        assert!(text.contains(needle), "missing section {needle:?}");
    }
}

#[test]
fn profiler_overhead_is_lightweight() {
    // §5.9: PathFinder is lightweight — analysis costs a few percent of the
    // application work and bounded memory. The simulator stands in for the
    // application, so the bar here is generous but still meaningful.
    let mut machine = Machine::new(MachineConfig::tiny());
    machine.attach(
        0,
        Workload::new(
            "STREAM",
            workloads::build("STREAM", 400_000, 1).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    profiler.run(3_000);
    let o = profiler.overhead();
    assert!(
        o.cpu_fraction() < 0.5,
        "profiler used {:.1}% of CPU",
        100.0 * o.cpu_fraction()
    );
    assert!(
        o.memory_bytes < 256 << 20,
        "profiler used {} bytes",
        o.memory_bytes
    );
}
