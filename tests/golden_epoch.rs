//! Golden guard for the `SimModule` stage-graph refactor: the SPR-config
//! machine must produce bit-identical `EpochResult`s and PMU counter
//! streams before and after any scheduler change. The expected
//! fingerprints below were captured from the hand-wired `run_epoch`
//! implementation; a mismatch means the stage graph changed observable
//! behaviour, not just structure.

use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// FNV-1a over a word stream — stable, dependency-free fingerprinting.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Fingerprint one epoch: the full counter state of every PMU bank, the
/// epoch-boundary cycle, the drained page heat, and per-core ops.
fn epoch_fingerprint(e: &simarch::EpochResult) -> u64 {
    let mut h = Fnv::new();
    h.word(e.snapshot.cycle);
    for bank in &e.snapshot.pmu.cores {
        for &w in bank.raw() {
            h.word(w);
        }
    }
    for bank in &e.snapshot.pmu.chas {
        for &w in bank.raw() {
            h.word(w);
        }
    }
    for bank in &e.snapshot.pmu.imcs {
        for &w in bank.raw() {
            h.word(w);
        }
    }
    for bank in &e.snapshot.pmu.m2ps {
        for &w in bank.raw() {
            h.word(w);
        }
    }
    for bank in &e.snapshot.pmu.cxls {
        for &w in bank.raw() {
            h.word(w);
        }
    }
    for &(asid, page, n) in &e.page_heat {
        h.word(asid as u64);
        h.word(page);
        h.word(n as u64);
    }
    for &ops in &e.ops_per_core {
        h.word(ops);
    }
    h.word(e.all_done as u64);
    h.0
}

/// The pinned scenario: stock SPR config, a CXL-resident STREAM flow and an
/// interleaved GUPS flow sharing the LLC.
fn golden_run() -> Vec<u64> {
    let mut m = Machine::new(MachineConfig::spr());
    m.attach(
        0,
        Workload::new(
            "STREAM",
            workloads::build("STREAM", 120_000, 42).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    m.attach(
        1,
        Workload::new(
            "GUPS",
            workloads::build("GUPS", 90_000, 7).unwrap(),
            MemPolicy::Interleave { cxl_fraction: 0.5 },
        ),
    );
    let mut prints = Vec::new();
    for _ in 0..40 {
        let e = m.run_epoch();
        prints.push(epoch_fingerprint(&e));
        if e.all_done {
            break;
        }
    }
    prints
}

/// Captured from the pre-stage-graph `run_epoch` (hand-wired drain order);
/// every scheduler refactor must reproduce this stream exactly.
const GOLDEN: [u64; 11] = [
    0xd080b29680e8e3de,
    0x0080fd5bcae9d8f9,
    0xff47026fb2bbc489,
    0x225b60b65ad296cf,
    0x76d31d1e510d0059,
    0x54a3a2e0856b7fa0,
    0x80c04e221bed560e,
    0x545f17c5c6966077,
    0x7e91088f007ac6ba,
    0xa264cbadc302fa36,
    0xc7430120b4df5397,
];

#[test]
fn spr_epoch_stream_matches_golden() {
    let prints = golden_run();
    assert_eq!(
        prints.len(),
        GOLDEN.len(),
        "epoch count changed: the run drained in {} epochs, golden has {}",
        prints.len(),
        GOLDEN.len()
    );
    for (i, (&got, &want)) in prints.iter().zip(GOLDEN.iter()).enumerate() {
        assert_eq!(
            got, want,
            "epoch {i} fingerprint diverged: got 0x{got:016x}, want 0x{want:016x}"
        );
    }
}
