//! Property-based invariants across the stack (proptest).

use proptest::prelude::*;
use simarch::cache::{LineState, SetAssocCache};
use simarch::queues::{BoundedWindow, Coverage, FifoServer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A cache never exceeds capacity and never holds duplicate lines.
    #[test]
    fn cache_capacity_and_uniqueness(
        ways in 1usize..8,
        sets_pow in 0u32..6,
        ops in proptest::collection::vec((0u64..256, 0u8..3), 1..400),
    ) {
        let sets = 1usize << sets_pow;
        let mut c = SetAssocCache::new(sets * ways * 64, ways);
        for (line, op) in ops {
            match op {
                0 => { c.insert(line, LineState::Exclusive, 0, false); }
                1 => { c.invalidate(line); }
                _ => { c.lookup(line); }
            }
            prop_assert!(c.len() <= c.capacity());
            let mut seen = std::collections::HashSet::new();
            for l in c.iter() {
                prop_assert!(seen.insert(l.tag), "duplicate line {}", l.tag);
            }
        }
    }

    /// After inserting a line it is always findable until evicted or
    /// invalidated; a fresh insert into a 1-way set evicts deterministically.
    #[test]
    fn cache_insert_then_hit(line in 0u64..10_000) {
        let mut c = SetAssocCache::new(64 * 64, 4);
        c.insert(line, LineState::Shared, 0, true);
        prop_assert!(c.peek(line).is_some());
        prop_assert_eq!(c.peek(line).unwrap().state, LineState::Shared);
    }

    /// FIFO server: starts never precede arrivals, never overlap within the
    /// issue gap, and queue-delay accounting matches the schedule.
    #[test]
    fn fifo_server_schedule_is_causal(
        arrivals in proptest::collection::vec(0u64..10_000, 1..100),
        service in 1u64..100,
        gap in 1u64..50,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut s = FifoServer::new();
        let mut last_start = 0u64;
        let mut total_delay = 0u64;
        for &a in &sorted {
            let r = s.serve(a, service, gap);
            prop_assert!(r.start >= a, "service before arrival");
            prop_assert!(r.start >= last_start, "FIFO order violated");
            if last_start > 0 {
                prop_assert!(r.start >= last_start + gap || r.start == last_start + gap || r.start > last_start, "gap violated");
            }
            prop_assert_eq!(r.finish, r.start + service);
            total_delay += r.start - a;
            last_start = r.start;
        }
        prop_assert_eq!(s.total_queue_delay(), total_delay);
    }

    /// Coverage of sorted intervals equals the exact union length.
    #[test]
    fn coverage_matches_exact_union(
        mut intervals in proptest::collection::vec((0u64..1_000, 1u64..100), 1..50),
    ) {
        intervals.sort_unstable();
        let mut cov = Coverage::new();
        let mut marks = std::collections::HashSet::new();
        for &(start, len) in &intervals {
            cov.add(start, start + len);
            for t in start..start + len {
                marks.insert(t);
            }
        }
        prop_assert_eq!(cov.total(), marks.len() as u64);
    }

    /// A bounded window never exceeds its capacity and admission never
    /// travels backwards in time.
    #[test]
    fn bounded_window_respects_capacity(
        cap in 1usize..16,
        reqs in proptest::collection::vec((0u64..1_000, 1u64..500), 1..200),
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_unstable();
        let mut w = BoundedWindow::new(cap);
        for &(t, dur) in &sorted {
            let adm = w.acquire(t);
            prop_assert!(adm.at >= t);
            prop_assert_eq!(adm.blocked, adm.at - t);
            w.commit(adm.at + dur);
            prop_assert!(w.outstanding(adm.at) <= cap);
        }
    }

    /// Zipf sampling respects bounds and favours the head.
    #[test]
    fn zipf_is_bounded_and_skewed(n in 10usize..5_000, seed in 0u64..1_000) {
        use rand::SeedableRng;
        let z = workloads::kv::Zipf::new(n, 0.99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut first_decile = 0usize;
        let samples = 300;
        for _ in 0..samples {
            let s = z.sample(&mut rng);
            prop_assert!(s < n);
            if s < n.div_ceil(10) {
                first_decile += 1;
            }
        }
        // Top 10% of keys must take well over 10% of traffic.
        prop_assert!(first_decile * 100 > samples * 20);
    }

    /// Little's law consistency: for a synthetic stream with constant
    /// arrival rate and deterministic delay, the analyzer's queue estimate
    /// equals λ·W exactly.
    #[test]
    fn littles_law_identity(hits in 1u64..10_000, cycles in 10_000u64..1_000_000) {
        use pmu::{CoreEvent, SystemPmu};
        use pathfinder::{analyzer::PfAnalyzer, model::{Component, LatencyModel, PathGroup}};
        let mut pmu = SystemPmu::new(1, 1, 1, 1, 1);
        let s0 = pmu.snapshot(0);
        pmu.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, hits);
        let d = pmu.snapshot(cycles).delta(&s0);
        let lat = LatencyModel::spr();
        let q = PfAnalyzer::analyze(&d, &lat);
        let expect = hits as f64 / cycles as f64 * lat.l1_hit;
        prop_assert!((q.get(PathGroup::Drd, Component::L1d) - expect).abs() < 1e-9);
    }

    /// Stall-attribution mass conservation: what PFEstimator distributes
    /// over components equals the nested stall counters times the CXL share.
    #[test]
    fn estimator_mass_conservation(
        s1 in 0u64..1_000_000,
        extra2 in 0u64..1_000_000,
        extra3 in 0u64..1_000_000,
        cxl in 1u64..1_000,
        local in 0u64..1_000,
    ) {
        use pmu::{CoreEvent, RespScenario, SystemPmu};
        use pathfinder::{estimator::PfEstimator, model::{LatencyModel, PathGroup}};
        let s3 = s1;
        let s2 = s1 + extra2;
        let s1 = s2 + extra3;
        let mut pmu = SystemPmu::new(1, 1, 1, 1, 1);
        let snap0 = pmu.snapshot(0);
        pmu.cores[0].add(CoreEvent::MemoryActivityStallsL1dMiss, s1);
        pmu.cores[0].add(CoreEvent::MemoryActivityStallsL2Miss, s2);
        pmu.cores[0].add(CoreEvent::CycleActivityStallsL3Miss, s3);
        pmu.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::AnyResponse), cxl + local);
        pmu.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::CxlDram), cxl);
        pmu.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::LocalDram), local);
        let d = pmu.snapshot(1_000_000).delta(&snap0);
        let lat = LatencyModel::spr();
        let b = PfEstimator::breakdown(&d, &lat);
        // Latency-weighted CXL share (no TOR samples ⇒ nominal latencies).
        let share = cxl as f64 * lat.cxl_mem
            / (cxl as f64 * lat.cxl_mem + local as f64 * lat.dram);
        let want = s1 as f64 * share; // telescoping sums back to the root
        let got = b.path_total(PathGroup::Drd);
        prop_assert!((got - want).abs() < 1.0 + want * 1e-9, "got {} want {}", got, want);
    }

    /// FIFO server under arbitrary interleavings of service and transient
    /// stalls ([`FifoServer::block_until`], the fault-injection hook): work
    /// conservation and exact accounting hold, starts stay FIFO-ordered,
    /// and stalls add queueing delay but never busy time.
    #[test]
    fn fifo_server_backpressure_under_stalls(
        events in proptest::collection::vec(
            (0u64..10_000, 1u64..100, 1u64..50, 0u8..2),
            1..100,
        ),
    ) {
        use simarch::Invariants;
        let mut sorted = events.clone();
        sorted.sort_unstable();
        let mut s = FifoServer::new();
        let mut busy = 0u64;
        let mut delay = 0u64;
        let mut last_start = 0u64;
        for &(t, service, gap, stall) in &sorted {
            if stall == 1 {
                let before = s.busy_cycles();
                s.block_until(t + service);
                prop_assert_eq!(s.busy_cycles(), before, "a stall charged busy time");
            } else {
                let r = s.serve(t, service, gap);
                prop_assert!(r.start >= t, "service before arrival");
                prop_assert!(r.start >= last_start, "FIFO order violated");
                prop_assert_eq!(r.finish, r.start + service);
                busy += gap;
                delay += r.start - t;
                last_start = r.start;
            }
            prop_assert!(s.busy_cycles() <= s.next_free(), "work conservation");
        }
        prop_assert_eq!(s.busy_cycles(), busy);
        prop_assert_eq!(s.total_queue_delay(), delay);
        let mut v = Vec::new();
        s.collect_violations(&mut v);
        prop_assert!(v.is_empty(), "{:?}", v);
    }

    /// Bounded window under arbitrary arrival/duration sequences: occupancy
    /// never exceeds capacity, blocked time is accounted exactly, entries
    /// drain earliest-completion-first, and flow is conserved.
    #[test]
    fn bounded_window_backpressure_and_drain_order(
        cap in 1usize..12,
        reqs in proptest::collection::vec((0u64..2_000, 1u64..300), 1..150),
    ) {
        use simarch::Invariants;
        let mut sorted = reqs.clone();
        sorted.sort_unstable();
        let mut w = BoundedWindow::new(cap);
        let mut last_admit = 0u64;
        for &(t, dur) in &sorted {
            let adm = w.acquire(t);
            prop_assert!(adm.at >= t, "admission travelled backwards");
            prop_assert_eq!(adm.blocked, adm.at - t);
            w.commit(adm.at + dur);
            prop_assert!(w.occupancy_at(adm.at) <= cap, "occupancy over capacity");
            prop_assert!(w.outstanding(adm.at) <= cap, "occupancy over capacity");
            last_admit = last_admit.max(adm.at);
        }
        // Walking time forward drains earliest-completion-first: advancing
        // exactly to the earliest in-flight completion always retires it.
        let mut horizon = last_admit;
        let mut remaining = w.outstanding(horizon);
        while remaining > 0 {
            let earliest = w.earliest().unwrap();
            prop_assert!(earliest > horizon, "stale entry survived retirement");
            horizon = earliest;
            let next = w.outstanding(horizon);
            prop_assert!(next < remaining, "earliest completion did not retire");
            remaining = next;
        }
        prop_assert_eq!(w.committed(), w.retired());
        let mut v = Vec::new();
        w.collect_violations(&mut v);
        prop_assert!(v.is_empty(), "{:?}", v);
    }
}

// Machine-level fault × workload properties run whole (tiny) machines, so
// they get a smaller case budget than the module-level blocks above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded fault plan over any workload: the machine never
    /// deadlocks (`run_to_completion` returns Ok within the epoch cap),
    /// the conservation audit stays clean, and the CXL transaction
    /// identities (Req = DRS = read CAS, RwD = NDR = write CAS) survive
    /// every fault class — retries and stalls delay flits, they never
    /// create or destroy them.
    #[test]
    fn fault_plans_preserve_conservation_and_liveness(
        plan_seed in 0u64..10_000,
        n_windows in 0usize..6,
        app_sel in 0usize..3,
        policy_sel in 0usize..3,
        ops in 2_000u64..8_000,
        wl_seed in 0u64..64,
    ) {
        use pmu::{CxlEvent, M2pEvent};
        use simarch::{FaultPlan, Invariants, Machine, MachineConfig, MemPolicy, Workload};
        let cfg = MachineConfig::tiny();
        let plan = FaultPlan::from_seed(plan_seed, n_windows, &cfg, 40);
        let app = ["STREAM", "GUPS", "505.mcf_r"][app_sel];
        let policy = [
            MemPolicy::Local,
            MemPolicy::Cxl,
            MemPolicy::Interleave { cxl_fraction: 0.5 },
        ][policy_sel];
        let mut m = Machine::new(cfg);
        m.set_fault_plan(plan);
        m.attach(
            0,
            Workload::new(app, workloads::build(app, ops, wl_seed).unwrap(), policy),
        );
        let start = m.pmu.snapshot(0);
        let summary = m.run_to_completion(2_000);
        prop_assert!(summary.is_ok(), "faulted machine stalled: {:?}", summary);
        prop_assert!(m.all_done(), "workload did not drain");

        let mut v = Vec::new();
        m.collect_violations(&mut v);
        prop_assert!(v.is_empty(), "conservation violated under faults: {:?}", v);

        let d = m.pmu.snapshot(m.now()).delta(&start);
        let req = d.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq);
        let rwd = d.cxl_sum(CxlEvent::RxcPackBufInsertsMemData);
        prop_assert_eq!(req, d.cxl_sum(CxlEvent::TxcPackBufInsertsMemData), "Req vs DRS");
        prop_assert_eq!(req, d.cxl_sum(CxlEvent::DevMcRdCas), "Req vs read CAS");
        prop_assert_eq!(rwd, d.cxl_sum(CxlEvent::TxcPackBufInsertsMemReq), "RwD vs NDR");
        prop_assert_eq!(rwd, d.cxl_sum(CxlEvent::DevMcWrCas), "RwD vs write CAS");
        prop_assert_eq!(d.m2p_sum(M2pEvent::RxcInserts), req + rwd, "M2PCIe ingress");
    }

    /// Fault-plan expansion is a pure function of its inputs, every
    /// generated window validates, and all windows respect the horizon.
    #[test]
    fn seeded_fault_plans_are_valid_and_reproducible(
        seed in 0u64..100_000,
        n in 0usize..12,
        horizon in 1u64..200,
    ) {
        use simarch::FaultPlan;
        let cfg = simarch::MachineConfig::tiny();
        let a = FaultPlan::from_seed(seed, n, &cfg, horizon);
        let b = FaultPlan::from_seed(seed, n, &cfg, horizon);
        prop_assert_eq!(a.windows().len(), n);
        prop_assert_eq!(a.windows(), b.windows());
        for w in a.windows() {
            prop_assert!(w.validate().is_ok(), "invalid generated window {:?}", w);
            prop_assert!(w.start_epoch < w.end_epoch);
            prop_assert!(w.end_epoch <= horizon, "window escapes the horizon");
        }
    }
}
