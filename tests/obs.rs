//! Integration tests for the observability layer (ISSUE 2 acceptance):
//!
//! * nested spans aggregate correctly and the Chrome trace round-trips
//!   through the minimal JSON parser;
//! * an end-to-end profile with obs enabled renders byte-identically to
//!   one with obs disabled (observation never perturbs the model);
//! * histogram percentile edge cases (empty, single sample, saturated
//!   bucket) behave.
//!
//! The obs recorder is process-global, so every test that enables or
//! resets it serialises on [`obs_lock`].

use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::trace::SeqReadTrace;
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// Serialise tests that touch the global recorder. The lock is the one
/// sanctioned shared-state exception in the test tree, so the
/// concurrency-hygiene suppressions below are deliberate.
type ObsGuard = std::sync::MutexGuard<'static, ()>; // pflint::allow(concurrency-hygiene)

fn obs_lock() -> ObsGuard {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(()); // pflint::allow(concurrency-hygiene)
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_stream(ops: usize) -> String {
    let mut m = Machine::new(MachineConfig::tiny());
    m.attach(
        0,
        Workload::new(
            "stream",
            Box::new(SeqReadTrace::new(1 << 20, ops)),
            MemPolicy::Cxl,
        ),
    );
    let mut p = Profiler::new(m, ProfileSpec::default());
    p.run(500).render()
}

#[test]
fn nested_spans_aggregate_and_chrome_trace_round_trips() {
    let _l = obs_lock();
    obs::reset();
    obs::enable();
    {
        let _outer = obs::span!("t.outer");
        for _ in 0..2 {
            let _inner = obs::span!("t.inner");
        }
    }
    obs::disable();

    let phases = obs::span::phases();
    let outer = phases.iter().find(|p| p.name == "t.outer").expect("outer");
    let inner = phases.iter().find(|p| p.name == "t.inner").expect("inner");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 2);
    assert_eq!(outer.depth, 0, "top-level spans sit at depth 0");
    assert_eq!(inner.depth, 1, "inner spans nest one level below outer");
    assert!(
        outer.total_ns >= inner.total_ns,
        "an enclosing span covers its children: outer {} < inner {}",
        outer.total_ns,
        inner.total_ns
    );

    // The Chrome trace must parse with the bundled minimal parser and
    // carry one complete event per guard, with nesting depth in args.
    let trace = obs::json::parse(&obs::export::chrome_trace_json()).expect("valid trace JSON");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert_eq!(events.len(), 3);
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        let name = ev.get("name").and_then(|v| v.as_str()).unwrap();
        let depth = ev
            .get("args")
            .and_then(|a| a.get("depth"))
            .and_then(|v| v.as_f64())
            .unwrap();
        match name {
            "t.outer" => assert_eq!(depth, 0.0),
            "t.inner" => assert_eq!(depth, 1.0),
            other => panic!("unexpected event {other}"),
        }
    }

    // The timings JSON validates, with both phases present.
    let timings = obs::export::timings_json();
    let found = obs::export::validate_timings(&timings, &["t.outer", "t.inner"])
        .expect("timings JSON validates");
    assert!(found.contains(&"t.outer".to_string()));
    obs::reset();
}

#[test]
fn report_is_byte_identical_with_obs_on_and_off() {
    let _l = obs_lock();
    obs::reset();
    obs::disable();
    let plain = run_stream(30_000);

    obs::reset();
    obs::enable();
    let observed = run_stream(30_000);
    obs::disable();

    assert!(
        !obs::span::phases().is_empty(),
        "instrumented run must actually record spans"
    );
    assert_eq!(
        plain, observed,
        "observation must never change the rendered report"
    );
    obs::reset();
}

#[test]
fn observed_run_covers_the_wall_time() {
    let _l = obs_lock();
    obs::reset();
    obs::enable();
    let _ = run_stream(30_000);
    obs::disable();

    // The two top-level phases must exist and explain >= 90% of the
    // observed window (ISSUE 2 acceptance).
    assert!(obs::span::total_ns("epoch.machine") > 0);
    let phases = obs::span::phases();
    assert!(phases.iter().any(|p| p.name == "epoch.profiler"));
    let cov = obs::export::coverage();
    assert!(cov >= 0.9, "phase coverage {cov:.3} below 0.9");
    assert_eq!(obs::span::dropped_events(), 0);
    obs::reset();
}

#[test]
fn span_buffer_overflow_keeps_aggregating_and_reports_drops() {
    let _l = obs_lock();
    obs::reset();
    obs::enable();

    // Push past the 2^20-event cap: every span keeps aggregating into the
    // phase stats, but the event list stops growing and counts the drops.
    let extra: u64 = 1024;
    let total = obs::span::EVENT_CAP as u64 + extra;
    for _ in 0..total {
        let _s = obs::span!("t.flood");
    }
    obs::disable();

    let phases = obs::span::phases();
    let flood = phases.iter().find(|p| p.name == "t.flood").expect("flood");
    assert_eq!(
        flood.count, total,
        "aggregates must keep counting past the event cap"
    );
    let dropped = obs::span::dropped_events();
    assert_eq!(dropped, extra, "exactly the overflow is dropped");

    // The drop count surfaces in the phase-table footer...
    let table = obs::export::phase_table();
    assert!(
        table.contains(&format!("({dropped} dropped)")),
        "footer must report drops: {table}"
    );

    // ...and in the timings JSON.
    let timings = obs::export::timings_json();
    let doc = obs::json::parse(&timings).expect("timings parse");
    let reported = doc
        .get("dropped_events")
        .and_then(|v| v.as_f64())
        .expect("dropped_events field");
    assert_eq!(reported as u64, dropped);

    obs::reset();
    assert_eq!(obs::span::dropped_events(), 0, "reset clears the counter");
}

#[test]
fn histogram_percentile_edge_cases() {
    let _l = obs_lock();
    obs::reset();
    obs::enable();

    // Empty: never-observed histograms simply don't exist.
    assert!(obs::metrics::histogram_snapshot("t.empty").is_none());

    // Single sample: every percentile is exactly that sample.
    obs::metrics::observe("t.single", 1234);
    let h = obs::metrics::histogram_snapshot("t.single").expect("single");
    assert_eq!(h.count, 1);
    assert_eq!((h.min, h.max), (1234, 1234));
    assert_eq!((h.p50, h.p95, h.p99), (1234, 1234, 1234));

    // Saturated top bucket: u64::MAX lands in the last bucket and the
    // percentile clamps to the observed max instead of overflowing.
    obs::metrics::observe("t.sat", u64::MAX);
    obs::metrics::observe("t.sat", u64::MAX - 1);
    let h = obs::metrics::histogram_snapshot("t.sat").expect("sat");
    assert_eq!(h.count, 2);
    assert_eq!(h.max, u64::MAX);
    assert!(h.p99 <= u64::MAX && h.p99 >= u64::MAX - 1);

    obs::disable();
    obs::reset();
}
