#!/usr/bin/env bash
# Perf-regression harness: build perfbench in release mode and run its two
# fixed, seeded scenarios (a full profiled run and the materializer-shaped
# ingest loop; see PERFORMANCE.md). Results are merged into BENCH_pr5.json
# by (name, metric) — pass a label to record a named variant:
#
#   scripts/bench.sh                 # unlabelled rows (ad-hoc runs)
#   scripts/bench.sh after           # perfbench.*.after rows
#   scripts/bench.sh after --epochs 20000
#
# Extra arguments after the label are forwarded to perfbench verbatim
# (--epochs N, --out FILE, --no-write, --timings, ...).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin perfbench

args=()
if [[ $# -gt 0 && "$1" != --* ]]; then
    args+=(--label "$1")
    shift
fi
./target/release/perfbench "${args[@]}" "$@"
