#!/usr/bin/env bash
# Perf-regression harness.
#
# Default mode: build perfbench in release mode and run its two fixed,
# seeded scenarios (a full profiled run and the materializer-shaped
# ingest loop; see PERFORMANCE.md). Results are merged into BENCH_pr10.json
# by (name, metric) — pass a label to record a named variant,
# --sched reference to measure the retained per-tick scheduler instead
# of the event wheel, and --datapath reference to measure the retained
# per-op walk instead of the batched stage-pass pipeline:
#
#   scripts/bench.sh                 # unlabelled rows (ad-hoc runs)
#   scripts/bench.sh after           # perfbench.*.after rows
#   scripts/bench.sh after --epochs 20000
#   scripts/bench.sh reference --sched reference
#   scripts/bench.sh refdp --datapath reference
#
# Fleet mode: sweep the fleetd collector daemon over host counts and
# record hosts, epochs/s, points/s, scrape p99 and resident bytes into
# BENCH_pr7.json (see FLEET.md). Every round performs a live /metrics
# self-scrape over TCP, so scrape latency is measured with real data:
#
#   scripts/bench.sh fleet                    # 100 / 1k / 10k hosts
#   scripts/bench.sh fleet 100 1000           # custom host counts
#
# Extra arguments after the label are forwarded to the binary verbatim.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -gt 0 && "$1" == fleet ]]; then
    shift
    cargo build --release -p fleetd --bin pathfinder-fleetd
    hosts=()
    while [[ $# -gt 0 && "$1" != --* ]]; do
        hosts+=("$1")
        shift
    done
    if [[ ${#hosts[@]} -eq 0 ]]; then
        hosts=(100 1000 10000)
    fi
    for n in "${hosts[@]}"; do
        # Shards sized for the box; rounds kept short so the sweep stays
        # minutes, not hours, at 10k hosts on one core.
        ./target/release/pathfinder-fleetd --bench \
            --hosts "$n" --shards 4 --rounds 3 \
            --listen 127.0.0.1:0 --out BENCH_pr7.json "$@"
    done
    exit 0
fi

cargo build --release -p bench --bin perfbench

args=()
if [[ $# -gt 0 && "$1" != --* ]]; then
    args+=(--label "$1")
    shift
fi
./target/release/perfbench "${args[@]}" "$@"
