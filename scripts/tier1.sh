#!/usr/bin/env bash
# Tier-1 gate: everything CI (and a reviewer) requires before merge.
# Runs the release build, the full test suite, formatting, clippy with
# warnings denied, and the pflint static-analysis pass (STATIC_ANALYSIS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q
run cargo fmt --check
run cargo clippy --workspace -- -D warnings
run cargo run --release -p pflint

echo "tier1: all gates passed"
