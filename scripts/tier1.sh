#!/usr/bin/env bash
# Tier-1 gate: everything CI (and a reviewer) requires before merge.
# Runs the release build, the full test suite, formatting, clippy with
# warnings denied, and the pflint static-analysis pass (STATIC_ANALYSIS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q
# Scheduler differential gate (DESIGN.md §2.2.3): the event wheel and the
# retained per-tick reference scheduler must emit byte-identical counter
# streams across randomized scenario × fault-plan × topology matrices.
# Already part of the workspace suite above; named here so a failure is
# unmistakable in CI logs.
run cargo test -q -p simarch --test scheduler_equivalence
# Datapath differential gate (DESIGN.md §2.2.4): the staged batch pipeline
# and the retained per-op reference walk must match byte-for-byte across
# the full SchedMode × DatapathMode 2×2 grid, fabric topologies included.
# This is also where the reference datapath is exercised in CI every run.
run cargo test -q -p simarch --test datapath_equivalence
run cargo fmt --check
run cargo clippy --workspace -- -D warnings
run cargo run --release -p pflint

# Static-analysis regression gate (STATIC_ANALYSIS.md): the JSON findings
# stream, diffed against the committed (empty) baseline. Any finding the
# baseline does not already record fails the build; drift in the baseline
# file itself is caught by the git diff.
run cargo run --release -p pflint -- --format json \
    --baseline crates/pflint/baseline.json
run git diff --exit-code crates/pflint/baseline.json

# Observability acceptance (OBSERVABILITY.md): a figure run with
# --timings-json must emit valid pathfinder-obs-v1 JSON containing the two
# mandatory top-level phases.
obs_out="$(mktemp -d)"
trap 'rm -rf "$obs_out"' EXIT
run cargo run --release -p bench --bin fig6_stall_breakdown -- \
    --timings-json "$obs_out/timings.json"
run cargo run --release -p obs --bin obs_validate -- \
    "$obs_out/timings.json" epoch.machine epoch.profiler

# Scenario fan-out acceptance (DESIGN.md): the same figure under --jobs 2
# must print byte-identical output to a serial run. Complements the
# in-process tests by catching stray printing from inside a worker.
echo "==> fig6_stall_breakdown --jobs 2 vs serial (byte-identical stdout)"
./target/release/fig6_stall_breakdown > "$obs_out/serial.txt"
./target/release/fig6_stall_breakdown --jobs 2 > "$obs_out/jobs2.txt"
diff -u "$obs_out/serial.txt" "$obs_out/jobs2.txt"

# Fault-injection smoke (FAULTS.md): the fault-diagnosis figure runs its
# fixed deterministic fault plans and the regenerated golden must be
# byte-identical — every injected (stage, class) diagnosed 'ok', none
# diagnosed 'MISS', no healthy false alarm.
run cargo run --release -p bench --bin fig13_faults
run git diff --exit-code crates/bench/out/fig13_faults.csv

# Fabric smoke (DESIGN.md §2.2.2, FAULTS.md): the multi-host figure runs
# its cross-tenant scenarios, the regenerated golden must be
# byte-identical (every pathology diagnosed 'ok' with the right
# culprit/victim hosts), and a --jobs 2 rerun must print byte-identical
# stdout to the serial run.
run cargo run --release -p bench --bin fig14_fabric
run git diff --exit-code crates/bench/out/fig14_fabric.csv
echo "==> fig14_fabric --jobs 2 vs serial (byte-identical stdout)"
./target/release/fig14_fabric > "$obs_out/fabric_serial.txt"
./target/release/fig14_fabric --jobs 2 > "$obs_out/fabric_jobs2.txt"
diff -u "$obs_out/fabric_serial.txt" "$obs_out/fabric_jobs2.txt"

# Perf gate (PERFORMANCE.md): BENCH_pr10.json must exist and its recorded
# profiled throughput must not regress below the PR 9 baseline. The gate
# reads the committed files — it does not re-measure — so it catches a
# forgotten `scripts/bench.sh` run after perf-relevant changes. Both the
# serial/--jobs 2 diffs above and the goldens ran under the event wheel
# and the batched datapath (the defaults), so this is the last gate
# specific to those hot paths.
run cargo run --release -p bench --bin perfbench -- --gate BENCH_pr9.json

# Fleet-mode smoke (FLEET.md): a small sharded fleet serves a live
# /metrics scrape whose Prometheus exposition validates (TYPE lines,
# pathfinder_* mangling, no duplicate samples, the contract families
# present), and whose timings JSON names the fleet phases.
run cargo run --release -p fleetd --bin pathfinder-fleetd -- \
    --hosts 16 --shards 2 --rounds 2 --listen 127.0.0.1:0 \
    --scrape-out "$obs_out/fleet_metrics.txt" \
    --timings-json "$obs_out/fleet_timings.json"
run cargo run --release -p obs --bin obs_validate -- --prom \
    "$obs_out/fleet_metrics.txt" \
    pathfinder_fleetd_rounds pathfinder_fleetd_points \
    pathfinder_fleetd_round_ns pathfinder_fleetd_scrape_ns \
    pathfinder_fleetd_shard_lag_ns pathfinder_tsdb_resident_bytes \
    pathfinder_obs_dropped_events pathfinder_fleet_inst_retired_any \
    pathfinder_host_inst_retired_any
run cargo run --release -p obs --bin obs_validate -- \
    "$obs_out/fleet_timings.json" fleet.round fleet.shard_round

echo "tier1: all gates passed"
