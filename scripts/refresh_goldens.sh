#!/usr/bin/env bash
# Regenerate every golden artefact under crates/bench/out/ — all per-figure
# CSVs plus the captured stdout in all_figures.txt — then diff against git.
# A clean exit means the checked-in goldens are exactly reproducible; a
# non-zero exit shows the drift (intentional after a model change: inspect
# the diff and commit it; unintentional: a determinism bug, see
# STATIC_ANALYSIS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench

# Sections in the order captured in all_figures.txt; `--emr` variants
# (paper Figures 14-16) rerun the same binaries on the EMR preset and
# regenerate the *_emr.csv goldens.
specs=(
    "fig0_mlc"
    "fig2_core_pmu"
    "fig3_cha_pmu"
    "fig4_uncore_pmu"
    "fig6_stall_breakdown"
    "fig7_8_interference"
    "fig9_10_contention"
    "fig11_bw_partition"
    "fig12_locality"
    "fig13_tpp"
    "table7_path_map"
    "ablation_attribution"
    "ablation_epoch"
    "fig2_core_pmu --emr"
    "fig3_cha_pmu --emr"
    "fig4_uncore_pmu --emr"
    "fig13_faults"
    "fig14_fabric"
)

out=crates/bench/out/all_figures.txt
: > "$out"
for spec in "${specs[@]}"; do
    read -r bin flags <<< "$spec"
    echo "==> $spec"
    {
        echo "===== $spec ====="
        # shellcheck disable=SC2086  # flags is intentionally word-split
        "./target/release/$bin" $flags
        echo
    } >> "$out"
done

echo "==> git diff crates/bench/out"
git --no-pager diff --exit-code -- crates/bench/out
echo "refresh_goldens: all goldens reproduced byte-identically"
