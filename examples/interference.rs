//! Local vs CXL interference (paper Case 3, §5.4).
//!
//! ```text
//! cargo run --release --example interference
//! ```
//!
//! Co-locates a local-memory mFlow and a CXL mFlow and sweeps the CXL
//! traffic load from 20% to 100%. PathFinder shows that even though the
//! FlexBus and CHA stay uncongested, the *core-private* components (SB,
//! L1D, LFB, L2) suffer growing CXL-induced stall — the interference
//! back-propagates into the pipeline.

use pathfinder::model::{Component, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use workloads::{Mbw, StreamGen};

fn main() {
    println!("CXL load sweep: one local mFlow + one CXL mFlow on neighbouring cores\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "load", "L1D stall", "LFB stall", "L2 stall", "LLC stall", "FlexBus q", "culprit"
    );

    for load in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut machine = Machine::new(MachineConfig::spr());
        // The victim: a streaming workload over local memory.
        machine.attach(
            0,
            Workload::new(
                "local-stream",
                Box::new(StreamGen::new(32 << 20, 600_000).write_ratio(0.2)),
                MemPolicy::Local,
            ),
        );
        // The aggressor: an MBW copy over CXL at the given offered load.
        machine.attach(
            1,
            Workload::new(
                format!("cxl-mbw-{:.0}%", load * 100.0),
                Box::new(Mbw::new(32 << 20, 600_000, load)),
                MemPolicy::Cxl,
            ),
        );
        let mut profiler = Profiler::new(machine, ProfileSpec::default());
        let report = profiler.run(2_000);

        let s = |c| report.stalls.get(PathGroup::Drd, c);
        let q = report.queues.get(PathGroup::Drd, Component::FlexBusMc);
        let culprit = report
            .culprit
            .map(|c| format!("{} on {}", c.path.label(), c.component.label()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>7.0}% {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.3} {:>14}",
            load * 100.0,
            s(Component::L1d),
            s(Component::Lfb),
            s(Component::L2),
            s(Component::Llc),
            q,
            culprit
        );
    }
    println!("\nExpected shape (paper Fig. 7/8): core-side stalls grow with CXL load");
    println!("while the FlexBus queue stays comparatively stable.");
}
