//! CXL bandwidth partition among concurrent mFlows (paper Case 5, §5.6).
//!
//! ```text
//! cargo run --release --example bandwidth_contention [mbw|gups]
//! ```
//!
//! Four instances of the micro-benchmark share one CXL device until the
//! FlexBus+MC saturates. PathFinder (a) flags FlexBus+MC as the culprit via
//! PFAnalyzer, and (b) infers each mFlow's bandwidth share from its CXL
//! request frequency — the paper measures a Pearson correlation of 0.998
//! between the two.

use pathfinder::materializer::Materializer;
use pathfinder::model::{Component, HitLevel};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use workloads::{Gups, Mbw};

fn main() {
    let kind = std::env::args().nth(1).unwrap_or_else(|| "mbw".into());
    let ops = 400_000u64;
    // Four instances with different offered loads, like the paper's
    // 500/700/1000/3700 MB/s MBW mix; the aggregate mildly exceeds the
    // device capacity so light flows keep their set-points while the heavy
    // flow absorbs the contention.
    let loads = [0.05, 0.08, 0.12, 0.5];

    let mut machine = Machine::new(MachineConfig::spr());
    for (i, &load) in loads.iter().enumerate() {
        let trace: Box<dyn simarch::TraceSource> = match kind.as_str() {
            "gups" => Box::new(Gups::new(
                24 << 20,
                (ops as f64 * load * 4.0) as u64,
                11 + i as u64,
            )),
            _ => Box::new(Mbw::new(24 << 20, ops, load)),
        };
        machine.attach(
            i,
            Workload::new(
                format!("{}-{}", kind.to_uppercase(), i + 1),
                trace,
                MemPolicy::Cxl,
            ),
        );
    }

    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    // Per-mFlow request counts over the concurrent window (while every flow
    // is still running — bandwidth partition is a property of coexistence).
    let mut req_freq = vec![0u64; loads.len()];
    let mut ops_done = vec![0u64; loads.len()];
    let mut window_cycles = 0u64;
    loop {
        let e = profiler.profile_epoch();
        let all_active = e.ops_per_core[..loads.len()].iter().all(|&n| n > 0);
        if all_active {
            window_cycles += e.delta.cycles();
            if let Some(map) = &e.path_map {
                for (c, f) in req_freq.iter_mut().enumerate() {
                    *f += map.per_core[c].level_total(HitLevel::CxlMemory);
                }
            }
            for (c, &n) in e.ops_per_core.iter().enumerate() {
                ops_done[c] += n;
            }
        }
        if e.all_done || !all_active {
            break;
        }
    }
    let report = profiler.report();

    // Application-level bandwidth: 64B per memory op over the shared window.
    let bw: Vec<f64> = (0..loads.len())
        .map(|c| ops_done[c] as f64 * 64.0 / window_cycles.max(1) as f64)
        .collect();
    let freq: Vec<f64> = req_freq.iter().map(|&f| f as f64).collect();
    let r = Materializer::correlate(&freq, &bw).unwrap_or(f64::NAN);

    println!(
        "four {} instances sharing one CXL device\n",
        kind.to_uppercase()
    );
    println!(
        "{:<10} {:>16} {:>16}",
        "mFlow", "CXL req freq", "app BW (B/cy)"
    );
    for c in 0..loads.len() {
        println!(
            "{:<10} {:>16} {:>16.4}",
            format!("{}-{}", kind.to_uppercase(), c + 1),
            req_freq[c],
            bw[c]
        );
    }
    println!("\nPearson r(request frequency, bandwidth) = {r:.3}   (paper: 0.998)");
    match report.culprit {
        Some(c) if c.component == Component::FlexBusMc || c.component == Component::CxlDimm => {
            println!(
                "culprit: {} on {} — the shared CXL path is the bottleneck, so request\n\
                 frequency is a faithful proxy for the runtime bandwidth allocation.",
                c.path.label(),
                c.component.label()
            );
        }
        Some(c) => println!("culprit: {} on {}", c.path.label(), c.component.label()),
        None => println!("no culprit detected"),
    }
}
