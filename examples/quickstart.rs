//! Quickstart: profile one application running over CXL memory.
//!
//! ```text
//! cargo run --release --example quickstart [app-name]
//! ```
//!
//! Attaches a workload (default `649.fotonik3d_s`, the paper's Case-1
//! subject) to core 0 with all pages on the CXL node, profiles it to
//! completion, and prints the PathFinder report: the path map (Table-7
//! style), the CXL-induced stall breakdown (Figure-6 style), and the
//! culprit component.

use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn main() {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "649.fotonik3d_s".to_string());
    let ops: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);

    let Some(trace) = workloads::build(&app, ops, 42) else {
        eprintln!("unknown application {app:?}; known apps:");
        for name in workloads::app_names() {
            eprintln!("  {name}");
        }
        std::process::exit(1);
    };

    println!("profiling {app} ({ops} ops) on the SPR machine, CXL memory policy\n");
    let mut machine = Machine::new(MachineConfig::spr());
    machine.attach(0, Workload::new(app, trace, MemPolicy::Cxl));

    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let report = profiler.run(2_000);
    println!("{}", report.render());

    // A taste of the materializer: LLC locality phases of core 0.
    let windows = profiler
        .materializer
        .locality_windows(0, pathfinder::model::HitLevel::CxlMemory);
    println!("CXL-traffic phases (epoch windows of consistent intensity):");
    for w in windows.iter().take(8) {
        println!(
            "  epochs {:>4}..{:<4} mean {:.0} hits/epoch",
            w.start, w.end, w.mean
        );
    }
}
