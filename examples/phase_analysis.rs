//! Cross-snapshot analysis with PFMaterializer (§4.6): phase windows,
//! seasonality, anomalies, and the CXL device's QoS telemetry.
//!
//! ```text
//! cargo run --release --example phase_analysis
//! ```
//!
//! Runs a gcc-like phase-changing program over CXL memory, then walks the
//! snapshot history the way PathFinder's analyzer workflow does:
//! 1. scope the query (CXL-destination hits of the app's paths),
//! 2. overall statistics,
//! 3. cluster snapshots into phase windows,
//! 4. test for seasonality with Holt-Winters and decompose trend/season/
//!    residual, flagging anomalous epochs,
//! 5. report the device's DevLoad QoS class along the run.

use pathfinder::model::HitLevel;
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use tsdb::tsa;

fn main() {
    let ops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_200_000);

    // A finer scheduling epoch (0.25 ms) gives the snapshot series enough
    // temporal resolution to expose the program's phase structure — the
    // granularity/overhead trade of the profiling spec (§4.1).
    let mut cfg = MachineConfig::spr();
    cfg.epoch_cycles = 500_000;
    let mut machine = Machine::new(cfg);
    machine.attach(
        0,
        Workload::new(
            "602.gcc_s",
            workloads::build("602.gcc_s", ops, 11).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let mut devloads = Vec::new();
    loop {
        let e = profiler.profile_epoch();
        devloads.push(profiler.machine().dev_load(0));
        if e.all_done {
            break;
        }
    }

    // 1+2: scope and overall statistics.
    let series = profiler.materializer.hit_series(0, HitLevel::CxlMemory);
    let data: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
    let (min, max, mean) = profiler
        .materializer
        .scope_stats(0, HitLevel::CxlMemory)
        .unwrap();
    println!(
        "CXL-hit series over {} epochs: min {min:.0}, max {max:.0}, mean {mean:.0}\n",
        data.len()
    );

    // 3: phase windows.
    println!("phase windows (consistent CXL intensity):");
    for w in profiler
        .materializer
        .locality_windows(0, HitLevel::CxlMemory)
    {
        println!(
            "  epochs {:>3}..{:<3} mean {:>9.0} hits/epoch",
            w.start, w.end, w.mean
        );
    }

    // 4: seasonality and anomalies. The gcc-like program alternates two
    // 200k-op phases, so its epoch series is periodic; estimate the period
    // from the phase windows and test it.
    let season = profiler
        .materializer
        .locality_windows(0, HitLevel::CxlMemory)
        .first()
        .map(|w| (w.len() * 2).max(2))
        .unwrap_or(4);
    match profiler
        .materializer
        .predictability(0, HitLevel::CxlMemory, season)
    {
        Some(err) => println!(
            "\nHolt-Winters relative fit error at season {season}: {err:.2} \
             ({} — paper: regular patterns indicate predictable accesses)",
            if err < 0.6 {
                "predictable"
            } else {
                "irregular"
            }
        ),
        None => println!("\nseries too short for Holt-Winters at season {season}"),
    }
    if let Some(d) = tsa::decompose(&data, season) {
        let tr = d.trend.last().unwrap() - d.trend.first().unwrap();
        println!("decomposition: trend drift {tr:+.0} hits/epoch across the run");
        let anom = tsa::anomalies(&data, season, 4.0);
        if anom.is_empty() {
            println!("no anomalous epochs at 4σ");
        } else {
            println!("anomalous epochs (4σ residuals): {anom:?}");
        }
    }

    // 5: QoS telemetry summary.
    let count = |c| devloads.iter().filter(|&&d| d == c).count();
    println!(
        "\nDevLoad QoS classes across the run: light {} / optimal {} / moderate {} / severe {}",
        count(simarch::cxl::DevLoad::Light),
        count(simarch::cxl::DevLoad::Optimal),
        count(simarch::cxl::DevLoad::Moderate),
        count(simarch::cxl::DevLoad::Severe),
    );
    println!("(the CXL 3.x telemetry §3.5 says shipping DIMMs do not yet expose)");
}
