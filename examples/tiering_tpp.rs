//! TPP page tiering guided by PathFinder (paper Case 7, §5.8).
//!
//! ```text
//! cargo run --release --example tiering_tpp [--colloid]
//! ```
//!
//! Runs GUPS with a hot set (the paper's configuration: a hot subset of the
//! table receiving 90% of accesses) over a mostly-CXL placement, with TPP
//! disabled and then enabled. With TPP, the hot pages migrate to local DRAM
//! and throughput rises; PFBuilder's traces confirm local hits up / CXL
//! hits down — the Figure-13 shape. `--colloid` additionally gates TPP with
//! the PathFinder-assisted dynamic Colloid (dominant-class latencies from
//! PFEstimator).

use pathfinder::estimator::{any_requests, cxl_requests, PfEstimator, Tier};
use pathfinder::model::{HitLevel, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use tiering::{ClassLatencies, ColloidTpp, Migration, Tpp, TppConfig};
use workloads::Gups;

const OPS: u64 = 1_500_000;

fn gups_machine() -> Machine {
    let mut machine = Machine::new(MachineConfig::spr());
    let gups = Gups::new(48 << 20, OPS, 7).hot_set(0.33, 0.9);
    machine.attach(
        0,
        Workload::new(
            "GUPS",
            Box::new(gups),
            MemPolicy::Interleave { cxl_fraction: 0.8 },
        ),
    );
    machine
}

struct Outcome {
    cycles: u64,
    local_hits: u64,
    cxl_hits: u64,
    migrations: usize,
}

enum Mode {
    Off,
    Tpp,
    DynamicColloid,
}

fn class_latencies(delta: &pmu::SystemDelta) -> ClassLatencies {
    let w = PfEstimator::class_miss_weights(delta);
    let lat = |p, t, default| PfEstimator::tor_latency(delta, p, t).unwrap_or(default);
    ClassLatencies {
        drd: (
            lat(PathGroup::Drd, Tier::Local, 200.0),
            lat(PathGroup::Drd, Tier::Cxl, 700.0),
        ),
        rfo: (
            lat(PathGroup::Rfo, Tier::Local, 220.0),
            lat(PathGroup::Rfo, Tier::Cxl, 750.0),
        ),
        hwpf: (
            lat(PathGroup::HwPf, Tier::Local, 200.0),
            lat(PathGroup::HwPf, Tier::Cxl, 700.0),
        ),
        drd_weight: w[0],
        rfo_weight: w[1],
        hwpf_weight: w[2],
    }
}

fn run(mode: Mode) -> Outcome {
    let mut profiler = Profiler::new(gups_machine(), ProfileSpec::default());
    let mut tpp = Tpp::new(TppConfig::default());
    let mut colloid = ColloidTpp::new(TppConfig::default(), true);
    let mut migrations = 0;
    loop {
        let e = profiler.profile_epoch();
        let migs: Vec<Migration> = match mode {
            Mode::Off => Vec::new(),
            Mode::Tpp => {
                let m = profiler.machine();
                tpp.epoch(&e.page_heat, &|asid, vpage| {
                    m.page_node(asid as usize, vpage)
                })
            }
            Mode::DynamicColloid => {
                let lat = class_latencies(&e.delta);
                let cxl_share = cxl_requests(&e.delta, PathGroup::Drd) as f64
                    / any_requests(&e.delta, PathGroup::Drd).max(1) as f64;
                let m = profiler.machine();
                colloid.epoch(
                    &e.page_heat,
                    &|asid, vpage| m.page_node(asid as usize, vpage),
                    &lat,
                    cxl_share,
                )
            }
        };
        let m = profiler.machine_mut();
        for mig in migs {
            if m.migrate_page(mig.asid as usize, mig.vpage, mig.to) {
                migrations += 1;
            }
        }
        if e.all_done {
            break;
        }
    }
    let report = profiler.report();
    Outcome {
        cycles: report.cycles,
        local_hits: report.path_map.total.level_total(HitLevel::LocalDram),
        cxl_hits: report.path_map.total.level_total(HitLevel::CxlMemory),
        migrations,
    }
}

fn main() {
    let colloid = std::env::args().any(|a| a == "--colloid");
    println!("GUPS, 48 MiB table, hot 33% of pages take 90% of traffic, 80% pages on CXL\n");

    let off = run(Mode::Off);
    let on = run(if colloid {
        Mode::DynamicColloid
    } else {
        Mode::Tpp
    });

    let speedup = off.cycles as f64 / on.cycles as f64;
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "", "TPP disabled", "TPP enabled", "change"
    );
    println!(
        "{:<22} {:>14} {:>14} {:>11.2}x",
        "runtime (cycles)", off.cycles, on.cycles, speedup
    );
    println!(
        "{:<22} {:>14} {:>14} {:>11.2}x",
        "local DRAM hits",
        off.local_hits,
        on.local_hits,
        on.local_hits as f64 / off.local_hits.max(1) as f64
    );
    println!(
        "{:<22} {:>14} {:>14} {:>11.1}%",
        "CXL memory hits",
        off.cxl_hits,
        on.cxl_hits,
        100.0 * (1.0 - on.cxl_hits as f64 / off.cxl_hits.max(1) as f64)
    );
    println!("{:<22} {:>14} {:>14}", "pages migrated", 0, on.migrations);
    println!(
        "\nmode: {} (paper: TPP lifts GUPS throughput ~3x; dynamic Colloid adds ~1.1x)",
        if colloid {
            "TPP + dynamic Colloid"
        } else {
            "plain TPP"
        }
    );
}
