//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the proptest API the workspace tests use:
//! the `proptest!` macro, `ProptestConfig::with_cases`, integer-range and
//! tuple strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! stand-in: cases are generated from a fixed seed (fully deterministic
//! run-to-run, which suits this repo's determinism policy), and failing
//! cases are reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::RngExt;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error type produced by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError};

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drives the per-case loop for one `proptest!` test function.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic per-case RNG: the stream depends only on the case
        /// index, so failures reproduce exactly across runs and machines.
        pub fn rng_for(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(0x5EED_CAFE ^ (case as u64).wrapping_mul(0x9E37_79B9))
        }
    }
}

/// A generator of values for one `proptest!` binding.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// A fixed value, always produced verbatim.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy producing `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! {
            ($crate::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..runner.cases() {
                let mut __pt_rng = runner.rng_for(case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __pt_rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            x in 1u64..100,
            (a, b) in (0u8..10, 5usize..=9),
            v in crate::collection::vec((0u64..50, 1u64..4), 1..20),
        ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (p, q) in v {
                prop_assert!(p < 50, "p out of range: {}", p);
                prop_assert!(q >= 1 && q < 4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_assert_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
