//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! std-only subset of the `rand 0.10` API surface it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods (`random`, `random_range`, `random_bool`).
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms and releases, which is exactly the property the
//! simulator's determinism lint (`pflint`) wants from every RNG in the
//! workspace. It is **not** cryptographically secure and does not promise
//! stream compatibility with the real `rand` crate.

/// A source of `u64` random words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

mod sealed {
    pub trait Sealed {}
}

/// Types that can be drawn uniformly from the full `next_u64` word.
pub trait Standard: Sized + sealed::Sealed {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl sealed::Sealed for f64 {}
impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl sealed::Sealed for f32 {}
impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl sealed::Sealed for bool {}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `random_range`.
pub trait UniformInt: Copy + PartialOrd + sealed::Sealed {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the widest multiple of `span` to avoid
    // modulo bias; terminates quickly for any span.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "random_range: empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "random_range: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Convenience sampling methods, mirroring `rand`'s `Rng` extension trait.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1usize..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
