//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements just enough of the criterion 0.5 API for the workspace's
//! benches to compile and run: `Criterion`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! It is a measurement harness, not a statistics engine: each benchmark
//! runs a warm-up iteration followed by `sample_size` timed iterations and
//! reports min/mean/max wall-clock time per iteration.

use std::fmt::Write as _;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Human-readable benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units the per-iteration rate is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Passed to bench closures; `iter` runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::with_capacity(sample_size),
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.samples_ns.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = *b.samples_ns.iter().min().unwrap() as f64;
    let max = *b.samples_ns.iter().max().unwrap() as f64;
    let mean = b.samples_ns.iter().sum::<u128>() as f64 / b.samples_ns.len() as f64;
    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = count / (mean / 1e9);
        let _ = write!(line, "  thrpt: {rate:.0} {unit}");
    }
    println!("{line}");
}

/// Top-level bench context handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b, None);
        self
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| calls += 1);
        });
        // one warm-up + three samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }
}
