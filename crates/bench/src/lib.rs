//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artefact from the paper's
//! evaluation (see DESIGN.md §3 for the index). The helpers here run a
//! configured scenario on the simulated machine, return the whole-run
//! counter delta, and write results both as an aligned text table on stdout
//! and as CSV under `bench/out/`.

pub mod scenario;

use std::io::Write;
use std::path::PathBuf;

use pathfinder::profiler::{ProfileSpec, Profiler};
use pathfinder::Report;
use pmu::SystemDelta;
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// Default per-run operation budget. Figures sweep several runs; keep each
/// in the ~1-2s range in release mode.
pub const DEFAULT_OPS: u64 = 300_000;

/// Maximum epochs per run — a generous backstop against runaway scenarios.
pub const MAX_EPOCHS: u64 = 5_000;

/// One workload to pin: `(core, app name or registry key, ops, policy, seed)`.
pub struct Pin {
    pub core: usize,
    pub name: String,
    pub trace: Box<dyn simarch::TraceSource>,
    pub policy: MemPolicy,
}

impl Pin {
    /// Pin a registry application. Fails when `app` is not in the
    /// workloads registry — figure binaries propagate that as an I/O error
    /// instead of panicking mid-regeneration.
    pub fn app(
        core: usize,
        app: &str,
        ops: u64,
        policy: MemPolicy,
        seed: u64,
    ) -> std::io::Result<Pin> {
        let trace = workloads::build(app, ops, seed).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("app {app} missing from the workloads registry"),
            )
        })?;
        Ok(Pin {
            core,
            name: app.to_string(),
            trace,
            policy,
        })
    }

    /// Pin a custom trace.
    pub fn trace(
        core: usize,
        name: impl Into<String>,
        trace: Box<dyn simarch::TraceSource>,
        policy: MemPolicy,
    ) -> Pin {
        Pin {
            core,
            name: name.into(),
            trace,
            policy,
        }
    }
}

/// Run workloads to completion on a machine; return the whole-run counter
/// delta and final cycle count.
pub fn run_machine(cfg: MachineConfig, pins: Vec<Pin>) -> (SystemDelta, u64) {
    run_machine_with_faults(cfg, pins, simarch::FaultPlan::new())
}

/// [`run_machine`] under a deterministic fault plan (`simarch::faults`):
/// the scheduled anomalies are applied at every epoch boundary while the
/// workloads run to completion.
pub fn run_machine_with_faults(
    cfg: MachineConfig,
    pins: Vec<Pin>,
    plan: simarch::FaultPlan,
) -> (SystemDelta, u64) {
    let mut machine = Machine::new(cfg);
    machine.set_datapath_mode(datapath_from_args());
    machine.set_fault_plan(plan);
    for p in pins {
        machine.attach(p.core, Workload::new(p.name, p.trace, p.policy));
    }
    let start = machine.pmu.snapshot(0);
    for _ in 0..MAX_EPOCHS {
        if machine.run_epoch().all_done {
            break;
        }
    }
    let end = machine.pmu.snapshot(machine.now());
    let cycles = machine.now();
    (end.delta(&start), cycles)
}

/// One workload pinned to a fabric host: `(host, pin)`.
pub type HostPin = (usize, Pin);

/// Run per-host workloads through an N-host CXL fabric under a
/// fabric-level fault plan; return the fabric-side counter delta (switch
/// + pooled-device banks) and the slowest host's final cycle count.
pub fn run_fabric(
    cfg: MachineConfig,
    fcfg: simarch::FabricConfig,
    pins: Vec<HostPin>,
    plan: simarch::FaultPlan,
) -> (SystemDelta, u64) {
    let mut fabric = simarch::Fabric::new(cfg, fcfg);
    fabric.set_datapath_mode(datapath_from_args());
    fabric.set_fault_plan(plan);
    for (host, p) in pins {
        fabric.attach(host, p.core, Workload::new(p.name, p.trace, p.policy));
    }
    let start = fabric.pmu.snapshot(0);
    for _ in 0..MAX_EPOCHS {
        if fabric.run_epoch().all_done {
            break;
        }
    }
    let hosts = fabric.fabric_config().hosts;
    let cycles = (0..hosts).map(|h| fabric.host(h).now()).max().unwrap_or(0);
    (fabric.fabric_snapshot().delta(&start), cycles)
}

/// Run workloads under the full PathFinder profiler; return the report and
/// the profiler itself (for materializer queries).
pub fn run_profiled(cfg: MachineConfig, pins: Vec<Pin>) -> (Report, Profiler) {
    let mut machine = Machine::new(cfg);
    machine.set_datapath_mode(datapath_from_args());
    for p in pins {
        machine.attach(p.core, Workload::new(p.name, p.trace, p.policy));
    }
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let report = profiler.run(MAX_EPOCHS);
    (report, profiler)
}

/// Output directory for CSV artefacts (`bench/out/`, created on demand).
/// `BENCH_OUT_DIR` overrides the destination so tests and ad-hoc runs can
/// write somewhere disposable without touching the committed goldens.
pub fn out_dir() -> std::io::Result<PathBuf> {
    let dir = match std::env::var_os("BENCH_OUT_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("out"),
    };
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Write a CSV artefact and echo its path. I/O failures propagate so the
/// figure binaries exit nonzero instead of panicking mid-run.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let path = out_dir()?.join(name);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    println!("\n[csv] {}", path.display());
    Ok(())
}

/// Print an aligned table (re-exported from the profiler's report module).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", pathfinder::report::table(headers, rows));
}

/// Format a ratio like the paper's "2.1x".
pub fn ratio(cxl: f64, local: f64) -> String {
    if local == 0.0 {
        "-".into()
    } else {
        format!("{:.1}x", cxl / local)
    }
}

/// Format a signed percentage change like the paper's "-22.8%".
pub fn pct_change(new: f64, old: f64) -> String {
    if old == 0.0 {
        "-".into()
    } else {
        format!("{:+.1}%", 100.0 * (new - old) / old)
    }
}

/// The six applications most figures of §3 use, chosen to span the
/// behavioural classes.
pub const SIX_APPS: [&str; 6] = [
    "519.lbm_r",
    "503.bwaves_r",
    "505.mcf_r",
    "554.roms_r",
    "507.cactuBSSN_r",
    "649.fotonik3d_s",
];

/// Start an observability session from the process argv. Every figure
/// binary accepts `--timings`, `--timings-json <path>`, and
/// `--trace-json <path>` (see OBSERVABILITY.md); call
/// [`obs::cli::Session::finish`] before returning so the artefacts are
/// written.
pub fn obs_session() -> obs::cli::Session {
    obs::cli::Session::from_env()
}

/// Parse `--emr` from argv: all §3 figure binaries accept it to regenerate
/// the EMR variants (paper Figures 14-16).
pub fn platform_from_args() -> MachineConfig {
    if std::env::args().any(|a| a == "--emr") {
        MachineConfig::emr()
    } else {
        MachineConfig::spr()
    }
}

/// Parse `--jobs N` from argv: every figure binary accepts it to fan its
/// scenario grid across worker threads (output stays byte-identical to
/// `--jobs 1`; see [`scenario::map_scenarios`]).
pub fn jobs_from_args() -> scenario::Jobs {
    scenario::Jobs::from_args()
}

/// Parse `--datapath batched|reference` from argv. Every figure binary
/// accepts it (the harness applies it to each machine/fabric it builds),
/// so any artefact can be regenerated under the retained per-op reference
/// walk — `tests/golden_identity.rs` asserts the bytes do not change.
/// Unknown values fall back to the default (batched) rather than erroring:
/// the differential tests are the guard, not the figure CLI.
pub fn datapath_from_args() -> simarch::DatapathMode {
    let args: Vec<String> = std::env::args().collect();
    match args
        .iter()
        .position(|a| a == "--datapath")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("reference") => simarch::DatapathMode::Reference,
        _ => simarch::DatapathMode::Batched,
    }
}

/// Parse `--ops N` from argv.
pub fn ops_from_args() -> u64 {
    ops_from_args_or(DEFAULT_OPS)
}

/// [`ops_from_args`] with a binary-specific default — fabric figures run
/// several multi-host scenarios per invocation and keep a smaller budget.
pub fn ops_from_args_or(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_machine_completes() {
        let (d, cycles) = run_machine(
            MachineConfig::tiny(),
            vec![Pin::app(0, "STREAM", 20_000, MemPolicy::Local, 1).unwrap()],
        );
        assert!(cycles > 0);
        assert!(d.core_sum(pmu::CoreEvent::InstRetired) > 0);
    }

    #[test]
    fn faulted_run_completes_and_diverges_from_healthy() {
        use simarch::{FaultClass, FaultPlan, FaultWindow, StageId};
        let pins = || vec![Pin::app(0, "STREAM", 20_000, MemPolicy::Cxl, 1).unwrap()];
        let (_, healthy_cycles) = run_machine(MachineConfig::tiny(), pins());
        let plan = FaultPlan::new()
            .with(FaultWindow {
                class: FaultClass::LinkDegrade,
                stage: StageId::cxl(0),
                start_epoch: 0,
                end_epoch: u64::MAX,
                severity: 8,
            })
            .unwrap();
        let (_, faulted_cycles) = run_machine_with_faults(MachineConfig::tiny(), pins(), plan);
        assert!(
            faulted_cycles > healthy_cycles,
            "a degraded link must slow the run ({faulted_cycles} vs {healthy_cycles})"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(210.0, 100.0), "2.1x");
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(pct_change(77.2, 100.0), "-22.8%");
        assert_eq!(pct_change(120.0, 100.0), "+20.0%");
    }
}
