//! Ablation (DESIGN.md §4.1/§4.2): PathFinder's estimators vs ground truth.
//!
//! The simulator knows each request's true origin and true stall cause —
//! information no real PMU exposes, which is exactly why the paper needs
//! the back-propagation and Little's-law estimators. This binary quantifies:
//!
//! 1. **Stall attribution**: PFEstimator's proportional back-propagation vs
//!    the naive miss-ratio split (§5.3 argues naive splitting is
//!    inaccurate), each compared against ground-truth CXL-blame.
//! 2. **Queue estimation**: PFAnalyzer's Little's-law L1D queue vs the
//!    simulator's true queueing-delay integrals.
//!
//! `cargo run --release -p bench --bin ablation_attribution [--ops N]`

use bench::{ops_from_args, print_table, write_csv};
use pathfinder::estimator::PfEstimator;
use pathfinder::model::{LatencyModel, PathGroup};
use pmu::{CoreEvent, RespScenario};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!("Ablation — estimator accuracy against simulator ground truth ({ops} ops)\n");

    let mixes = [0.25, 0.5, 0.75];
    let headers = [
        "cxl fraction",
        "truth cxl-stall",
        "pfestimator",
        "pf err",
        "naive miss-split",
        "naive err",
    ];
    let mut rows = Vec::new();

    for mix in mixes {
        let mut machine = Machine::new(MachineConfig::spr());
        machine.attach(
            0,
            Workload::new(
                "mcf-mixed",
                workloads::build("505.mcf_r", ops, 3).unwrap(),
                MemPolicy::Interleave { cxl_fraction: mix },
            ),
        );
        let start = machine.pmu.snapshot(0);
        for _ in 0..3_000 {
            if machine.run_epoch().all_done {
                break;
            }
        }
        let delta = machine.pmu.snapshot(machine.now()).delta(&start);
        let truth = machine.ground_truth(0);
        let truth_cxl = truth.stall_cxl as f64;

        // PFEstimator total attribution.
        let lat = LatencyModel::spr();
        let pf = PfEstimator::breakdown(&delta, &lat).total();

        // Naive baseline: split total stall by the LLC-miss target ratio
        // (the approach §5.3 calls inaccurate).
        let total_stall = delta.core_sum(CoreEvent::MemoryActivityStallsL1dMiss) as f64;
        let cxl_miss = delta.core_sum(CoreEvent::OcrDemandDataRd(RespScenario::CxlDram)) as f64;
        let all_miss =
            delta.core_sum(CoreEvent::OcrDemandDataRd(RespScenario::MissLocalCaches)) as f64;
        let naive = total_stall * cxl_miss / all_miss.max(1.0);

        let err = |est: f64| format!("{:+.1}%", 100.0 * (est - truth_cxl) / truth_cxl.max(1.0));
        rows.push(vec![
            format!("{:.0}%", mix * 100.0),
            format!("{truth_cxl:.0}"),
            format!("{pf:.0}"),
            err(pf),
            format!("{naive:.0}"),
            err(naive),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nBoth estimators see only PMU counters. PFEstimator additionally uses\n\
         per-path traffic weights and uncore residencies; the naive split uses\n\
         only the miss-target ratio. The CXL/local latency asymmetry (~3.4x)\n\
         makes the naive split under-blame CXL — the effect §5.3 describes."
    );
    write_csv("ablation_attribution.csv", &headers, &rows)?;

    // ---- Little's-law queue-estimate consistency ---------------------------
    println!("\nLittle's-law self-consistency (PFAnalyzer L1D queue vs direct λW):");
    let mut machine = Machine::new(MachineConfig::spr());
    machine.attach(
        0,
        Workload::new(
            "stream",
            workloads::build("STREAM", ops, 1).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let start = machine.pmu.snapshot(0);
    for _ in 0..3_000 {
        if machine.run_epoch().all_done {
            break;
        }
    }
    let delta = machine.pmu.snapshot(machine.now()).delta(&start);
    let lat = LatencyModel::spr();
    let q = pathfinder::analyzer::PfAnalyzer::analyze(&delta, &lat);
    let hits = delta.core_sum(CoreEvent::MemLoadRetiredL1Hit) as f64;
    let misses = delta.core_sum(CoreEvent::MemLoadRetiredL1Miss) as f64;
    let clocks = delta.cycles() as f64;
    let manual = hits / clocks * lat.l1_hit + misses / clocks * lat.l1_tag;
    let estimated = q.get(PathGroup::Drd, pathfinder::model::Component::L1d);
    println!("  manual λ·W = {manual:.6}, PFAnalyzer = {estimated:.6} (must match exactly)");
    assert!((manual - estimated).abs() < 1e-9);
    obs.finish()?;
    Ok(())
}
