//! Figure 11 (Case 5, §5.6): CXL bandwidth partition among concurrent
//! mFlows, and the correlation between request frequency and delivered
//! bandwidth.
//!
//! Four MBW (or GUPS, with `--gups`) instances at different offered loads
//! saturate the FlexBus+MC. PathFinder infers each mFlow's bandwidth share
//! from its CXL request frequency; the paper measures Pearson r = 0.998.
//!
//! `cargo run --release -p bench --bin fig11_bw_partition [--gups] [--ops N]`

use bench::{ops_from_args, print_table, write_csv};
use pathfinder::materializer::Materializer;
use pathfinder::model::{Component, HitLevel};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use workloads::{Gups, Mbw};

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    let gups = std::env::args().any(|a| a == "--gups");
    let kind = if gups { "GUPS" } else { "MBW" };
    println!("Figure 11 — CXL bandwidth partition, 4x {kind} ({ops} ops budget)\n");

    // Paper mix: MBW at 500/700/1000/3700 MB/s ⇒ offered-load fractions.
    // Offered-load set-points chosen so the aggregate mildly exceeds the
    // device's capacity: the light flows stay demand-limited (keeping their
    // set-point bandwidth) while the heavy flow absorbs the contention —
    // the paper's non-uniform degradation.
    let loads = [0.05, 0.08, 0.12, 0.5];
    let mut machine = Machine::new(MachineConfig::spr());
    for (i, &load) in loads.iter().enumerate() {
        let trace: Box<dyn simarch::TraceSource> = if gups {
            Box::new(Gups::new(
                24 << 20,
                (ops as f64 * load) as u64,
                11 + i as u64,
            ))
        } else {
            Box::new(Mbw::new(24 << 20, ops, load))
        };
        machine.attach(
            i,
            Workload::new(format!("{kind}-{}", i + 1), trace, MemPolicy::Cxl),
        );
    }
    let mut profiler = Profiler::new(machine, ProfileSpec::default());

    // Bandwidth partition is a property of *concurrent* flows: measure each
    // flow's request frequency and delivered bandwidth only over the window
    // where every flow is still running (once the heaviest flow drains, the
    // rest speed up and the partition question disappears).
    let mut req_freq = vec![0u64; loads.len()];
    let mut ops_done = vec![0u64; loads.len()];
    let mut window_cycles = 0u64;
    loop {
        let e = profiler.profile_epoch();
        let all_active = e.ops_per_core[..loads.len()].iter().all(|&n| n > 0);
        if all_active {
            window_cycles += e.delta.cycles();
            if let Some(map) = &e.path_map {
                for (c, f) in req_freq.iter_mut().enumerate() {
                    *f += map.per_core[c].level_total(HitLevel::CxlMemory);
                }
            }
            for (c, &n) in e.ops_per_core.iter().enumerate() {
                ops_done[c] += n;
            }
        }
        if e.all_done || !all_active {
            break;
        }
    }
    let report = profiler.report();

    let bw: Vec<f64> = (0..loads.len())
        .map(|c| ops_done[c] as f64 * 64.0 / window_cycles.max(1) as f64)
        .collect();
    let freq: Vec<f64> = req_freq.iter().map(|&f| f as f64).collect();
    let r = Materializer::correlate(&freq, &bw).unwrap_or(f64::NAN);

    let headers = ["mFlow", "offered load", "CXL req freq", "app BW (B/cycle)"];
    let rows: Vec<Vec<String>> = (0..loads.len())
        .map(|c| {
            vec![
                format!("{kind}-{}", c + 1),
                format!("{:.0}%", loads[c] * 100.0),
                req_freq[c].to_string(),
                format!("{:.4}", bw[c]),
            ]
        })
        .collect();
    print_table(&headers, &rows);
    println!("\nPearson r(request frequency, bandwidth) = {r:.3}  (paper: 0.998)");
    if let Some(c) = report.culprit {
        println!("culprit: {} on {}", c.path.label(), c.component.label());
        if matches!(c.component, Component::FlexBusMc | Component::CxlDimm) {
            println!("⇒ shared CXL path saturated; request frequency is a faithful proxy\n  for the runtime bandwidth allocation (the paper's conclusion).");
        }
    }
    let mut rows_csv = rows;
    rows_csv.push(vec![
        "pearson_r".into(),
        String::new(),
        String::new(),
        format!("{r:.4}"),
    ]);
    write_csv("fig11_bw_partition.csv", &headers, &rows_csv)?;
    obs.finish()?;
    Ok(())
}
