//! Figures 9 + 10 (Case 4, §5.5): contention among concurrent CXL mFlows.
//!
//! A YCSB mFlow shares the CXL device with three neighbour mFlows whose
//! offered load sweeps 20% → 100%. Figure 9: YCSB throughput and
//! CXL-induced stall per component; Figure 10: queue lengths. Paper shape:
//! YCSB throughput -77.4%, FlexBus+MC latency 4.3x, contention manifests
//! first in the uncore and propagates into the private core components.
//!
//! `cargo run --release -p bench --bin fig9_10_contention [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{jobs_from_args, ops_from_args, print_table, write_csv, Pin};
use pathfinder::model::{Component, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use workloads::Mbw;

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!(
        "Figures 9/10 — concurrent CXL mFlow contention ({} ops per run)\n",
        ops
    );

    let loads = [0.2, 0.4, 0.6, 0.8, 1.0];
    let headers9 = [
        "neighbour load",
        "ycsb tput (ops/Mcy)",
        "SB",
        "L1D",
        "LFB",
        "L2",
        "LLC",
        "CHA",
        "FlexBus+MC",
    ];
    let headers10 = [
        "neighbour load",
        "L1D q",
        "LFB q",
        "L2 q",
        "LLC q",
        "FlexBus DRd q",
        "FlexBus HWPF q",
    ];
    // Each sweep point is an independent machine + profiler; fan them out
    // and render in load order.
    let per_load = map_scenarios(jobs_from_args(), &loads, |_, &load| {
        // YCSB runs 4x the neighbour budget so its lifetime spans many
        // epochs (finer throughput resolution) and sees sustained
        // contention; theta 0.4 flattens the key popularity so the working
        // set exceeds the caches and the flow is genuinely CXL-bound.
        let ycsb: Box<dyn simarch::TraceSource> = Box::new(workloads::ZipfKv::with_theta(
            64 << 20,
            1024,
            workloads::YcsbMix::C,
            ops * 4,
            3,
            0.4,
        ));
        let mut pins = vec![Pin::trace(0, "YCSB-C", ycsb, MemPolicy::Cxl)];
        for c in 1..4 {
            pins.push(Pin::trace(
                c,
                format!("cxl-neighbour-{c}"),
                // Each of the three neighbours offers a third of the sweep
                // point (aggregate spans under to over the device capacity)
                // and runs an effectively unbounded trace so contention
                // persists for the whole YCSB lifetime.
                Box::new(Mbw::new(24 << 20, u64::MAX, load / 3.0)),
                MemPolicy::Cxl,
            ));
        }
        let mut machine = Machine::new(MachineConfig::spr());
        for p in pins {
            machine.attach(p.core, Workload::new(p.name, p.trace, p.policy));
        }
        let mut profiler = Profiler::new(machine, ProfileSpec::default());
        // Track when the YCSB flow itself drains: its throughput is ops over
        // *its own* lifetime, not the whole run's.
        let mut ycsb_ops = 0u64;
        let mut ycsb_done_at = 0u64;
        for _ in 0..400 {
            let e = profiler.profile_epoch();
            if e.ops_per_core[0] > 0 {
                ycsb_ops += e.ops_per_core[0];
                ycsb_done_at = e.delta.end_cycle;
            }
            // The neighbours never finish; stop once the YCSB flow drains.
            if ycsb_ops >= ops * 4 {
                break;
            }
        }
        let report = profiler.report();
        let tput = ycsb_ops as f64 / (ycsb_done_at.max(1) as f64 / 1e6);
        // Per-mFlow stall attribution for the YCSB core only (the paper's
        // per-mFlow analysis), over the whole run's counter delta.
        let ycsb_stalls = {
            use pathfinder::estimator::PfEstimator;
            use pathfinder::model::LatencyModel;
            let lat = LatencyModel::spr();
            let machine = profiler.machine();
            let end = machine.pmu.snapshot(machine.now());
            let zero = pmu::SystemPmu::new(
                end.pmu.cores.len(),
                end.pmu.chas.len(),
                end.pmu.imcs.len(),
                end.pmu.m2ps.len(),
                end.pmu.cxls.len(),
            )
            .snapshot(0);
            PfEstimator::breakdown_core(&end.delta(&zero), &lat, 0)
        };
        let s = |c: Component| {
            let total: f64 = PathGroup::ALL.iter().map(|&p| ycsb_stalls.get(p, c)).sum();
            format!("{:.0}", total)
        };
        let row9 = vec![
            format!("{:.0}%", load * 100.0),
            format!("{:.0}", tput),
            s(Component::Sb),
            s(Component::L1d),
            s(Component::Lfb),
            s(Component::L2),
            s(Component::Llc),
            s(Component::Cha),
            s(Component::FlexBusMc),
        ];
        let q = |p: PathGroup, c: Component| format!("{:.4}", report.mean_queues.get(p, c));
        let qsum = |c: Component| {
            let total: f64 = PathGroup::ALL
                .iter()
                .map(|&p| report.mean_queues.get(p, c))
                .sum();
            format!("{:.4}", total)
        };
        let row10 = vec![
            format!("{:.0}%", load * 100.0),
            qsum(Component::L1d),
            qsum(Component::Lfb),
            qsum(Component::L2),
            qsum(Component::Llc),
            q(PathGroup::Drd, Component::FlexBusMc),
            q(PathGroup::HwPf, Component::FlexBusMc),
        ];
        (row9, row10)
    });
    let (rows9, rows10): (Vec<_>, Vec<_>) = per_load.into_iter().unzip();

    println!("Figure 9 — YCSB throughput and CXL-induced stall per component");
    print_table(&headers9, &rows9);
    println!("\nFigure 10 — queue lengths (entries/cycle, run mean)");
    print_table(&headers10, &rows10);
    println!(
        "\npaper shape: YCSB throughput collapses (-77.4% at full neighbour load);\n\
         FlexBus+MC queueing rises first and hardest (DRd 4.6x, HWPF 1.2x),\n\
         then LLC (3.4x) and the core-private components follow"
    );
    write_csv("fig9_contention_stall.csv", &headers9, &rows9)?;
    write_csv("fig10_contention_queue.csv", &headers10, &rows10)?;
    obs.finish()?;
    Ok(())
}
