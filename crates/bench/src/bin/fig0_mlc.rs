//! §2.3 headline numbers: Intel-MLC-style idle latency and loaded bandwidth
//! for local DRAM vs CXL memory.
//!
//! Paper (SPR): local 103.2 ns / 131.1 GB/s; CXL 355.3 ns / 17.6 GB/s.
//! `cargo run --release -p bench --bin fig0_mlc [--emr] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{jobs_from_args, platform_from_args, print_table, run_machine, write_csv, Pin};
use pmu::CoreEvent;
use simarch::MemPolicy;
use workloads::{PointerChase, StreamGen};

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let cfg = platform_from_args();
    println!("MLC-style probe on {} ({} GHz)\n", cfg.name, cfg.freq_ghz);

    let policies = [MemPolicy::Local, MemPolicy::RemoteNuma, MemPolicy::Cxl];
    let rows = map_scenarios(jobs_from_args(), &policies, |_, &policy| {
        // Idle latency: single dependent pointer chase, per-op time is the
        // load-to-use latency.
        let chase = PointerChase::new(32 << 20, 60_000, 3);
        let (d, _) = run_machine(
            cfg.clone(),
            vec![Pin::trace(0, "mlc-lat", Box::new(chase), policy)],
        );
        let lat_cy = d.core_sum(CoreEvent::MemTransRetiredLoadLatency) as f64
            / d.core_sum(CoreEvent::MemTransRetiredLoadCount).max(1) as f64;
        let lat_ns = cfg.cycles_to_ns(lat_cy.round() as u64);

        // Loaded bandwidth: all cores streaming flat out.
        let pins: Vec<Pin> = (0..cfg.cores)
            .map(|c| {
                Pin::trace(
                    c,
                    format!("mlc-bw-{c}"),
                    Box::new(StreamGen::new(48 << 20, 400_000).work(0)),
                    policy,
                )
            })
            .collect();
        let (db, cycles) = run_machine(cfg.clone(), pins);
        let lines = db.core_sum(CoreEvent::MemLoadRetiredL1Miss) as f64;
        let bytes = lines * 64.0;
        let secs = cycles as f64 / (cfg.freq_ghz * 1e9);
        let gbps = bytes / secs / 1e9;

        let label = match policy {
            MemPolicy::Local => "local DDR",
            MemPolicy::RemoteNuma => "NUMA remote",
            MemPolicy::Cxl => "CXL DIMM",
            _ => unreachable!(),
        };
        vec![
            label.to_string(),
            format!("{lat_ns:.1}"),
            format!("{gbps:.1}"),
        ]
    });

    let headers = ["medium", "idle latency (ns)", "loaded BW (GB/s)"];
    print_table(&headers, &rows);
    println!("\npaper SPR: local 103.2 ns / 131.1 GB/s ; NUMA 163.6 ns / 94.4 GB/s ;");
    println!("           CXL 355.3 ns / 17.6 GB/s");
    println!("(bandwidth is scaled with the 4-core machine slice; shape, not absolutes)");
    write_csv(
        &format!("fig0_mlc_{}.csv", cfg.name.to_lowercase()),
        &headers,
        &rows,
    )?;
    obs.finish()?;
    Ok(())
}
