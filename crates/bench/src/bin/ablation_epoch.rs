//! Ablation (DESIGN.md §4.3): snapshot-granularity sweep.
//!
//! PathFinder snapshots every scheduling epoch; shorter epochs give finer
//! temporal resolution (more locality windows resolved) at higher profiler
//! cost (more records in the materializer, more analysis passes). This
//! binary sweeps the epoch length and reports both sides of the trade.
//!
//! `cargo run --release -p bench --bin ablation_epoch [--ops N]`

use bench::{ops_from_args, print_table, write_csv};
use pathfinder::model::HitLevel;
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!("Ablation — scheduling-epoch (snapshot) granularity sweep ({ops} ops)\n");

    let headers = [
        "epoch (cycles)",
        "snapshots",
        "locality windows",
        "db records",
        "profiler CPU %",
        "profiler MB",
    ];
    let mut rows = Vec::new();

    for epoch_cycles in [250_000u64, 500_000, 1_000_000, 2_000_000, 4_000_000] {
        let mut cfg = MachineConfig::spr();
        cfg.epoch_cycles = epoch_cycles;
        let mut machine = Machine::new(cfg);
        machine.attach(
            0,
            Workload::new(
                "602.gcc_s",
                workloads::build("602.gcc_s", ops, 5).unwrap(),
                MemPolicy::Cxl,
            ),
        );
        let mut profiler = Profiler::new(machine, ProfileSpec::default());
        let report = profiler.run(20_000);
        let windows = profiler
            .materializer
            .locality_windows(0, HitLevel::CxlMemory);
        let o = profiler.overhead();
        rows.push(vec![
            epoch_cycles.to_string(),
            report.epochs.to_string(),
            windows.len().to_string(),
            profiler.materializer.db.len().to_string(),
            format!("{:.2}", 100.0 * o.cpu_fraction()),
            format!("{:.2}", o.memory_bytes as f64 / 1e6),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nshorter epochs resolve more phase windows of the gcc-like workload\n\
         but cost more profiler CPU and materializer memory — the fidelity/\n\
         overhead trade PathFinder's 'max resource consumption' spec knob\n\
         controls (§4.1)."
    );
    write_csv("ablation_epoch.csv", &headers, &rows)?;
    obs.finish()?;
    Ok(())
}
