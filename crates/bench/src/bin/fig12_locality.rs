//! Figure 12 (Case 6, §5.7): data-locality changes of 503.bwaves_r when
//! co-located with different applications, via PFMaterializer's
//! cross-snapshot clustering.
//!
//! (a) launch 519.lbm_r on local memory mid-run;
//! (b) launch 554.roms_r on CXL memory mid-run;
//! (c) a three-app mix on both tiers.
//! Paper: LLC misses of bwaves drop 20.6% co-running with lbm vs roms —
//! lbm is the friendlier neighbour.
//!
//! `cargo run --release -p bench --bin fig12_locality [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{jobs_from_args, ops_from_args, print_table, write_csv};
use pathfinder::model::HitLevel;
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// Run bwaves on core 0; launch `neighbours` on cores 1.. after a third of
/// the run. Returns (bwaves LLC-hit windows, bwaves total CXL misses,
/// co-run correlation with neighbour 1 if any).
fn scenario(
    ops: u64,
    neighbours: &[(&str, MemPolicy)],
) -> (Vec<tsdb::tsa::Window>, u64, Option<f64>) {
    let mut machine = Machine::new(MachineConfig::spr());
    // A bwaves-like stencil whose working set (6 MiB) mostly fits the LLC:
    // its locality is then *sensitive* to co-runners stealing LLC capacity,
    // which is precisely what Case 6 observes. The registry-scaled bwaves
    // (51 MiB) misses ~100% either way and would mask the effect.
    let bwaves = workloads::Stencil::new(6 << 20, 3, ops * 3).noise(30);
    machine.attach(
        0,
        Workload::new("503.bwaves_r", Box::new(bwaves), MemPolicy::Cxl),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let mut launched = false;
    let mut epoch = 0u64;
    let launch_at = 3;
    loop {
        let e = profiler.profile_epoch();
        epoch += 1;
        if !launched && epoch == launch_at {
            launched = true;
            let m = profiler.machine_mut();
            for (i, (app, policy)) in neighbours.iter().enumerate() {
                m.attach(
                    1 + i,
                    Workload::new(
                        *app,
                        workloads::build(app, ops * 3, 7 + i as u64).unwrap(),
                        *policy,
                    ),
                );
            }
        }
        if e.all_done {
            break;
        }
    }
    let windows = profiler
        .materializer
        .locality_windows(0, HitLevel::CxlMemory);
    let report = profiler.report();
    let misses = report.path_map.per_core[0].level_total(HitLevel::CxlMemory);
    let corr = if neighbours.is_empty() {
        None
    } else {
        profiler.materializer.orthogonality(0, 1)
    };
    (windows, misses, corr)
}

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!("Figure 12 — 503.bwaves_r locality under co-location ({ops} ops per app)\n");

    // Four independent co-location grids; the per-scenario progress lines
    // print from the merged results so `--jobs N` output matches serial.
    let grid: [(&str, Vec<(&str, MemPolicy)>); 4] = [
        ("solo", vec![]),
        (
            "(a) +519.lbm_r local",
            vec![("519.lbm_r", MemPolicy::Local)],
        ),
        ("(b) +554.roms_r cxl", vec![("554.roms_r", MemPolicy::Cxl)]),
        (
            "(c) +lbm/mcf/roms mix",
            vec![
                ("519.lbm_r", MemPolicy::Local),
                ("505.mcf_r", MemPolicy::Local),
                ("554.roms_r", MemPolicy::Cxl),
            ],
        ),
    ];
    let results = map_scenarios(jobs_from_args(), &grid, |_, (_, neighbours)| {
        scenario(ops, neighbours)
    });
    for ((label, _), (w, m, _)) in grid.iter().zip(&results) {
        println!("  [{label}] {} locality windows, {} CXL misses", w.len(), m);
    }
    let (w_solo, m_solo, _) = &results[0];
    let (w_lbm, m_lbm, r_lbm) = &results[1];
    let (w_roms, m_roms, r_roms) = &results[2];
    let (w_mix, m_mix, r_mix) = &results[3];

    let headers = [
        "scenario",
        "locality windows",
        "bwaves CXL misses",
        "Δ vs solo",
        "corr w/ neighbour",
    ];
    let fmt_corr = |r: Option<f64>| r.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into());
    let rows = vec![
        vec![
            "solo".into(),
            w_solo.len().to_string(),
            m_solo.to_string(),
            "-".into(),
            "-".into(),
        ],
        vec![
            "(a) +lbm local".into(),
            w_lbm.len().to_string(),
            m_lbm.to_string(),
            bench::pct_change(*m_lbm as f64, *m_solo as f64),
            fmt_corr(*r_lbm),
        ],
        vec![
            "(b) +roms cxl".into(),
            w_roms.len().to_string(),
            m_roms.to_string(),
            bench::pct_change(*m_roms as f64, *m_solo as f64),
            fmt_corr(*r_roms),
        ],
        vec![
            "(c) three-app mix".into(),
            w_mix.len().to_string(),
            m_mix.to_string(),
            bench::pct_change(*m_mix as f64, *m_solo as f64),
            fmt_corr(*r_mix),
        ],
    ];
    print_table(&headers, &rows);
    let friendlier = if m_lbm <= m_roms { "lbm" } else { "roms" };
    println!(
        "\nbwaves misses less when co-located with {friendlier} (paper: 20.6% fewer\n\
         LLC misses with lbm than with roms — lbm on local memory stays out of\n\
         bwaves' CXL path, roms on CXL contends with it)"
    );
    write_csv("fig12_locality.csv", &headers, &rows)?;
    obs.finish()?;
    Ok(())
}
