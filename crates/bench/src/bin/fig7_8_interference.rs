//! Figures 7 + 8 (Case 3, §5.4): local vs CXL mFlow interference as the CXL
//! traffic load sweeps 20% → 100%.
//!
//! Figure 7: CXL-induced stall cycles at SB, L1D, LFB, L2, core LLC,
//! FlexBus+MC. Figure 8: PFAnalyzer queue lengths at L1D, LFB, L2,
//! FlexBus+MC. Paper shape: core-side stalls grow 1.7x-2.4x while the
//! FlexBus and CHA queueing stays comparatively stable.
//!
//! `cargo run --release -p bench --bin fig7_8_interference [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{jobs_from_args, ops_from_args, print_table, run_profiled, write_csv, Pin};
use pathfinder::model::{Component, PathGroup};
use simarch::{MachineConfig, MemPolicy};
use workloads::{Mbw, StreamGen};

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!(
        "Figures 7/8 — local+CXL interference sweep ({} ops per run)\n",
        ops
    );

    let loads = [0.2, 0.4, 0.6, 0.8, 1.0];
    let stall_headers = [
        "cxl load",
        "SB",
        "L1D",
        "LFB",
        "L2",
        "LLC",
        "CHA",
        "FlexBus+MC",
        "CXL DIMM",
    ];
    let queue_headers = [
        "cxl load",
        "L1D q",
        "LFB q",
        "L2 q",
        "LLC q",
        "FlexBus q",
        "DIMM q",
    ];
    // Each sweep point is its own machine; fan them out and render in
    // load order.
    let per_load = map_scenarios(jobs_from_args(), &loads, |_, &load| {
        let (report, _p) = run_profiled(
            MachineConfig::spr(),
            vec![
                Pin::trace(
                    0,
                    "local-stream",
                    Box::new(StreamGen::new(32 << 20, ops).write_ratio(0.2)),
                    MemPolicy::Local,
                ),
                Pin::trace(
                    1,
                    format!("cxl-mbw-{:.0}", load * 100.0),
                    Box::new(Mbw::new(32 << 20, ops, load)),
                    MemPolicy::Cxl,
                ),
            ],
        );
        let s = |c: Component| {
            let total: f64 = PathGroup::ALL
                .iter()
                .map(|&p| report.stalls.get(p, c))
                .sum();
            format!("{:.0}", total)
        };
        let stall_row = vec![
            format!("{:.0}%", load * 100.0),
            s(Component::Sb),
            s(Component::L1d),
            s(Component::Lfb),
            s(Component::L2),
            s(Component::Llc),
            s(Component::Cha),
            s(Component::FlexBusMc),
            s(Component::CxlDimm),
        ];
        let q = |c: Component| {
            let total: f64 = PathGroup::ALL
                .iter()
                .map(|&p| report.mean_queues.get(p, c))
                .sum();
            format!("{:.4}", total)
        };
        let queue_row = vec![
            format!("{:.0}%", load * 100.0),
            q(Component::L1d),
            q(Component::Lfb),
            q(Component::L2),
            q(Component::Llc),
            q(Component::FlexBusMc),
            q(Component::CxlDimm),
        ];
        (stall_row, queue_row)
    });
    let (stall_rows, queue_rows): (Vec<_>, Vec<_>) = per_load.into_iter().unzip();

    println!("Figure 7 — CXL-induced stall cycles per component");
    print_table(&stall_headers, &stall_rows);
    println!("\nFigure 8 — PFAnalyzer queue lengths (entries/cycle, run mean)");
    print_table(&queue_headers, &queue_rows);
    println!(
        "\npaper shape: SB/L1D/LFB/L2/LLC stall rises steeply with CXL load\n\
         (1.7x-2.4x from 20%->100%) while FlexBus/CHA queueing stays stable"
    );
    write_csv("fig7_interference_stall.csv", &stall_headers, &stall_rows)?;
    write_csv("fig8_interference_queue.csv", &queue_headers, &queue_rows)?;
    obs.finish()?;
    Ok(())
}
