//! Table 7 (Case 1, §5.2): PFBuilder's path-map classification for
//! 649.fotonik3d_s and two snapshots of 602.gcc_s over CXL memory.
//!
//! Paper highlights: fotonik's per-core hot path is DRd but HWPF carries
//! 59.3% of its uncore accesses and 89.1% of its CXL hits (8.1x the local
//! LLC hits); gcc's snapshot 2 issues 5.8x more requests than snapshot 1
//! and its RFO share of CXL hits jumps from 1.1% to 69.0%.
//!
//! `cargo run --release -p bench --bin table7_path_map [--ops N]`

use bench::{ops_from_args, print_table, run_profiled, write_csv, Pin};
use pathfinder::builder::PfBuilder;
use pathfinder::model::{HitLevel, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!("Table 7 — PFBuilder path maps over CXL memory ({ops} ops per run)\n");

    // ---- 649.fotonik3d_s: cumulative map ------------------------------------
    let (report, _) = run_profiled(
        MachineConfig::spr(),
        vec![Pin::app(0, "649.fotonik3d_s", ops, MemPolicy::Cxl, 5).expect("registry app")],
    );
    println!("649.fotonik3d_s (whole run):");
    println!("{}", report.path_map.render(&[0]));
    if let Some((level, path, _)) = report.path_map.hot_path(0) {
        println!("per-core hot path: {} at {}", path.label(), level.label());
    }
    if let Some((path, share)) = report.path_map.uncore_hot_path(0) {
        println!(
            "uncore hot path: {} ({:.1}% of uncore accesses; paper 59.3% HWPF)",
            path.label(),
            100.0 * share
        );
    }
    if let Some(r) = report.path_map.cxl_to_llc_ratio(0) {
        println!("CXL hits / local LLC hits = {r:.1}x (paper 8.1x)");
    }
    let shares = report.path_map.cxl_path_shares(0);
    println!(
        "HWPF share of CXL hits: {:.1}% (paper 89.1%)\n",
        100.0 * shares[PathGroup::HwPf.idx()]
    );

    // ---- 602.gcc_s: two snapshots from different phases ----------------------
    let mut machine = Machine::new(MachineConfig::spr());
    machine.attach(
        0,
        Workload::new(
            "602.gcc_s",
            workloads::build("602.gcc_s", ops * 2, 5).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let mut snapshots = Vec::new();
    loop {
        let e = profiler.profile_epoch();
        snapshots.push(e.delta.clone());
        if e.all_done {
            break;
        }
    }
    // Pick one snapshot from each phase: gcc_like switches every 200k ops;
    // take an early and a late-phase epoch by RFO activity contrast.
    let rfo_cxl =
        |d: &pmu::SystemDelta| d.core_sum(pmu::CoreEvent::OcrRfo(pmu::RespScenario::CxlDram));
    let s1 = snapshots
        .iter()
        .min_by_key(|d| rfo_cxl(d))
        .expect("snapshots");
    let s2 = snapshots
        .iter()
        .max_by_key(|d| rfo_cxl(d))
        .expect("snapshots");
    let m1 = PfBuilder::build(s1);
    let m2 = PfBuilder::build(s2);

    println!("602.gcc_s snapshot comparison:");
    let headers = ["metric", "snapshot 1", "snapshot 2"];
    let total1 = m1.per_core[0].total();
    let total2 = m2.per_core[0].total();
    let cxl_share = |m: &pathfinder::builder::PathMap, p: PathGroup| {
        let row = m.per_core[0].hits[HitLevel::CxlMemory.idx()];
        let total: u64 = row.iter().sum();
        if total == 0 {
            0.0
        } else {
            100.0 * row[p.idx()] as f64 / total as f64
        }
    };
    let rows = vec![
        vec![
            "total core requests".into(),
            total1.to_string(),
            total2.to_string(),
        ],
        vec![
            "requests ratio".into(),
            "1.0x".into(),
            format!("{:.1}x (paper 5.8x)", total2 as f64 / total1.max(1) as f64),
        ],
        vec![
            "DRd share of CXL hits".into(),
            format!("{:.1}%", cxl_share(&m1, PathGroup::Drd)),
            format!("{:.1}% (paper 25.9->27.7%)", cxl_share(&m2, PathGroup::Drd)),
        ],
        vec![
            "RFO share of CXL hits".into(),
            format!("{:.1}%", cxl_share(&m1, PathGroup::Rfo)),
            format!("{:.1}% (paper 1.1->69.0%)", cxl_share(&m2, PathGroup::Rfo)),
        ],
    ];
    print_table(&headers, &rows);
    println!("\nsnapshot 1 path map:");
    println!("{}", m1.render(&[0]));
    println!("snapshot 2 path map:");
    println!("{}", m2.render(&[0]));
    write_csv("table7_gcc_snapshots.csv", &headers, &rows)?;
    obs.finish()?;
    Ok(())
}
