//! perfbench — the repo's perf-regression harness.
//!
//! PathFinder's pitch is a *lightweight* profiler (§5.9 budgets its
//! overhead), and the software simulators it is compared against report
//! simulation throughput as a headline metric. This binary measures the
//! two hot paths that bound our own throughput on fixed, seeded scenarios:
//!
//! 1. `perfbench.profiled` — a full profiled run (machine + all four
//!    techniques + materializer ingest) over a short-epoch configuration,
//!    reporting epochs/sec, points ingested/sec, and retained bytes.
//! 2. `perfbench.ingest` — the materializer-shaped tsdb ingest loop in
//!    isolation: the same per-epoch counter grid the profiler emits,
//!    reporting points/sec and retained bytes.
//!
//! Wall time is read only through `obs::clock::now_ns` (the workspace's
//! single sanctioned clock choke point — see STATIC_ANALYSIS.md), so this
//! binary stays clean under pflint's `wall-clock` rule. Results are
//! appended/merged into `BENCH_pr10.json` (schema: one row per measurement,
//! `{"name", "metric", "value", "unit"}`) so successive PRs can track the
//! perf trajectory. Rows are merged by `(name, metric)`: re-running with
//! the same `--label` updates in place and never duplicates.
//!
//! `--sched reference` runs the profiled scenario under the retained
//! per-tick reference scheduler instead of the event wheel (the default),
//! and `--datapath reference` runs it under the retained one-op-per-schedule
//! datapath instead of the batched stage-pass pipeline (the default), so
//! before/after rows for the PR 9 and PR 10 rewrites come from the same
//! binary.
//!
//! `--gate BASELINE.json` skips measurement entirely: it reads the `--out`
//! file and the baseline, compares `perfbench.profiled` epochs/s, and
//! exits non-zero if the out file is missing or regresses below the
//! baseline — the tier-1 perf gate.
//!
//! `cargo run --release -p bench --bin perfbench -- [--label L] [--out F]
//!  [--epochs N] [--sched wheel|reference] [--datapath batched|reference]
//!  [--no-write] [--gate BASE]`

use std::io::Write;
use std::path::PathBuf;

use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{DatapathMode, Machine, MachineConfig, MemPolicy, SchedMode, Workload};

/// One emitted measurement row.
struct Row {
    name: String,
    metric: &'static str,
    value: f64,
    unit: &'static str,
}

fn secs_since(start_ns: u64) -> f64 {
    (obs::clock::now_ns().saturating_sub(start_ns)) as f64 / 1e9
}

/// The fixed profiled scenario: a short-epoch machine (so the per-epoch
/// profiler work — snapshot, digest, techniques, ingest — dominates over
/// raw trace simulation) with two seeded workloads that outlive the run.
fn profiled_scenario(
    epochs: u64,
    sched: SchedMode,
    datapath: DatapathMode,
) -> std::io::Result<Vec<Row>> {
    let mut cfg = MachineConfig::tiny();
    cfg.epoch_cycles = 500;
    let mut machine = Machine::new(cfg);
    machine.set_sched_mode(sched);
    machine.set_datapath_mode(datapath);
    let registry_app = |app: &str, seed: u64| {
        workloads::build(app, u64::MAX / 2, seed).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("app {app} missing from the workloads registry"),
            )
        })
    };
    machine.attach(
        0,
        Workload::new("519.lbm_r", registry_app("519.lbm_r", 1)?, MemPolicy::Cxl),
    );
    machine.attach(
        1,
        Workload::new("505.mcf_r", registry_app("505.mcf_r", 2)?, MemPolicy::Local),
    );
    let mut profiler = Profiler::new(machine, ProfileSpec::default());

    // Warm up: let caches/series establish themselves before timing.
    for _ in 0..64 {
        profiler.profile_epoch();
    }
    let points_before = profiler.materializer.db.len();

    let start = obs::clock::now_ns();
    for _ in 0..epochs {
        profiler.profile_epoch();
    }
    let secs = secs_since(start);

    let points = profiler.materializer.db.len() - points_before;
    let retained = profiler.overhead().memory_bytes;
    println!(
        "profiled: {epochs} epochs in {secs:.3}s — {:.0} epochs/s, {points} points ({:.0} points/s), {retained} retained bytes",
        epochs as f64 / secs,
        points as f64 / secs,
    );
    Ok(vec![
        Row {
            name: "perfbench.profiled".into(),
            metric: "epochs_per_sec",
            value: epochs as f64 / secs,
            unit: "epochs/s",
        },
        Row {
            name: "perfbench.profiled".into(),
            metric: "points_per_sec",
            value: points as f64 / secs,
            unit: "points/s",
        },
        Row {
            name: "perfbench.profiled".into(),
            metric: "retained_bytes",
            value: retained as f64,
            unit: "bytes",
        },
        // Real columnar heap vs. the logical §5.9 accounting above — the
        // same number fleetd exposes as the tsdb.resident_bytes gauge.
        Row {
            name: "perfbench.profiled".into(),
            metric: "resident_bytes",
            value: profiler.materializer.db.resident_bytes() as f64,
            unit: "bytes",
        },
    ])
}

/// The materializer-shaped ingest loop in isolation: `series` distinct
/// (core, app, path, dst) series, one `hits` field each, `epochs` epoch
/// timestamps — the exact record grid `ingest_path_map` produces.
fn ingest_scenario(series: usize, epochs: u64) -> Vec<Row> {
    use tsdb::{Db, Point};
    let mut db = Db::new();
    let paths = ["DRd", "RFO", "HW PF", "SW PF"];
    let dsts = ["L2", "LLC", "CXL Memory", "Local DRAM"];
    let start = obs::clock::now_ns();
    for e in 0..epochs {
        let ts = e * 10_000;
        for s in 0..series {
            db.insert(
                Point::new("path_set", ts)
                    .tag("core", (s % 4).to_string())
                    .tag("app", "519.lbm_r")
                    .tag("path", paths[s % paths.len()])
                    .tag("dst", dsts[(s / 4) % dsts.len()])
                    .field("hits", (e * s as u64) as f64),
            );
        }
    }
    let secs = secs_since(start);
    let points = db.len();
    println!(
        "ingest: {points} points in {secs:.3}s — {:.0} points/s, {} retained bytes",
        points as f64 / secs,
        db.footprint_bytes(),
    );
    vec![
        Row {
            name: "perfbench.ingest".into(),
            metric: "points_per_sec",
            value: points as f64 / secs,
            unit: "points/s",
        },
        Row {
            name: "perfbench.ingest".into(),
            metric: "retained_bytes",
            value: db.footprint_bytes() as f64,
            unit: "bytes",
        },
        Row {
            name: "perfbench.ingest".into(),
            metric: "resident_bytes",
            value: db.resident_bytes() as f64,
            unit: "bytes",
        },
    ]
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Render rows as a JSON array (one object per line, stable key order).
fn render(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"metric\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{}\n",
            r.name,
            r.metric,
            obs::json::fmt_f64(r.value),
            r.unit,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Merge `fresh` into the rows already in `path` (if parseable): existing
/// rows keep their position, a fresh row replaces any row with the same
/// `(name, metric)`, new rows append. This keeps `before` rows from a
/// previous run intact while updating the current label's numbers.
fn merge_into_file(path: &PathBuf, fresh: Vec<Row>) -> std::io::Result<()> {
    let mut rows: Vec<Row> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(v) = obs::json::parse(&text) {
            for item in v.as_arr().unwrap_or(&[]) {
                let (Some(name), Some(metric), Some(value), Some(unit)) = (
                    item.get("name").and_then(|x| x.as_str()),
                    item.get("metric").and_then(|x| x.as_str()),
                    item.get("value").and_then(|x| x.as_f64()),
                    item.get("unit").and_then(|x| x.as_str()),
                ) else {
                    continue;
                };
                let metric: &'static str = match metric {
                    "epochs_per_sec" => "epochs_per_sec",
                    "points_per_sec" => "points_per_sec",
                    "retained_bytes" => "retained_bytes",
                    "resident_bytes" => "resident_bytes",
                    _ => continue,
                };
                let unit: &'static str = match unit {
                    "epochs/s" => "epochs/s",
                    "points/s" => "points/s",
                    "bytes" => "bytes",
                    _ => continue,
                };
                rows.push(Row {
                    name: name.to_string(),
                    metric,
                    value,
                    unit,
                });
            }
        }
    }
    for f in fresh {
        match rows
            .iter_mut()
            .find(|r| r.name == f.name && r.metric == f.metric)
        {
            Some(slot) => *slot = f,
            None => rows.push(f),
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render(&rows).as_bytes())?;
    println!("[json] {}", path.display());
    Ok(())
}

/// Read the recorded `perfbench.profiled` epochs/s from a results file.
fn recorded_epochs_per_sec(path: &PathBuf) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = obs::json::parse(&text).ok()?;
    v.as_arr()?.iter().find_map(|item| {
        (item.get("name")?.as_str()? == "perfbench.profiled"
            && item.get("metric")?.as_str()? == "epochs_per_sec")
            .then(|| item.get("value")?.as_f64())?
    })
}

/// `--gate BASELINE`: compare the committed out-file against the baseline
/// without measuring anything. Fails (exit 1) when the out file or its
/// profiled row is missing, or when epochs/s regressed below the baseline.
fn gate(out: &PathBuf, baseline: &PathBuf) -> std::io::Result<()> {
    let err = |msg: String| std::io::Error::other(msg);
    let current = recorded_epochs_per_sec(out).ok_or_else(|| {
        err(format!(
            "gate: no perfbench.profiled epochs/s in {}",
            out.display()
        ))
    })?;
    let base = recorded_epochs_per_sec(baseline).ok_or_else(|| {
        err(format!(
            "gate: no perfbench.profiled epochs/s in baseline {}",
            baseline.display()
        ))
    })?;
    println!(
        "gate: {} records {current:.0} epochs/s, baseline {} records {base:.0} epochs/s",
        out.display(),
        baseline.display()
    );
    if current < base {
        return Err(err(format!(
            "gate: perfbench.profiled epochs_per_sec regressed ({current:.0} in {} < {base:.0} in baseline {})",
            out.display(),
            baseline.display()
        )));
    }
    println!("gate: ok ({:.2}x baseline)", current / base);
    Ok(())
}

fn main() -> std::io::Result<()> {
    let session = bench::obs_session();
    let args: Vec<String> = std::env::args().collect();
    let label = arg_value(&args, "--label");
    let epochs: u64 = arg_value(&args, "--epochs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let out = arg_value(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr10.json"));
    if let Some(baseline) = arg_value(&args, "--gate") {
        gate(&out, &PathBuf::from(baseline))?;
        return session.finish();
    }
    let sched = match arg_value(&args, "--sched").as_deref() {
        Some("reference") => SchedMode::Reference,
        _ => SchedMode::Wheel,
    };
    let datapath = match arg_value(&args, "--datapath").as_deref() {
        Some("reference") => DatapathMode::Reference,
        _ => DatapathMode::Batched,
    };

    println!("perfbench — fixed seeded scenarios, obs clock only\n");
    let mut rows = profiled_scenario(epochs, sched, datapath)?;
    rows.extend(ingest_scenario(64, 4_000));

    if let Some(label) = &label {
        for r in &mut rows {
            r.name = format!("{}.{label}", r.name);
        }
    }
    if args.iter().any(|a| a == "--no-write") {
        print!("\n{}", render(&rows));
        return session.finish();
    }
    merge_into_file(&out, rows)?;
    session.finish()
}
