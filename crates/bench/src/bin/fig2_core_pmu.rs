//! Figure 2 (and Figure 14 with `--emr`): core PMU counters, local vs CXL.
//!
//! (a) SB-full stall cycles under RD+WR and WR-only;
//! (b) L1D stall cycles and data-response wait;
//! (c) L1D operation breakdown (DRd hits);
//! (d) LFB hits and fb_full stalls;
//! (e) L2-miss stall cycles and data responses;
//! (f) L2 operation breakdown per path.
//!
//! `cargo run --release -p bench --bin fig2_core_pmu [--emr] [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{
    jobs_from_args, ops_from_args, pct_change, platform_from_args, print_table, ratio, run_machine,
    write_csv, Pin, SIX_APPS,
};
use pmu::{CoreEvent, SystemDelta};
use simarch::{MachineConfig, MemPolicy};
use workloads::StreamGen;

fn run_app(cfg: &MachineConfig, app: &str, ops: u64, policy: MemPolicy) -> SystemDelta {
    run_machine(
        cfg.clone(),
        vec![Pin::app(0, app, ops, policy, 7).expect("registry app")],
    )
    .0
}

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let cfg = platform_from_args();
    let ops = ops_from_args();
    println!(
        "Figure 2{} — core PMU, local vs CXL ({} ops per run)\n",
        if cfg.name == "EMR" {
            " [EMR variant = Figure 14]"
        } else {
            ""
        },
        ops
    );

    // Every run is an independent machine and a pure function of its grid
    // cell, so the whole local/CXL grid fans out at once; sections (a) and
    // (b)-(f) then read from the merged, app-ordered pairs.
    let jobs = jobs_from_args();
    let pairs = map_scenarios(jobs, &SIX_APPS, |_, &app| {
        (
            run_app(&cfg, app, ops, MemPolicy::Local),
            run_app(&cfg, app, ops, MemPolicy::Cxl),
        )
    });

    // ---- (a) store-buffer stalls, RD+WR and WR-only ------------------------
    println!("(a) store-buffer-full stall cycles");
    let mut rows_a = Vec::new();
    for (app, (local, cxl)) in SIX_APPS.iter().zip(&pairs) {
        let rdwr = |d: &SystemDelta| d.core_sum(CoreEvent::ResourceStallsSb) as f64;
        let wr = |d: &SystemDelta| d.core_sum(CoreEvent::ExeActivityBoundOnStores) as f64;
        rows_a.push(vec![
            app.to_string(),
            format!("{:.0}", rdwr(local)),
            format!("{:.0}", rdwr(cxl)),
            ratio(rdwr(cxl), rdwr(local)),
            format!("{:.0}", wr(local)),
            format!("{:.0}", wr(cxl)),
            ratio(wr(cxl), wr(local)),
        ]);
    }
    // A dedicated write-only run makes the WR-only columns meaningful even
    // for read-mostly registry apps.
    let wr_only = |policy| {
        run_machine(
            cfg.clone(),
            vec![Pin::trace(
                0,
                "wr-only",
                Box::new(StreamGen::new(32 << 20, ops).write_ratio(1.0)),
                policy,
            )],
        )
        .0
    };
    let wr_runs = map_scenarios(jobs, &[MemPolicy::Local, MemPolicy::Cxl], |_, &p| {
        wr_only(p)
    });
    let (wl, wc) = (&wr_runs[0], &wr_runs[1]);
    rows_a.push(vec![
        "WR-only-stream".into(),
        format!("{}", wl.core_sum(CoreEvent::ResourceStallsSb)),
        format!("{}", wc.core_sum(CoreEvent::ResourceStallsSb)),
        ratio(
            wc.core_sum(CoreEvent::ResourceStallsSb) as f64,
            wl.core_sum(CoreEvent::ResourceStallsSb) as f64,
        ),
        format!("{}", wl.core_sum(CoreEvent::ExeActivityBoundOnStores)),
        format!("{}", wc.core_sum(CoreEvent::ExeActivityBoundOnStores)),
        ratio(
            wc.core_sum(CoreEvent::ExeActivityBoundOnStores) as f64,
            wl.core_sum(CoreEvent::ExeActivityBoundOnStores) as f64,
        ),
    ]);
    let headers_a = [
        "app",
        "rdwr local",
        "rdwr cxl",
        "ratio",
        "wr local",
        "wr cxl",
        "ratio",
    ];
    print_table(&headers_a, &rows_a);
    println!("paper: 1.9x (RD+WR) and 2.0x (WR-only) average increase on SPR; 1.3x on EMR\n");
    write_csv(
        &format!("fig2a_{}.csv", cfg.name.to_lowercase()),
        &headers_a,
        &rows_a,
    )?;

    // ---- (b)-(f) one table per app pair ------------------------------------
    println!("(b)-(f) L1D / LFB / L2 execution and operation counters");
    let headers = [
        "app",
        "l1d.stall x",
        "resp.wait x",
        "l1d.hits Δ",
        "lfb.hits Δ",
        "fb_full x",
        "l2.stall x",
        "l2.drd.hits Δ",
        "l2.rfo.hits Δ",
        "l2.hwpf.hits Δ",
    ];
    let mut rows = Vec::new();
    for (app, (l, c)) in SIX_APPS.iter().zip(&pairs) {
        let f = |d: &SystemDelta, e| d.core_sum(e) as f64;
        let wait = |d: &SystemDelta| {
            f(d, CoreEvent::MemTransRetiredLoadLatency)
                / f(d, CoreEvent::MemTransRetiredLoadCount).max(1.0)
        };
        rows.push(vec![
            app.to_string(),
            ratio(
                f(c, CoreEvent::MemoryActivityStallsL1dMiss),
                f(l, CoreEvent::MemoryActivityStallsL1dMiss),
            ),
            ratio(wait(c), wait(l)),
            pct_change(
                f(c, CoreEvent::MemLoadRetiredL1Hit),
                f(l, CoreEvent::MemLoadRetiredL1Hit),
            ),
            pct_change(
                f(c, CoreEvent::MemLoadRetiredL1FbHit),
                f(l, CoreEvent::MemLoadRetiredL1FbHit),
            ),
            ratio(
                f(c, CoreEvent::L1dPendMissFbFull),
                f(l, CoreEvent::L1dPendMissFbFull),
            ),
            ratio(
                f(c, CoreEvent::MemoryActivityStallsL2Miss),
                f(l, CoreEvent::MemoryActivityStallsL2Miss),
            ),
            pct_change(
                f(c, CoreEvent::L2RqstsDemandDataRdHit),
                f(l, CoreEvent::L2RqstsDemandDataRdHit),
            ),
            pct_change(
                f(c, CoreEvent::L2RqstsRfoHit),
                f(l, CoreEvent::L2RqstsRfoHit),
            ),
            pct_change(
                f(c, CoreEvent::L2RqstsHwpfHit),
                f(l, CoreEvent::L2RqstsHwpfHit),
            ),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "paper SPR: L1D stalls 2.1x, response wait 1.4x, DRd/RFO hits -22.8%,\n\
         L2 stalls 2.7x; EMR shows the same signs with smaller magnitudes"
    );
    write_csv(
        &format!("fig2bf_{}.csv", cfg.name.to_lowercase()),
        &headers,
        &rows,
    )?;
    obs.finish()?;
    Ok(())
}
