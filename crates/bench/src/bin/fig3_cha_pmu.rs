//! Figure 3 (and Figure 15 with `--emr`): CHA PMU counters, local vs CXL.
//!
//! (a) core LLC stall cycles and DRd response time;
//! (b) LLC hit/miss breakdown per path;
//! (c) where missed LLC requests are served;
//! (d)/(e) hit and miss occupancies;
//! (f) LLC operation breakdown.
//!
//! `cargo run --release -p bench --bin fig3_cha_pmu [--emr] [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{
    jobs_from_args, ops_from_args, pct_change, platform_from_args, print_table, ratio, run_machine,
    write_csv, Pin, SIX_APPS,
};
use pmu::{ChaEvent, CoreEvent, IaScen, SystemDelta, TorDrdScen, TorRfoScen};
use simarch::{MachineConfig, MemPolicy};

struct RunPair {
    l: SystemDelta,
    c: SystemDelta,
    lc: u64,
    cc: u64,
}

fn pair(cfg: &MachineConfig, app: &str, ops: u64) -> RunPair {
    let (l, lc) = run_machine(
        cfg.clone(),
        vec![Pin::app(0, app, ops, MemPolicy::Local, 7).expect("registry app")],
    );
    let (c, cc) = run_machine(
        cfg.clone(),
        vec![Pin::app(0, app, ops, MemPolicy::Cxl, 7).expect("registry app")],
    );
    RunPair { l, c, lc, cc }
}

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let cfg = platform_from_args();
    let ops = ops_from_args();
    println!(
        "Figure 3{} — CHA PMU, local vs CXL ({} ops per run)\n",
        if cfg.name == "EMR" {
            " [EMR variant = Figure 15]"
        } else {
            ""
        },
        ops
    );

    let runs: Vec<(&str, RunPair)> = SIX_APPS
        .iter()
        .copied()
        .zip(map_scenarios(jobs_from_args(), &SIX_APPS, |_, &app| {
            pair(&cfg, app, ops)
        }))
        .collect();

    // ---- (a) LLC stalls + DRd TOR latency ---------------------------------
    println!("(a) core LLC stall cycles and DRd response time");
    let headers_a = ["app", "llc.stall x", "drd.resp x"];
    let mut rows_a = Vec::new();
    for (app, r) in &runs {
        let stall = |d: &SystemDelta| d.core_sum(CoreEvent::CycleActivityStallsL3Miss) as f64;
        let resp = |d: &SystemDelta| {
            let occ = d.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::Total)) as f64;
            let ins = d
                .cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::Total))
                .max(1) as f64;
            occ / ins
        };
        rows_a.push(vec![
            app.to_string(),
            ratio(stall(&r.c), stall(&r.l)),
            ratio(resp(&r.c), resp(&r.l)),
        ]);
    }
    print_table(&headers_a, &rows_a);
    println!("paper SPR: 2.1x stalls, 1.8x DRd response on average\n");
    write_csv(
        &format!("fig3a_{}.csv", cfg.name.to_lowercase()),
        &headers_a,
        &rows_a,
    )?;

    // ---- (b) LLC hit/miss breakdown per path ------------------------------
    println!("(b) LLC hit and miss change per path (CXL vs local)");
    let headers_b = [
        "app",
        "drd.hit Δ",
        "rfo.hit Δ",
        "hwpf.hit Δ",
        "drd.miss x",
        "rfo.miss x",
        "hwpf.miss x",
    ];
    let mut rows_b = Vec::new();
    for (app, r) in &runs {
        let g = |d: &SystemDelta, e| d.cha_sum(e) as f64;
        rows_b.push(vec![
            app.to_string(),
            pct_change(
                g(&r.c, ChaEvent::TorInsertsIaDrd(TorDrdScen::HitLlc)),
                g(&r.l, ChaEvent::TorInsertsIaDrd(TorDrdScen::HitLlc)),
            ),
            pct_change(
                g(&r.c, ChaEvent::TorInsertsIaRfo(TorRfoScen::HitLlc)),
                g(&r.l, ChaEvent::TorInsertsIaRfo(TorRfoScen::HitLlc)),
            ),
            pct_change(
                g(&r.c, ChaEvent::TorInsertsIaDrdPref(TorDrdScen::HitLlc)),
                g(&r.l, ChaEvent::TorInsertsIaDrdPref(TorDrdScen::HitLlc)),
            ),
            ratio(
                g(&r.c, ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc)),
                g(&r.l, ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc)),
            ),
            ratio(
                g(&r.c, ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLlc)),
                g(&r.l, ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLlc)),
            ),
            ratio(
                g(&r.c, ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLlc)),
                g(&r.l, ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLlc)),
            ),
        ]);
    }
    print_table(&headers_b, &rows_b);
    println!("paper SPR: hits -46.5/-41.3/-62.2%, misses 4.2x/4.0x/5.3x (DRd/RFO/HWPF)\n");
    write_csv(
        &format!("fig3b_{}.csv", cfg.name.to_lowercase()),
        &headers_b,
        &rows_b,
    )?;

    // ---- (c) where missed LLC requests are served ---------------------------
    println!("(c) LLC-miss destinations under CXL (DRd path, share of misses)");
    let headers_c = ["app", "local DDR", "peer/snoop", "remote", "CXL DRAM"];
    let mut rows_c = Vec::new();
    for (app, r) in &runs {
        let g = |e| r.c.cha_sum(e) as f64;
        let miss = g(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc)).max(1.0);
        let ddr = g(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLocalDdr));
        let local_all = g(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLocal));
        let snoop = (local_all - ddr).max(0.0);
        let remote = g(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissRemote));
        let cxl = g(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl));
        let pct = |v: f64| format!("{:.1}%", 100.0 * v / miss);
        rows_c.push(vec![
            app.to_string(),
            pct(ddr),
            pct(snoop),
            pct(remote),
            pct(cxl),
        ]);
    }
    print_table(&headers_c, &rows_c);
    println!("paper: under CXL most DRd misses head to the CXL DIMM, with a\nsnoop-served share; local runs serve >99% from local DDR\n");
    write_csv(
        &format!("fig3c_{}.csv", cfg.name.to_lowercase()),
        &headers_c,
        &rows_c,
    )?;

    // ---- (d)/(e) occupancies ------------------------------------------------
    println!("(d)/(e) TOR hit / miss occupancy per cycle (log-scale plot in the paper)");
    let headers_d = [
        "app",
        "hit occ local",
        "hit occ cxl",
        "miss occ local",
        "miss occ cxl",
    ];
    let mut rows_d = Vec::new();
    for (app, r) in &runs {
        let occ = |d: &SystemDelta, scen, cycles: u64| {
            d.cha_sum(ChaEvent::TorOccupancyIa(scen)) as f64 / cycles.max(1) as f64
        };
        rows_d.push(vec![
            app.to_string(),
            format!("{:.4}", occ(&r.l, IaScen::HitLlc, r.lc)),
            format!("{:.4}", occ(&r.c, IaScen::HitLlc, r.cc)),
            format!("{:.4}", occ(&r.l, IaScen::MissLlc, r.lc)),
            format!("{:.4}", occ(&r.c, IaScen::MissLlc, r.cc)),
        ]);
    }
    print_table(&headers_d, &rows_d);
    println!("paper SPR: hit occupancy down (-86%..-30%), miss occupancy up (1.1x-4.8x)\n");
    write_csv(
        &format!("fig3de_{}.csv", cfg.name.to_lowercase()),
        &headers_d,
        &rows_d,
    )?;

    // ---- (f) operation breakdown -------------------------------------------
    println!("(f) socket-level hits per path, CXL vs local");
    let headers_f = ["app", "drd Δ", "rfo Δ", "hwpf Δ", "wb Δ"];
    let mut rows_f = Vec::new();
    for (app, r) in &runs {
        let wb = |d: &SystemDelta| {
            pmu::WbScen::ALL
                .iter()
                .map(|&s| d.cha_sum(ChaEvent::TorInsertsIaWb(s)))
                .sum::<u64>() as f64
        };
        let g = |d: &SystemDelta, e| d.cha_sum(e) as f64;
        rows_f.push(vec![
            app.to_string(),
            pct_change(
                g(&r.c, ChaEvent::TorInsertsIaDrd(TorDrdScen::HitLlc)),
                g(&r.l, ChaEvent::TorInsertsIaDrd(TorDrdScen::HitLlc)),
            ),
            pct_change(
                g(&r.c, ChaEvent::TorInsertsIaRfo(TorRfoScen::HitLlc)),
                g(&r.l, ChaEvent::TorInsertsIaRfo(TorRfoScen::HitLlc)),
            ),
            pct_change(
                g(&r.c, ChaEvent::TorInsertsIaDrdPref(TorDrdScen::HitLlc)),
                g(&r.l, ChaEvent::TorInsertsIaDrdPref(TorDrdScen::HitLlc)),
            ),
            pct_change(wb(&r.c), wb(&r.l)),
        ]);
    }
    print_table(&headers_f, &rows_f);
    println!("paper SPR: hits down -55.4/-48.0/-59.4/-44.2% (DRd/RFO/HWPF/DWr)");
    write_csv(
        &format!("fig3f_{}.csv", cfg.name.to_lowercase()),
        &headers_f,
        &rows_f,
    )?;
    obs.finish()?;
    Ok(())
}
