//! Figure 4 (and Figure 16 with `--emr`): uncore PMU, local vs CXL.
//!
//! (a) IMC RPQ/WPQ channel occupancy — near zero under CXL traffic because
//!     the device-side MC queues instead of the host IMC;
//! (b) load/store command breakdown at the DIMM (IMC CAS vs M2PCIe BL/AK).
//!
//! `cargo run --release -p bench --bin fig4_uncore_pmu [--emr] [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{
    jobs_from_args, ops_from_args, platform_from_args, print_table, run_machine, write_csv, Pin,
};
use pmu::{CxlEvent, ImcEvent, M2pEvent, SystemDelta};
use simarch::MemPolicy;
use workloads::StreamGen;

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let cfg = platform_from_args();
    let ops = ops_from_args();
    println!(
        "Figure 4{} — uncore PMU, local vs CXL ({} ops per run)\n",
        if cfg.name == "EMR" {
            " [EMR variant = Figure 16]"
        } else {
            ""
        },
        ops
    );

    let run = |policy| -> (SystemDelta, u64) {
        run_machine(
            cfg.clone(),
            vec![Pin::trace(
                0,
                "stream-rw",
                Box::new(StreamGen::new(48 << 20, ops).write_ratio(0.3).work(0)),
                policy,
            )],
        )
    };
    let mut runs = map_scenarios(
        jobs_from_args(),
        &[MemPolicy::Local, MemPolicy::Cxl],
        |_, &p| run(p),
    );
    let (cxl, cc) = runs.pop().unwrap();
    let (local, lc) = runs.pop().unwrap();

    // ---- (a) RPQ / WPQ occupancy -------------------------------------------
    println!("(a) IMC pending-queue occupancy (entries per cycle, per channel avg)");
    let headers_a = [
        "case",
        "RPQ occ",
        "WPQ occ",
        "RPQ ne-cycles",
        "WPQ ne-cycles",
    ];
    let occ = |d: &SystemDelta, e, cycles: u64| d.imc_sum(e) as f64 / cycles.max(1) as f64;
    let rows_a = vec![
        vec![
            "local".into(),
            format!("{:.4}", occ(&local, ImcEvent::RpqOccupancy, lc)),
            format!("{:.4}", occ(&local, ImcEvent::WpqOccupancy, lc)),
            format!("{}", local.imc_sum(ImcEvent::RpqCyclesNe)),
            format!("{}", local.imc_sum(ImcEvent::WpqCyclesNe)),
        ],
        vec![
            "cxl".into(),
            format!("{:.4}", occ(&cxl, ImcEvent::RpqOccupancy, cc)),
            format!("{:.4}", occ(&cxl, ImcEvent::WpqOccupancy, cc)),
            format!("{}", cxl.imc_sum(ImcEvent::RpqCyclesNe)),
            format!("{}", cxl.imc_sum(ImcEvent::WpqCyclesNe)),
        ],
    ];
    print_table(&headers_a, &rows_a);
    println!("paper: little queueing inside the IMC for CXL streams — the CXL DIMM\nencloses device-side command queues, so the IMC can be ignored for\nCXL-only analysis\n");
    write_csv(
        &format!("fig4a_{}.csv", cfg.name.to_lowercase()),
        &headers_a,
        &rows_a,
    )?;

    // ---- (b) load/store breakdown -------------------------------------------
    println!("(b) DIMM load/store commands (local: IMC CAS; CXL: M2PCIe BL/AK)");
    let headers_b = ["case", "loads", "stores", "loads/Kcycle", "stores/Kcycle"];
    let l_rd = local.imc_sum(ImcEvent::CasCountRd);
    let l_wr = local.imc_sum(ImcEvent::CasCountWr);
    let c_rd = cxl.m2p_sum(M2pEvent::TxcInsertsBl);
    let c_wr = cxl.m2p_sum(M2pEvent::TxcInsertsAk);
    let rows_b = vec![
        vec![
            "local".into(),
            l_rd.to_string(),
            l_wr.to_string(),
            format!("{:.2}", 1e3 * l_rd as f64 / lc as f64),
            format!("{:.2}", 1e3 * l_wr as f64 / lc as f64),
        ],
        vec![
            "cxl".into(),
            c_rd.to_string(),
            c_wr.to_string(),
            format!("{:.2}", 1e3 * c_rd as f64 / cc as f64),
            format!("{:.2}", 1e3 * c_wr as f64 / cc as f64),
        ],
    ];
    print_table(&headers_b, &rows_b);
    let rate_drop = 100.0
        * (1.0
            - ((c_rd + c_wr) as f64 / cc as f64) / (((l_rd + l_wr) as f64) / lc as f64).max(1e-12));
    println!(
        "per-cycle command rate under CXL is {:.1}% lower (paper: 36.7%) —\n\
         totals are roughly equal, the slow link stretches them over time",
        rate_drop
    );
    // Consistency: every CXL command seen by the device.
    assert_eq!(cxl.cxl_sum(CxlEvent::DevMcRdCas), c_rd);
    assert_eq!(cxl.cxl_sum(CxlEvent::DevMcWrCas), c_wr);
    write_csv(
        &format!("fig4b_{}.csv", cfg.name.to_lowercase()),
        &headers_b,
        &rows_b,
    )?;
    obs.finish()?;
    Ok(())
}
