//! Figure 13 (faults) — fault injection diagnosed end-to-end (paper §6).
//!
//! A healthy run of an interleaved STREAM workload records the anomaly
//! baseline; six fault scenarios then rerun the same workload under a
//! deterministic `FaultPlan` (one window each: FlexBus link degradation,
//! device-MC throttling, poisoned-line completions, CHA and IMC queue
//! stalls, and a PMU counter dropout). `AnomalyDetector` must name the
//! injected stage and class from the counters alone; the table shows the
//! injected ground truth next to the diagnosis and the timing impact.
//!
//! `cargo run --release -p bench --bin fig13_faults [--emr] [--ops N]
//!  [--jobs N] [--timings-json <path>]`

use bench::scenario::map_scenarios;
use bench::{
    jobs_from_args, obs_session, ops_from_args, platform_from_args, print_table, run_machine,
    run_machine_with_faults, write_csv, Pin,
};
use pathfinder::{AnomalyDetector, HealthyBaseline};
use simarch::{FaultClass, FaultPlan, FaultWindow, MemPolicy, StageId};

struct Scenario {
    name: &'static str,
    class: FaultClass,
    stage: StageId,
    severity: u64,
}

/// One core, half local DRAM / half CXL — every diagnosable stage sees
/// traffic, so both the CXL-side and uncore-side fault classes are
/// observable against one baseline.
fn pins(ops: u64) -> Vec<Pin> {
    vec![Pin::app(
        0,
        "STREAM",
        ops,
        MemPolicy::Interleave { cxl_fraction: 0.5 },
        7,
    )
    .expect("registry app")]
}

fn main() -> std::io::Result<()> {
    let obs = obs_session();
    let cfg = platform_from_args();
    let ops = ops_from_args();
    let jobs = jobs_from_args();
    println!("Figure 13 (faults) — injected CXL.mem anomalies, diagnosed from counters ({ops} ops per run)\n");

    let (healthy_delta, healthy_cycles) = run_machine(cfg.clone(), pins(ops));
    let detector = AnomalyDetector::new(HealthyBaseline::from_delta(&healthy_delta));

    // A stall of half an epoch dominates the epoch's mean residency.
    let stall = cfg.epoch_cycles / 2;
    let scenarios = [
        Scenario {
            name: "link_degrade",
            class: FaultClass::LinkDegrade,
            stage: StageId::cxl(0),
            severity: 12,
        },
        Scenario {
            name: "dev_throttle",
            class: FaultClass::DevThrottle,
            stage: StageId::cxl(0),
            severity: 12,
        },
        Scenario {
            name: "poisoned_line",
            class: FaultClass::PoisonedLine,
            stage: StageId::cxl(0),
            severity: 2,
        },
        Scenario {
            name: "cha_stall",
            class: FaultClass::QueueStall,
            stage: StageId::cha(),
            severity: stall,
        },
        Scenario {
            name: "imc_stall",
            class: FaultClass::QueueStall,
            stage: StageId::imc(),
            severity: stall,
        },
        Scenario {
            name: "pmu_dropout",
            class: FaultClass::PmuDropout,
            stage: StageId::imc(),
            severity: 0,
        },
    ];

    let results = map_scenarios(jobs, &scenarios, |_, s| {
        let plan = FaultPlan::new()
            .with(FaultWindow {
                class: s.class,
                stage: s.stage,
                start_epoch: 0,
                end_epoch: u64::MAX,
                severity: s.severity,
            })
            .expect("fig13 scenario windows are static and valid");
        run_machine_with_faults(cfg.clone(), pins(ops), plan)
    });

    let headers = [
        "scenario",
        "injected",
        "stage",
        "diagnosed",
        "named stage",
        "verdict",
        "cycles",
        "slowdown",
    ];
    let healthy_ok = detector.diagnose(&healthy_delta).is_none();
    let mut rows = vec![vec![
        "healthy".to_string(),
        "-".into(),
        "-".into(),
        "none".into(),
        "-".into(),
        if healthy_ok { "ok" } else { "FALSE-ALARM" }.into(),
        healthy_cycles.to_string(),
        "1.00x".into(),
    ]];
    for (s, (delta, cycles)) in scenarios.iter().zip(&results) {
        let diag = detector.diagnose(delta);
        let (named_class, named_stage) = diag
            .as_ref()
            .map(|a| (a.class.label().to_string(), a.stage.clone()))
            .unwrap_or(("none".into(), "-".into()));
        let want_stage = format!("{}", s.stage);
        let ok = diag
            .as_ref()
            .map(|a| a.class == s.class && a.stage == want_stage)
            .unwrap_or(false);
        rows.push(vec![
            s.name.to_string(),
            s.class.label().to_string(),
            want_stage,
            named_class,
            named_stage,
            if ok { "ok" } else { "MISS" }.to_string(),
            cycles.to_string(),
            format!("{:.2}x", *cycles as f64 / healthy_cycles as f64),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\n'ok' = diagnosed (stage, class) matches the injected ground truth;\n\
         the dropout scenario leaves timing untouched (slowdown 1.00x) and is\n\
         caught purely from the frozen clockticks bank"
    );
    write_csv("fig13_faults.csv", &headers, &rows)?;
    obs.finish()?;
    Ok(())
}
