//! Figure 6 (Case 2, §5.3): PFEstimator's CXL-induced stall breakdown across
//! SB, L1D, LFB, L2, LLC, CHA, FlexBus+MC, CXL DIMM per path.
//!
//! Paper examples: fft DRd is uncore-heavy (42.7% FlexBus+MC + 40.3% DIMM);
//! raytrace peaks at FlexBus+MC with 67.1%; the HWPF stall at FlexBus+MC
//! correlates with DRd stalls at L1D/L2 (prefetcher effectiveness).
//!
//! `cargo run --release -p bench --bin fig6_stall_breakdown [--ops N] [--jobs N]`

use bench::scenario::map_scenarios;
use bench::{jobs_from_args, ops_from_args, print_table, run_profiled, write_csv, Pin};
use pathfinder::model::{Component, PathGroup};
use simarch::{MachineConfig, MemPolicy};

const APPS: [&str; 6] = ["fft", "raytrace", "barnes", "freqmine", "BFS", "radix"];

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!(
        "Figure 6 — CXL-induced stall breakdown per path ({} ops per run)\n",
        ops
    );

    let mut headers = vec!["app", "path"];
    headers.extend(Component::ALL.iter().map(|c| c.label()));
    let mut rows = Vec::new();

    // One independent machine per app: fan the grid out, render in app order.
    let reports = map_scenarios(jobs_from_args(), &APPS, |_, &app| {
        run_profiled(
            MachineConfig::spr(),
            vec![Pin::app(0, app, ops, MemPolicy::Cxl, 5).expect("registry app")],
        )
        .0
    });
    for (app, report) in APPS.iter().zip(&reports) {
        for path in PathGroup::ALL {
            if report.stalls.path_total(path) <= 0.0 {
                continue;
            }
            let pct = report.stalls.percentages(path);
            let mut row = vec![app.to_string(), path.label().to_string()];
            row.extend(
                Component::ALL
                    .iter()
                    .map(|c| format!("{:.1}%", pct[c.idx()])),
            );
            rows.push(row);
        }
    }
    print_table(&headers, &rows);
    println!(
        "\npaper shape: stall mass concentrates at FlexBus+MC and the CXL DIMM;\n\
         the in-core share shrinks from LLC toward L1D (locality filters it);\n\
         DWr paths put their residual SB share on top"
    );
    write_csv("fig6_stall_breakdown.csv", &headers, &rows)?;
    obs.finish()?;
    Ok(())
}
