//! Figure 13 (Case 7, §5.8): understanding TPP with PathFinder, plus the
//! dynamic TPP+Colloid extension.
//!
//! For YCSB-C, GUPS and 649.fotonik3d_s with mostly-CXL placement, compare
//! TPP off vs on: (a) local/CXL hit events from PFBuilder and the M2PCIe
//! load/store counters; (b) CHA / FlexBus+MC latency from PFEstimator.
//! Paper: GUPS local DRd/RFO/HWPF hits rise 7.4x/1.7x/3.3x, CXL hits fall
//! 87-93%, M2PCIe loads/stores fall ~84.5%, GUPS throughput 3.0x; the
//! dynamic Colloid variant adds ~1.1x on GUPS.
//!
//! `cargo run --release -p bench --bin fig13_tpp [--ops N]`

use bench::{ops_from_args, pct_change, print_table, ratio, write_csv};
use pathfinder::estimator::{any_requests, cxl_requests, PfEstimator, Tier};
use pathfinder::model::{HitLevel, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
#[allow(unused_imports)]
use pmu::ChaEvent as _ChaEventForDocs;
use pmu::M2pEvent;
use simarch::{Machine, MachineConfig, MemPolicy, Workload};
use tiering::{ClassLatencies, ColloidTpp, Migration, Tpp, TppConfig};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Tpp,
    Dynamic,
}

struct Outcome {
    cycles: u64,
    local_hits: [u64; 3], // DRd, RFO, HWPF
    cxl_hits: [u64; 3],
    m2p_loads: u64,
    m2p_stores: u64,
    cha_lat: f64,
    flex_lat: f64,
}

fn build_app(app: &str, ops: u64) -> Workload {
    let (trace, policy): (Box<dyn simarch::TraceSource>, MemPolicy) = match app {
        "GUPS" => (
            Box::new(workloads::Gups::new(48 << 20, ops, 7).hot_set(0.33, 0.9)),
            MemPolicy::Interleave { cxl_fraction: 0.8 },
        ),
        // Paper: YCSB-C 4:1 local/CXL; fotonik 2:1.
        "YCSB-C" => (
            workloads::build("YCSB-C", ops, 7).unwrap(),
            MemPolicy::Interleave { cxl_fraction: 0.2 },
        ),
        _ => (
            workloads::build(app, ops, 7).unwrap(),
            MemPolicy::Interleave { cxl_fraction: 0.33 },
        ),
    };
    Workload::new(app, trace, policy)
}

fn class_latencies(delta: &pmu::SystemDelta) -> ClassLatencies {
    let w = PfEstimator::class_miss_weights(delta);
    let lat = |p, t, d| PfEstimator::tor_latency(delta, p, t).unwrap_or(d);
    ClassLatencies {
        drd: (
            lat(PathGroup::Drd, Tier::Local, 200.0),
            lat(PathGroup::Drd, Tier::Cxl, 700.0),
        ),
        rfo: (
            lat(PathGroup::Rfo, Tier::Local, 220.0),
            lat(PathGroup::Rfo, Tier::Cxl, 750.0),
        ),
        hwpf: (
            lat(PathGroup::HwPf, Tier::Local, 200.0),
            lat(PathGroup::HwPf, Tier::Cxl, 700.0),
        ),
        drd_weight: w[0],
        rfo_weight: w[1],
        hwpf_weight: w[2],
    }
}

fn run(app: &str, ops: u64, mode: Mode) -> Outcome {
    let mut machine = Machine::new(MachineConfig::spr());
    machine.attach(0, build_app(app, ops));
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let mut tpp = Tpp::new(TppConfig {
        promote_threshold: 2.0,
        ..Default::default()
    });
    let mut colloid = ColloidTpp::new(
        TppConfig {
            promote_threshold: 2.0,
            ..Default::default()
        },
        true,
    );
    // Per-epoch (occupancy, inserts) samples; the latency comparison uses
    // the final quarter of the run — steady state, after TPP's migration
    // burst (whose page-copy traffic would otherwise pollute the means).
    let mut cha_samples: Vec<(u64, u64)> = Vec::new();
    let mut flex_samples: Vec<(u64, u64)> = Vec::new();
    let mut promotions = 0u64;
    let mut demotions = 0u64;
    loop {
        let e = profiler.profile_epoch();
        cha_samples.push((
            e.delta
                .cha_sum(pmu::ChaEvent::TorOccupancyIaDrd(pmu::TorDrdScen::MissCxl)),
            e.delta
                .cha_sum(pmu::ChaEvent::TorInsertsIaDrd(pmu::TorDrdScen::MissCxl)),
        ));
        // Device-side per-read residency (queue + media) — robust against
        // the per-insert distortion migration bursts cause at the M2PCIe.
        flex_samples.push((
            e.delta.cxl_sum(pmu::CxlEvent::DevMcRpqOccupancy),
            e.delta.cxl_sum(pmu::CxlEvent::DevMcRdCas),
        ));
        let migs: Vec<Migration> = match mode {
            Mode::Off => Vec::new(),
            Mode::Tpp => {
                let m = profiler.machine();
                tpp.epoch(&e.page_heat, &|a, v| m.page_node(a as usize, v))
            }
            Mode::Dynamic => {
                let lat = class_latencies(&e.delta);
                let share = cxl_requests(&e.delta, PathGroup::Drd) as f64
                    / any_requests(&e.delta, PathGroup::Drd).max(1) as f64;
                let m = profiler.machine();
                colloid.epoch(
                    &e.page_heat,
                    &|a, v| m.page_node(a as usize, v),
                    &lat,
                    share,
                )
            }
        };
        let m = profiler.machine_mut();
        for mig in migs {
            if m.migrate_page(mig.asid as usize, mig.vpage, mig.to) {
                if mig.to.is_cxl() {
                    demotions += 1;
                } else {
                    promotions += 1;
                }
            }
        }
        if e.all_done {
            break;
        }
    }
    let report = profiler.report();
    let paths = [PathGroup::Drd, PathGroup::Rfo, PathGroup::HwPf];
    let grab = |level: HitLevel| {
        let mut out = [0u64; 3];
        for (i, p) in paths.iter().enumerate() {
            out[i] = report.path_map.total.get(level, *p);
        }
        out
    };
    // Whole-run m2p counters from the machine's live PMU, with the page-copy
    // traffic of migrations (64 lines each) subtracted so the numbers
    // reflect steady-state application traffic like the paper's.
    let m2p_loads: u64 = profiler
        .machine()
        .pmu
        .m2ps
        .iter()
        .map(|b| b.read(M2pEvent::TxcInsertsBl))
        .sum::<u64>()
        .saturating_sub(promotions * 64);
    let m2p_stores: u64 = profiler
        .machine()
        .pmu
        .m2ps
        .iter()
        .map(|b| b.read(M2pEvent::TxcInsertsAk))
        .sum::<u64>()
        .saturating_sub(demotions * 64);
    // Insert-weighted means over the steady-state tail.
    let tail_mean = |samples: &[(u64, u64)]| -> f64 {
        let start = samples.len() * 3 / 4;
        let (occ, ins) = samples[start..]
            .iter()
            .fold((0u64, 0u64), |(o, i), &(a, b)| (o + a, i + b));
        occ as f64 / ins.max(1) as f64
    };
    Outcome {
        cycles: report.cycles,
        local_hits: grab(HitLevel::LocalDram),
        cxl_hits: grab(HitLevel::CxlMemory),
        m2p_loads,
        m2p_stores,
        cha_lat: tail_mean(&cha_samples),
        flex_lat: tail_mean(&flex_samples),
    }
}

fn main() -> std::io::Result<()> {
    let obs = bench::obs_session();
    let ops = ops_from_args();
    println!("Figure 13 — TPP off vs on, traced by PathFinder ({ops} ops per run)\n");

    let headers = [
        "app",
        "speedup",
        "local DRd x",
        "local RFO x",
        "local HWPF x",
        "cxl DRd Δ",
        "cxl HWPF Δ",
        "m2p loads Δ",
        "m2p stores Δ",
        "CHA lat Δ",
        "FlexBus lat Δ",
    ];
    let mut rows = Vec::new();
    for app in ["YCSB-C", "GUPS", "649.fotonik3d_s"] {
        let off = run(app, ops, Mode::Off);
        let on = run(app, ops, Mode::Tpp);
        rows.push(vec![
            app.to_string(),
            format!("{:.2}x", off.cycles as f64 / on.cycles as f64),
            ratio(on.local_hits[0] as f64, off.local_hits[0] as f64),
            ratio(on.local_hits[1] as f64, off.local_hits[1] as f64),
            ratio(on.local_hits[2] as f64, off.local_hits[2] as f64),
            pct_change(on.cxl_hits[0] as f64, off.cxl_hits[0] as f64),
            pct_change(on.cxl_hits[2] as f64, off.cxl_hits[2] as f64),
            pct_change(on.m2p_loads as f64, off.m2p_loads as f64),
            pct_change(on.m2p_stores as f64, off.m2p_stores as f64),
            pct_change(on.cha_lat, off.cha_lat),
            pct_change(on.flex_lat, off.flex_lat),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\npaper (GUPS): 7.4x/1.7x/3.3x local DRd/RFO/HWPF, CXL hits -87..-93%,\n\
         M2PCIe loads/stores -84.6/-84.4%, throughput 3.0x"
    );

    // Dynamic TPP+Colloid extension on GUPS.
    let off = run("GUPS", ops, Mode::Off);
    let tpp = run("GUPS", ops, Mode::Tpp);
    let dyn_c = run("GUPS", ops, Mode::Dynamic);
    println!("\nDynamic TPP+Colloid on GUPS:");
    let headers2 = ["mode", "cycles", "speedup vs off", "vs plain TPP"];
    let rows2 = vec![
        vec![
            "off".into(),
            off.cycles.to_string(),
            "1.00x".into(),
            "-".into(),
        ],
        vec![
            "TPP".into(),
            tpp.cycles.to_string(),
            format!("{:.2}x", off.cycles as f64 / tpp.cycles as f64),
            "1.00x".into(),
        ],
        vec![
            "TPP+Colloid(dyn)".into(),
            dyn_c.cycles.to_string(),
            format!("{:.2}x", off.cycles as f64 / dyn_c.cycles as f64),
            format!("{:.2}x", tpp.cycles as f64 / dyn_c.cycles as f64),
        ],
    ];
    print_table(&headers2, &rows2);
    println!("paper: the dynamic variant improves GUPS by ~1.1x over TPP+Colloid");
    write_csv("fig13_tpp.csv", &headers, &rows)?;
    write_csv("fig13_colloid.csv", &headers2, &rows2)?;
    obs.finish()?;
    Ok(())
}
