//! Figure 14 (fabric) — multi-host CXL.mem pooling diagnosed end-to-end.
//!
//! Two hosts share a CXL switch and a pooled Type-3 device (DESIGN.md
//! §2.2). A healthy round-robin run records the fabric baseline; the
//! scenarios then stress the sharing pathologies the paper's single-host
//! profiler cannot even express: a noisy neighbor whose flood reaches the
//! victim through head-of-line blocking at a FIFO switch, the same
//! tenancy isolated by round-robin arbitration (the flood queues behind
//! itself), an unequal weighted bandwidth partition, and the two
//! cross-tenant fault classes (FAULTS.md: `shared_link_degrade`,
//! `switch_port_stall`). `FabricDetector` must name the faulted stage and
//! the culprit/victim hosts from the fabric counters alone.
//!
//! `cargo run --release -p bench --bin fig14_fabric [--emr] [--ops N]
//!  [--jobs N] [--timings-json <path>]`

use bench::scenario::map_scenarios;
use bench::{
    jobs_from_args, obs_session, ops_from_args_or, platform_from_args, print_table, run_fabric,
    write_csv, HostPin, Pin,
};
use pathfinder::{FabricBaseline, FabricDetector, FabricDiagnosis, FabricMetrics};
use simarch::switch::Arbitration;
use simarch::{FabricConfig, FaultClass, FaultPlan, FaultWindow, MachineConfig, StageId};

const HOSTS: usize = 2;

/// Smaller per-run budget than the single-host figures: every scenario
/// runs two machines plus the fabric replay.
const FABRIC_OPS: u64 = 60_000;

struct Scenario {
    name: &'static str,
    arb: Arbitration,
    /// Cores pinned per host — demand *rate*, not duration: a noisy
    /// tenant floods the pool by running more cores, not longer.
    load: [usize; HOSTS],
    /// Fabric-level fault window: `(class, upstream port, severity)`.
    fault: Option<(FaultClass, usize, u64)>,
}

/// The shared downlink is dimensioned as the fabric's only bottleneck:
/// slower than a private FlexBus hop (a pooled x4 stack shared by two
/// tenants) yet still faster than the pooled MC behind it, so arrival
/// pacing through the switch can never oversubscribe the pool and every
/// pathology shows up where the arbitration lives. A one-core CXL-bound
/// host issues every ~30 cycles; the healthy two-tenant mix (~15-cycle
/// spacing) stays under capacity, while a multi-core flood (~10-cycle
/// combined spacing) queues at the switch — the regime this figure
/// studies.
fn fabric_cfg(cfg: &MachineConfig, arb: Arbitration) -> FabricConfig {
    FabricConfig {
        arbitration: arb,
        link_gap: cfg.flexbus_gap + 4,
        ..FabricConfig::balanced(HOSTS, cfg)
    }
}

/// Every host pins a CXL-only STREAM sweep on `load[host]` cores.
fn pins(ops: u64, load: [usize; HOSTS]) -> Vec<HostPin> {
    let mut v = Vec::new();
    for (host, cores) in load.into_iter().enumerate() {
        for core in 0..cores {
            let seed = 7 + (host * 4 + core) as u64;
            v.push((
                host,
                Pin::app(core, "STREAM", ops, simarch::MemPolicy::Cxl, seed).expect("registry app"),
            ));
        }
    }
    v
}

fn fmt_host(h: Option<usize>) -> String {
    h.map(|h| format!("host{h}")).unwrap_or_else(|| "-".into())
}

fn fmt_victims(v: &[usize]) -> String {
    if v.is_empty() {
        "-".into()
    } else {
        v.iter()
            .map(|h| format!("host{h}"))
            .collect::<Vec<_>>()
            .join("+")
    }
}

fn main() -> std::io::Result<()> {
    let obs = obs_session();
    let cfg = platform_from_args();
    let ops = ops_from_args_or(FABRIC_OPS);
    let jobs = jobs_from_args();
    println!(
        "Figure 14 (fabric) — {HOSTS} hosts on a pooled Type-3 device, \
         cross-tenant pathologies diagnosed from counters ({ops} ops per host unit)\n"
    );

    let stall = cfg.epoch_cycles / 4;
    let scenarios = [
        Scenario {
            name: "healthy",
            arb: Arbitration::RoundRobin,
            load: [1, 1],
            fault: None,
        },
        Scenario {
            name: "noisy_neighbor",
            arb: Arbitration::Fifo,
            load: [4, 1],
            fault: None,
        },
        Scenario {
            name: "rr_isolation",
            arb: Arbitration::RoundRobin,
            load: [4, 1],
            fault: None,
        },
        Scenario {
            name: "bw_partition",
            arb: Arbitration::Weighted(vec![3, 1]),
            load: [2, 2],
            fault: None,
        },
        Scenario {
            name: "shared_link_fault",
            arb: Arbitration::RoundRobin,
            load: [1, 1],
            fault: Some((FaultClass::SharedLinkDegrade, 0, 3)),
        },
        Scenario {
            name: "port_stall",
            arb: Arbitration::RoundRobin,
            load: [1, 1],
            fault: Some((FaultClass::SwitchPortStall, 1, stall)),
        },
    ];

    let results = map_scenarios(jobs, &scenarios, |_, s| {
        let plan = match s.fault {
            None => FaultPlan::new(),
            Some((class, port, severity)) => FaultPlan::new()
                .with(FaultWindow {
                    class,
                    stage: StageId::switch_port(port),
                    start_epoch: 0,
                    end_epoch: u64::MAX,
                    severity,
                })
                .expect("fig14 scenario windows are static and valid"),
        };
        run_fabric(
            cfg.clone(),
            fabric_cfg(&cfg, s.arb.clone()),
            pins(ops, s.load),
            plan,
        )
    });

    let (healthy_delta, healthy_cycles) = &results[0];
    let detector = FabricDetector::new(FabricBaseline::from_delta(healthy_delta));
    let metrics: Vec<FabricMetrics> = results
        .iter()
        .map(|(d, _)| FabricMetrics::from_delta(d))
        .collect();

    let headers = [
        "scenario",
        "diagnosed",
        "stage",
        "culprit",
        "victims",
        "h0 wait",
        "h1 wait",
        "h0 share",
        "h1 hol%",
        "verdict",
        "slowdown",
    ];
    let mut rows = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        let (delta, cycles) = &results[i];
        let m = &metrics[i];
        let diag = detector.diagnose(delta);
        let (named, stage, culprit, victims) = diag
            .as_ref()
            .map(|a| {
                (
                    a.kind.label().to_string(),
                    a.stage.clone(),
                    fmt_host(a.culprit),
                    fmt_victims(&a.victims),
                )
            })
            .unwrap_or(("none".into(), "-".into(), "-".into(), "-".into()));
        let ok = match s.name {
            // The baseline run must not alarm against itself.
            "healthy" => diag.is_none(),
            // The flooding tenant is named culprit, the other host the
            // victim its flood HOL-blocks at the FIFO switch.
            "noisy_neighbor" => diag.as_ref().is_some_and(|a| {
                a.kind == FabricDiagnosis::NoisyNeighbor && a.culprit == Some(0) && a.victims == [1]
            }),
            // Same tenancy under round-robin: the victim is shielded —
            // never named a victim, its HOL-blocked share collapses, and
            // the flood pays for its own backlog.
            "rr_isolation" => {
                diag.as_ref().is_none_or(|a| !a.victims.contains(&1))
                    && m.hol[1] < metrics[1].hol[1]
                    && m.port_wait[1] + m.pool_wait[1]
                        < metrics[1].port_wait[1] + metrics[1].pool_wait[1]
            }
            // Host 1 holds 1/4 of the arbitration credits: with equal
            // demand it pays strictly more fabric wait than host 0.
            "bw_partition" => m.port_wait[1] > m.port_wait[0],
            // A uniform elevation with the mix unchanged names the shared
            // link, both hosts victims, nobody culprit.
            "shared_link_fault" => diag.as_ref().is_some_and(|a| {
                a.kind == FabricDiagnosis::SharedLinkDegrade && a.stage == "cxlsw0"
            }),
            // An isolated elevation names the stalled port's tenant.
            "port_stall" => diag
                .as_ref()
                .is_some_and(|a| a.kind == FabricDiagnosis::SwitchPortStall && a.stage == "cxlsw1"),
            _ => unreachable!("unknown scenario"),
        };
        rows.push(vec![
            s.name.to_string(),
            named,
            stage,
            culprit,
            victims,
            format!("{:.1}", m.port_wait[0] + m.pool_wait[0]),
            format!("{:.1}", m.port_wait[1] + m.pool_wait[1]),
            format!("{:.2}", m.pool_share[0]),
            format!("{:.2}", 100.0 * m.hol[1]),
            if ok { "ok" } else { "MISS" }.to_string(),
            format!("{:.2}x", *cycles as f64 / *healthy_cycles as f64),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\n'ok' = the diagnosis names the expected pathology, stage and\n\
         culprit/victim hosts from the fabric counters alone; wait columns\n\
         are switch+pool cycles per request, 'h0 share' the pooled-CAS\n\
         bandwidth fraction, 'h1 hol%' the victim's HOL-blocked share of\n\
         the run. noisy_neighbor vs rr_isolation is the same 4-vs-1-core\n\
         tenancy: FIFO lets the flood HOL-block the victim, round-robin\n\
         makes the flood queue behind itself"
    );
    write_csv("fig14_fabric.csv", &headers, &rows)?;
    obs.finish()?;
    Ok(())
}
