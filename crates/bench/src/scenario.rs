//! Deterministic fan-out of independent simulation scenarios.
//!
//! Every figure binary sweeps a grid of independent `Machine` runs (apps ×
//! policies × configs). [`map_scenarios`] spreads that grid across
//! `std::thread::scope` workers: each worker claims grid indices from a
//! shared atomic cursor, runs the scenario closure, and tags the result
//! with its index. The merged output is ordered by index — byte-identical
//! to the serial loop no matter how many workers ran or how the OS
//! scheduled them. Each `Machine` is private to one closure call, so no
//! simulation state is shared; determinism needs only the index-ordered
//! merge (asserted by `tests/parallel_determinism.rs`).
//!
//! Callers must keep *printing* out of the closure: run the grid first,
//! then render tables/CSV from the merged vector.

/// Number of worker threads for [`map_scenarios`]; `Serial` is the default
/// and keeps figure binaries' stdout identical to the historical loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Jobs {
    /// Run on the calling thread, no scope, no spawn.
    Serial,
    /// Fan out across `n` scoped workers (clamped to ≥ 1).
    Workers(usize),
}

impl Jobs {
    /// Parse `--jobs N` from argv (absent or `--jobs 1` → `Serial`).
    pub fn from_args() -> Jobs {
        let args: Vec<String> = std::env::args().collect();
        match args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(n) if n > 1 => Jobs::Workers(n),
            _ => Jobs::Serial,
        }
    }

    /// Worker count (1 for `Serial`).
    pub fn count(self) -> usize {
        match self {
            Jobs::Serial => 1,
            Jobs::Workers(n) => n.max(1),
        }
    }
}

/// Run `f` over every item of `items`, fanning across `jobs` workers, and
/// return the results in item order.
///
/// The closure receives `(index, &item)` and must be self-contained: it
/// owns its `Machine`s and returns a value, it does not print. Per-machine
/// seeds belong in the items themselves so a scenario's work is a pure
/// function of its grid cell, never of which worker ran it.
pub fn map_scenarios<I, T, F>(jobs: Jobs, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if matches!(jobs, Jobs::Serial) || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let _t = obs::span!("scenario.task");
                f(i, item)
            })
            .collect();
    }
    let workers = jobs.count().min(items.len());
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _w = obs::span!("scenario.worker");
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let _t = obs::span!("scenario.task");
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            // A worker panic (from the scenario closure) is re-raised on
            // the caller's thread rather than unwrapped into a second,
            // less informative panic here.
            match h.join() {
                Ok(mine) => tagged.extend(mine),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Index-ordered merge: the claim order above is racy, the output is not.
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert!(
        tagged.iter().enumerate().all(|(k, (i, _))| k == *i),
        "every scenario index must appear exactly once"
    );
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_and_preserve_order() {
        let items: Vec<u64> = (0..57).collect();
        let square = |i: usize, x: &u64| (i as u64, x * x);
        let serial = map_scenarios(Jobs::Serial, &items, square);
        for jobs in [2, 4, 8] {
            let par = map_scenarios(Jobs::Workers(jobs), &items, square);
            assert_eq!(par, serial, "jobs={jobs} must merge in item order");
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [10u64, 20];
        let out = map_scenarios(Jobs::Workers(16), &items, |_, x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn empty_grid_returns_empty() {
        let items: [u64; 0] = [];
        let out = map_scenarios(Jobs::Workers(4), &items, |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_one_is_serial() {
        assert_eq!(Jobs::Serial.count(), 1);
        assert_eq!(Jobs::Workers(0).count(), 1);
        assert_eq!(Jobs::Workers(6).count(), 6);
    }
}
