//! Byte-identity gate for the figure pipeline: the refactored columnar
//! store (and every hot-loop cleanup that rode along) must reproduce the
//! exact CSV bytes the row-oriented seed produced. The goldens under
//! `tests/golden/` were captured *before* the PR 5 refactor landed, at
//! reduced `--ops` so a debug binary finishes in seconds; debug and
//! release builds were verified to emit identical bytes.
//!
//! `BENCH_OUT_DIR` points each run at a scratch directory so the committed
//! `out/` goldens (the full-size ones `scripts/refresh_goldens.sh` checks)
//! are never touched.

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("golden_identity_{tag}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_figure(bin: &str, ops: &str, out_dir: &Path) {
    run_figure_args(bin, &["--ops", ops], out_dir);
}

fn run_figure_args(bin: &str, args: &[&str], out_dir: &Path) {
    let status = Command::new(bin)
        .args(args)
        .env("BENCH_OUT_DIR", out_dir)
        .status()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(status.success(), "{bin} exited with {status}");
}

fn assert_bytes_identical(out_dir: &Path, csv: &str) {
    let got = std::fs::read(out_dir.join(csv)).unwrap_or_else(|e| panic!("read fresh {csv}: {e}"));
    let want =
        std::fs::read(golden_dir().join(csv)).unwrap_or_else(|e| panic!("read golden {csv}: {e}"));
    assert!(
        got == want,
        "{csv} diverged from its pre-refactor golden:\n--- golden ---\n{}\n--- fresh ---\n{}",
        String::from_utf8_lossy(&want),
        String::from_utf8_lossy(&got),
    );
}

#[test]
fn fig6_stall_breakdown_bytes_are_identical() {
    let out = scratch_dir("fig6");
    run_figure(env!("CARGO_BIN_EXE_fig6_stall_breakdown"), "60000", &out);
    assert_bytes_identical(&out, "fig6_stall_breakdown.csv");
}

#[test]
fn fig13_faults_bytes_are_identical() {
    let out = scratch_dir("fig13");
    run_figure(env!("CARGO_BIN_EXE_fig13_faults"), "250000", &out);
    assert_bytes_identical(&out, "fig13_faults.csv");
}

/// The fabric path schedules two machines plus the switch/pool replay
/// through the same scheduler as the single-host figures; its golden was
/// captured before the event-wheel rewrite, so this pins the multi-host
/// composition end to end.
#[test]
fn fig14_fabric_bytes_are_identical() {
    let out = scratch_dir("fig14");
    run_figure(env!("CARGO_BIN_EXE_fig14_fabric"), "60000", &out);
    assert_bytes_identical(&out, "fig14_fabric.csv");
}

/// The datapath axis of the same goldens: `--datapath reference` swaps the
/// staged batch pipeline for the retained per-op walk on every machine the
/// harness builds. The goldens predate the batch rewrite, so each figure
/// passing under *both* datapaths is an end-to-end byte-identity proof —
/// the in-process 2×2 sweep lives in simarch/tests/datapath_equivalence.rs,
/// this pins the full figure pipeline (scenario grid, CSV writer included).
#[test]
fn fig6_stall_breakdown_reference_datapath_bytes_are_identical() {
    let out = scratch_dir("fig6_refdp");
    run_figure_args(
        env!("CARGO_BIN_EXE_fig6_stall_breakdown"),
        &["--ops", "60000", "--datapath", "reference"],
        &out,
    );
    assert_bytes_identical(&out, "fig6_stall_breakdown.csv");
}

#[test]
fn fig13_faults_reference_datapath_bytes_are_identical() {
    let out = scratch_dir("fig13_refdp");
    run_figure_args(
        env!("CARGO_BIN_EXE_fig13_faults"),
        &["--ops", "250000", "--datapath", "reference"],
        &out,
    );
    assert_bytes_identical(&out, "fig13_faults.csv");
}

#[test]
fn fig14_fabric_reference_datapath_bytes_are_identical() {
    let out = scratch_dir("fig14_refdp");
    run_figure_args(
        env!("CARGO_BIN_EXE_fig14_fabric"),
        &["--ops", "60000", "--datapath", "reference"],
        &out,
    );
    assert_bytes_identical(&out, "fig14_fabric.csv");
}
