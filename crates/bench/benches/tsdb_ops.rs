//! Criterion: materializer/time-series-database operator costs — insertion,
//! tag-filtered queries, Holt-Winters fitting, clustering, correlation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsdb::{ops, tsa, Db, Point};

fn filled_db(n: usize) -> Db {
    let mut db = Db::new();
    for t in 0..n as u64 {
        db.insert(
            Point::new("path_set", t)
                .tag("core", (t % 4).to_string())
                .tag("dst", if t % 3 == 0 { "LLC" } else { "CXL Memory" })
                .field("hits", (t % 1000) as f64),
        );
    }
    db
}

fn insert_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tsdb_insert");
    for n in [1_000usize, 10_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| filled_db(n))
        });
    }
    g.finish();
}

fn query_bench(c: &mut Criterion) {
    let db = filled_db(10_000);
    c.bench_function("tsdb_filtered_values", |b| {
        b.iter(|| {
            db.from("path_set")
                .filter("core", "2")
                .filter("dst", "LLC")
                .values("hits")
        })
    });
    c.bench_function("tsdb_range_count", |b| {
        b.iter(|| db.from("path_set").range(1_000, 9_000).count())
    });
}

fn tsa_bench(c: &mut Criterion) {
    let series: Vec<(u64, f64)> = (0..4_096u64)
        .map(|t| (t, 100.0 + 30.0 * ((t % 16) as f64)))
        .collect();
    let data: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
    c.bench_function("tsa_moving_average", |b| {
        b.iter(|| ops::moving_average(&series, 32))
    });
    c.bench_function("tsa_holt_winters_fit", |b| {
        let hw = tsa::HoltWinters::new(16);
        b.iter(|| hw.fit_forecast(&data, 16))
    });
    c.bench_function("tsa_cluster_windows", |b| {
        b.iter(|| tsa::cluster_windows(&data, 0.2, 1.0))
    });
    c.bench_function("tsa_pearsonr", |b| {
        let other: Vec<f64> = data.iter().map(|v| v * 1.5 + 2.0).collect();
        b.iter(|| tsa::pearsonr(&data, &other))
    });
}

criterion_group!(benches, insert_bench, query_bench, tsa_bench);
criterion_main!(benches);
