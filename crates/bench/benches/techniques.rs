//! Criterion: per-epoch cost of PathFinder's four techniques.
//!
//! These are the operations that run at every scheduling epoch on a live
//! system, so their cost *is* the profiler's CPU overhead (§5.9: 1.3%).

use criterion::{criterion_group, criterion_main, Criterion};
use pathfinder::analyzer::PfAnalyzer;
use pathfinder::builder::PfBuilder;
use pathfinder::estimator::PfEstimator;
use pathfinder::materializer::Materializer;
use pathfinder::model::LatencyModel;
use pmu::SystemDelta;
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

/// A realistic busy epoch digest: one epoch of a CXL-bound stencil.
fn sample_delta() -> SystemDelta {
    let mut m = Machine::new(MachineConfig::spr());
    m.attach(
        0,
        Workload::new(
            "649.fotonik3d_s",
            workloads::build("649.fotonik3d_s", 200_000, 1).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    let start = m.pmu.snapshot(0);
    m.run_epoch();
    m.pmu.snapshot(m.now()).delta(&start)
}

fn technique_costs(c: &mut Criterion) {
    let delta = sample_delta();
    let lat = LatencyModel::spr();

    c.bench_function("pfbuilder_build", |b| b.iter(|| PfBuilder::build(&delta)));
    c.bench_function("pfestimator_breakdown", |b| {
        b.iter(|| PfEstimator::breakdown(&delta, &lat))
    });
    c.bench_function("pfanalyzer_analyze", |b| {
        b.iter(|| PfAnalyzer::analyze(&delta, &lat))
    });
    c.bench_function("pfmaterializer_ingest", |b| {
        let map = PfBuilder::build(&delta);
        b.iter(|| {
            let mut m = Materializer::new();
            m.ingest_path_map(0, &map, &[Some("app".into())]);
        })
    });
    c.bench_function("snapshot_delta", |b| {
        let m = {
            let mut m = Machine::new(MachineConfig::spr());
            m.attach(
                0,
                Workload::new(
                    "STREAM",
                    workloads::build("STREAM", 10_000, 1).unwrap(),
                    MemPolicy::Cxl,
                ),
            );
            m.run_epoch();
            m
        };
        let s0 = m.pmu.snapshot(0);
        b.iter(|| m.pmu.snapshot(m.now()).delta(&s0));
    });
}

criterion_group!(benches, technique_costs);
criterion_main!(benches);
