//! Criterion: simulator engine throughput — how many memory operations the
//! machine walks per second for each workload class and memory policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

const OPS: u64 = 50_000;

fn run(app: &str, policy: MemPolicy) {
    let mut m = Machine::new(MachineConfig::spr());
    m.attach(
        0,
        Workload::new(app, workloads::build(app, OPS, 1).unwrap(), policy),
    );
    m.run_to_completion(2_000).expect("machine must not stall");
}

fn machine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_ops");
    g.throughput(Throughput::Elements(OPS));
    g.sample_size(10);
    for app in ["STREAM", "505.mcf_r", "GUPS", "649.fotonik3d_s"] {
        for (label, policy) in [("local", MemPolicy::Local), ("cxl", MemPolicy::Cxl)] {
            g.bench_with_input(
                BenchmarkId::new(app.replace('.', "_"), label),
                &policy,
                |b, &p| b.iter(|| run(app, p)),
            );
        }
    }
    g.finish();
}

fn multicore_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_multicore");
    g.sample_size(10);
    for cores in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(OPS * cores as u64));
        g.bench_with_input(BenchmarkId::new("mbw_cxl", cores), &cores, |b, &n| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::spr());
                for i in 0..n {
                    m.attach(
                        i,
                        Workload::new(
                            format!("MBW-{i}"),
                            workloads::build("MBW", OPS, i as u64).unwrap(),
                            MemPolicy::Cxl,
                        ),
                    );
                }
                m.run_to_completion(2_000).expect("machine must not stall");
            })
        });
    }
    g.finish();
}

criterion_group!(benches, machine_throughput, multicore_scaling);
criterion_main!(benches);
