//! Criterion: profiler-on vs profiler-off overhead (§5.9's 1.3% CPU claim)
//! and the full-profiler epoch loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

const OPS: u64 = 60_000;

fn machine() -> Machine {
    let mut m = Machine::new(MachineConfig::spr());
    m.attach(
        0,
        Workload::new(
            "STREAM",
            workloads::build("STREAM", OPS, 1).unwrap(),
            MemPolicy::Cxl,
        ),
    );
    m
}

fn overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiler_overhead");
    g.sample_size(10);
    g.bench_function("machine_only", |b| {
        b.iter(|| machine().run_to_completion(2_000))
    });
    g.bench_function("machine_plus_profiler", |b| {
        b.iter(|| {
            let mut p = Profiler::new(machine(), ProfileSpec::default());
            p.run(2_000)
        })
    });
    g.bench_function("machine_plus_builder_only", |b| {
        b.iter(|| {
            let spec = ProfileSpec {
                estimate_stalls: false,
                analyze_queues: false,
                materialize: false,
                ..Default::default()
            };
            let mut p = Profiler::new(machine(), spec);
            p.run(2_000)
        })
    });
    g.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
