//! Property-based equivalence: the interned, columnar [`tsdb::Db`] must be
//! observationally identical to a naive row-oriented reference model under
//! arbitrary interleavings of inserts (in- and out-of-order timestamps),
//! range deletes, and queries. The reference model encodes the documented
//! semantics of `tests/edge_cases.rs`: half-open `[start, stop)` ranges,
//! reversed ranges match nothing, query rows ordered by timestamp with ties
//! broken by canonical series-key order, and §5.9 footprint accounting that
//! returns exactly to baseline when series empty.

use proptest::prelude::*;
use tsdb::{Db, Point};

const MEASUREMENTS: &[&str] = &["path_set", "vertex", "progress"];
const DSTS: &[&str] = &["L2", "LLC", "CXL Memory"];
const FIELDS: &[&str] = &["hits", "occ"];

/// Naive reference store: a flat list of points, queried by scan.
#[derive(Default)]
struct ModelDb {
    rows: Vec<Point>,
}

impl ModelDb {
    fn insert(&mut self, p: Point) {
        self.rows.push(p);
    }

    fn delete_range(&mut self, measurement: &str, start: u64, stop: u64) -> usize {
        if stop <= start {
            return 0;
        }
        let before = self.rows.len();
        self.rows
            .retain(|p| !(p.measurement == measurement && p.ts >= start && p.ts < stop));
        before - self.rows.len()
    }

    fn matches(p: &Point, measurement: &str, filters: &[(String, String)]) -> bool {
        p.measurement == measurement
            && filters
                .iter()
                .all(|(k, v)| p.tags.get(k).map(String::as_str) == Some(v.as_str()))
    }

    /// Query semantics: matching series visited in canonical key order,
    /// each series' rows in stable time order, then one stable global sort
    /// by timestamp (so ties keep key order).
    fn query(
        &self,
        measurement: &str,
        filters: &[(String, String)],
        start: u64,
        stop: u64,
    ) -> Vec<Point> {
        let mut keys: Vec<String> = self
            .rows
            .iter()
            .filter(|p| Self::matches(p, measurement, filters))
            .map(Point::series_key)
            .collect();
        keys.sort();
        keys.dedup();
        let mut out: Vec<Point> = Vec::new();
        for key in &keys {
            let mut pts: Vec<Point> = self
                .rows
                .iter()
                .filter(|p| {
                    Self::matches(p, measurement, filters)
                        && p.series_key() == *key
                        && p.ts >= start
                        && p.ts < stop
                })
                .cloned()
                .collect();
            pts.sort_by_key(|p| p.ts); // stable: insertion order survives ties
            out.extend(pts);
        }
        out.sort_by_key(|p| p.ts); // stable: key order survives ties
        out
    }

    fn n_series(&self) -> usize {
        let mut keys: Vec<String> = self.rows.iter().map(Point::series_key).collect();
        keys.sort();
        keys.dedup();
        keys.len()
    }

    /// §5.9 accounting: per-point retained bytes plus one key's bytes per
    /// non-empty series.
    fn footprint_bytes(&self) -> usize {
        let mut keys: Vec<String> = self.rows.iter().map(Point::series_key).collect();
        keys.sort();
        keys.dedup();
        self.rows.iter().map(Point::retained_bytes).sum::<usize>()
            + keys.iter().map(String::len).sum::<usize>()
    }
}

/// One scripted operation, decoded from a generated tuple.
fn apply_op(db: &mut Db, model: &mut ModelDb, op: &(u8, u8, u8, u8, u64, u64)) {
    let &(kind, m_idx, core, sel, ts, span) = op;
    let measurement = MEASUREMENTS[m_idx as usize % MEASUREMENTS.len()];
    if kind % 8 == 7 {
        // Range delete. `span` may produce empty/huge windows — both are
        // interesting; reversed ranges are exercised via span == 0 plus the
        // explicit edge-case tests.
        let (start, stop) = (ts, ts.saturating_add(span));
        let a = db.delete_range(measurement, start, stop);
        let b = model.delete_range(measurement, start, stop);
        assert_eq!(a, b, "delete_range removed counts diverged");
        return;
    }
    // Insert: tag grid (core, sometimes dst), field subset (0, 1, or 2).
    let mut p = Point::new(measurement, ts).tag("core", (core % 3).to_string());
    if sel % 2 == 0 {
        p = p.tag("dst", DSTS[sel as usize % DSTS.len()]);
    }
    for (i, f) in FIELDS.iter().enumerate() {
        if (sel as usize >> i) & 1 == 0 {
            p = p.field(*f, (ts as f64) * 0.5 + i as f64);
        }
    }
    db.insert(p.clone());
    model.insert(p);
}

fn assert_same_points(actual: &[Point], expected: &[Point], what: &str) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "{what}: row count diverged (got {}, want {})",
        actual.len(),
        expected.len()
    );
    for (a, e) in actual.iter().zip(expected) {
        assert_eq!(a, e, "{what}: row diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn columnar_db_matches_reference_model(
        ops in proptest::collection::vec(
            (0u8..16, 0u8..4, 0u8..4, 0u8..8, 0u64..2_000, 0u64..1_000),
            1..120,
        ),
        q_start in 0u64..1_500,
        q_span in 0u64..1_500,
    ) {
        let mut db = Db::new();
        let mut model = ModelDb::default();
        for op in &ops {
            apply_op(&mut db, &mut model, op);
        }

        prop_assert_eq!(db.len(), model.rows.len());
        prop_assert_eq!(db.n_series(), model.n_series());
        prop_assert_eq!(db.footprint_bytes(), model.footprint_bytes());

        let (start, stop) = (q_start, q_start.saturating_add(q_span));
        for &m in MEASUREMENTS {
            // Unfiltered, full-range and windowed queries.
            assert_same_points(
                &db.from(m).points(),
                &model.query(m, &[], 0, u64::MAX),
                "full query",
            );
            assert_same_points(
                &db.from(m).range(start, stop).points(),
                &model.query(m, &[], start, stop),
                "windowed query",
            );
            prop_assert_eq!(
                db.from(m).range(start, stop).count(),
                model.query(m, &[], start, stop).len()
            );
            // Tag-filtered query.
            let filters = vec![("core".to_string(), "1".to_string())];
            assert_same_points(
                &db.from(m).filter("core", "1").range(start, stop).points(),
                &model.query(m, &filters, start, stop),
                "filtered query",
            );
            // Field extraction: rows carrying the field, in row order.
            for &f in FIELDS {
                let got = db.from(m).range(start, stop).values(f);
                let want: Vec<(u64, f64)> = model
                    .query(m, &[], start, stop)
                    .iter()
                    .filter_map(|p| p.fields.get(f).map(|&v| (p.ts, v)))
                    .collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
