//! Edge cases of the store and query layer: degenerate ranges, singleton
//! series, and footprint accounting across deletes (§5.9 overhead math
//! must stay exact when snapshots are pruned).

use tsdb::{Db, Point};

fn seeded() -> Db {
    let mut db = Db::new();
    for t in 0..10u64 {
        db.insert(
            Point::new("path_set", t * 100)
                .tag("core", "0")
                .field("hits", t as f64),
        );
    }
    db.insert(Point::new("vertex", 42).tag("hw", "L2").field("occ", 1.0));
    db
}

#[test]
fn empty_range_matches_nothing() {
    let db = seeded();
    assert_eq!(db.from("path_set").range(500, 500).count(), 0);
    assert!(db.from("path_set").range(0, 0).points().is_empty());
    assert!(db
        .from("path_set")
        .range(500, 500)
        .values("hits")
        .is_empty());
}

#[test]
fn reversed_range_matches_nothing() {
    let db = seeded();
    assert_eq!(db.from("path_set").range(900, 100).count(), 0);
    assert!(db.from("path_set").range(u64::MAX, 0).points().is_empty());
}

#[test]
fn single_point_series_is_queryable_at_its_timestamp() {
    let db = seeded();
    // [ts, ts+1) is the tightest half-open window that can hold the point.
    let pts = db.from("vertex").range(42, 43).points();
    assert_eq!(pts.len(), 1);
    assert_eq!(pts[0].ts, 42);
    assert_eq!(db.from("vertex").range(43, 44).count(), 0);
    assert_eq!(db.from("vertex").values("occ"), vec![(42, 1.0)]);
}

#[test]
fn delete_range_removes_only_the_window() {
    let mut db = seeded();
    // Points live at t = 0, 100, ..., 900; delete [200, 500) → 200/300/400.
    let removed = db.delete_range("path_set", 200, 500);
    assert_eq!(removed, 3);
    assert_eq!(db.from("path_set").count(), 7);
    assert_eq!(db.from("path_set").range(200, 500).count(), 0);
    // The other measurement is untouched.
    assert_eq!(db.from("vertex").count(), 1);
    assert_eq!(db.len(), 8);
}

#[test]
fn delete_with_degenerate_range_is_a_no_op() {
    let mut db = seeded();
    let before = db.footprint_bytes();
    assert_eq!(db.delete_range("path_set", 500, 500), 0);
    assert_eq!(db.delete_range("path_set", 900, 100), 0);
    assert_eq!(db.delete_range("nope", 0, u64::MAX), 0);
    assert_eq!(db.len(), 11);
    assert_eq!(db.footprint_bytes(), before);
}

#[test]
fn footprint_shrinks_with_deletes_and_returns_key_bytes_when_a_series_empties() {
    let mut db = Db::new();
    let empty = db.footprint_bytes();
    for t in 0..5u64 {
        db.insert(Point::new("m", t).tag("core", "0").field("x", t as f64));
    }
    let full = db.footprint_bytes();
    assert!(full > empty);

    // A partial delete frees the points' bytes but keeps the series key.
    let mid = {
        db.delete_range("m", 0, 2);
        db.footprint_bytes()
    };
    assert!(mid < full);
    assert_eq!(db.n_series(), 1);

    // Deleting the rest empties the series: its key bytes come back too,
    // restoring the footprint to the empty-store baseline exactly.
    db.delete_range("m", 0, u64::MAX);
    assert_eq!(db.len(), 0);
    assert_eq!(db.n_series(), 0);
    assert_eq!(db.footprint_bytes(), empty);
}

#[test]
fn deleted_window_can_be_repopulated() {
    let mut db = seeded();
    db.delete_range("path_set", 0, u64::MAX);
    assert_eq!(db.from("path_set").count(), 0);
    db.insert(
        Point::new("path_set", 100)
            .tag("core", "0")
            .field("hits", 9.0),
    );
    assert_eq!(db.from("path_set").values("hits"), vec![(100, 9.0)]);
}
