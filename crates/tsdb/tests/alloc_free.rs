//! Proof that the steady-state ingest path is allocation-free: with series
//! handles resolved and capacity reserved, a batch of [`tsdb::Db::ingest`]
//! calls must hit the global allocator exactly zero times. This is the
//! tentpole guarantee of the columnar store (see PERFORMANCE.md) and the
//! runtime counterpart of pflint's `ingest-hot-path` rule.
//!
//! Counters are thread-local (const-initialized TLS, so reading them never
//! allocates): the libtest harness runs its own threads, and a process-
//! global count would pick up their background allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tsdb::Db;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> (u64, u64) {
    (ALLOCS.with(Cell::get), REALLOCS.with(Cell::get))
}

#[test]
fn steady_state_ingest_performs_zero_allocations() {
    const EPOCHS: usize = 1_024;

    let mut db = Db::new();
    // Cold path: resolve handles (interns strings, builds columns) and
    // reserve capacity for the whole batch up front.
    let paths = ["DRd", "RFO", "HW PF", "SW PF"];
    let mut handles = Vec::new();
    for core in 0..2u32 {
        let core_s = core.to_string();
        for p in &paths {
            handles.push(db.series_handle(
                "path_set",
                &[("core", core_s.as_str()), ("path", p), ("dst", "LLC")],
                &["hits"],
            ));
        }
    }
    for &id in &handles {
        db.reserve(id, EPOCHS);
    }

    // Hot path: the per-epoch grid the materializer emits. Must not touch
    // the allocator at all.
    let (a0, r0) = alloc_count();
    for e in 0..EPOCHS {
        let ts = (e as u64) * 10_000;
        for (i, &id) in handles.iter().enumerate() {
            db.ingest(id, ts, &[(e * i) as f64]);
        }
    }
    let (a1, r1) = alloc_count();

    assert_eq!(
        (a1 - a0, r1 - r0),
        (0, 0),
        "steady-state ingest must be allocation-free (allocs: {}, reallocs: {})",
        a1 - a0,
        r1 - r0
    );
    assert_eq!(db.len(), EPOCHS * handles.len());
}
