//! The store: interned, columnar series addressed by [`SeriesId`].
//!
//! A series is identified by (measurement, tag set) and holds its data as
//! columns — one `Vec<u64>` of timestamps plus one `Vec<f64>` (with a
//! presence flag per row) per field. All strings live in the [`Interner`];
//! the steady-state ingest path ([`Db::ingest`]) works purely on resolved
//! [`SeriesId`] handles and appends to columns, so it performs zero string
//! formatting and zero map insertion per record. The row-oriented
//! [`Point`] builder API ([`Db::insert`]) remains as a compatibility shim.
//!
//! Two memory numbers coexist on purpose (PERFORMANCE.md):
//! * [`Db::footprint_bytes`] — the §5.9 *logical* accounting the profiler
//!   reports (what the old row-oriented store would have retained). It is
//!   maintained incrementally with the exact per-point arithmetic of
//!   [`Point::retained_bytes`], so overhead lines and golden CSVs are
//!   byte-identical across the storage migration.
//! * [`Db::resident_bytes`] — actual heap bytes of the columnar layout.

use std::collections::BTreeMap;

use crate::intern::{Interner, Symbol};
use crate::point::Point;
use crate::query::Query;

/// A resolved series handle: a dense index, stable for the lifetime of the
/// `Db` (deletes empty a series but never invalidate its handle).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesId(u32);

impl SeriesId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One field column: values aligned to the series' rows, with a presence
/// flag per row (the builder API allows points to carry field subsets).
#[derive(Debug)]
struct FieldCol {
    name: Symbol,
    /// Per-present-row logical bytes (§5.9 term: map node + key text).
    logical_bytes: usize,
    values: Vec<f64>,
    present: Vec<bool>,
}

/// One series: interned identity plus columnar data.
#[derive(Debug)]
struct Series {
    measurement: Symbol,
    /// Tag pairs in tag-key order (the canonical series-key order).
    tags: Vec<(Symbol, Symbol)>,
    /// Length of the canonical series key (footprint term for a live
    /// series).
    key_len: usize,
    /// Per-row logical bytes independent of fields (§5.9 terms: the Point
    /// struct, the measurement text, and the tag map nodes + text).
    row_base_bytes: usize,
    ts: Vec<u64>,
    cols: Vec<FieldCol>,
    /// False once a row arrived with a timestamp below its predecessor;
    /// queries then fall back to a stable sort (lazy sort-on-query).
    sorted: bool,
}

impl Series {
    fn len(&self) -> usize {
        self.ts.len()
    }

    /// Logical bytes of row `i` (base + every field present on the row).
    fn row_bytes(&self, i: usize) -> usize {
        self.row_base_bytes
            + self
                .cols
                .iter()
                .filter(|c| c.present[i])
                .map(|c| c.logical_bytes)
                .sum::<usize>()
    }
}

/// Row indices of one series restricted to a time range, in stable time
/// order. In-order series answer with a contiguous index range found by
/// binary search — no sort, no allocation; out-of-order series fall back
/// to a stable permutation.
enum Rows {
    Sorted(std::ops::Range<usize>),
    Perm(Vec<u32>),
}

impl Rows {
    fn for_each(self, mut f: impl FnMut(usize)) {
        match self {
            Rows::Sorted(r) => r.for_each(&mut f),
            Rows::Perm(p) => p.into_iter().for_each(|i| f(i as usize)),
        }
    }

    fn count(&self) -> usize {
        match self {
            Rows::Sorted(r) => r.len(),
            Rows::Perm(p) => p.len(),
        }
    }
}

/// An in-memory time-series database.
#[derive(Debug, Default)]
pub struct Db {
    interner: Interner,
    /// `SeriesId::index()` → series, in creation order.
    series: Vec<Series>,
    /// Canonical series key → id. BTreeMap so scans visit series in key
    /// order: records with tied timestamps from different series surface
    /// in key order, never hash order.
    index: BTreeMap<String, SeriesId>,
    points: usize,
    /// Logical retained bytes (§5.9), maintained incrementally on
    /// insert/delete so overhead accounting is O(1), not a scan.
    retained: usize,
}

impl Db {
    pub fn new() -> Db {
        Db::default()
    }

    /// Resolve (creating if needed) the series for `measurement` + `tags`,
    /// declaring its field columns. The returned handle stays valid for
    /// the lifetime of the `Db` — resolve once, then [`Db::ingest`] each
    /// epoch with no per-record string work at all.
    ///
    /// `tags` may arrive in any order (they are canonicalised by key);
    /// `fields` fixes the column order that [`Db::ingest`] values follow.
    /// A handle-created series is invisible (not scanned, not counted, no
    /// footprint) until its first row arrives.
    pub fn series_handle(
        &mut self,
        measurement: &str,
        tags: &[(&str, &str)],
        fields: &[&str],
    ) -> SeriesId {
        let mut sorted_tags: Vec<(&str, &str)> = tags.to_vec();
        sorted_tags.sort_by_key(|&(k, _)| k);
        let mut key = String::from(measurement);
        for (k, v) in &sorted_tags {
            key.push(',');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        let id = match self.index.get(&key) {
            Some(&id) => id,
            None => {
                use std::mem::size_of;
                let m = self.interner.intern(measurement);
                let tags: Vec<(Symbol, Symbol)> = sorted_tags
                    .iter()
                    .map(|&(k, v)| (self.interner.intern(k), self.interner.intern(v)))
                    .collect();
                let row_base_bytes = size_of::<Point>()
                    + measurement.len()
                    + sorted_tags
                        .iter()
                        .map(|&(k, v)| size_of::<(String, String)>() + k.len() + v.len())
                        .sum::<usize>();
                assert!(self.series.len() < u32::MAX as usize, "series id overflow");
                let id = SeriesId(self.series.len() as u32);
                self.series.push(Series {
                    measurement: m,
                    tags,
                    key_len: key.len(),
                    row_base_bytes,
                    ts: Vec::new(),
                    cols: Vec::new(),
                    sorted: true,
                });
                self.index.insert(key, id);
                id
            }
        };
        for f in fields {
            self.ensure_col(id, f);
        }
        id
    }

    /// Ensure a column named `field` exists on `id`, back-filling absent
    /// presence for any rows appended before the column was declared.
    fn ensure_col(&mut self, id: SeriesId, field: &str) {
        let sym = self.interner.intern(field);
        let s = &mut self.series[id.index()];
        if s.cols.iter().any(|c| c.name == sym) {
            return;
        }
        let n = s.ts.len();
        s.cols.push(FieldCol {
            name: sym,
            logical_bytes: std::mem::size_of::<(String, f64)>() + field.len(),
            values: vec![0.0; n],
            present: vec![false; n],
        });
    }

    /// Append one record to a resolved series — the steady-state ingest
    /// path. `values` follow the series' declared column order and must
    /// cover every column (the batch API always writes full rows; mixed
    /// schemas go through the [`Db::insert`] shim). Pure column appends:
    /// no string formatting, no map insertion, no per-record allocation
    /// once capacity is reserved ([`Db::reserve`]).
    // pflint::hot
    pub fn ingest(&mut self, id: SeriesId, ts: u64, values: &[f64]) {
        let s = &mut self.series[id.index()];
        assert_eq!(
            values.len(),
            s.cols.len(),
            "ingest values must cover every declared column"
        );
        let was_empty = s.ts.is_empty();
        if !was_empty && ts < s.ts[s.ts.len() - 1] {
            s.sorted = false;
        }
        s.ts.push(ts);
        let mut row_bytes = s.row_base_bytes;
        for (c, &v) in s.cols.iter_mut().zip(values) {
            c.values.push(v);
            c.present.push(true);
            row_bytes += c.logical_bytes;
        }
        self.points += 1;
        self.retained += row_bytes;
        if was_empty {
            self.retained += s.key_len;
            obs::metrics::counter_add("tsdb.series", 1);
        }
        obs::metrics::counter_add("tsdb.points", 1);
    }

    /// Pre-reserve capacity for `additional` rows of `id` (timestamps and
    /// every column), so a known batch of [`Db::ingest`] calls performs
    /// zero allocations.
    pub fn reserve(&mut self, id: SeriesId, additional: usize) {
        let s = &mut self.series[id.index()];
        s.ts.reserve(additional);
        for c in &mut s.cols {
            c.values.reserve(additional);
            c.present.reserve(additional);
        }
    }

    /// Insert a row-oriented point — the compatibility shim over
    /// [`Db::series_handle`] + column appends. Resolves the series key by
    /// string (allocating), so per-epoch loops should cache handles and
    /// call [`Db::ingest`] instead. Out-of-order timestamps within a
    /// series are kept but sorted lazily on query.
    pub fn insert(&mut self, point: Point) {
        let bytes = point.retained_bytes();
        let key = point.series_key();
        let id = match self.index.get(&key) {
            Some(&id) => id,
            None => {
                let tags: Vec<(&str, &str)> = point
                    .tags
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                self.series_handle(&point.measurement, &tags, &[])
            }
        };
        for f in point.fields.keys() {
            self.ensure_col(id, f);
        }
        let Db {
            interner, series, ..
        } = self;
        let s = &mut series[id.index()];
        let was_empty = s.ts.is_empty();
        if !was_empty && point.ts < s.ts[s.ts.len() - 1] {
            s.sorted = false;
        }
        s.ts.push(point.ts);
        for c in &mut s.cols {
            match point.fields.get(interner.resolve(c.name)) {
                Some(&v) => {
                    c.values.push(v);
                    c.present.push(true);
                }
                None => {
                    c.values.push(0.0);
                    c.present.push(false);
                }
            }
        }
        self.points += 1;
        self.retained += bytes;
        if was_empty {
            self.retained += s.key_len;
            obs::metrics::counter_add("tsdb.series", 1);
        }
        obs::metrics::counter_add("tsdb.points", 1);
    }

    /// Total points stored.
    pub fn len(&self) -> usize {
        self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// Number of distinct live (non-empty) series. Handle-created series
    /// without rows, and series emptied by [`Db::delete_range`], don't
    /// count.
    pub fn n_series(&self) -> usize {
        self.series.iter().filter(|s| !s.ts.is_empty()).count()
    }

    /// Start a query against a measurement (Flux: `from(bucket)`).
    pub fn from(&self, measurement: &str) -> Query<'_> {
        Query::new(self, measurement)
    }

    /// Logical retained bytes of the store (overhead accounting, §5.9):
    /// every record's [`Point::retained_bytes`] plus the series keys,
    /// maintained incrementally so this is O(1). This is deliberately the
    /// *row-oriented* accounting the paper's overhead budget uses, not the
    /// columnar heap — see [`Db::resident_bytes`] for that.
    pub fn footprint_bytes(&self) -> usize {
        self.retained
    }

    /// Actual heap bytes of the columnar layout: interner table, series
    /// index, and every column's capacity. This is what the process really
    /// pays; it sits well below [`Db::footprint_bytes`] because strings
    /// are stored once, not per record.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.interner.resident_bytes();
        for (key, _) in self.index.iter() {
            bytes += key.len() + size_of::<(String, SeriesId)>();
        }
        bytes += self.series.capacity() * size_of::<Series>();
        for s in &self.series {
            bytes += s.ts.capacity() * size_of::<u64>();
            bytes += s.cols.capacity() * size_of::<FieldCol>();
            for c in &s.cols {
                bytes += c.values.capacity() * size_of::<f64>();
                bytes += c.present.capacity();
            }
        }
        bytes
    }

    /// Delete every point of `measurement` with a timestamp in
    /// `[start, stop)` (Flux `delete(start:, stop:)`); returns the number
    /// of points removed. An emptied series returns its key bytes to the
    /// footprint accounting (its handle stays valid and it may be
    /// repopulated). A reversed or empty range deletes nothing.
    pub fn delete_range(&mut self, measurement: &str, start: u64, stop: u64) -> usize {
        let _span = obs::span!("tsdb.delete");
        if stop <= start {
            return 0;
        }
        let Some(m) = self.interner.lookup(measurement) else {
            return 0;
        };
        let mut removed = 0usize;
        let mut freed = 0usize;
        for s in self.series.iter_mut() {
            if s.measurement != m || s.ts.is_empty() {
                continue;
            }
            let n = s.ts.len();
            let mut kept = 0usize;
            for i in 0..n {
                let t = s.ts[i];
                if t >= start && t < stop {
                    removed += 1;
                    freed += s.row_bytes(i);
                } else {
                    if kept != i {
                        s.ts[kept] = t;
                        for c in s.cols.iter_mut() {
                            c.values[kept] = c.values[i];
                            c.present[kept] = c.present[i];
                        }
                    }
                    kept += 1;
                }
            }
            if kept != n {
                s.ts.truncate(kept);
                for c in s.cols.iter_mut() {
                    c.values.truncate(kept);
                    c.present.truncate(kept);
                }
                if kept == 0 {
                    freed += s.key_len;
                }
            }
        }
        self.points -= removed;
        self.retained -= freed;
        if removed > 0 {
            obs::metrics::counter_add("tsdb.deleted", removed as u64);
        }
        removed
    }

    // -----------------------------------------------------------------
    // Query plumbing (crate-internal, used by `query::Query`)
    // -----------------------------------------------------------------

    /// Live series of `measurement` whose tag set satisfies every
    /// `filters` pair, in canonical key order. A measurement, tag key, or
    /// tag value the store has never interned matches nothing.
    pub(crate) fn matching_series(
        &self,
        measurement: &str,
        filters: &[(String, String)],
    ) -> Vec<SeriesId> {
        let Some(m) = self.interner.lookup(measurement) else {
            return Vec::new();
        };
        let mut fsyms = Vec::with_capacity(filters.len());
        for (k, v) in filters {
            let (Some(ks), Some(vs)) = (self.interner.lookup(k), self.interner.lookup(v)) else {
                return Vec::new();
            };
            fsyms.push((ks, vs));
        }
        self.index
            .values()
            .copied()
            .filter(|id| {
                let s = &self.series[id.index()];
                s.measurement == m
                    && !s.ts.is_empty()
                    && fsyms
                        .iter()
                        .all(|&(k, v)| s.tags.iter().any(|&(tk, tv)| tk == k && tv == v))
            })
            .collect()
    }

    /// Resolve a field name without interning.
    pub(crate) fn field_symbol(&self, field: &str) -> Option<Symbol> {
        self.interner.lookup(field)
    }

    /// Row indices of `id` within `range`, in stable time order (lazy
    /// sort-on-query: in-order series binary-search their bounds).
    fn rows_in(&self, id: SeriesId, range: Option<(u64, u64)>) -> Rows {
        let s = &self.series[id.index()];
        if s.sorted {
            let (lo, hi) = match range {
                Some((start, stop)) => (
                    s.ts.partition_point(|&t| t < start),
                    s.ts.partition_point(|&t| t < stop),
                ),
                None => (0, s.len()),
            };
            Rows::Sorted(lo..hi.max(lo))
        } else {
            let mut perm: Vec<u32> = (0..s.len() as u32)
                .filter(|&i| match range {
                    Some((start, stop)) => {
                        let t = s.ts[i as usize];
                        t >= start && t < stop
                    }
                    None => true,
                })
                .collect();
            perm.sort_by_key(|&i| s.ts[i as usize]);
            Rows::Perm(perm)
        }
    }

    /// Append `(ts, value)` pairs of one series/field to `out`, in time
    /// order; rows lacking the field are skipped. Returns true when
    /// anything was appended.
    pub(crate) fn collect_values(
        &self,
        id: SeriesId,
        field: Symbol,
        range: Option<(u64, u64)>,
        out: &mut Vec<(u64, f64)>,
    ) -> bool {
        let s = &self.series[id.index()];
        let Some(col) = s.cols.iter().find(|c| c.name == field) else {
            return false;
        };
        let before = out.len();
        self.rows_in(id, range).for_each(|i| {
            if col.present[i] {
                out.push((s.ts[i], col.values[i]));
            }
        });
        out.len() > before
    }

    /// Reconstruct one series' rows as [`Point`]s in time order, appended
    /// to `out`. Returns true when anything was appended.
    pub(crate) fn collect_points(
        &self,
        id: SeriesId,
        range: Option<(u64, u64)>,
        out: &mut Vec<Point>,
    ) -> bool {
        let s = &self.series[id.index()];
        let before = out.len();
        self.rows_in(id, range).for_each(|i| {
            let mut p = Point::new(self.interner.resolve(s.measurement), s.ts[i]);
            for &(k, v) in &s.tags {
                p.tags.insert(
                    self.interner.resolve(k).to_string(),
                    self.interner.resolve(v).to_string(),
                );
            }
            for c in &s.cols {
                if c.present[i] {
                    p.fields
                        .insert(self.interner.resolve(c.name).to_string(), c.values[i]);
                }
            }
            out.push(p);
        });
        out.len() > before
    }

    /// Count one series' rows within `range`.
    pub(crate) fn count_rows(&self, id: SeriesId, range: Option<(u64, u64)>) -> usize {
        self.rows_in(id, range).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Db {
        let mut db = Db::new();
        for t in 0..10u64 {
            db.insert(
                Point::new("path_set", t * 100)
                    .tag("core", "0")
                    .field("hits", t as f64),
            );
            db.insert(
                Point::new("path_set", t * 100)
                    .tag("core", "1")
                    .field("hits", 2.0 * t as f64),
            );
            db.insert(
                Point::new("vertex", t * 100)
                    .tag("hw", "L2")
                    .field("occ", 1.0),
            );
        }
        db
    }

    #[test]
    fn insert_and_count() {
        let db = sample_db();
        assert_eq!(db.len(), 30);
        assert_eq!(db.n_series(), 3);
    }

    #[test]
    fn scan_filters_by_measurement() {
        let db = sample_db();
        assert_eq!(db.from("path_set").count(), 20);
        assert_eq!(db.from("vertex").count(), 10);
        assert_eq!(db.from("nope").count(), 0);
    }

    #[test]
    fn footprint_is_positive_and_grows() {
        let mut db = Db::new();
        let f0 = db.footprint_bytes();
        db.insert(Point::new("m", 0).field("x", 1.0));
        assert!(db.footprint_bytes() > f0);
    }

    #[test]
    fn handle_ingest_matches_point_insert_exactly() {
        // The fast path and the shim must be observationally identical:
        // same footprint arithmetic, same counts, same query answers.
        let mut a = Db::new();
        let mut b = Db::new();
        let h = a.series_handle("path_set", &[("core", "0"), ("app", "fft")], &["hits"]);
        for t in 0..50u64 {
            a.ingest(h, t * 10, &[t as f64]);
            b.insert(
                Point::new("path_set", t * 10)
                    .tag("core", "0")
                    .tag("app", "fft")
                    .field("hits", t as f64),
            );
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.n_series(), b.n_series());
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
        assert_eq!(
            a.from("path_set").filter("core", "0").values("hits"),
            b.from("path_set").filter("core", "0").values("hits"),
        );
    }

    #[test]
    fn handles_are_stable_across_delete_and_repopulate() {
        let mut db = Db::new();
        let h = db.series_handle("m", &[("core", "0")], &["x"]);
        db.ingest(h, 10, &[1.0]);
        db.ingest(h, 20, &[2.0]);
        assert_eq!(db.delete_range("m", 0, u64::MAX), 2);
        assert_eq!(db.n_series(), 0);
        assert_eq!(db.footprint_bytes(), 0);
        // The handle survives the delete.
        db.ingest(h, 30, &[3.0]);
        assert_eq!(db.from("m").values("x"), vec![(30, 3.0)]);
        assert_eq!(db.n_series(), 1);
    }

    #[test]
    fn handle_created_series_is_invisible_until_populated() {
        let mut db = Db::new();
        let h = db.series_handle("m", &[("core", "0")], &["x"]);
        assert_eq!(db.n_series(), 0);
        assert_eq!(db.footprint_bytes(), 0);
        assert_eq!(db.from("m").count(), 0);
        db.ingest(h, 0, &[1.0]);
        assert_eq!(db.n_series(), 1);
    }

    #[test]
    fn series_handle_canonicalises_tag_order() {
        let mut db = Db::new();
        let a = db.series_handle("m", &[("b", "2"), ("a", "1")], &["x"]);
        let b = db.series_handle("m", &[("a", "1"), ("b", "2")], &["x"]);
        assert_eq!(a, b);
    }

    #[test]
    fn reserve_then_ingest_is_queryable() {
        let mut db = Db::new();
        let h = db.series_handle("m", &[], &["x", "y"]);
        db.reserve(h, 100);
        for t in 0..100u64 {
            db.ingest(h, t, &[t as f64, 2.0 * t as f64]);
        }
        assert_eq!(db.from("m").values("y").len(), 100);
        assert_eq!(db.from("m").range(10, 20).count(), 10);
    }

    #[test]
    fn resident_bytes_tracks_the_columnar_heap() {
        let mut db = Db::new();
        let h = db.series_handle("path_set", &[("core", "0"), ("app", "fft")], &["hits"]);
        for t in 0..1000u64 {
            db.ingest(h, t, &[t as f64]);
        }
        let resident = db.resident_bytes();
        assert!(resident > 0);
        // Strings are stored once, so the columnar heap sits far below the
        // logical row-oriented accounting.
        assert!(
            resident < db.footprint_bytes(),
            "resident {resident} vs logical {}",
            db.footprint_bytes()
        );
    }

    #[test]
    fn mixed_field_schemas_round_trip_through_the_shim() {
        let mut db = Db::new();
        db.insert(Point::new("m", 1).field("x", 1.0));
        db.insert(Point::new("m", 2).field("y", 9.0));
        db.insert(Point::new("m", 3).field("x", 3.0).field("y", 4.0));
        assert_eq!(db.from("m").values("x"), vec![(1, 1.0), (3, 3.0)]);
        assert_eq!(db.from("m").values("y"), vec![(2, 9.0), (3, 4.0)]);
        let pts = db.from("m").points();
        assert_eq!(pts[0].fields.len(), 1);
        assert_eq!(pts[2].fields.len(), 2);
    }
}
