//! The store: append-only series keyed by measurement + tags.

use std::collections::BTreeMap;

use crate::point::Point;
use crate::query::Query;

/// An in-memory time-series database.
#[derive(Debug, Default)]
pub struct Db {
    /// series key → points in insertion (time) order. BTreeMap so that
    /// scans visit series in key order: points with tied timestamps from
    /// different series would otherwise surface in hash order.
    series: BTreeMap<String, Vec<Point>>,
    points: usize,
    /// Retained bytes, maintained incrementally on insert (point payloads
    /// plus series keys) so §5.9 overhead accounting is O(1), not a scan.
    retained: usize,
}

impl Db {
    pub fn new() -> Db {
        Db::default()
    }

    /// Insert a point. Out-of-order timestamps within a series are kept but
    /// sorted lazily on query.
    pub fn insert(&mut self, point: Point) {
        self.points += 1;
        self.retained += point.retained_bytes();
        let key = point.series_key();
        let new_series = !self.series.contains_key(&key);
        if new_series {
            self.retained += key.len();
            obs::metrics::counter_add("tsdb.series", 1);
        }
        self.series.entry(key).or_default().push(point);
        obs::metrics::counter_add("tsdb.points", 1);
    }

    /// Total points stored.
    pub fn len(&self) -> usize {
        self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points == 0
    }

    /// Number of distinct series.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    /// Start a query against a measurement (Flux: `from(bucket)`).
    pub fn from(&self, measurement: &str) -> Query<'_> {
        Query::new(self, measurement)
    }

    /// Internal: iterate all points of all series matching a measurement.
    pub(crate) fn scan<'a>(&'a self, measurement: &str) -> impl Iterator<Item = &'a Point> + 'a {
        let measurement = measurement.to_string();
        self.series
            .iter()
            .filter(move |(key, _)| {
                key.split(',')
                    .next()
                    .map(|m| m == measurement)
                    .unwrap_or(false)
            })
            .flat_map(|(_, pts)| pts.iter())
    }

    /// Resident bytes of retained state (overhead accounting, §5.9):
    /// every point's [`Point::retained_bytes`] plus the series keys,
    /// maintained incrementally so this is O(1).
    pub fn footprint_bytes(&self) -> usize {
        self.retained
    }

    /// Delete every point of `measurement` with a timestamp in
    /// `[start, stop)` (Flux `delete(start:, stop:)`); returns the number
    /// of points removed. Emptied series are dropped entirely, returning
    /// their key bytes to the footprint accounting. A reversed or empty
    /// range deletes nothing.
    pub fn delete_range(&mut self, measurement: &str, start: u64, stop: u64) -> usize {
        let _span = obs::span!("tsdb.delete");
        if stop <= start {
            return 0;
        }
        let mut removed = 0usize;
        let mut freed = 0usize;
        let mut emptied: Vec<String> = Vec::new();
        for (key, pts) in self.series.iter_mut() {
            let hit = key
                .split(',')
                .next()
                .map(|m| m == measurement)
                .unwrap_or(false);
            if !hit {
                continue;
            }
            pts.retain(|p| {
                if p.ts >= start && p.ts < stop {
                    removed += 1;
                    freed += p.retained_bytes();
                    false
                } else {
                    true
                }
            });
            if pts.is_empty() {
                emptied.push(key.clone());
            }
        }
        for key in emptied {
            freed += key.len();
            self.series.remove(&key);
        }
        self.points -= removed;
        self.retained -= freed;
        if removed > 0 {
            obs::metrics::counter_add("tsdb.deleted", removed as u64);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Db {
        let mut db = Db::new();
        for t in 0..10u64 {
            db.insert(
                Point::new("path_set", t * 100)
                    .tag("core", "0")
                    .field("hits", t as f64),
            );
            db.insert(
                Point::new("path_set", t * 100)
                    .tag("core", "1")
                    .field("hits", 2.0 * t as f64),
            );
            db.insert(
                Point::new("vertex", t * 100)
                    .tag("hw", "L2")
                    .field("occ", 1.0),
            );
        }
        db
    }

    #[test]
    fn insert_and_count() {
        let db = sample_db();
        assert_eq!(db.len(), 30);
        assert_eq!(db.n_series(), 3);
    }

    #[test]
    fn scan_filters_by_measurement() {
        let db = sample_db();
        assert_eq!(db.scan("path_set").count(), 20);
        assert_eq!(db.scan("vertex").count(), 10);
        assert_eq!(db.scan("nope").count(), 0);
    }

    #[test]
    fn footprint_is_positive_and_grows() {
        let mut db = Db::new();
        let f0 = db.footprint_bytes();
        db.insert(Point::new("m", 0).field("x", 1.0));
        assert!(db.footprint_bytes() > f0);
    }
}
