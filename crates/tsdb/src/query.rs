//! A small Flux-like query builder.
//!
//! PathFinder's analyzer translates a scenario into "a sequence of InfluxDB
//! Flux queries" (§4.6), e.g.
//! `FROM "path_set" WHERE path.mflow.pid = APP_PID AND path.dst = LLC`.
//! The equivalent here:
//!
//! ```
//! use tsdb::{Db, Point};
//! let mut db = Db::new();
//! db.insert(Point::new("path_set", 5).tag("pid", "7").tag("dst", "LLC").field("hits", 3.0));
//! let series = db.from("path_set").filter("pid", "7").filter("dst", "LLC").values("hits");
//! assert_eq!(series, vec![(5, 3.0)]);
//! ```
//!
//! Queries run over the columnar store: tag filters resolve to interned
//! symbols once per query (never seen → no match), matching series are
//! visited in canonical key order, and each series yields its rows in time
//! order — in-order series skip re-sorting entirely (binary-searched range
//! bounds), out-of-order series fall back to a stable permutation. When
//! more than one series contributes, a final stable sort merges them, so
//! tied timestamps surface in series-key order exactly as the row store
//! did.

use crate::db::{Db, SeriesId};
use crate::point::Point;

/// A lazily-evaluated query over one measurement.
pub struct Query<'a> {
    db: &'a Db,
    measurement: String,
    tag_filters: Vec<(String, String)>,
    range: Option<(u64, u64)>,
}

impl<'a> Query<'a> {
    pub(crate) fn new(db: &'a Db, measurement: &str) -> Query<'a> {
        Query {
            db,
            measurement: measurement.into(),
            tag_filters: Vec::new(),
            range: None,
        }
    }

    /// Require an exact tag match (Flux `filter(fn: (r) => r.k == v)`).
    pub fn filter(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tag_filters.push((key.into(), value.into()));
        self
    }

    /// Restrict to `[start, stop)` timestamps (Flux `range(start:, stop:)`).
    pub fn range(mut self, start: u64, stop: u64) -> Self {
        self.range = Some((start, stop));
        self
    }

    /// Matching series in canonical key order.
    fn series(&self) -> Vec<SeriesId> {
        self.db
            .matching_series(&self.measurement, &self.tag_filters)
    }

    /// Materialise matching points, time-sorted.
    pub fn points(self) -> Vec<Point> {
        let _span = obs::span!("tsdb.query");
        obs::metrics::counter_add("tsdb.queries", 1);
        let mut out: Vec<Point> = Vec::new();
        let mut contributing = 0usize;
        for id in self.series() {
            if self.db.collect_points(id, self.range, &mut out) {
                contributing += 1;
            }
        }
        if contributing > 1 {
            out.sort_by_key(|p| p.ts);
        }
        out
    }

    /// Materialise one field as a `(ts, value)` series, time-sorted; points
    /// lacking the field are skipped.
    pub fn values(self, field: &str) -> Vec<(u64, f64)> {
        let _span = obs::span!("tsdb.query");
        obs::metrics::counter_add("tsdb.queries", 1);
        let mut out: Vec<(u64, f64)> = Vec::new();
        let Some(sym) = self.db.field_symbol(field) else {
            return out;
        };
        let mut contributing = 0usize;
        for id in self.series() {
            if self.db.collect_values(id, sym, self.range, &mut out) {
                contributing += 1;
            }
        }
        if contributing > 1 {
            out.sort_by_key(|&(ts, _)| ts);
        }
        out
    }

    /// Count matching points.
    pub fn count(self) -> usize {
        let _span = obs::span!("tsdb.query");
        obs::metrics::counter_add("tsdb.queries", 1);
        self.series()
            .into_iter()
            .map(|id| self.db.count_rows(id, self.range))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Db {
        let mut db = Db::new();
        for t in 0..20u64 {
            db.insert(
                Point::new("path_set", t)
                    .tag("pid", if t % 2 == 0 { "7" } else { "8" })
                    .tag("dst", "LLC")
                    .field("hits", t as f64),
            );
        }
        db
    }

    #[test]
    fn filter_by_tag() {
        let d = db();
        assert_eq!(d.from("path_set").filter("pid", "7").count(), 10);
        assert_eq!(d.from("path_set").filter("pid", "9").count(), 0);
    }

    #[test]
    fn filters_compose_conjunctively() {
        let d = db();
        assert_eq!(
            d.from("path_set")
                .filter("pid", "7")
                .filter("dst", "LLC")
                .count(),
            10
        );
        assert_eq!(
            d.from("path_set")
                .filter("pid", "7")
                .filter("dst", "L2")
                .count(),
            0
        );
    }

    #[test]
    fn range_is_half_open() {
        let d = db();
        let pts = d.from("path_set").range(5, 10).points();
        assert_eq!(pts.len(), 5);
        assert!(pts.iter().all(|p| (5..10).contains(&p.ts)));
    }

    #[test]
    fn values_are_time_sorted() {
        let mut d = Db::new();
        d.insert(Point::new("m", 30).field("x", 3.0));
        d.insert(Point::new("m", 10).field("x", 1.0));
        d.insert(Point::new("m", 20).field("x", 2.0));
        let v = d.from("m").values("x");
        assert_eq!(v, vec![(10, 1.0), (20, 2.0), (30, 3.0)]);
    }

    #[test]
    fn out_of_order_series_fall_back_to_a_stable_sort() {
        // The lazy sort-on-query fallback: a series whose rows arrived out
        // of order must still answer every query shape in time order, and
        // tied timestamps must keep insertion order (stable sort).
        let mut d = Db::new();
        d.insert(Point::new("m", 50).tag("core", "0").field("x", 5.0));
        d.insert(Point::new("m", 10).tag("core", "0").field("x", 1.0));
        d.insert(Point::new("m", 50).tag("core", "0").field("x", 5.5));
        d.insert(Point::new("m", 30).tag("core", "0").field("x", 3.0));
        assert_eq!(
            d.from("m").values("x"),
            vec![(10, 1.0), (30, 3.0), (50, 5.0), (50, 5.5)]
        );
        assert_eq!(d.from("m").range(10, 50).count(), 2);
        let pts = d.from("m").range(20, 60).points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].ts, 30);
        assert_eq!((pts[1].ts, pts[1].fields["x"]), (50, 5.0));
        assert_eq!((pts[2].ts, pts[2].fields["x"]), (50, 5.5));
    }

    #[test]
    fn tied_timestamps_across_series_surface_in_key_order() {
        // Two series, same timestamps: the merge must order ties by series
        // key ("core=0" before "core=1"), exactly like the row store's
        // key-ordered scan + stable sort.
        let mut d = Db::new();
        for t in [100u64, 200] {
            d.insert(Point::new("m", t).tag("core", "1").field("x", 1.0));
            d.insert(Point::new("m", t).tag("core", "0").field("x", 0.0));
        }
        assert_eq!(
            d.from("m").values("x"),
            vec![(100, 0.0), (100, 1.0), (200, 0.0), (200, 1.0)]
        );
    }

    #[test]
    fn missing_field_rows_are_skipped() {
        let mut d = Db::new();
        d.insert(Point::new("m", 1).field("x", 1.0));
        d.insert(Point::new("m", 2).field("y", 9.0));
        assert_eq!(d.from("m").values("x").len(), 1);
    }

    #[test]
    fn missing_tag_never_matches() {
        let mut d = Db::new();
        d.insert(Point::new("m", 1).field("x", 1.0));
        assert_eq!(d.from("m").filter("core", "0").count(), 0);
    }
}
