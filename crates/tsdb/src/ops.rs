//! Aggregation operators over `(ts, value)` series — the `min()`, `max()`,
//! `avg()`, `movingAverage()` operators PFMaterializer's workflow uses
//! (§4.6, step 2).

/// Minimum value, `None` on an empty series.
pub fn min(series: &[(u64, f64)]) -> Option<f64> {
    series
        .iter()
        .map(|&(_, v)| v)
        .fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.min(v)),
        })
}

/// Maximum value.
pub fn max(series: &[(u64, f64)]) -> Option<f64> {
    series
        .iter()
        .map(|&(_, v)| v)
        .fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
}

/// Sum of values.
pub fn sum(series: &[(u64, f64)]) -> f64 {
    series.iter().map(|&(_, v)| v).sum()
}

/// Arithmetic mean, `None` on an empty series.
pub fn mean(series: &[(u64, f64)]) -> Option<f64> {
    if series.is_empty() {
        None
    } else {
        Some(sum(series) / series.len() as f64)
    }
}

/// Population standard deviation.
pub fn stddev(series: &[(u64, f64)]) -> Option<f64> {
    let m = mean(series)?;
    let var = series.iter().map(|&(_, v)| (v - m) * (v - m)).sum::<f64>() / series.len() as f64;
    Some(var.sqrt())
}

/// Trailing moving average with the given window; output series has the same
/// timestamps, first `window-1` entries average what is available.
pub fn moving_average(series: &[(u64, f64)], window: usize) -> Vec<(u64, f64)> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(series.len());
    let mut acc = 0.0;
    for i in 0..series.len() {
        acc += series[i].1;
        if i >= window {
            acc -= series[i - window].1;
        }
        let n = (i + 1).min(window);
        out.push((series[i].0, acc / n as f64));
    }
    out
}

/// Per-unit-time rate of change between consecutive points (Flux
/// `derivative(unit: 1)`): `(v[i] - v[i-1]) / (ts[i] - ts[i-1])`.
pub fn rate(series: &[(u64, f64)]) -> Vec<(u64, f64)> {
    series
        .windows(2)
        .filter(|w| w[1].0 > w[0].0)
        .map(|w| (w[1].0, (w[1].1 - w[0].1) / (w[1].0 - w[0].0) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(vals: &[f64]) -> Vec<(u64, f64)> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect()
    }

    #[test]
    fn basic_aggregates() {
        let v = s(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        assert_eq!(min(&v), Some(1.0));
        assert_eq!(max(&v), Some(5.0));
        assert_eq!(sum(&v), 14.0);
        assert_eq!(mean(&v), Some(2.8));
    }

    #[test]
    fn empty_series_yield_none() {
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(stddev(&[]), None);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&s(&[2.0, 2.0, 2.0])), Some(0.0));
    }

    #[test]
    fn moving_average_warms_up_then_slides() {
        let v = s(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let ma = moving_average(&v, 2);
        assert_eq!(ma[0].1, 1.0);
        assert_eq!(ma[1].1, 1.5);
        assert_eq!(ma[4].1, 4.5);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let v = s(&[5.0, 7.0, 9.0]);
        assert_eq!(moving_average(&v, 1), v);
    }

    #[test]
    fn rate_uses_time_deltas() {
        let v = vec![(0u64, 0.0), (10, 50.0), (20, 50.0), (30, 20.0)];
        let r = rate(&v);
        assert_eq!(r, vec![(10, 5.0), (20, 0.0), (30, -3.0)]);
    }

    #[test]
    fn rate_skips_duplicate_timestamps() {
        let v = vec![(5u64, 1.0), (5, 2.0), (6, 3.0)];
        assert_eq!(rate(&v).len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        moving_average(&[(0, 1.0)], 0);
    }
}
