//! Time-series analysis: Holt-Winters forecasting, Pearson correlation,
//! and phase-window clustering.
//!
//! These are the §4.6 techniques: `holtWinters()` searches regular
//! (seasonal) patterns that indicate predictable data access; `pearsonr()`
//! cross-correlates mFlows to find locality-impacting neighbours (and in
//! Case 5 gives the 0.998 request-frequency↔bandwidth correlation); the
//! window clustering partitions snapshots into phases of consistent
//! behaviour (Case 6).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` for length < 2 or zero variance in either sample.
pub fn pearsonr(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Additive Holt-Winters (triple exponential smoothing) model.
#[derive(Clone, Debug)]
pub struct HoltWinters {
    pub alpha: f64,
    pub beta: f64,
    pub gamma: f64,
    /// Season length in samples.
    pub season: usize,
}

impl HoltWinters {
    pub fn new(season: usize) -> Self {
        assert!(season >= 2, "season length must be ≥ 2");
        HoltWinters {
            alpha: 0.5,
            beta: 0.1,
            gamma: 0.3,
            season,
        }
    }

    /// Fit on `data` (needs ≥ 2 full seasons) and forecast `horizon` steps.
    /// Returns `(fitted_one_step_ahead, forecast)`.
    pub fn fit_forecast(&self, data: &[f64], horizon: usize) -> Option<(Vec<f64>, Vec<f64>)> {
        let m = self.season;
        if data.len() < 2 * m {
            return None;
        }
        // Initial level/trend from the first two seasons.
        let s1: f64 = data[..m].iter().sum::<f64>() / m as f64;
        let s2: f64 = data[m..2 * m].iter().sum::<f64>() / m as f64;
        let mut level = s1;
        let mut trend = (s2 - s1) / m as f64;
        let mut seasonal: Vec<f64> = (0..m).map(|i| data[i] - s1).collect();

        let mut fitted = Vec::with_capacity(data.len());
        for (t, &y) in data.iter().enumerate() {
            let si = t % m;
            let predict = level + trend + seasonal[si];
            fitted.push(predict);
            let last_level = level;
            level = self.alpha * (y - seasonal[si]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - last_level) + (1.0 - self.beta) * trend;
            seasonal[si] = self.gamma * (y - level) + (1.0 - self.gamma) * seasonal[si];
        }
        let n = data.len();
        let forecast = (0..horizon)
            .map(|h| level + (h + 1) as f64 * trend + seasonal[(n + h) % m])
            .collect();
        Some((fitted, forecast))
    }

    /// Root-mean-square one-step-ahead error of the fit, skipping the first
    /// two warm-up seasons. A small error relative to the signal's stddev
    /// indicates a predictable (seasonal) access pattern.
    pub fn fit_error(&self, data: &[f64]) -> Option<f64> {
        let (fitted, _) = self.fit_forecast(data, 0)?;
        let skip = 2 * self.season;
        if data.len() <= skip {
            return None;
        }
        let se: f64 = data[skip..]
            .iter()
            .zip(fitted[skip..].iter())
            .map(|(y, f)| (y - f) * (y - f))
            .sum();
        Some((se / (data.len() - skip) as f64).sqrt())
    }
}

/// Classical additive decomposition of a series into trend, seasonal and
/// residual components (§4.6: PathFinder "applies classical time series
/// analysis techniques to explore data trend, seasonality, and residual
/// (or anomaly)").
#[derive(Clone, Debug)]
pub struct Decomposition {
    pub trend: Vec<f64>,
    pub seasonal: Vec<f64>,
    pub residual: Vec<f64>,
}

/// Decompose `data` with season length `m` (centred moving-average trend,
/// per-phase mean seasonal, additive residual). Needs ≥ 2 full seasons.
pub fn decompose(data: &[f64], m: usize) -> Option<Decomposition> {
    if m < 2 || data.len() < 2 * m {
        return None;
    }
    let n = data.len();
    // Centred moving average of window m (edges use what is available).
    let half = m / 2;
    let mut trend = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        trend.push(data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64);
    }
    // Seasonal = per-phase mean of the detrended series, centred to sum 0.
    let mut phase_sum = vec![0.0; m];
    let mut phase_n = vec![0usize; m];
    for i in 0..n {
        phase_sum[i % m] += data[i] - trend[i];
        phase_n[i % m] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_n)
        .map(|(s, &c)| s / c.max(1) as f64)
        .collect();
    let grand = phase_mean.iter().sum::<f64>() / m as f64;
    for v in &mut phase_mean {
        *v -= grand;
    }
    let seasonal: Vec<f64> = (0..n).map(|i| phase_mean[i % m]).collect();
    let residual: Vec<f64> = (0..n).map(|i| data[i] - trend[i] - seasonal[i]).collect();
    Some(Decomposition {
        trend,
        seasonal,
        residual,
    })
}

/// Anomalous sample indices: residuals beyond `k` standard deviations of
/// the residual distribution (the "residual (or anomaly)" half of §4.6).
/// The first and last half-window are excluded — the truncated
/// moving-average trend is biased there and would produce edge artefacts.
pub fn anomalies(data: &[f64], m: usize, k: f64) -> Vec<usize> {
    let Some(d) = decompose(data, m) else {
        return Vec::new();
    };
    let half = m / 2;
    if d.residual.len() <= 2 * half {
        return Vec::new();
    }
    let interior = &d.residual[half..d.residual.len() - half];
    let n = interior.len() as f64;
    let mean = interior.iter().sum::<f64>() / n;
    let var = interior
        .iter()
        .map(|r| (r - mean) * (r - mean))
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        return Vec::new();
    }
    interior
        .iter()
        .enumerate()
        .filter(|(_, &r)| (r - mean).abs() > k * sd)
        .map(|(i, _)| i + half)
        .collect()
}

/// A phase window found by [`cluster_windows`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Window {
    /// First sample index (inclusive).
    pub start: usize,
    /// Last sample index (exclusive).
    pub end: usize,
    /// Mean value inside the window.
    pub mean: f64,
}

impl Window {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Greedy 1-D time-series clustering: split the series into contiguous
/// windows whose values stay within `rel_tol` (relative, against the running
/// window mean) or `abs_tol` (absolute). This is PFMaterializer's "partition
/// snapshots into multiple windows with similar hits; the window length
/// reflects how long an application stays in the current phase" (§4.6).
pub fn cluster_windows(data: &[f64], rel_tol: f64, abs_tol: f64) -> Vec<Window> {
    let mut out = Vec::new();
    if data.is_empty() {
        return out;
    }
    let mut start = 0;
    let mut sum = data[0];
    for (i, &v) in data.iter().enumerate().skip(1) {
        let mean = sum / (i - start) as f64;
        let tol = (mean.abs() * rel_tol).max(abs_tol);
        if (v - mean).abs() > tol {
            out.push(Window {
                start,
                end: i,
                mean,
            });
            start = i;
            sum = v;
        } else {
            sum += v;
        }
    }
    out.push(Window {
        start,
        end: data.len(),
        mean: sum / (data.len() - start) as f64,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearsonr(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearsonr(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate_inputs() {
        assert_eq!(pearsonr(&[1.0], &[2.0]), None);
        assert_eq!(pearsonr(&[1.0, 2.0], &[5.0, 5.0]), None);
        assert_eq!(pearsonr(&[1.0, 2.0, 3.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        // Deterministic pseudo-random-ish sequences with no linear relation.
        let x: Vec<f64> = (0..200).map(|i| ((i * 7919) % 101) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 104729) % 97) as f64).collect();
        let r = pearsonr(&x, &y).unwrap();
        assert!(r.abs() < 0.2, "r = {r}");
    }

    #[test]
    fn holt_winters_tracks_a_clean_seasonal_signal() {
        let season = 8;
        let data: Vec<f64> = (0..80)
            .map(|t| 100.0 + 0.5 * t as f64 + 20.0 * ((t % season) as f64 - 3.5))
            .collect();
        let hw = HoltWinters::new(season);
        let err = hw.fit_error(&data).unwrap();
        // Signal swings ±70; a good seasonal fit gets within a few units.
        assert!(err < 10.0, "fit error {err}");
        let (_, forecast) = hw.fit_forecast(&data, season).unwrap();
        assert_eq!(forecast.len(), season);
        // Forecast continues the trend: mean above the data mean.
        let dm = data.iter().sum::<f64>() / data.len() as f64;
        let fm = forecast.iter().sum::<f64>() / forecast.len() as f64;
        assert!(fm > dm);
    }

    #[test]
    fn holt_winters_needs_two_seasons() {
        let hw = HoltWinters::new(10);
        assert!(hw.fit_forecast(&[1.0; 19], 5).is_none());
        assert!(hw.fit_forecast(&[1.0; 20], 5).is_some());
    }

    #[test]
    fn decompose_recovers_trend_and_season() {
        let m = 8;
        let data: Vec<f64> = (0..96)
            .map(|t| 2.0 * t as f64 + 15.0 * ((t % m) as f64 - 3.5))
            .collect();
        let d = decompose(&data, m).unwrap();
        // The seasonal component must be m-periodic and zero-mean.
        for i in 0..m {
            assert!((d.seasonal[i] - d.seasonal[i + m]).abs() < 1e-9);
        }
        let mean: f64 = d.seasonal[..m].iter().sum::<f64>() / m as f64;
        assert!(mean.abs() < 1e-9);
        // The trend must rise ≈ 2 per step in the interior.
        let slope = (d.trend[80] - d.trend[16]) / 64.0;
        assert!((slope - 2.0).abs() < 0.3, "slope {slope}");
    }

    #[test]
    fn decompose_needs_two_seasons() {
        assert!(decompose(&[1.0; 15], 8).is_none());
        assert!(decompose(&[1.0; 16], 8).is_some());
        assert!(decompose(&[1.0; 100], 1).is_none());
    }

    #[test]
    fn anomalies_flag_injected_spikes() {
        let m = 8;
        let mut data: Vec<f64> = (0..96).map(|t| 100.0 + 10.0 * ((t % m) as f64)).collect();
        data[40] += 500.0; // inject an anomaly
        data[77] -= 400.0;
        let hits = anomalies(&data, m, 4.0);
        assert!(hits.contains(&40), "missed spike at 40: {hits:?}");
        assert!(hits.contains(&77), "missed dip at 77: {hits:?}");
        assert!(hits.len() <= 6, "too many false positives: {hits:?}");
    }

    #[test]
    fn clean_seasonal_series_has_no_anomalies() {
        let data: Vec<f64> = (0..64).map(|t| 50.0 + 5.0 * ((t % 4) as f64)).collect();
        assert!(anomalies(&data, 4, 4.0).is_empty());
    }

    #[test]
    fn clustering_splits_at_level_shifts() {
        let mut data = vec![10.0; 50];
        data.extend(vec![100.0; 30]);
        data.extend(vec![10.0; 20]);
        let w = cluster_windows(&data, 0.2, 1.0);
        assert_eq!(w.len(), 3);
        assert_eq!(
            w[0],
            Window {
                start: 0,
                end: 50,
                mean: 10.0
            }
        );
        assert_eq!(w[1].start, 50);
        assert_eq!(w[1].end, 80);
        assert_eq!(w[2].end, 100);
    }

    #[test]
    fn clustering_tolerates_noise_within_tol() {
        let data: Vec<f64> = (0..100).map(|i| 50.0 + (i % 3) as f64).collect();
        let w = cluster_windows(&data, 0.1, 0.5);
        assert_eq!(w.len(), 1, "small wiggle must stay one phase: {w:?}");
    }

    #[test]
    fn clustering_empty_and_singleton() {
        assert!(cluster_windows(&[], 0.1, 0.1).is_empty());
        let w = cluster_windows(&[5.0], 0.1, 0.1);
        assert_eq!(
            w,
            vec![Window {
                start: 0,
                end: 1,
                mean: 5.0
            }]
        );
    }
}
