//! Records: a measurement name, a timestamp, tags, and numeric fields.
//!
//! `Point` is the row-oriented builder API — a compatibility shim over the
//! columnar store in [`crate::db`]. Cold call sites build one `Point` per
//! record; hot per-epoch loops should resolve a [`crate::SeriesId`] once
//! and use [`crate::Db::ingest`] instead (no string formatting per
//! record). [`Point::retained_bytes`] remains the unit of the §5.9
//! logical footprint accounting either way.

use std::collections::BTreeMap;

/// One record. Tags index series membership (small cardinality, exact
/// match); fields carry the counter values.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    pub measurement: String,
    /// Timestamp (the simulator uses machine cycles).
    pub ts: u64,
    pub tags: BTreeMap<String, String>,
    pub fields: BTreeMap<String, f64>,
}

impl Point {
    pub fn new(measurement: impl Into<String>, ts: u64) -> Point {
        Point {
            measurement: measurement.into(),
            ts,
            tags: BTreeMap::new(),
            fields: BTreeMap::new(),
        }
    }

    /// Add a tag (builder style).
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Point {
        self.tags.insert(key.into(), value.into());
        self
    }

    /// Add a field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: f64) -> Point {
        self.fields.insert(key.into(), value);
        self
    }

    /// Resident bytes of this record: the struct itself plus every owned
    /// heap allocation (string contents and per-entry map nodes). This is
    /// the per-point term of the §5.9 retained-memory accounting.
    pub fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Point>()
            + self.measurement.len()
            + self
                .tags
                .iter()
                .map(|(k, v)| size_of::<(String, String)>() + k.len() + v.len())
                .sum::<usize>()
            + self
                .fields
                .keys()
                .map(|k| size_of::<(String, f64)>() + k.len())
                .sum::<usize>()
    }

    /// The series key: measurement plus the sorted tag set.
    pub fn series_key(&self) -> String {
        let mut key = self.measurement.clone();
        for (k, v) in &self.tags {
            key.push(',');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_tags_and_fields() {
        let p = Point::new("path_set", 100)
            .tag("pid", "7")
            .tag("dst", "LLC")
            .field("hits", 42.0);
        assert_eq!(p.ts, 100);
        assert_eq!(p.tags["dst"], "LLC");
        assert_eq!(p.fields["hits"], 42.0);
    }

    #[test]
    fn series_key_is_tag_order_independent() {
        let a = Point::new("m", 0).tag("b", "2").tag("a", "1");
        let b = Point::new("m", 9).tag("a", "1").tag("b", "2");
        assert_eq!(a.series_key(), b.series_key());
    }

    #[test]
    fn different_tags_different_series() {
        let a = Point::new("m", 0).tag("core", "0");
        let b = Point::new("m", 0).tag("core", "1");
        assert_ne!(a.series_key(), b.series_key());
    }
}
