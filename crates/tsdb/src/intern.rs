//! String interning for the columnar store.
//!
//! Every measurement name, tag key, tag value, and field name the store
//! ever sees is assigned one [`Symbol`] — a dense `u32` in first-seen
//! order. The hot ingest path then works purely on symbols: no string
//! formatting, no string hashing, no map probes. Resolution back to text
//! happens only on the (cold) query side.
//!
//! Determinism rules (PERFORMANCE.md):
//! * ids are **insertion-ordered** — the same sequence of `intern` calls
//!   yields the same ids, independent of platform or hasher seeds;
//! * the table is backed by a `BTreeMap` (ordered compare, no hashing),
//!   so iteration anywhere stays byte-reproducible run-to-run.

use std::collections::BTreeMap;

/// An interned string: a dense index into the [`Interner`]'s table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deterministic, insertion-ordered string table.
#[derive(Debug, Default)]
pub struct Interner {
    /// text → symbol. BTreeMap: resolution cost is an ordered compare,
    /// never a seed-dependent hash.
    map: BTreeMap<String, Symbol>,
    /// symbol index → text, in first-seen order.
    strings: Vec<String>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, assigning the next insertion-ordered id on first sight.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        assert!(self.strings.len() < u32::MAX as usize, "symbol id overflow");
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Resolve text to an existing symbol without interning. `None` means
    /// the store has never seen this string — queries use this to answer
    /// "no match" without mutating the table.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The text behind a symbol.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Actual heap bytes held by the table (both directions), for
    /// [`crate::Db::resident_bytes`].
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.strings
            .iter()
            .map(|s| 2 * s.len() + size_of::<String>() + size_of::<(String, Symbol)>())
            .sum::<usize>()
            + self.strings.capacity() * size_of::<String>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_insertion_ordered_and_stable() {
        let mut i = Interner::new();
        let a = i.intern("path_set");
        let b = i.intern("core");
        let a2 = i.intern("path_set");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.resolve(a), "path_set");
        assert_eq!(i.resolve(b), "core");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_never_interns() {
        let mut i = Interner::new();
        assert!(i.lookup("missing").is_none());
        assert!(i.is_empty());
        let s = i.intern("hit");
        assert_eq!(i.lookup("hit"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        // The profiler tags unlabelled cores with `app=""`.
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.lookup(""), Some(e));
    }
}
