//! # tsdb — an embedded time-series database
//!
//! PathFinder's PFMaterializer (§4.6) "employs a time-series database (like
//! InfluxDB), encapsulates a snapshot as a compacted record, and conducts
//! time-series analysis". This crate is that substrate, self-contained:
//!
//! * [`point::Point`] / [`db::Db`] — tagged, timestamped records with
//!   series indexing.
//! * [`query::Query`] — a small Flux-like builder
//!   (`from("path_set").filter("path.dst","LLC").range(a,b)`).
//! * [`ops`] — `min`/`max`/`mean`/`sum`/`moving_average`/`rate` operators.
//! * [`tsa`] — Holt-Winters forecasting (`holtWinters()`), Pearson
//!   correlation (`pearsonr()`), and the window-clustering step PathFinder
//!   uses to find phases of consistent data locality.

pub mod db;
pub mod ops;
pub mod point;
pub mod query;
pub mod tsa;

pub use db::Db;
pub use point::Point;
pub use query::Query;
