//! # tsdb — an embedded time-series database
//!
//! PathFinder's PFMaterializer (§4.6) "employs a time-series database (like
//! InfluxDB), encapsulates a snapshot as a compacted record, and conducts
//! time-series analysis". This crate is that substrate, self-contained:
//!
//! * [`db::Db`] — an interned, columnar store: series are addressed by
//!   [`db::SeriesId`] handles, strings by [`intern::Symbol`]s, and data
//!   lives in per-series timestamp/field columns. The steady-state ingest
//!   path ([`db::Db::ingest`]) is allocation-free (see PERFORMANCE.md).
//! * [`point::Point`] — the row-oriented builder record, kept as a thin
//!   compatibility shim over the columnar store ([`db::Db::insert`]).
//! * [`query::Query`] — a small Flux-like builder
//!   (`from("path_set").filter("path.dst","LLC").range(a,b)`).
//! * [`ops`] — `min`/`max`/`mean`/`sum`/`moving_average`/`rate` operators.
//! * [`tsa`] — Holt-Winters forecasting (`holtWinters()`), Pearson
//!   correlation (`pearsonr()`), and the window-clustering step PathFinder
//!   uses to find phases of consistent data locality.

pub mod db;
pub mod intern;
pub mod ops;
pub mod point;
pub mod query;
pub mod tsa;

pub use db::{Db, SeriesId};
pub use intern::{Interner, Symbol};
pub use point::Point;
pub use query::Query;
