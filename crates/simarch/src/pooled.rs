//! The pooled CXL Type-3 memory device shared by every tenant host.
//!
//! In a pooling fabric the device-side memory controller is one physical
//! resource multiplexed across N hosts: each host's DRAM accesses share
//! the same RPQ/WPQ and media bandwidth, so one tenant's burst inflates
//! every tenant's device wait. The pooled device keeps its accounting
//! **per host** (`pmu::PoolEvent`, one bank per tenant) — occupancy and
//! wait split by who issued the CAS, plus the fabric-computed
//! excess-over-alone wait that prices each host's share of the
//! contention. That per-host split is what lets `core::analyzer` name the
//! culprit tenant from counters alone.

use crate::config::MachineConfig;
use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::queues::{FifoServer, Service};
use pmu::PoolEvent;

/// Per-host accounting (free-running totals; drained as deltas).
#[derive(Clone, Debug, Default)]
struct HostStats {
    rd_cas: u64,
    wr_cas: u64,
    /// Σ (finish − arrival): MC residency attributed to this host.
    occupancy: u64,
    /// Σ (service start − arrival): pure queueing delay.
    wait: u64,
    /// Fabric-computed wait beyond what this host would see alone.
    excess: u64,
    synced_rd: u64,
    synced_wr: u64,
    synced_occupancy: u64,
    synced_wait: u64,
    synced_excess: u64,
}

/// The pooled Type-3 device: one shared MC, per-host accounting.
#[derive(Debug)]
pub struct PooledDevice {
    mc: FifoServer,
    latency_media: u64,
    gap: u64,
    stats: Vec<HostStats>,
}

impl PooledDevice {
    /// A pooled device shared by `hosts` tenants, with the same media
    /// latency and issue gap as a dedicated Type-3 device under `cfg` —
    /// so a single tenant sees exactly the timing it would see alone.
    pub fn new(cfg: &MachineConfig, hosts: usize) -> PooledDevice {
        assert!(hosts > 0, "a pooled device needs at least one tenant");
        PooledDevice {
            mc: FifoServer::new(),
            latency_media: cfg.cxl_media_latency,
            gap: cfg.cxl_dev_gap,
            stats: vec![HostStats::default(); hosts],
        }
    }

    pub fn hosts(&self) -> usize {
        self.stats.len()
    }

    /// One CAS on behalf of `host`, arriving from the switch at `arrive`.
    pub fn access(&mut self, host: usize, arrive: u64, is_write: bool) -> Service {
        let svc = self.mc.serve(arrive, self.latency_media, self.gap);
        let st = &mut self.stats[host];
        if is_write {
            st.wr_cas += 1;
        } else {
            st.rd_cas += 1;
        }
        st.occupancy += svc.finish - arrive;
        st.wait += svc.start - arrive;
        svc
    }

    /// Credit `host` with `cycles` of excess-over-alone wait for the
    /// epoch (computed by `fabric::Fabric` from the private-replica
    /// replay).
    pub fn add_excess(&mut self, host: usize, cycles: u64) {
        self.stats[host].excess += cycles;
    }

    /// Total queueing delay host `host` has accumulated at the shared MC.
    pub fn host_wait(&self, host: usize) -> u64 {
        self.stats[host].wait
    }
}

impl crate::module::SimModule for PooledDevice {
    fn stage_id(&self) -> crate::module::StageId {
        crate::module::StageId::pool()
    }

    fn name(&self) -> &'static str {
        "module.cxlpool"
    }

    // pflint::hot
    fn tick(&mut self, _until: u64) {}

    // pflint::hot
    fn drain(&mut self, pmu: &mut pmu::SystemPmu, epoch_cycles: u64) {
        for (h, st) in self.stats.iter_mut().enumerate() {
            let bank = &mut pmu.pools[h];
            bank.add(PoolEvent::ClockTicks, epoch_cycles);
            bank.add(PoolEvent::McRdCas, st.rd_cas - st.synced_rd);
            st.synced_rd = st.rd_cas;
            bank.add(PoolEvent::McWrCas, st.wr_cas - st.synced_wr);
            st.synced_wr = st.wr_cas;
            bank.add(PoolEvent::McOccupancy, st.occupancy - st.synced_occupancy);
            st.synced_occupancy = st.occupancy;
            bank.add(PoolEvent::McWaitCycles, st.wait - st.synced_wait);
            st.synced_wait = st.wait;
            bank.add(PoolEvent::ExcessWaitCycles, st.excess - st.synced_excess);
            st.synced_excess = st.excess;
        }
    }

    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&[
            "unc_cxlpool_clockticks",
            "unc_cxlpool_mc_cas.rd",
            "unc_cxlpool_mc_cas.wr",
            "unc_cxlpool_mc_occupancy.host",
            "unc_cxlpool_mc_wait_cycles.host",
            "unc_cxlpool_mc_excess_wait_cycles.host",
        ])
    }

    fn occupancy(&self, now: u64) -> u64 {
        self.mc.next_free().saturating_sub(now) / self.gap.max(1)
    }
}

impl Invariants for PooledDevice {
    fn component(&self) -> &'static str {
        "pooled::PooledDevice"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        self.mc.collect_violations(out);
        for (h, st) in self.stats.iter().enumerate() {
            invariant!(
                out,
                self.component(),
                st.wait <= st.occupancy,
                "host {h}: wait({}) exceeds occupancy({})",
                st.wait,
                st.occupancy
            );
            let baselines = [
                ("rd_cas", st.synced_rd, st.rd_cas),
                ("wr_cas", st.synced_wr, st.wr_cas),
                ("occupancy", st.synced_occupancy, st.occupancy),
                ("wait", st.synced_wait, st.wait),
                ("excess", st.synced_excess, st.excess),
            ];
            for (name, synced, total) in baselines {
                invariant!(
                    out,
                    self.component(),
                    synced <= total,
                    "host {h}: {name} synced baseline ahead of accumulator: {synced} > {total}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::assert_invariants;
    use crate::module::SimModule;
    use pmu::SystemPmu;

    fn pool() -> PooledDevice {
        PooledDevice::new(&MachineConfig::spr(), 2)
    }

    #[test]
    fn idle_access_pays_media_latency_only() {
        let mut p = pool();
        let cfg = MachineConfig::spr();
        let svc = p.access(0, 100, false);
        assert_eq!(svc.start, 100);
        assert_eq!(svc.finish, 100 + cfg.cxl_media_latency);
        assert_eq!(p.host_wait(0), 0);
    }

    #[test]
    fn contention_charges_wait_to_the_right_host() {
        let mut p = pool();
        p.access(0, 0, false);
        let svc = p.access(1, 0, true);
        assert!(svc.start > 0, "second access must queue behind the first");
        assert_eq!(p.host_wait(0), 0);
        assert_eq!(p.host_wait(1), svc.start);
        assert_invariants(&p);
    }

    #[test]
    fn drain_splits_banks_per_host() {
        let mut p = pool();
        p.access(0, 0, false);
        p.access(0, 0, false);
        p.access(1, 0, true);
        p.add_excess(1, 17);
        let mut pmu = SystemPmu::fabric(2);
        p.drain(&mut pmu, 500);
        assert_eq!(pmu.pools[0].read(PoolEvent::McRdCas), 2);
        assert_eq!(pmu.pools[0].read(PoolEvent::McWrCas), 0);
        assert_eq!(pmu.pools[1].read(PoolEvent::McWrCas), 1);
        assert_eq!(pmu.pools[1].read(PoolEvent::ExcessWaitCycles), 17);
        assert!(pmu.pools[1].read(PoolEvent::McWaitCycles) > 0);
        // Idempotent without new traffic.
        p.drain(&mut pmu, 500);
        assert_eq!(pmu.pools[0].read(PoolEvent::McRdCas), 2);
        assert_eq!(pmu.pools[1].read(PoolEvent::ExcessWaitCycles), 17);
        assert_eq!(pmu.pools[0].read(PoolEvent::ClockTicks), 1000);
    }
}
