//! # simarch — a simulated CXL.mem server
//!
//! A deterministic, request-level micro-architecture simulator of an Intel
//! Sapphire-Rapids / Emerald-Rapids-class server with local DDR5 DIMMs and
//! CXL Type-3 memory devices. It is the hardware substrate for the
//! PathFinder profiler reproduction: the paper profiles real silicon through
//! PMU counters, and this crate exposes *the same counters with the same
//! semantics* (see the `pmu` crate) over a simulated memory hierarchy.
//!
//! ## Modelled hardware (paper §2.2, Figure 1)
//!
//! Request direction, ingress → egress, exactly the Clos stages PathFinder
//! assumes:
//!
//! ```text
//! core ─ SB ─┐
//!            ├─ L1D ─ LFB ─ L2 ─ mesh ─ CHA(LLC slice + SF + TOR) ─┬─ IMC(RPQ/WPQ) ─ DRAM
//! HW/SW PF ──┘                                                     └─ M2PCIe ─ FlexBus ─ CXL dev(MC) ─ DDR4
//! ```
//!
//! The four architectural request classes that spawn CXL.mem transactions
//! are modelled end-to-end: demand reads (DRd), demand writes (DWr → RFO →
//! write-back), read-for-ownership (RFO), and hardware/software prefetch.
//!
//! ## Timing model
//!
//! Each shared resource (L2 port, CHA slice, IMC channel, FlexBus link, CXL
//! device controller) is a FIFO server with a fixed service latency and an
//! issue gap (1/bandwidth); a request arriving at cycle `t` starts at
//! `max(t, resource.next_free)`. Finite structures (SB, LFB, request
//! windows) bound memory-level parallelism and create the back-pressure the
//! paper studies. Everything is a pure function of
//! `(MachineConfig, workload, seed)`.

pub mod arena;
mod batch;
pub mod cache;
pub mod cha;
pub mod config;
mod conservation;
pub mod core_model;
pub mod cxl;
mod datapath;
pub mod fabric;
pub mod faults;
pub mod imc;
pub mod invariants;
pub mod machine;
pub mod mem;
pub mod module;
pub mod pooled;
pub mod prefetch;
pub mod queues;
pub mod remote;
pub mod request;
pub mod switch;
pub mod trace;
pub mod wheel;

pub use config::{MachineConfig, MemPolicy};
pub use fabric::{Fabric, FabricConfig, FabricEpochResult};
pub use faults::{FaultClass, FaultPlan, FaultWindow};
pub use invariants::{Invariants, Violation};
pub use machine::{DatapathMode, EpochResult, Machine, RunSummary, SchedMode, StallError};
pub use mem::{MemNode, PhysAddr, CACHELINE, PAGE_SIZE};
pub use module::{Edge, SimModule, StageId, StageKind, Topology};
pub use pooled::PooledDevice;
pub use remote::RemoteSocket;
pub use request::{AccessKind, HostId, MemOp, ServeLoc};
pub use switch::{Arbitration, CxlSwitch, Grant};
pub use trace::{TraceSource, Workload};
pub use wheel::EventWheel;
