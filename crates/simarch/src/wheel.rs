//! A hierarchical timer wheel for the epoch scheduler.
//!
//! The reference scheduler picks the next core to step with an `argmin`
//! scan over every core per step. The wheel replaces that with O(1)
//! expected pops: each schedulable module is keyed on its next progress
//! tick, and the scheduler pops wakeups in `(tick, item)` order — the
//! exact total order the reference scan implies (earliest time first,
//! lowest [`crate::module::StageId`] on ties). Idle modules are simply
//! absent from the wheel and cost nothing.
//!
//! Layout: level 0 is 256 one-tick slots covering the current 256-tick
//! block; level 1 is 64 slots of one 256-tick block each (16 Ki ticks of
//! horizon); everything further out sits in an unsorted overflow list
//! that refills level 1 as the wheel turns. Occupancy bitmaps make
//! find-next-slot a couple of trailing-zero counts.

/// Ticks covered by level 0 (one slot per tick).
const L0_SPAN: u64 = 256;
/// Level-1 slots, each covering one 256-tick block.
const L1_SLOTS: usize = 64;
/// Ticks covered by level 0 + level 1 together.
const SPAN: u64 = L0_SPAN * L1_SLOTS as u64;

/// A timer wheel over `Copy + Ord` items. Same-tick wakeups pop in item
/// order, which is what makes the scheduler deterministic: for modules
/// the item is a [`crate::module::StageId`], whose `Ord` is the drain
/// order.
#[derive(Clone, Debug)]
pub struct EventWheel<T> {
    /// First tick covered by level 0; always a multiple of 256.
    base: u64,
    /// The wheel clock. Scheduling in the past clamps to `now`.
    now: u64,
    /// Level 0: slot `s` holds items due exactly at `base + s`.
    l0: Vec<Vec<T>>,
    /// Level-0 occupancy, one bit per slot.
    occ0: [u64; 4],
    /// Level 1: slot `block & 63` holds items due in that 256-tick block.
    l1: Vec<Vec<(u64, T)>>,
    /// Level-1 occupancy, one bit per slot.
    occ1: u64,
    /// Items due beyond the level-1 horizon.
    overflow: Vec<(u64, T)>,
    len: usize,
}

impl<T: Copy + Ord> EventWheel<T> {
    pub fn new(start: u64) -> EventWheel<T> {
        EventWheel {
            base: start & !(L0_SPAN - 1),
            now: start,
            l0: (0..L0_SPAN).map(|_| Vec::new()).collect(),
            occ0: [0; 4],
            l1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
            occ1: 0,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// The wheel clock (the tick of the last pop, or the reset point).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scheduled wakeups outstanding.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every scheduled wakeup and restart the clock at `start`.
    /// Reuses the slot allocations, so a per-epoch reset never allocates
    /// once the wheel has warmed up.
    pub fn reset(&mut self, start: u64) {
        if self.len != 0 {
            for v in &mut self.l0 {
                v.clear();
            }
            for v in &mut self.l1 {
                v.clear();
            }
            self.overflow.clear();
            self.occ0 = [0; 4];
            self.occ1 = 0;
            self.len = 0;
        }
        self.base = start & !(L0_SPAN - 1);
        self.now = start;
    }

    /// Schedule `item` to pop at `tick`. A tick already in the past wakes
    /// immediately (clamped to `now`) — a module reporting a stale next
    /// event must still be visited, never lost.
    // pflint::hot — per-wakeup path of the scheduler; must not allocate
    // beyond amortized slot growth.
    pub fn schedule(&mut self, tick: u64, item: T) {
        let t = tick.max(self.now);
        self.len += 1;
        if t < self.base + L0_SPAN {
            let s = (t - self.base) as usize;
            self.l0[s].push(item);
            self.occ0[s >> 6] |= 1 << (s & 63);
        } else if t < self.base + SPAN {
            let s = ((t / L0_SPAN) as usize) & (L1_SLOTS - 1);
            self.l1[s].push((t, item));
            self.occ1 |= 1 << s;
        } else {
            self.overflow.push((t, item));
        }
    }

    /// Earliest scheduled tick, if any (no mutation). O(slots) worst
    /// case — meant for quiescence probes, not the pop loop.
    pub fn next_tick(&self) -> Option<u64> {
        let from = (self.now - self.base) as usize;
        if let Some(s) = self.next_occ0(from) {
            return Some(self.base + s as u64);
        }
        let l1_min = self.l1.iter().flat_map(|v| v.iter().map(|&(t, _)| t)).min();
        let ov_min = self.overflow.iter().map(|&(t, _)| t).min();
        match (l1_min, ov_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pop the earliest wakeup strictly before `limit`, advancing the
    /// clock to its tick. Same-tick items pop in `T` order. Returns
    /// `None` (clock untouched past the last pop) once nothing is due
    /// before the limit.
    // pflint::hot — the scheduler's inner loop; must not allocate.
    pub fn pop_before(&mut self, limit: u64) -> Option<(u64, T)> {
        loop {
            if self.len == 0 || self.now >= limit {
                return None;
            }
            let from = (self.now - self.base) as usize;
            if let Some(s) = self.next_occ0(from) {
                let tick = self.base + s as u64;
                if tick >= limit {
                    return None;
                }
                let slot = &mut self.l0[s];
                let mut mi = 0;
                for i in 1..slot.len() {
                    if slot[i] < slot[mi] {
                        mi = i;
                    }
                }
                let item = slot.swap_remove(mi);
                if slot.is_empty() {
                    self.occ0[s >> 6] &= !(1 << (s & 63));
                }
                self.now = tick;
                self.len -= 1;
                return Some((tick, item));
            }
            // Level 0 is dry: everything pending sits at or beyond the
            // next block boundary.
            if self.base + L0_SPAN >= limit {
                return None;
            }
            self.turn();
        }
    }

    /// Advance the clock to `tick` without popping (the epoch boundary
    /// after the pop loop drains).
    pub fn advance_to(&mut self, tick: u64) {
        while self.base + L0_SPAN <= tick {
            debug_assert!(
                self.next_occ0((self.now - self.base) as usize).is_none(),
                "advance_to must not skip scheduled level-0 wakeups"
            );
            self.turn();
        }
        self.now = self.now.max(tick);
    }

    /// First occupied level-0 slot at or after `from`, if any.
    #[inline]
    fn next_occ0(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        // Mask off bits below `from` in its word, then scan forward.
        let mut bits = self.occ0[w] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= 4 {
                return None;
            }
            bits = self.occ0[w];
        }
    }

    /// Rotate one 256-tick block forward: cascade the next block's
    /// level-1 slot into level 0 and pull newly-in-horizon overflow
    /// entries into level 1.
    fn turn(&mut self) {
        self.base += L0_SPAN;
        self.now = self.now.max(self.base);
        let block = self.base / L0_SPAN;
        let s = (block as usize) & (L1_SLOTS - 1);
        if self.occ1 & (1 << s) != 0 {
            // The whole slot belongs to the new current block: the slot
            // index determines the block modulo 64, and anything 64+
            // blocks out lives in overflow.
            while let Some((t, item)) = self.l1[s].pop() {
                debug_assert_eq!(t / L0_SPAN, block, "level-1 slot holds a foreign block");
                let slot = (t - self.base) as usize;
                self.l0[slot].push(item);
                self.occ0[slot >> 6] |= 1 << (slot & 63);
            }
            self.occ1 &= !(1 << s);
        }
        // Wrap-around refill: overflow entries whose tick just entered
        // the level-1 horizon move up a level.
        let horizon = self.base + SPAN;
        let mut i = 0;
        while i < self.overflow.len() {
            let (t, _) = self.overflow[i];
            if t < horizon {
                let (t, item) = self.overflow.swap_remove(i);
                if t < self.base + L0_SPAN {
                    let slot = (t - self.base) as usize;
                    self.l0[slot].push(item);
                    self.occ0[slot >> 6] |= 1 << (slot & 63);
                } else {
                    let s = ((t / L0_SPAN) as usize) & (L1_SLOTS - 1);
                    self.l1[s].push((t, item));
                    self.occ1 |= 1 << s;
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::StageId;

    #[test]
    fn pops_in_tick_order() {
        let mut w: EventWheel<u32> = EventWheel::new(0);
        w.schedule(30, 3);
        w.schedule(10, 1);
        w.schedule(20, 2);
        assert_eq!(w.pop_before(100), Some((10, 1)));
        assert_eq!(w.pop_before(100), Some((20, 2)));
        assert_eq!(w.pop_before(100), Some((30, 3)));
        assert_eq!(w.pop_before(100), None);
        assert!(w.is_empty());
    }

    #[test]
    fn limit_is_exclusive_and_preserves_pending() {
        let mut w: EventWheel<u32> = EventWheel::new(0);
        w.schedule(5, 1);
        w.schedule(7, 2);
        assert_eq!(w.pop_before(6), Some((5, 1)));
        assert_eq!(w.pop_before(6), None);
        assert_eq!(w.pop_before(7), None, "limit is exclusive");
        assert_eq!(w.pop_before(8), Some((7, 2)));
    }

    #[test]
    fn past_ticks_clamp_to_now() {
        let mut w: EventWheel<u32> = EventWheel::new(0);
        w.schedule(50, 1);
        assert_eq!(w.pop_before(100), Some((50, 1)));
        // A stale next-event report must still surface, at the clock.
        w.schedule(10, 2);
        assert_eq!(w.pop_before(100), Some((50, 2)));
    }

    #[test]
    fn same_tick_wakeups_pop_in_stage_id_order() {
        let mut w: EventWheel<StageId> = EventWheel::new(0);
        // Insert in deliberately shuffled order; all due the same tick.
        w.schedule(40, StageId::cxl(1));
        w.schedule(40, StageId::core(2));
        w.schedule(40, StageId::cha());
        w.schedule(40, StageId::core(0));
        w.schedule(40, StageId::imc());
        let order: Vec<StageId> =
            std::iter::from_fn(|| w.pop_before(100).map(|(_, s)| s)).collect();
        assert_eq!(
            order,
            vec![
                StageId::core(0),
                StageId::core(2),
                StageId::cha(),
                StageId::imc(),
                StageId::cxl(1),
            ],
            "same-tick wakeups must pop in ascending StageId (drain) order"
        );
    }

    #[test]
    fn wraps_around_level_capacity() {
        // Beyond L0 (256), beyond L0+L1 (16384), and far overflow: the
        // wheel must cascade each back in as the clock turns past it.
        let mut w: EventWheel<u32> = EventWheel::new(0);
        w.schedule(3, 0);
        w.schedule(L0_SPAN + 9, 1); // level 1
        w.schedule(SPAN + 17, 2); // overflow, one horizon out
        w.schedule(3 * SPAN + 5, 3); // overflow, several horizons out
        let mut got = Vec::new();
        while let Some(p) = w.pop_before(u64::MAX) {
            got.push(p);
        }
        assert_eq!(
            got,
            vec![(3, 0), (L0_SPAN + 9, 1), (SPAN + 17, 2), (3 * SPAN + 5, 3)]
        );
    }

    #[test]
    fn dense_schedule_survives_many_revolutions() {
        // Every 37th tick across 5 full L0+L1 horizons, popped in order.
        let mut w: EventWheel<u64> = EventWheel::new(0);
        let ticks: Vec<u64> = (0..5 * SPAN / 37).map(|k| k * 37).collect();
        // Shuffle deterministically by scheduling strided.
        for (i, &t) in ticks.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            w.schedule(t, i as u64);
        }
        for (i, &t) in ticks.iter().enumerate().filter(|(i, _)| i % 3 != 0) {
            w.schedule(t, i as u64);
        }
        let mut prev = None;
        let mut n = 0;
        while let Some((t, i)) = w.pop_before(u64::MAX) {
            assert_eq!(t, ticks[i as usize]);
            assert!(prev <= Some(t), "ticks must pop monotonically");
            prev = Some(t);
            n += 1;
        }
        assert_eq!(n, ticks.len());
    }

    #[test]
    fn wakeup_on_a_quiescent_skipped_tick_is_not_lost() {
        // A fault-window edge lands mid-block while the wheel idles past
        // it: advance_to must stop cascades exactly at scheduled work,
        // and a wakeup scheduled behind the advanced clock still fires.
        let mut w: EventWheel<u32> = EventWheel::new(0);
        w.schedule(1000, 7);
        // Skip the machine forward over three whole quiescent blocks.
        assert_eq!(w.pop_before(900), None);
        w.advance_to(900);
        assert_eq!(w.now(), 900);
        // The edge at tick 1000 survives the skip.
        assert_eq!(w.pop_before(2000), Some((1000, 7)));
        // An edge computed for the skipped region clamps to the clock
        // instead of vanishing behind it.
        w.schedule(950, 8);
        assert_eq!(w.pop_before(2000), Some((1000, 8)));
    }

    #[test]
    fn reset_reuses_the_wheel() {
        let mut w: EventWheel<u32> = EventWheel::new(0);
        w.schedule(10, 1);
        w.schedule(5000, 2);
        w.schedule(100_000, 3);
        w.reset(640);
        assert!(w.is_empty());
        assert_eq!(w.now(), 640);
        w.schedule(641, 9);
        assert_eq!(w.pop_before(700), Some((641, 9)));
        assert_eq!(w.pop_before(700), None);
    }

    #[test]
    fn next_tick_probes_all_levels() {
        let mut w: EventWheel<u32> = EventWheel::new(0);
        assert_eq!(w.next_tick(), None);
        w.schedule(2 * SPAN, 2);
        assert_eq!(w.next_tick(), Some(2 * SPAN));
        w.schedule(300, 1);
        assert_eq!(w.next_tick(), Some(300));
        w.schedule(12, 0);
        assert_eq!(w.next_tick(), Some(12));
        let _ = w.pop_before(u64::MAX);
        assert_eq!(w.next_tick(), Some(300));
    }
}
