//! The remote socket's memory path: one shared UPI-link server.
//!
//! Remote-socket DRAM is modelled as a single FIFO server charging
//! `remote_latency + dram_latency` per access at a `remote_dram_gap` issue
//! rate. Remote-socket counters are not exposed through this socket's PMU
//! — exactly the visibility real per-socket PMUs give you — so the stage's
//! [`SimModule::drain`] is a no-op and [`SimModule::counters`] is empty.

use crate::invariants::{Invariants, Violation};
use crate::module::{registered, SimModule, StageId};
use crate::queues::{FifoServer, Service};
use pmu::SystemPmu;

/// The other socket's memory path behind the UPI link.
#[derive(Debug, Default)]
pub struct RemoteSocket {
    link: FifoServer,
    latency: u64,
    gap: u64,
}

impl RemoteSocket {
    pub fn new(latency: u64, gap: u64) -> RemoteSocket {
        RemoteSocket {
            link: FifoServer::new(),
            latency,
            gap,
        }
    }

    /// Cross the UPI link, pay the remote DRAM latency, come back.
    pub fn serve(&mut self, arrive: u64) -> Service {
        self.link.serve(arrive, self.latency, self.gap)
    }

    /// Backlog cycles implied by the link horizon at `now`.
    pub fn backlog_cycles(&self, now: u64) -> u64 {
        self.link.next_free().saturating_sub(now)
    }
}

impl SimModule for RemoteSocket {
    fn stage_id(&self) -> StageId {
        StageId::remote()
    }

    fn name(&self) -> &'static str {
        "module.remote"
    }

    // pflint::hot
    fn tick(&mut self, _until: u64) {}

    // pflint::hot
    fn drain(&mut self, _pmu: &mut SystemPmu, _epoch_cycles: u64) {
        // The remote socket's PMU belongs to the other socket; nothing to
        // flush into this one.
    }

    fn counters(&self) -> &'static [&'static str] {
        registered(&[])
    }

    fn occupancy(&self, now: u64) -> u64 {
        self.backlog_cycles(now)
    }
}

impl Invariants for RemoteSocket {
    fn component(&self) -> &'static str {
        "remote::RemoteSocket"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        self.link.collect_violations(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_with_latency_and_gap() {
        let mut r = RemoteSocket::new(100, 10);
        let a = r.serve(0);
        let b = r.serve(0);
        assert_eq!(a.finish, 100);
        assert_eq!(b.start, 10);
        assert_eq!(b.finish, 110);
    }

    #[test]
    fn backlog_reflects_link_horizon() {
        let mut r = RemoteSocket::new(100, 10);
        for _ in 0..5 {
            r.serve(0);
        }
        assert_eq!(r.backlog_cycles(0), 50);
        assert_eq!(r.backlog_cycles(100), 0);
    }

    #[test]
    fn drain_is_a_noop_on_this_sockets_pmu() {
        let mut r = RemoteSocket::new(100, 10);
        r.serve(0);
        let mut pmu = SystemPmu::new(1, 1, 1, 1, 1);
        let before = pmu.snapshot(0);
        r.tick(1_000);
        r.drain(&mut pmu, 1_000);
        let after = pmu.snapshot(0);
        for (a, b) in before.pmu.imcs.iter().zip(after.pmu.imcs.iter()) {
            assert_eq!(a.raw(), b.raw());
        }
        assert!(r.counters().is_empty());
    }
}
