//! Conservation invariants for every queue-bearing component.
//!
//! The simulator's credibility rests on flow conservation: every request
//! enqueued at a Clos stage must be dequeued, in flight, or dropped —
//! nothing is created or lost in transit. Each queue-bearing module
//! implements [`Invariants`] and reports any violated conservation laws;
//! [`crate::Machine`] audits the whole hierarchy at every epoch boundary
//! when built with `debug_assertions` or `--features invariants`.
//!
//! The `pflint` static-analysis pass verifies at CI time that every module
//! declaring a `FifoServer`, `Coverage` or `BoundedWindow` field also
//! registers an `impl Invariants for` hook, so new components cannot
//! silently opt out.

/// One violated conservation law.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which component the law belongs to (e.g. `"queues::BoundedWindow"`).
    pub component: &'static str,
    /// Human-readable statement of the violated law with observed values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.component, self.detail)
    }
}

/// A component that can audit its own conservation invariants.
///
/// Implementations must be side-effect free: auditing a component twice in
/// a row yields the same answer and perturbs no simulation state.
pub trait Invariants {
    /// Stable component name used in violation reports.
    fn component(&self) -> &'static str;

    /// Append every currently violated law to `out`. An empty `out` after
    /// the call means the component is conservation-clean.
    fn collect_violations(&self, out: &mut Vec<Violation>);
}

/// Audit one component and panic with the full list if any law is broken.
pub fn assert_invariants(c: &dyn Invariants) {
    let mut v = Vec::new();
    c.collect_violations(&mut v);
    if !v.is_empty() {
        let lines: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        panic!(
            "conservation invariant(s) violated in {}:\n  {}",
            c.component(),
            lines.join("\n  ")
        );
    }
}

/// Helper: push a violation when `law` does not hold.
#[macro_export]
macro_rules! invariant {
    ($out:expr, $component:expr, $law:expr, $($fmt:tt)*) => {
        if !$law {
            $out.push($crate::invariants::Violation {
                component: $component,
                detail: format!($($fmt)*),
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Broken;
    impl Invariants for Broken {
        fn component(&self) -> &'static str {
            "test::Broken"
        }
        fn collect_violations(&self, out: &mut Vec<Violation>) {
            invariant!(
                out,
                self.component(),
                1 + 1 == 3,
                "arithmetic drifted: {}",
                2
            );
        }
    }

    struct Clean;
    impl Invariants for Clean {
        fn component(&self) -> &'static str {
            "test::Clean"
        }
        fn collect_violations(&self, _out: &mut Vec<Violation>) {}
    }

    #[test]
    fn clean_component_passes() {
        assert_invariants(&Clean);
    }

    #[test]
    #[should_panic(expected = "conservation invariant")]
    fn broken_component_panics_with_detail() {
        assert_invariants(&Broken);
    }

    #[test]
    fn violation_display_names_component() {
        let v = Violation {
            component: "x::Y",
            detail: "a != b".into(),
        };
        assert_eq!(v.to_string(), "x::Y: a != b");
    }
}
