//! The integrated memory controller: RPQ/WPQ per pseudo-channel + DRAM.
//!
//! The paper's Table 3 counters are produced here: CAS commands, pending
//! queue inserts, occupancy accumulation, and cycles-non-empty. Under
//! CXL-only traffic the IMC stays idle (paper Figure 4-a) because CXL
//! requests bypass it for the M2PCIe path — that routing decision is made in
//! `machine.rs`.

use crate::config::MachineConfig;
use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::mem::channel_of;
use crate::queues::{Coverage, FifoServer};
use pmu::{Bank, ImcEvent};

/// One DRAM pseudo-channel.
#[derive(Debug, Default)]
struct Channel {
    server: FifoServer,
    rpq_ne: Coverage,
    wpq_ne: Coverage,
}

/// The socket's integrated memory controller.
#[derive(Debug)]
pub struct Imc {
    channels: Vec<Channel>,
    latency: u64,
    gap: u64,
    /// Last-synced coverage values, for free-running counter updates.
    synced_rpq: Vec<u64>,
    synced_wpq: Vec<u64>,
}

impl Imc {
    pub fn new(cfg: &MachineConfig) -> Self {
        Imc {
            channels: (0..cfg.dram_channels).map(|_| Channel::default()).collect(),
            latency: cfg.dram_latency,
            gap: cfg.dram_gap,
            synced_rpq: vec![0; cfg.dram_channels],
            synced_wpq: vec![0; cfg.dram_channels],
        }
    }

    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Service a read CAS for `line` arriving at `arrive`; returns the cycle
    /// data is ready at the controller.
    pub fn read(&mut self, line: u64, arrive: u64, banks: &mut [Bank<ImcEvent>]) -> u64 {
        let ch = channel_of(line, self.channels.len());
        let svc = self.channels[ch]
            .server
            .serve(arrive, self.latency, self.gap);
        self.channels[ch].rpq_ne.add(arrive, svc.finish);
        let bank = &mut banks[ch];
        bank.inc(ImcEvent::RpqInserts);
        bank.inc(ImcEvent::CasCountRd);
        bank.inc(ImcEvent::CasCountAll);
        // Occupancy integral: this request occupied an RPQ slot for its
        // whole residency (queueing + service).
        bank.add(ImcEvent::RpqOccupancy, svc.finish - arrive);
        svc.finish
    }

    /// Service a write CAS (posted: the caller does not wait for it, but the
    /// channel bandwidth is consumed and the WPQ occupancy is charged).
    pub fn write(&mut self, line: u64, arrive: u64, banks: &mut [Bank<ImcEvent>]) -> u64 {
        let ch = channel_of(line, self.channels.len());
        let svc = self.channels[ch]
            .server
            .serve(arrive, self.latency, self.gap);
        self.channels[ch].wpq_ne.add(arrive, svc.finish);
        let bank = &mut banks[ch];
        bank.inc(ImcEvent::WpqInserts);
        bank.inc(ImcEvent::CasCountWr);
        bank.inc(ImcEvent::CasCountAll);
        bank.add(ImcEvent::WpqOccupancy, svc.finish - arrive);
        svc.finish
    }

    /// Stall every channel until `until` (fault injection: a transient
    /// controller pause). Pure timing — see `FifoServer::block_until`.
    pub(crate) fn stall_channels(&mut self, until: u64) {
        for ch in &mut self.channels {
            ch.server.block_until(until);
        }
    }

    /// Flush the cycles-non-empty coverage into the free-running PMU
    /// counters. Called at every epoch boundary before the snapshot.
    // pflint::hot
    pub fn sync_counters(&mut self, banks: &mut [Bank<ImcEvent>], epoch_cycles: u64) {
        for (ch, channel) in self.channels.iter().enumerate() {
            let bank = &mut banks[ch];
            bank.add(ImcEvent::ClockTicks, epoch_cycles);
            let rpq = channel.rpq_ne.total();
            bank.add(ImcEvent::RpqCyclesNe, rpq - self.synced_rpq[ch]);
            self.synced_rpq[ch] = rpq;
            let wpq = channel.wpq_ne.total();
            bank.add(ImcEvent::WpqCyclesNe, wpq - self.synced_wpq[ch]);
            self.synced_wpq[ch] = wpq;
        }
    }
}

impl crate::module::SimModule for Imc {
    fn stage_id(&self) -> crate::module::StageId {
        crate::module::StageId::imc()
    }

    fn name(&self) -> &'static str {
        "module.imc"
    }

    // pflint::hot
    fn tick(&mut self, _until: u64) {}

    // pflint::hot
    fn drain(&mut self, pmu: &mut pmu::SystemPmu, epoch_cycles: u64) {
        self.sync_counters(&mut pmu.imcs, epoch_cycles);
    }

    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&[
            "unc_m_clockticks",
            "unc_m_cas_count.all",
            "unc_m_cas_count.rd",
            "unc_m_cas_count.wr",
            "unc_m_rpq_inserts",
            "unc_m_wpq_inserts",
            "unc_m_rpq_cycles_ne",
            "unc_m_wpq_cycles_ne",
            "unc_m_rpq_occupancy",
            "unc_m_wpq_occupancy",
        ])
    }

    fn occupancy(&self, now: u64) -> u64 {
        self.channels
            .iter()
            .map(|ch| ch.server.next_free().saturating_sub(now))
            .sum()
    }
}

impl Invariants for Imc {
    fn component(&self) -> &'static str {
        "imc::Imc"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        for (ch, channel) in self.channels.iter().enumerate() {
            channel.server.collect_violations(out);
            channel.rpq_ne.collect_violations(out);
            channel.wpq_ne.collect_violations(out);
            invariant!(
                out,
                self.component(),
                self.synced_rpq[ch] <= channel.rpq_ne.total(),
                "channel {ch} RPQ synced baseline ahead of coverage"
            );
            invariant!(
                out,
                self.component(),
                self.synced_wpq[ch] <= channel.wpq_ne.total(),
                "channel {ch} WPQ synced baseline ahead of coverage"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn setup() -> (Imc, Vec<Bank<ImcEvent>>) {
        let cfg = MachineConfig::spr();
        let imc = Imc::new(&cfg);
        let banks = (0..cfg.dram_channels).map(|_| Bank::new()).collect();
        (imc, banks)
    }

    #[test]
    fn read_returns_after_dram_latency() {
        let (mut imc, mut banks) = setup();
        let fin = imc.read(0, 1000, &mut banks);
        assert_eq!(fin, 1000 + MachineConfig::spr().dram_latency);
    }

    #[test]
    fn cas_counters_accumulate() {
        let (mut imc, mut banks) = setup();
        for i in 0..100 {
            imc.read(i, 0, &mut banks);
        }
        for i in 0..40 {
            imc.write(i, 0, &mut banks);
        }
        let rd: u64 = banks.iter().map(|b| b.read(ImcEvent::CasCountRd)).sum();
        let wr: u64 = banks.iter().map(|b| b.read(ImcEvent::CasCountWr)).sum();
        let all: u64 = banks.iter().map(|b| b.read(ImcEvent::CasCountAll)).sum();
        assert_eq!(rd, 100);
        assert_eq!(wr, 40);
        assert_eq!(all, 140);
    }

    #[test]
    fn saturation_builds_queue_delay() {
        let (mut imc, mut banks) = setup();
        // Hammer one line's channel back-to-back; later requests queue.
        let mut last = 0;
        for _ in 0..64 {
            last = imc.read(0, 0, &mut banks);
        }
        let gap = MachineConfig::spr().dram_gap;
        let lat = MachineConfig::spr().dram_latency;
        assert_eq!(last, 63 * gap + lat);
        let occ: u64 = banks.iter().map(|b| b.read(ImcEvent::RpqOccupancy)).sum();
        // Occupancy integral must exceed 64 isolated requests' worth.
        assert!(occ > 64 * lat);
    }

    #[test]
    fn sync_flushes_cycles_ne_once() {
        let (mut imc, mut banks) = setup();
        imc.read(0, 0, &mut banks);
        imc.sync_counters(&mut banks, 10_000);
        let ne1: u64 = banks.iter().map(|b| b.read(ImcEvent::RpqCyclesNe)).sum();
        imc.sync_counters(&mut banks, 10_000);
        let ne2: u64 = banks.iter().map(|b| b.read(ImcEvent::RpqCyclesNe)).sum();
        assert_eq!(ne1, MachineConfig::spr().dram_latency);
        assert_eq!(ne2, ne1, "second sync with no traffic must add nothing");
        let ticks: u64 = banks.iter().map(|b| b.read(ImcEvent::ClockTicks)).sum();
        // Two syncs of a 10k-cycle epoch across every channel bank.
        assert_eq!(ticks, 2 * 10_000 * banks.len() as u64);
    }
}
