//! Allocation-free request bookkeeping: an open-addressed line map and a
//! struct-of-arrays request pool with a free-list arena.
//!
//! The seed kept per-request state in `BTreeMap`s (`CoreState::inflight`,
//! the snoop-filter directory, …). Every insert allocated a tree node and
//! every lookup chased pointers — together ~15% of profiled wall time,
//! and another chunk of the ~16% spent inside the allocator itself (see
//! PERFORMANCE.md). Both structures here are flat `Vec`s that reach a
//! steady-state capacity within the first few epochs and never allocate
//! again on the hot path.
//!
//! Determinism: neither container's *iteration* order is ever observed by
//! the simulation — callers only get/insert/remove by key and sweep with
//! order-independent predicates — so replacing the ordered maps cannot
//! perturb a counter stream (the byte-identity anchor of the golden
//! tests).

/// Sentinel key marking an empty [`LineMap`] slot. Line addresses are
/// physical-address bits shifted right by the cache-line width, so the
/// all-ones key cannot occur.
const EMPTY: u64 = u64::MAX;

/// Multiplicative (Fibonacci) hash: spreads consecutive line addresses —
/// the common streaming case — across the table.
#[inline]
fn hash(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

/// An open-addressed `u64 → V` map with linear probing and backward-shift
/// deletion, stored struct-of-arrays (keys and values in separate flat
/// vectors). Tombstone-free: load factor stays below 1/2, so probe chains
/// stay short even under the adversarial streaming patterns the figure
/// workloads produce.
#[derive(Clone, Debug)]
pub struct LineMap<V: Copy> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    mask: usize,
}

impl<V: Copy + Default> Default for LineMap<V> {
    fn default() -> Self {
        LineMap::new()
    }
}

impl<V: Copy + Default> LineMap<V> {
    pub fn new() -> Self {
        LineMap::with_capacity(16)
    }

    /// Capacity is rounded up to a power of two of at least 16 slots.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = cap.next_power_of_two().max(16);
        LineMap {
            keys: vec![EMPTY; slots],
            vals: vec![V::default(); slots],
            len: 0,
            mask: slots - 1,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index of `key`, if present.
    // pflint::hot
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        debug_assert_ne!(key, EMPTY);
        let mut i = hash(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    // pflint::hot
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        self.find(key).map(|i| self.vals[i])
    }

    // pflint::hot
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| &mut self.vals[i])
    }

    // pflint::hot
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Insert or overwrite; returns the previous value if the key was
    /// present. Grows (the only allocation) at 1/2 load.
    // pflint::hot
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY);
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = hash(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                let prev = self.vals[i];
                self.vals[i] = val;
                return Some(prev);
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove `key`, closing the probe chain by backward-shift deletion
    /// (no tombstones, so probe lengths never degrade over a long run).
    // pflint::hot
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        let prev = self.vals[i];
        self.delete_slot(i);
        Some(prev)
    }

    /// Backward-shift deletion at slot `i`: walk the probe chain after the
    /// hole and move back every entry whose home slot precedes the hole.
    fn delete_slot(&mut self, mut i: usize) {
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // `k` may fill the hole only if its home slot does not sit
            // strictly inside the (i, j] arc — otherwise moving it would
            // break its own probe chain.
            let home = hash(k, self.mask);
            let dist_home = j.wrapping_sub(home) & self.mask;
            let dist_hole = j.wrapping_sub(i) & self.mask;
            if dist_home >= dist_hole {
                self.keys[i] = k;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
    }

    /// Keep only entries for which `f(key, value)` holds. Iteration order
    /// is unspecified; the predicate must be order-independent (it is for
    /// every caller: completion-time sweeps).
    pub fn retain(&mut self, mut f: impl FnMut(u64, V) -> bool) {
        let mut i = 0;
        while i < self.keys.len() {
            let k = self.keys[i];
            if k != EMPTY && !f(k, self.vals[i]) {
                // After the backward shift a surviving entry may land in
                // slot `i`; re-examine it before moving on. Entries can
                // only move backward, so each is visited at least once.
                self.delete_slot(i);
            } else {
                i += 1;
            }
        }
    }

    /// Visit every `(key, value)` pair in unspecified order (invariant
    /// audits only — never on a path that feeds counters).
    pub fn for_each(&self, mut f: impl FnMut(u64, V)) {
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                f(k, self.vals[i]);
            }
        }
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let vals = std::mem::replace(&mut self.vals, vec![V::default(); new_slots]);
        self.mask = new_slots - 1;
        self.len = 0;
        for (i, k) in keys.into_iter().enumerate() {
            if k != EMPTY {
                self.insert(k, vals[i]);
            }
        }
    }
}

/// A struct-of-arrays buffer of decoded trace operations — the gather
/// stage of the batched datapath (`DatapathMode::Batched`).
///
/// Each core's `Machine`-owned ring is refilled in chunks from the trace
/// (one virtual `fill_ops` call per chunk instead of one `next_op` call
/// per op) and drained front-to-back by the slice executor. Fields are
/// parallel flat vectors (`arena.rs` style): the kind is packed to one
/// byte so a refill touches three dense arrays and the backing storage
/// reaches steady-state capacity after the first chunk — no per-op
/// allocation on the hot path.
///
/// Determinism: the ring is strictly FIFO, so buffering never reorders
/// the op stream; only *when* ops are decoded changes, never which op
/// executes next.
#[derive(Debug, Default)]
pub struct OpRing {
    /// Virtual addresses, parallel to `kinds`/`works`. Ops are buffered
    /// by *virtual* address and translated at execution time, so a page
    /// migration between refill and execution behaves exactly as in the
    /// unbuffered reference walk.
    vaddrs: Vec<u64>,
    /// Packed [`AccessKind`](crate::request::AccessKind) per op.
    kinds: Vec<u8>,
    /// `work` cycles per op.
    works: Vec<u32>,
    /// Next op to execute; the ring is empty when `head == vaddrs.len()`.
    head: usize,
}

const KIND_LOAD: u8 = 0;
const KIND_DEP_LOAD: u8 = 1;
const KIND_STORE: u8 = 2;
const KIND_SWPF: u8 = 3;

impl OpRing {
    pub fn new() -> Self {
        OpRing::default()
    }

    pub fn len(&self) -> usize {
        self.vaddrs.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.head == self.vaddrs.len()
    }

    /// Drop any buffered ops (workload re-attachment).
    pub fn clear(&mut self) {
        self.vaddrs.clear();
        self.kinds.clear();
        self.works.clear();
        self.head = 0;
    }

    /// Append one decoded op. Amortized allocation-free: the backing
    /// vectors keep their chunk-sized capacity across refills.
    // pflint::hot — gather pass of the batched datapath.
    #[inline]
    pub fn push(&mut self, op: crate::request::MemOp) {
        use crate::request::AccessKind;
        if self.head == self.vaddrs.len() {
            // Fully drained: rewind instead of growing without bound.
            self.clear();
        }
        self.vaddrs.push(op.vaddr);
        self.works.push(op.work);
        self.kinds.push(match op.kind {
            AccessKind::Load { dependent: false } => KIND_LOAD,
            AccessKind::Load { dependent: true } => KIND_DEP_LOAD,
            AccessKind::Store => KIND_STORE,
            AccessKind::SwPrefetch => KIND_SWPF,
        });
    }

    /// The next buffered op, front-to-back.
    // pflint::hot — per-op pull of the batched datapath.
    #[inline]
    pub fn pop(&mut self) -> Option<crate::request::MemOp> {
        use crate::request::{AccessKind, MemOp};
        if self.head == self.vaddrs.len() {
            return None;
        }
        let i = self.head;
        self.head += 1;
        Some(MemOp {
            vaddr: self.vaddrs[i],
            work: self.works[i],
            kind: match self.kinds[i] {
                KIND_LOAD => AccessKind::Load { dependent: false },
                KIND_DEP_LOAD => AccessKind::Load { dependent: true },
                KIND_STORE => AccessKind::Store,
                _ => AccessKind::SwPrefetch,
            },
        })
    }
}

/// A struct-of-arrays pool of in-flight requests: each live request is a
/// slot holding its line address and completion cycle, slots are recycled
/// through a free list, and a [`LineMap`] indexes line → slot for the
/// merge lookups (`CoreState::inflight` / `sb_inflight` in the seed).
///
/// Parallel `lines`/`finishes` vectors instead of a `Vec<struct>`: the
/// completion-sweep (`gc`) only touches `finishes`, so it scans a dense
/// u64 array instead of striding over padded records.
#[derive(Clone, Debug, Default)]
pub struct RequestPool {
    /// Line address per slot (`EMPTY` when the slot is free).
    lines: Vec<u64>,
    /// Completion cycle per slot, parallel to `lines`.
    finishes: Vec<u64>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// line → slot.
    index: LineMap<u32>,
}

impl RequestPool {
    pub fn new() -> Self {
        RequestPool::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Completion cycle of the in-flight request on `line`, if any.
    // pflint::hot
    #[inline]
    pub fn get(&self, line: u64) -> Option<u64> {
        self.index.get(line).map(|s| self.finishes[s as usize])
    }

    // pflint::hot
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        self.index.contains_key(line)
    }

    /// Track (or refresh) an in-flight request. A request already in
    /// flight on the line keeps its slot; only the finish time moves.
    // pflint::hot
    pub fn insert(&mut self, line: u64, finish: u64) {
        if let Some(slot) = self.index.get(line) {
            self.finishes[slot as usize] = finish;
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.lines[s as usize] = line;
                self.finishes[s as usize] = finish;
                s
            }
            None => {
                let s = self.lines.len() as u32;
                self.lines.push(line);
                self.finishes.push(finish);
                s
            }
        };
        self.index.insert(line, slot);
    }

    /// Free every request that completed at or before `now`. The sweep is
    /// order-independent, so pool reuse cannot perturb determinism.
    // pflint::hot
    pub fn gc(&mut self, now: u64) {
        for slot in 0..self.lines.len() {
            let line = self.lines[slot];
            if line != EMPTY && self.finishes[slot] <= now {
                self.lines[slot] = EMPTY;
                self.free.push(slot as u32);
                self.index.remove(line);
            }
        }
    }

    /// Visit every live `(line, finish)` pair (tests/audits only).
    pub fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for (slot, &line) in self.lines.iter().enumerate() {
            if line != EMPTY {
                f(line, self.finishes[slot]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m: LineMap<u64> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, 70), None);
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.get(7), Some(71));
        assert!(m.contains_key(7));
        assert_eq!(m.remove(7), Some(71));
        assert_eq!(m.remove(7), None);
        assert!(m.is_empty());
    }

    #[test]
    fn map_get_mut_updates_in_place() {
        let mut m: LineMap<u64> = LineMap::new();
        m.insert(3, 1);
        *m.get_mut(3).unwrap() += 41;
        assert_eq!(m.get(3), Some(42));
        assert!(m.get_mut(4).is_none());
    }

    #[test]
    fn map_survives_growth_and_collisions() {
        let mut m: LineMap<u64> = LineMap::with_capacity(16);
        // Streaming keys + a colliding arithmetic series, well past the
        // initial capacity.
        for k in 0..1000u64 {
            m.insert(k * 17, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 17), Some(k), "key {k}");
        }
    }

    #[test]
    fn map_backward_shift_keeps_chains_reachable() {
        let mut m: LineMap<u64> = LineMap::with_capacity(16);
        for k in 1..=12u64 {
            m.insert(k, k);
        }
        // Delete interleaved keys, then verify every survivor.
        for k in (2..=12u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k));
        }
        for k in (1..=11u64).step_by(2) {
            assert_eq!(m.get(k), Some(k), "key {k}");
        }
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn map_retain_examines_every_entry() {
        let mut m: LineMap<u64> = LineMap::with_capacity(16);
        for k in 0..200u64 {
            m.insert(k + 1, k % 5);
        }
        m.retain(|_, v| v != 2);
        assert_eq!(m.len(), 160);
        m.for_each(|_, v| assert_ne!(v, 2));
    }

    #[test]
    fn pool_merge_and_gc() {
        let mut p = RequestPool::new();
        p.insert(10, 500);
        p.insert(20, 80);
        assert_eq!(p.get(10), Some(500));
        assert!(p.contains(20));
        assert_eq!(p.len(), 2);
        p.gc(100); // line 20 completed, 10 still flying
        assert_eq!(p.get(20), None);
        assert_eq!(p.get(10), Some(500));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn pool_recycles_slots_without_growth() {
        let mut p = RequestPool::new();
        for round in 0..50u64 {
            for l in 0..64u64 {
                p.insert(round * 64 + l + 1, round * 100 + 50);
            }
            p.gc(round * 100 + 60);
            assert!(p.is_empty());
        }
        // Steady state: the backing arrays never exceeded one round.
        assert!(p.lines.len() <= 64, "arena grew to {}", p.lines.len());
    }

    #[test]
    fn op_ring_roundtrips_all_kinds_in_order() {
        use crate::request::{AccessKind, MemOp};
        let mut r = OpRing::new();
        let ops = [
            MemOp::load(64).with_work(3),
            MemOp::dependent_load(128),
            MemOp::store(192).with_work(7),
            MemOp::swpf(256),
        ];
        for op in ops {
            r.push(op);
        }
        assert_eq!(r.len(), 4);
        for op in ops {
            assert_eq!(r.pop(), Some(op));
        }
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
        // Mixed dependent flags survive the packed-kind encoding.
        assert_eq!(ops[1].kind, AccessKind::Load { dependent: true });
    }

    #[test]
    fn op_ring_rewinds_instead_of_growing() {
        use crate::request::MemOp;
        let mut r = OpRing::new();
        for round in 0..50u64 {
            for i in 0..64u64 {
                r.push(MemOp::load(round * 4096 + i * 64));
            }
            while r.pop().is_some() {}
        }
        assert!(
            r.vaddrs.capacity() <= 128,
            "ring grew to {}",
            r.vaddrs.capacity()
        );
    }

    #[test]
    fn pool_reinsert_refreshes_finish() {
        let mut p = RequestPool::new();
        p.insert(5, 10);
        p.insert(5, 99);
        assert_eq!(p.get(5), Some(99));
        assert_eq!(p.len(), 1);
    }
}
