//! Machine descriptions and the SPR / EMR presets used in the paper (§5.1).
//!
//! All latencies are in core cycles at the configured frequency. The presets
//! are calibrated against the paper's §2.3 Intel-MLC numbers on the SPR
//! testbed (2.0 GHz Xeon Gold 6438Y+):
//!
//! | medium          | idle latency | peak bandwidth |
//! |-----------------|--------------|----------------|
//! | local DDR5      | 103.2 ns     | 131.1 GB/s     |
//! | cross-socket    | 163.6 ns     |  94.4 GB/s     |
//! | CXL Type-3 DIMM | 355.3 ns     |  17.6 GB/s     |

/// Memory placement policy for a workload thread's address space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MemPolicy {
    /// All pages on the local DRAM node.
    Local,
    /// All pages on the other socket's DRAM (the classic NUMA tier).
    RemoteNuma,
    /// All pages on the CXL device node.
    Cxl,
    /// Pages interleaved local:CXL with the given fraction on CXL
    /// (`0.0` = all local, `1.0` = all CXL). Interleaving is page-granular
    /// and deterministic in the page number.
    Interleave { cxl_fraction: f64 },
}

impl MemPolicy {
    /// Fraction of pages placed on CXL under this policy.
    pub fn cxl_fraction(self) -> f64 {
        match self {
            MemPolicy::Local | MemPolicy::RemoteNuma => 0.0,
            MemPolicy::Cxl => 1.0,
            MemPolicy::Interleave { cxl_fraction } => cxl_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheGeometry {
    pub size_bytes: usize,
    pub ways: usize,
    /// Lookup (tag + data) latency in cycles.
    pub hit_latency: u64,
    /// Tag-only lookup latency — the `W_tag` constant PFAnalyzer uses for
    /// L1D/L2 miss cost (§4.5).
    pub tag_latency: u64,
}

impl CacheGeometry {
    pub fn sets(&self, line: usize) -> usize {
        (self.size_bytes / line / self.ways).max(1)
    }
}

/// Hardware-prefetcher configuration (paper §2.2 path #4).
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// L1 next-line prefetcher enabled.
    pub l1_next_line: bool,
    /// L2 stream prefetcher enabled.
    pub l2_stream: bool,
    /// Number of strides the L2 streamer runs ahead of the demand stream.
    pub l2_distance: usize,
    /// Prefetches issued per triggering access.
    pub l2_degree: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            l1_next_line: true,
            l2_stream: true,
            l2_distance: 24,
            l2_degree: 8,
        }
    }
}

/// A complete machine description.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable platform name ("SPR", "EMR").
    pub name: &'static str,
    /// Core frequency in GHz (used only to convert cycles ↔ ns in reports).
    pub freq_ghz: f64,
    /// Number of simulated cores (single socket modelled; the remote socket
    /// appears as a latency class, as the paper's SNC/remote rows do).
    pub cores: usize,
    /// Number of CHA/LLC slices.
    pub llc_slices: usize,
    /// Number of local-DRAM pseudo-channels.
    pub dram_channels: usize,
    /// Number of CXL devices (each with its own FlexBus root port).
    pub cxl_devices: usize,

    pub l1d: CacheGeometry,
    pub l2: CacheGeometry,
    /// Whole-socket LLC geometry (split across `llc_slices`).
    pub llc: CacheGeometry,
    pub prefetch: PrefetchConfig,

    /// Store-buffer entries per core.
    pub sb_entries: usize,
    /// Line-fill-buffer (MSHR) entries per core.
    pub lfb_entries: usize,
    /// Maximum in-flight offcore requests per core (super-queue depth);
    /// bounds memory-level parallelism together with the LFB.
    pub superq_entries: usize,
    /// In-flight hardware-prefetch window per core (the L2 external queue
    /// slots reserved for prefetches; prefetches never compete with demand
    /// for super-queue entries and are dropped when this window is full).
    pub pfq_entries: usize,

    /// Mesh hop latency core↔CHA and CHA↔MC (cycles).
    pub mesh_latency: u64,
    /// Extra latency for an SNC-distant LLC slice.
    pub snc_latency: u64,
    /// Extra latency for a cross-socket (remote cache / remote DRAM) hop.
    pub remote_latency: u64,

    /// Local DRAM: fixed access latency at the channel (cycles).
    pub dram_latency: u64,
    /// Local DRAM: issue gap per 64B line per channel (cycles) — sets the
    /// per-channel bandwidth cap.
    pub dram_gap: u64,
    /// IMC read/write pending queue capacity per channel.
    pub imc_queue: usize,
    /// Remote-socket DRAM: issue gap per 64B line (cycles) — the UPI-link
    /// bandwidth cap (94.4 GB/s on the SPR testbed).
    pub remote_dram_gap: u64,

    /// FlexBus link: one-way transfer latency (cycles).
    pub flexbus_latency: u64,
    /// FlexBus link: issue gap per 64B flit payload (cycles) — link bandwidth.
    pub flexbus_gap: u64,
    /// M2PCIe ingress queue capacity.
    pub m2p_queue: usize,

    /// CXL device memory: media access latency (cycles).
    pub cxl_media_latency: u64,
    /// CXL device memory controller: issue gap per 64B command (cycles) —
    /// device bandwidth cap (the 17.6 GB/s of the Agilex card).
    pub cxl_dev_gap: u64,
    /// CXL device-side command queue capacity (Req + RwD packing buffers).
    pub cxl_dev_queue: usize,

    /// Scheduling-epoch length in cycles: PathFinder snapshots all PMUs at
    /// every epoch boundary (§4.2).
    pub epoch_cycles: u64,
}

impl MachineConfig {
    /// The paper's SPR testbed: Xeon Gold 6438Y+ @2.0 GHz, 48 KiB L1D,
    /// 2 MiB L2, 60 MiB LLC, Intel Agilex CXL Type-3 device (16 GB DDR4).
    ///
    /// Latency calibration (2 GHz ⇒ 1 cycle = 0.5 ns):
    /// local DRAM 103 ns ≈ 206 cy end-to-end; CXL 355 ns ≈ 710 cy.
    pub fn spr() -> Self {
        MachineConfig {
            name: "SPR",
            freq_ghz: 2.0,
            cores: 4,
            llc_slices: 4,
            dram_channels: 2,
            cxl_devices: 1,
            l1d: CacheGeometry {
                size_bytes: 48 << 10,
                ways: 12,
                hit_latency: 5,
                tag_latency: 2,
            },
            l2: CacheGeometry {
                size_bytes: 2 << 20,
                ways: 16,
                hit_latency: 15,
                tag_latency: 4,
            },
            llc: CacheGeometry {
                size_bytes: 7 << 20, // 60 MiB / 32 cores ≈ 1.9 MiB per core; 4 cores modelled
                ways: 15,
                hit_latency: 33,
                tag_latency: 8,
            },
            prefetch: PrefetchConfig::default(),
            sb_entries: 56,
            lfb_entries: 16,
            superq_entries: 32,
            pfq_entries: 96,
            mesh_latency: 12,
            snc_latency: 30,
            remote_latency: 120,
            // L1(5) + L2(15) + mesh(12) + LLC tag(8) + mesh(12) + DRAM(148)
            // + return ≈ 206 cy ≈ 103 ns.
            dram_latency: 148,
            // 131 GB/s across 2 modelled channels ⇒ 64B / 65.5 GB/s ≈ 0.98 ns
            // ≈ 2 cy per line per channel.
            dram_gap: 2,
            imc_queue: 48,
            // 94.4 GB/s cross-socket ⇒ 64B / 94.4 GB/s ≈ 0.68 ns; the UPI
            // link serialises both sockets' traffic: ~3 cy per line.
            remote_dram_gap: 3,
            // CXL: 5(L1)+15(L2)+12+8+12(mesh/LLC) + m2p/flexbus + media ≈ 710.
            flexbus_latency: 110,
            flexbus_gap: 7, // 64B flit slots on the x8 link
            m2p_queue: 64,
            cxl_media_latency: 540,
            // 64B / 16 GB/s ≈ 4 ns ≈ 8 cy — the device MC is the choke
            // point (the Agilex card sustains only 17.6 GB/s).
            cxl_dev_gap: 8,
            cxl_dev_queue: 48,
            epoch_cycles: 2_000_000, // 1 ms scheduling quantum at 2 GHz
        }
    }

    /// The paper's EMR testbed: Xeon Gold 6530 @2.1 GHz, 160 MiB LLC and a
    /// Micron CZ120 CXL DIMM. The much larger LLC is the main architectural
    /// difference the paper highlights (§3.6): same trends, smaller deltas.
    pub fn emr() -> Self {
        let mut c = MachineConfig::spr();
        c.name = "EMR";
        c.freq_ghz = 2.1;
        // 160 MiB / 32 cores = 5 MiB per core; 4 cores modelled ⇒ 20 MiB.
        c.llc.size_bytes = 20 << 20;
        c.llc.ways = 16;
        // The CZ120 is a production ASIC device: slightly better latency and
        // much better bandwidth than the Agilex FPGA card.
        c.cxl_media_latency = 430;
        c.cxl_dev_gap = 5;
        c.flexbus_gap = 4;
        c
    }

    /// A miniature configuration for fast unit/integration tests: small
    /// caches so workloads of a few hundred KiB show full hierarchy
    /// behaviour in tens of thousands of requests.
    pub fn tiny() -> Self {
        let mut c = MachineConfig::spr();
        c.name = "TINY";
        c.cores = 2;
        c.llc_slices = 2;
        c.l1d.size_bytes = 4 << 10;
        c.l2.size_bytes = 32 << 10;
        c.llc.size_bytes = 128 << 10;
        c.epoch_cycles = 100_000;
        c
    }

    /// Convert a cycle count to nanoseconds on this platform.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_ghz
    }

    /// Convert nanoseconds to cycles on this platform.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.freq_ghz).round() as u64
    }

    /// Sanity-check structural parameters; called by `Machine::new`.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("at least one core required".into());
        }
        if self.llc_slices == 0 {
            return Err("at least one LLC slice required".into());
        }
        if self.dram_channels == 0 {
            return Err("at least one DRAM channel required".into());
        }
        if self.lfb_entries == 0 || self.sb_entries == 0 || self.superq_entries == 0 {
            return Err("queue structures must be non-empty".into());
        }
        if self.epoch_cycles == 0 {
            return Err("epoch length must be positive".into());
        }
        for (label, g) in [("l1d", &self.l1d), ("l2", &self.l2), ("llc", &self.llc)] {
            if g.size_bytes == 0 || g.ways == 0 {
                return Err(format!("{label}: degenerate cache geometry"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::spr().validate().unwrap();
        MachineConfig::emr().validate().unwrap();
        MachineConfig::tiny().validate().unwrap();
    }

    #[test]
    fn spr_latency_calibration_matches_paper_mlc() {
        let c = MachineConfig::spr();
        // End-to-end demand-read latency: L1 + L2 + 2×mesh + LLC tag + DRAM.
        let local = c.l1d.hit_latency
            + c.l2.hit_latency
            + 2 * c.mesh_latency
            + c.llc.tag_latency
            + c.dram_latency;
        let local_ns = c.cycles_to_ns(local);
        assert!((95.0..115.0).contains(&local_ns), "local {local_ns} ns");
        let cxl = c.l1d.hit_latency
            + c.l2.hit_latency
            + 2 * c.mesh_latency
            + c.llc.tag_latency
            + c.flexbus_latency
            + c.cxl_media_latency;
        let cxl_ns = c.cycles_to_ns(cxl);
        assert!((330.0..380.0).contains(&cxl_ns), "cxl {cxl_ns} ns");
    }

    #[test]
    fn emr_has_larger_llc_than_spr() {
        assert!(MachineConfig::emr().llc.size_bytes > MachineConfig::spr().llc.size_bytes);
    }

    #[test]
    fn cxl_bandwidth_is_far_below_local() {
        let c = MachineConfig::spr();
        // Effective per-line issue gap: CXL link vs all DRAM channels.
        assert!(c.flexbus_gap > c.dram_gap * c.dram_channels as u64);
    }

    #[test]
    fn policy_fraction_clamps() {
        assert_eq!(MemPolicy::Local.cxl_fraction(), 0.0);
        assert_eq!(MemPolicy::Cxl.cxl_fraction(), 1.0);
        assert_eq!(
            MemPolicy::Interleave { cxl_fraction: 2.0 }.cxl_fraction(),
            1.0
        );
        assert_eq!(
            MemPolicy::Interleave { cxl_fraction: 0.25 }.cxl_fraction(),
            0.25
        );
    }

    #[test]
    fn cycle_ns_round_trip() {
        let c = MachineConfig::spr();
        assert_eq!(c.ns_to_cycles(c.cycles_to_ns(500)), 500);
    }
}
