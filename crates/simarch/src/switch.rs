//! The CXL fabric switch: N upstream ports sharing one downstream link.
//!
//! A multi-host pooling fabric (CXL 3.x) interposes a switch between each
//! host's FlexBus port and the pooled Type-3 device. Every upstream port
//! has its own ingress queue; a configurable arbiter grants queued
//! requests onto the single shared downstream link. Because the link is
//! shared, one tenant's burst — or one stuck port under FIFO arbitration —
//! delays the others: the cross-tenant interference PathFinder's per-host
//! attribution must untangle from counters alone.
//!
//! Counters: the `unc_cxlsw_*` rows of `pmu::SwitchEvent`, one bank per
//! upstream port. The HOL metric (`unc_cxlsw_hol_blocked_cycles.port`)
//! charges a port for every link-occupation interval during which it had a
//! granted-later head-of-line request already waiting — the signature that
//! separates head-of-line blocking from plain bandwidth saturation.

use std::collections::VecDeque;

use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::queues::FifoServer;
use pmu::SwitchEvent;

/// Downstream-link arbitration policy across the upstream ports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arbitration {
    /// Cyclic scan starting after the last winner: starvation-free and
    /// work-conserving (the property test in `fabric.rs` pins both).
    RoundRobin,
    /// Oldest eligible request wins (ties to the lowest port). Fair on
    /// average but HOL-prone: a stalled head blocks nothing *at* the
    /// arbiter, yet its port's queue ages collectively.
    Fifo,
    /// Credit-weighted: among eligible ports the one with the most
    /// remaining credit wins (ties to the lowest port); credits refill to
    /// the configured weights when every eligible port is exhausted.
    /// Approximates bandwidth partitioning in proportion to the weights.
    Weighted(Vec<u32>),
}

/// One request granted onto the shared downstream link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// Upstream port (== tenant host index) the request came from.
    pub port: usize,
    /// Cycle the request entered the ingress queue.
    pub arrival: u64,
    /// Cycle the link began carrying the request.
    pub start: u64,
    /// Cycle the request reaches the pooled device.
    pub depart: u64,
    /// M2S RwD (write) rather than M2S Req (read).
    pub is_write: bool,
}

/// Per-port accumulator set (free-running totals; the epoch drain syncs
/// deltas into the PMU banks).
#[derive(Clone, Debug, Default)]
struct PortStats {
    inserts: u64,
    grants: u64,
    /// Σ (grant start − arrival) over granted requests: ingress residency.
    occupancy: u64,
    /// Cycles the shared link served another port while this port had a
    /// request already waiting.
    hol_blocked: u64,
    /// Link occupation attributed to this port's own grants.
    link_busy: u64,
    synced_inserts: u64,
    synced_grants: u64,
    synced_occupancy: u64,
    synced_hol: u64,
    synced_busy: u64,
}

/// The fabric switch: per-port ingress queues, one shared downstream link.
#[derive(Debug)]
pub struct CxlSwitch {
    arb: Arbitration,
    queues: Vec<VecDeque<(u64, bool)>>,
    stats: Vec<PortStats>,
    link: FifoServer,
    latency_link: u64,
    gap_link: u64,
    base_latency_link: u64,
    base_gap_link: u64,
    /// Round-robin scan origin (port after the last winner).
    rr_next: usize,
    /// Remaining credits for `Arbitration::Weighted`.
    credits: Vec<u32>,
    /// Fault knob: requests at port p are ineligible before this cycle.
    stalled_until: Vec<u64>,
}

impl CxlSwitch {
    /// A switch with `ports` upstream ports and a downstream link of the
    /// given flit latency and issue gap (1/bandwidth).
    pub fn new(ports: usize, latency_link: u64, gap_link: u64, arb: Arbitration) -> CxlSwitch {
        assert!(ports > 0, "a switch needs at least one upstream port");
        if let Arbitration::Weighted(w) = &arb {
            assert_eq!(w.len(), ports, "one weight per upstream port");
            assert!(w.iter().any(|&c| c > 0), "weights must not all be zero");
        }
        let credits = match &arb {
            Arbitration::Weighted(w) => w.clone(),
            _ => vec![0; ports],
        };
        CxlSwitch {
            arb,
            queues: (0..ports).map(|_| VecDeque::new()).collect(),
            stats: vec![PortStats::default(); ports],
            link: FifoServer::new(),
            latency_link,
            gap_link: gap_link.max(1),
            base_latency_link: latency_link,
            base_gap_link: gap_link.max(1),
            rr_next: 0,
            credits,
            stalled_until: vec![0; ports],
        }
    }

    pub fn ports(&self) -> usize {
        self.queues.len()
    }

    /// Queue a request at upstream port `port`.
    pub fn enqueue(&mut self, port: usize, arrival: u64, is_write: bool) {
        self.stats[port].inserts += 1;
        self.queues[port].push_back((arrival, is_write));
    }

    /// Requests currently queued across all ports.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    // ---- fault knobs (driven by `fabric.rs`) ---------------------------

    /// Degrade the shared downstream link: gap × `gap_mult` (width
    /// reduction), latency × 3/2 (retraining overhead). Every tenant
    /// behind the switch pays — the cross-tenant blast radius of
    /// `FaultClass::SharedLinkDegrade`.
    pub(crate) fn degrade_shared_link(&mut self, gap_mult: u64) {
        self.gap_link = self.base_gap_link * gap_mult.max(1);
        self.latency_link = self.base_latency_link + self.base_latency_link / 2;
    }

    /// Make port `port` ineligible for arbitration before `until`
    /// (`FaultClass::SwitchPortStall`).
    pub(crate) fn stall_port(&mut self, port: usize, until: u64) {
        if let Some(s) = self.stalled_until.get_mut(port) {
            *s = (*s).max(until);
        }
    }

    /// Restore calibrated link timings and un-stall every port.
    pub(crate) fn clear_faults(&mut self) {
        self.latency_link = self.base_latency_link;
        self.gap_link = self.base_gap_link;
        self.stalled_until.iter_mut().for_each(|s| *s = 0);
    }

    /// Earliest cycle port `p`'s head request could be granted.
    fn eff_head(&self, p: usize) -> Option<u64> {
        self.queues[p]
            .front()
            .map(|&(arrival, _)| arrival.max(self.stalled_until[p]))
    }

    /// Pick the winning port among those whose head is eligible at
    /// `cursor` (eligible set is non-empty by construction).
    fn pick(&mut self, cursor: u64) -> usize {
        let n = self.ports();
        let eligible = |sw: &CxlSwitch, p: usize| sw.eff_head(p).is_some_and(|eff| eff <= cursor);
        match &self.arb {
            Arbitration::RoundRobin => {
                for off in 0..n {
                    let p = (self.rr_next + off) % n;
                    if eligible(self, p) {
                        return p;
                    }
                }
                unreachable!("pick() requires a non-empty eligible set")
            }
            Arbitration::Fifo => (0..n)
                .filter(|&p| eligible(self, p))
                .min_by_key(|&p| (self.eff_head(p).unwrap(), p))
                .expect("pick() requires a non-empty eligible set"),
            Arbitration::Weighted(weights) => {
                if (0..n)
                    .filter(|&p| eligible(self, p))
                    .all(|p| self.credits[p] == 0)
                {
                    // Every eligible port exhausted its share: refill the
                    // whole round so the weights keep their proportions.
                    self.credits.copy_from_slice(weights);
                }
                (0..n)
                    .filter(|&p| eligible(self, p) && self.credits[p] > 0)
                    .max_by_key(|&p| (self.credits[p], std::cmp::Reverse(p)))
                    .or_else(|| (0..n).find(|&p| eligible(self, p)))
                    .expect("pick() requires a non-empty eligible set")
            }
        }
    }

    /// Arbitrate every queued request onto the shared link and return the
    /// grants in link order. Deterministic: a pure function of the queue
    /// contents, the arbitration state, and the link horizon.
    pub fn drain_queues(&mut self) -> Vec<Grant> {
        let mut grants = Vec::with_capacity(self.pending());
        while self.pending() > 0 {
            let min_eff = (0..self.ports())
                .filter_map(|p| self.eff_head(p))
                .min()
                .expect("pending() > 0 guarantees a head");
            // The link grants at its issue horizon or the first instant a
            // request is present, whichever is later — work conserving.
            let cursor = self.link.next_free().max(min_eff);
            let winner = self.pick(cursor);
            let (arrival, is_write) = self.queues[winner]
                .pop_front()
                .expect("winner has a head request");
            let eff = arrival.max(self.stalled_until[winner]);
            let svc = self.link.serve(eff, self.latency_link, self.gap_link);
            debug_assert_eq!(svc.start, cursor, "grant must start at the cursor");
            let st = &mut self.stats[winner];
            st.grants += 1;
            st.occupancy += svc.start - arrival;
            st.link_busy += self.gap_link;
            // Charge HOL blocking: every *other* port that already had a
            // waiting head while the link carries this grant.
            for p in 0..self.ports() {
                if p != winner && self.queues[p].front().is_some_and(|&(a, _)| a <= svc.start) {
                    self.stats[p].hol_blocked += self.gap_link;
                }
            }
            self.rr_next = (winner + 1) % self.ports();
            if matches!(self.arb, Arbitration::Weighted(_)) {
                self.credits[winner] = self.credits[winner].saturating_sub(1);
            }
            grants.push(Grant {
                port: winner,
                arrival,
                start: svc.start,
                depart: svc.finish,
                is_write,
            });
        }
        grants
    }
}

impl crate::module::SimModule for CxlSwitch {
    fn stage_id(&self) -> crate::module::StageId {
        crate::module::StageId::switch_port(0)
    }

    fn name(&self) -> &'static str {
        "module.cxlsw"
    }

    // pflint::hot
    fn tick(&mut self, _until: u64) {}

    // pflint::hot
    fn drain(&mut self, pmu: &mut pmu::SystemPmu, epoch_cycles: u64) {
        for (p, st) in self.stats.iter_mut().enumerate() {
            let bank = &mut pmu.switches[p];
            bank.add(SwitchEvent::ClockTicks, epoch_cycles);
            bank.add(SwitchEvent::IngressInserts, st.inserts - st.synced_inserts);
            st.synced_inserts = st.inserts;
            bank.add(SwitchEvent::ArbGrants, st.grants - st.synced_grants);
            st.synced_grants = st.grants;
            bank.add(
                SwitchEvent::IngressOccupancy,
                st.occupancy - st.synced_occupancy,
            );
            st.synced_occupancy = st.occupancy;
            bank.add(
                SwitchEvent::HolBlockedCycles,
                st.hol_blocked - st.synced_hol,
            );
            st.synced_hol = st.hol_blocked;
            bank.add(SwitchEvent::LinkBusyCycles, st.link_busy - st.synced_busy);
            st.synced_busy = st.link_busy;
        }
    }

    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&[
            "unc_cxlsw_clockticks",
            "unc_cxlsw_ingress_inserts.port",
            "unc_cxlsw_ingress_occupancy.port",
            "unc_cxlsw_arb_grants.port",
            "unc_cxlsw_hol_blocked_cycles.port",
            "unc_cxlsw_link_busy_cycles.port",
        ])
    }

    fn occupancy(&self, _now: u64) -> u64 {
        self.pending() as u64
    }
}

impl Invariants for CxlSwitch {
    fn component(&self) -> &'static str {
        "switch::CxlSwitch"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        self.link.collect_violations(out);
        for (p, st) in self.stats.iter().enumerate() {
            invariant!(
                out,
                self.component(),
                st.grants + self.queues[p].len() as u64 == st.inserts,
                "port {p}: grants({}) + queued({}) != inserts({})",
                st.grants,
                self.queues[p].len(),
                st.inserts
            );
            let baselines = [
                ("inserts", st.synced_inserts, st.inserts),
                ("grants", st.synced_grants, st.grants),
                ("occupancy", st.synced_occupancy, st.occupancy),
                ("hol", st.synced_hol, st.hol_blocked),
                ("busy", st.synced_busy, st.link_busy),
            ];
            for (name, synced, total) in baselines {
                invariant!(
                    out,
                    self.component(),
                    synced <= total,
                    "port {p}: {name} synced baseline ahead of accumulator: {synced} > {total}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::assert_invariants;
    use crate::module::SimModule;
    use pmu::SystemPmu;

    fn switch(arb: Arbitration) -> CxlSwitch {
        CxlSwitch::new(2, 10, 4, arb)
    }

    #[test]
    fn single_port_grants_in_arrival_order_at_link_pace() {
        let mut sw = CxlSwitch::new(1, 10, 4, Arbitration::RoundRobin);
        for k in 0..4 {
            sw.enqueue(0, k, false);
        }
        let g = sw.drain_queues();
        assert_eq!(g.len(), 4);
        let starts: Vec<u64> = g.iter().map(|x| x.start).collect();
        // First starts at its arrival, then every gap_link cycles.
        assert_eq!(starts, vec![0, 4, 8, 12]);
        assert!(g.iter().all(|x| x.depart == x.start + 10));
        assert_invariants(&sw);
    }

    #[test]
    fn round_robin_alternates_between_backlogged_ports() {
        let mut sw = switch(Arbitration::RoundRobin);
        for _ in 0..3 {
            sw.enqueue(0, 0, false);
            sw.enqueue(1, 0, true);
        }
        let order: Vec<usize> = sw.drain_queues().iter().map(|g| g.port).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn fifo_grants_the_oldest_head() {
        let mut sw = switch(Arbitration::Fifo);
        sw.enqueue(0, 5, false);
        sw.enqueue(1, 2, false);
        sw.enqueue(1, 3, false);
        let order: Vec<usize> = sw.drain_queues().iter().map(|g| g.port).collect();
        assert_eq!(order, vec![1, 1, 0]);
    }

    #[test]
    fn weighted_arbitration_splits_bandwidth_by_credit() {
        let mut sw = CxlSwitch::new(2, 10, 4, Arbitration::Weighted(vec![3, 1]));
        for _ in 0..8 {
            sw.enqueue(0, 0, false);
            sw.enqueue(1, 0, false);
        }
        let grants = sw.drain_queues();
        let first8: Vec<usize> = grants.iter().take(8).map(|g| g.port).collect();
        // 3:1 credit split per refill round.
        assert_eq!(first8.iter().filter(|&&p| p == 0).count(), 6);
        assert_eq!(first8.iter().filter(|&&p| p == 1).count(), 2);
    }

    #[test]
    fn stalled_port_holds_requests_and_fifo_charges_hol() {
        let mut sw = switch(Arbitration::Fifo);
        sw.stall_port(0, 100);
        sw.enqueue(0, 0, false);
        sw.enqueue(1, 1, false);
        let g = sw.drain_queues();
        // Port 1 overtakes the stalled head; port 0 waits out the stall.
        assert_eq!(g[0].port, 1);
        assert_eq!(g[1].port, 0);
        assert!(g[1].start >= 100);
        // While port 1's grant occupied the link, port 0 had a waiting
        // head — that interval is HOL-blocked time for port 0.
        assert!(sw.stats[0].hol_blocked > 0);
        sw.clear_faults();
        sw.enqueue(0, 200, false);
        let g = sw.drain_queues();
        assert_eq!(g[0].start, 200.max(sw.link.next_free() - sw.gap_link));
    }

    #[test]
    fn degraded_link_slows_every_port_and_restores() {
        let mut sw = switch(Arbitration::RoundRobin);
        sw.degrade_shared_link(8);
        sw.enqueue(0, 0, false);
        sw.enqueue(1, 0, false);
        let g = sw.drain_queues();
        assert_eq!(g[0].depart - g[0].start, 15, "latency × 3/2");
        assert_eq!(g[1].start - g[0].start, 32, "gap × 8");
        sw.clear_faults();
        assert_eq!(sw.gap_link, 4);
        assert_eq!(sw.latency_link, 10);
    }

    #[test]
    fn drain_syncs_per_port_banks_exactly_once() {
        let mut sw = switch(Arbitration::RoundRobin);
        sw.enqueue(0, 0, false);
        sw.enqueue(1, 0, true);
        let _ = sw.drain_queues();
        let mut pmu = SystemPmu::fabric(2);
        sw.drain(&mut pmu, 1000);
        for p in 0..2 {
            assert_eq!(pmu.switches[p].read(SwitchEvent::ClockTicks), 1000);
            assert_eq!(pmu.switches[p].read(SwitchEvent::IngressInserts), 1);
            assert_eq!(pmu.switches[p].read(SwitchEvent::ArbGrants), 1);
        }
        // Second drain without traffic adds clockticks only.
        sw.drain(&mut pmu, 1000);
        assert_eq!(pmu.switches[0].read(SwitchEvent::ClockTicks), 2000);
        assert_eq!(pmu.switches[0].read(SwitchEvent::IngressInserts), 1);
        assert_invariants(&sw);
    }
}
