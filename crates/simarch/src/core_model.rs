//! Per-core execution state: pipeline front end, SB, LFB, private caches.
//!
//! The core issues memory operations from its trace at the natural rate set
//! by the ops' `work` fields, bounded by the finite SB/LFB/super-queue
//! windows. Dependent loads serialise the pipeline (pointer chasing);
//! independent loads overlap up to the available memory-level parallelism.
//! The stall-cycle accounting mirrors the paper's Table 1 counters.

use crate::arena::RequestPool;
use crate::cache::SetAssocCache;
use crate::config::MachineConfig;
use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::mem::AddressSpace;
use crate::prefetch::StreamPrefetcher;
use crate::queues::{BoundedWindow, Coverage};
use crate::request::ServeLoc;
use crate::trace::Workload;
use pmu::{Bank, CoreEvent, PathClass};

/// A free-running "cycles while condition held" counter backed by interval
/// coverage, flushed into a PMU event at epoch boundaries.
#[derive(Debug, Default)]
pub struct CovCounter {
    cov: Coverage,
    synced: u64,
}

impl CovCounter {
    pub fn add(&mut self, start: u64, end: u64) {
        self.cov.add(start, end);
    }

    pub fn sync(&mut self, bank: &mut Bank<CoreEvent>, ev: CoreEvent) {
        let total = self.cov.total();
        bank.add(ev, total - self.synced);
        self.synced = total;
    }
}

impl Invariants for CovCounter {
    fn component(&self) -> &'static str {
        "core_model::CovCounter"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        self.cov.collect_violations(out);
        // The flushed baseline can never run ahead of the accumulator —
        // if it did, the next sync would underflow the free-running PMU.
        invariant!(
            out,
            self.component(),
            self.synced <= self.cov.total(),
            "synced baseline ahead of coverage: synced={} total={}",
            self.synced,
            self.cov.total()
        );
    }
}

/// Ground-truth per-request accounting the simulator keeps *outside* the PMU
/// — real hardware cannot see this; PathFinder's estimators are validated
/// against it in the ablation benches.
///
/// Storage is a flat `(path, serve location)` grid rather than the seed's
/// ordered map: `record_served` runs once per executed op, and a BTreeMap
/// entry there was one of the hottest allocator/tree costs in the profile
/// (PERFORMANCE.md). Iteration helpers walk the grid in `(PathClass,
/// ServeLoc)` `Ord` order, so reports see exactly the old map order.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `[path.idx()][loc.idx()]` → (requests, summed latency cycles).
    served: [[(u64, u64); ServeLoc::COUNT]; PathClass::COUNT],
    /// True queueing delay per named component, insertion-ordered; the
    /// set is tiny (IMC/UPI/CXL), so a linear scan beats any map.
    queue_delay: Vec<(&'static str, u64)>,
    /// Stall cycles whose blocking request was destined for CXL vs local.
    pub stall_cxl: u64,
    pub stall_local: u64,
    /// Operations executed.
    pub ops: u64,
    /// Loads/stores/prefetches executed.
    pub loads: u64,
    pub stores: u64,
    pub swpfs: u64,
}

impl Default for GroundTruth {
    fn default() -> Self {
        GroundTruth {
            served: [[(0, 0); ServeLoc::COUNT]; PathClass::COUNT],
            queue_delay: Vec::new(),
            stall_cxl: 0,
            stall_local: 0,
            ops: 0,
            loads: 0,
            stores: 0,
            swpfs: 0,
        }
    }
}

impl GroundTruth {
    // pflint::hot
    #[inline]
    pub fn record_served(&mut self, path: PathClass, loc: ServeLoc, latency: u64) {
        let e = &mut self.served[path.idx()][loc.idx()];
        e.0 += 1;
        e.1 += latency;
    }

    // pflint::hot
    pub fn add_queue_delay(&mut self, component: &'static str, cycles: u64) {
        for (name, total) in &mut self.queue_delay {
            if *name == component {
                *total += cycles;
                return;
            }
        }
        self.queue_delay.push((component, cycles));
    }

    /// `(requests, summed latency)` served for one `(path, location)` cell.
    pub fn served(&self, path: PathClass, loc: ServeLoc) -> (u64, u64) {
        self.served[path.idx()][loc.idx()]
    }

    /// Every non-empty `(path, loc, requests, latency)` cell, in the old
    /// map's `(PathClass, ServeLoc)` order.
    pub fn served_cells(&self) -> impl Iterator<Item = (PathClass, ServeLoc, u64, u64)> + '_ {
        PathClass::ALL.iter().flat_map(move |&p| {
            ServeLoc::ALL.iter().filter_map(move |&l| {
                let (n, lat) = self.served[p.idx()][l.idx()];
                (n > 0).then_some((p, l, n, lat))
            })
        })
    }

    /// Total requests served across all cells.
    pub fn served_total(&self) -> u64 {
        self.served.iter().flatten().map(|&(n, _)| n).sum()
    }

    /// Accumulated queueing delay at a named component.
    pub fn queue_delay(&self, component: &str) -> u64 {
        self.queue_delay
            .iter()
            .find(|(n, _)| *n == component)
            .map_or(0, |(_, v)| *v)
    }
}

/// The workload currently running on a core.
pub struct WorkloadRun {
    pub name: String,
    pub trace: Box<dyn crate::trace::TraceSource>,
    pub space: AddressSpace,
}

/// All mutable state of one simulated core.
pub struct CoreState {
    pub id: usize,
    /// The core's local clock (cycles).
    pub time: u64,
    pub l1d: SetAssocCache,
    pub l2: SetAssocCache,
    /// Store buffer: finite window of in-flight (un-drained) stores.
    pub sb: BoundedWindow,
    /// Line fill buffer / MSHRs: in-flight L1D misses.
    pub lfb: BoundedWindow,
    /// Super queue: in-flight offcore demand requests.
    pub superq: BoundedWindow,
    /// In-flight hardware prefetches (L2 XQ slots); full ⇒ prefetch dropped.
    pub pfq: BoundedWindow,
    /// Last L1D-missing line, for ascending-pattern next-line detection.
    pub last_l1_miss_line: u64,
    /// In-flight fills by line address → completion cycle (LFB merge
    /// table), backed by the struct-of-arrays free-list arena.
    pub inflight: RequestPool,
    /// In-flight store drains by line address (store coalescing).
    pub sb_inflight: RequestPool,
    pub prefetcher: StreamPrefetcher,
    pub workload: Option<WorkloadRun>,
    pub done: bool,
    /// Retirement bound: cycles of non-memory work per op are charged here.
    pub ops_executed: u64,

    // Coverage-backed "cycles while outstanding" counters.
    pub cov_l1d_miss: CovCounter,
    pub cov_l2_miss: CovCounter,
    pub cov_oro_data_rd: CovCounter,
    pub cov_oro_demand_rd: CovCounter,
    pub cov_oro_demand_rfo: CovCounter,

    pub truth: GroundTruth,
}

impl CoreState {
    pub fn new(id: usize, cfg: &MachineConfig) -> Self {
        CoreState {
            id,
            time: 0,
            l1d: SetAssocCache::new(cfg.l1d.size_bytes, cfg.l1d.ways),
            l2: SetAssocCache::new(cfg.l2.size_bytes, cfg.l2.ways),
            sb: BoundedWindow::new(cfg.sb_entries),
            lfb: BoundedWindow::new(cfg.lfb_entries),
            superq: BoundedWindow::new(cfg.superq_entries),
            pfq: BoundedWindow::new(cfg.pfq_entries),
            last_l1_miss_line: u64::MAX,
            inflight: RequestPool::new(),
            sb_inflight: RequestPool::new(),
            prefetcher: StreamPrefetcher::new(&cfg.prefetch),
            workload: None,
            done: true,
            ops_executed: 0,
            cov_l1d_miss: CovCounter::default(),
            cov_l2_miss: CovCounter::default(),
            cov_oro_data_rd: CovCounter::default(),
            cov_oro_demand_rd: CovCounter::default(),
            cov_oro_demand_rfo: CovCounter::default(),
            truth: GroundTruth::default(),
        }
    }

    /// Attach a workload; the core becomes runnable.
    pub fn attach(&mut self, wl: Workload, asid: u16) {
        let space = AddressSpace::new(asid, wl.trace.footprint(), wl.policy, wl.cxl_device);
        self.workload = Some(WorkloadRun {
            name: wl.name,
            trace: wl.trace,
            space,
        });
        self.done = false;
    }

    /// Drop completed entries from the in-flight pools (cheap, amortised).
    // pflint::hot
    pub fn gc_inflight(&mut self) {
        let now = self.time;
        if self.inflight.len() > 64 {
            self.inflight.gc(now);
        }
        if self.sb_inflight.len() > 64 {
            self.sb_inflight.gc(now);
        }
    }

    /// Audit the ground truth against itself; used by `Invariants` below.
    fn truth_violations(&self, out: &mut Vec<Violation>) {
        let t = &self.truth;
        // Every executed op is exactly one of load/store/software prefetch.
        invariant!(
            out,
            "core_model::GroundTruth",
            t.loads + t.stores + t.swpfs == t.ops,
            "op kinds do not sum to ops: loads={} stores={} swpfs={} ops={}",
            t.loads,
            t.stores,
            t.swpfs,
            t.ops
        );
        // Every op is served at exactly one location, and serving happens
        // synchronously within the step — so the per-location request
        // counts must conserve the op count.
        let served_total: u64 = t.served_total();
        invariant!(
            out,
            "core_model::GroundTruth",
            served_total == t.ops,
            "served requests do not conserve ops: served={} ops={}",
            served_total,
            t.ops
        );
    }

    /// Flush coverage counters into the PMU bank (epoch boundary).
    // pflint::hot
    pub fn sync_counters(&mut self, bank: &mut Bank<CoreEvent>, epoch_cycles: u64) {
        bank.add(CoreEvent::CpuClkUnhalted, epoch_cycles);
        self.cov_l1d_miss
            .sync(bank, CoreEvent::CycleActivityCyclesL1dMiss);
        self.cov_l2_miss
            .sync(bank, CoreEvent::CycleActivityCyclesL2Miss);
        self.cov_oro_data_rd
            .sync(bank, CoreEvent::OroCyclesWithDataRd);
        self.cov_oro_demand_rd
            .sync(bank, CoreEvent::OroCyclesWithDemandDataRd);
        self.cov_oro_demand_rfo
            .sync(bank, CoreEvent::OroCyclesWithDemandRfo);
    }
}

impl crate::module::SimModule for CoreState {
    fn stage_id(&self) -> crate::module::StageId {
        crate::module::StageId::core(self.id)
    }

    fn name(&self) -> &'static str {
        "module.core"
    }

    // pflint::hot
    fn tick(&mut self, until: u64) {
        if self.time < until {
            self.time = until;
        }
        self.gc_inflight();
    }

    // pflint::hot
    fn drain(&mut self, pmu: &mut pmu::SystemPmu, epoch_cycles: u64) {
        self.sync_counters(&mut pmu.cores[self.id], epoch_cycles);
    }

    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&[
            "cpu_clk_unhalted.thread",
            "inst_retired.any",
            "mem_load_retired.l1_hit",
            "mem_load_retired.l1_miss",
            "mem_load_retired.l2_miss",
            "l2_rqsts.references",
            "l2_rqsts.miss",
            "offcore_requests.all_requests",
            "l1d_pend_miss.fb_full",
            "resource_stalls.sb",
            "cycle_activity.cycles_l1d_miss",
            "cycle_activity.cycles_l2_miss",
            "offcore_requests_outstanding.cycles_with_data_rd",
        ])
    }

    fn occupancy(&self, now: u64) -> u64 {
        (self.sb.occupancy_at(now)
            + self.lfb.occupancy_at(now)
            + self.superq.occupancy_at(now)
            + self.pfq.occupancy_at(now)) as u64
    }

    fn next_event(&self) -> Option<u64> {
        // A core with trace ops left progresses at its pipeline time; a
        // finished core never needs a wakeup.
        (!self.done).then_some(self.time)
    }
}

impl Invariants for CoreState {
    fn component(&self) -> &'static str {
        "core_model::CoreState"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        self.sb.collect_violations(out);
        self.lfb.collect_violations(out);
        self.superq.collect_violations(out);
        self.pfq.collect_violations(out);
        self.cov_l1d_miss.collect_violations(out);
        self.cov_l2_miss.collect_violations(out);
        self.cov_oro_data_rd.collect_violations(out);
        self.cov_oro_demand_rd.collect_violations(out);
        self.cov_oro_demand_rfo.collect_violations(out);
        self.truth_violations(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemPolicy;
    use crate::trace::SeqReadTrace;

    #[test]
    fn new_core_is_idle() {
        let c = CoreState::new(0, &MachineConfig::tiny());
        assert!(c.done);
        assert_eq!(c.time, 0);
    }

    #[test]
    fn attach_makes_core_runnable_with_address_space() {
        let mut c = CoreState::new(1, &MachineConfig::tiny());
        let wl = Workload::new(
            "t",
            Box::new(SeqReadTrace::new(1 << 16, 10)),
            MemPolicy::Cxl,
        );
        c.attach(wl, 5);
        assert!(!c.done);
        let run = c.workload.as_ref().unwrap();
        assert_eq!(run.space.asid(), 5);
        assert_eq!(run.space.size_bytes(), 1 << 16);
    }

    #[test]
    fn cov_counter_sync_is_incremental() {
        let mut cc = CovCounter::default();
        let mut bank: Bank<CoreEvent> = Bank::new();
        cc.add(0, 100);
        cc.sync(&mut bank, CoreEvent::CycleActivityCyclesL1dMiss);
        assert_eq!(bank.read(CoreEvent::CycleActivityCyclesL1dMiss), 100);
        cc.add(50, 150); // 50 new cycles
        cc.sync(&mut bank, CoreEvent::CycleActivityCyclesL1dMiss);
        assert_eq!(bank.read(CoreEvent::CycleActivityCyclesL1dMiss), 150);
    }

    #[test]
    fn ground_truth_accumulates() {
        let mut g = GroundTruth::default();
        g.record_served(PathClass::Drd, ServeLoc::CxlDram, 700);
        g.record_served(PathClass::Drd, ServeLoc::CxlDram, 300);
        g.record_served(PathClass::Rfo, ServeLoc::L2, 15);
        assert_eq!(g.served(PathClass::Drd, ServeLoc::CxlDram), (2, 1000));
        assert_eq!(g.served(PathClass::Rfo, ServeLoc::L2), (1, 15));
        assert_eq!(g.served_total(), 3);
        let cells: Vec<_> = g.served_cells().collect();
        // Drd < Rfo in PathClass order, so the cells come out map-ordered.
        assert_eq!(
            cells,
            vec![
                (PathClass::Drd, ServeLoc::CxlDram, 2, 1000),
                (PathClass::Rfo, ServeLoc::L2, 1, 15),
            ]
        );
        g.add_queue_delay("L2", 5);
        g.add_queue_delay("L2", 7);
        assert_eq!(g.queue_delay("L2"), 12);
        assert_eq!(g.queue_delay("IMC"), 0);
    }

    #[test]
    fn gc_inflight_drops_only_completed() {
        let mut c = CoreState::new(0, &MachineConfig::tiny());
        c.time = 100;
        for line in 1..=70u64 {
            c.inflight.insert(line, if line <= 35 { 50 } else { 500 });
        }
        c.gc_inflight();
        assert_eq!(c.inflight.len(), 35);
        c.inflight.for_each(|_, f| assert!(f > 100));
    }
}
