//! Workload attachment: trace sources and thread descriptors.

use crate::config::MemPolicy;
use crate::request::MemOp;

/// A stream of memory operations — the program under profile.
///
/// Implementations must be deterministic: the `workloads` crate seeds every
/// generator explicitly. The `Send` bound lets whole machines migrate into
/// long-lived shard worker threads (fleetd) — generators are plain seeded
/// state, so this costs implementors nothing.
pub trait TraceSource: Send {
    /// The next operation, or `None` when the program finishes.
    fn next_op(&mut self) -> Option<MemOp>;

    /// Virtual address-space size this trace touches, in bytes. The machine
    /// sizes the thread's page table from this.
    fn footprint(&self) -> usize;
}

/// A workload thread pinned to a core with a memory placement policy
/// (the paper's "running environment": pinned cores + mapped memory nodes).
pub struct Workload {
    /// Report label, e.g. `"519.lbm_r"` or `"GUPS-2"`.
    pub name: String,
    /// The op stream.
    pub trace: Box<dyn TraceSource>,
    /// Page placement policy for this thread's address space.
    pub policy: MemPolicy,
    /// Which CXL device backs this thread's CXL pages.
    pub cxl_device: u8,
}

impl Workload {
    pub fn new(
        name: impl Into<String>,
        trace: Box<dyn TraceSource>,
        policy: MemPolicy,
    ) -> Workload {
        Workload {
            name: name.into(),
            trace,
            policy,
            cxl_device: 0,
        }
    }
}

/// A sequential read sweep over `footprint` bytes, `iters` times — the
/// simplest possible streaming trace, used by unit tests (rich generators
/// live in the `workloads` crate).
pub struct SeqReadTrace {
    footprint: usize,
    stride: usize,
    remaining: usize,
    pos: u64,
    work: u32,
}

impl SeqReadTrace {
    pub fn new(footprint: usize, total_ops: usize) -> Self {
        SeqReadTrace {
            footprint,
            stride: 64,
            remaining: total_ops,
            pos: 0,
            work: 2,
        }
    }

    pub fn with_work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }
}

impl TraceSource for SeqReadTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.pos;
        self.pos = (self.pos + self.stride as u64) % self.footprint as u64;
        Some(MemOp::load(addr).with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

/// A sequential read+write sweep (`write_every` gives the store mix).
pub struct SeqRwTrace {
    inner: SeqReadTrace,
    write_every: usize,
    n: usize,
}

impl SeqRwTrace {
    pub fn new(footprint: usize, total_ops: usize, write_every: usize) -> Self {
        assert!(write_every > 0);
        SeqRwTrace {
            inner: SeqReadTrace::new(footprint, total_ops),
            write_every,
            n: 0,
        }
    }
}

impl TraceSource for SeqRwTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        let op = self.inner.next_op()?;
        self.n += 1;
        if self.n.is_multiple_of(self.write_every) {
            Some(MemOp::store(op.vaddr).with_work(op.work))
        } else {
            Some(op)
        }
    }

    fn footprint(&self) -> usize {
        self.inner.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AccessKind;

    #[test]
    fn seq_trace_wraps_and_terminates() {
        let mut t = SeqReadTrace::new(256, 10);
        let mut addrs = Vec::new();
        while let Some(op) = t.next_op() {
            addrs.push(op.vaddr);
        }
        assert_eq!(addrs.len(), 10);
        assert!(addrs.iter().all(|&a| a < 256));
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[4], 0); // wrapped after 4 lines of 64B
    }

    #[test]
    fn rw_trace_mixes_stores() {
        let mut t = SeqRwTrace::new(1 << 20, 100, 4);
        let mut stores = 0;
        while let Some(op) = t.next_op() {
            if matches!(op.kind, AccessKind::Store) {
                stores += 1;
            }
        }
        assert_eq!(stores, 25);
    }
}
