//! Workload attachment: trace sources and thread descriptors.

use crate::arena::OpRing;
use crate::config::MemPolicy;
use crate::request::MemOp;

/// A stream of memory operations — the program under profile.
///
/// Implementations must be deterministic: the `workloads` crate seeds every
/// generator explicitly. The `Send` bound lets whole machines migrate into
/// long-lived shard worker threads (fleetd) — generators are plain seeded
/// state, so this costs implementors nothing.
pub trait TraceSource: Send {
    /// The next operation, or `None` when the program finishes.
    fn next_op(&mut self) -> Option<MemOp>;

    /// Virtual address-space size this trace touches, in bytes. The machine
    /// sizes the thread's page table from this.
    fn footprint(&self) -> usize;

    /// Decode up to `max` ops into `ring`, returning how many were pushed.
    /// `0` means the trace is finished (a [`TraceSource`] is terminal: once
    /// `next_op` returns `None` it stays `None`).
    ///
    /// The batched datapath's gather pass calls this once per chunk through
    /// the `Box<dyn TraceSource>`, replacing one virtual call per op with
    /// one per chunk. Default methods are monomorphized per implementing
    /// type, so the `next_op` calls *inside* this body dispatch statically
    /// even when invoked through the trait object.
    // pflint::hot — gather pass of the batched datapath.
    fn fill_ops(&mut self, ring: &mut OpRing, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            let Some(op) = self.next_op() else { break };
            ring.push(op);
            n += 1;
        }
        n
    }
}

/// A workload thread pinned to a core with a memory placement policy
/// (the paper's "running environment": pinned cores + mapped memory nodes).
pub struct Workload {
    /// Report label, e.g. `"519.lbm_r"` or `"GUPS-2"`.
    pub name: String,
    /// The op stream.
    pub trace: Box<dyn TraceSource>,
    /// Page placement policy for this thread's address space.
    pub policy: MemPolicy,
    /// Which CXL device backs this thread's CXL pages.
    pub cxl_device: u8,
}

impl Workload {
    pub fn new(
        name: impl Into<String>,
        trace: Box<dyn TraceSource>,
        policy: MemPolicy,
    ) -> Workload {
        Workload {
            name: name.into(),
            trace,
            policy,
            cxl_device: 0,
        }
    }
}

/// A sequential read sweep over `footprint` bytes, `iters` times — the
/// simplest possible streaming trace, used by unit tests (rich generators
/// live in the `workloads` crate).
pub struct SeqReadTrace {
    footprint: usize,
    stride: usize,
    remaining: usize,
    pos: u64,
    work: u32,
}

impl SeqReadTrace {
    pub fn new(footprint: usize, total_ops: usize) -> Self {
        SeqReadTrace {
            footprint,
            stride: 64,
            remaining: total_ops,
            pos: 0,
            work: 2,
        }
    }

    pub fn with_work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }
}

impl TraceSource for SeqReadTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.pos;
        self.pos = (self.pos + self.stride as u64) % self.footprint as u64;
        Some(MemOp::load(addr).with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

/// A sequential read+write sweep (`write_every` gives the store mix).
pub struct SeqRwTrace {
    inner: SeqReadTrace,
    write_every: usize,
    n: usize,
}

impl SeqRwTrace {
    pub fn new(footprint: usize, total_ops: usize, write_every: usize) -> Self {
        assert!(write_every > 0);
        SeqRwTrace {
            inner: SeqReadTrace::new(footprint, total_ops),
            write_every,
            n: 0,
        }
    }
}

impl TraceSource for SeqRwTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        let op = self.inner.next_op()?;
        self.n += 1;
        if self.n.is_multiple_of(self.write_every) {
            Some(MemOp::store(op.vaddr).with_work(op.work))
        } else {
            Some(op)
        }
    }

    fn footprint(&self) -> usize {
        self.inner.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AccessKind;

    #[test]
    fn seq_trace_wraps_and_terminates() {
        let mut t = SeqReadTrace::new(256, 10);
        let mut addrs = Vec::new();
        while let Some(op) = t.next_op() {
            addrs.push(op.vaddr);
        }
        assert_eq!(addrs.len(), 10);
        assert!(addrs.iter().all(|&a| a < 256));
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[4], 0); // wrapped after 4 lines of 64B
    }

    #[test]
    fn fill_ops_matches_per_op_pulls_and_signals_exhaustion() {
        use crate::arena::OpRing;
        let mut a = SeqReadTrace::new(1 << 12, 10);
        let mut b = SeqReadTrace::new(1 << 12, 10);
        let mut ring = OpRing::new();
        // First chunk is bounded by `max`, second by the trace tail.
        assert_eq!(a.fill_ops(&mut ring, 7), 7);
        for _ in 0..7 {
            assert_eq!(ring.pop(), b.next_op());
        }
        assert_eq!(a.fill_ops(&mut ring, 7), 3);
        for _ in 0..3 {
            assert_eq!(ring.pop(), b.next_op());
        }
        assert_eq!(a.fill_ops(&mut ring, 7), 0, "terminal trace refills empty");
        assert_eq!(b.next_op(), None);
    }

    #[test]
    fn rw_trace_mixes_stores() {
        let mut t = SeqRwTrace::new(1 << 20, 100, 4);
        let mut stores = 0;
        while let Some(op) = t.next_op() {
            if matches!(op.kind, AccessKind::Store) {
                stores += 1;
            }
        }
        assert_eq!(stores, 25);
    }
}
