//! Multi-host CXL fabric: N machines → switch → pooled Type-3 device.
//!
//! The fabric composes otherwise-unmodified [`Machine`]s behind a
//! [`CxlSwitch`] and a [`PooledDevice`], coupling them at **epoch
//! granularity**: each epoch every host runs alone, its CXL demand is
//! read back from its own counters (`unc_cxlcm_rxc_pack_buf_inserts.*`),
//! replayed through the shared switch + pooled MC, and the *excess* wait
//! the sharing imposed — beyond what a private replica of the same path
//! would have charged — is fed back as per-port media-latency pressure
//! for the next epoch. The loop is a pure function of
//! `(MachineConfig, FabricConfig, workloads, seeds)`.
//!
//! The excess-over-alone construction makes the single-host fabric a
//! *structural* identity: with one host the shared path and the private
//! replica see the same arrivals through the same server parameters, so
//! the excess is zero every epoch, the backpressure stays zero, and the
//! machine's counter stream is byte-for-byte the standalone stream (the
//! `fabric` integration tests pin this).

use crate::config::MachineConfig;
use crate::faults::{FaultClass, FaultPlan};
use crate::machine::{EpochResult, Machine};
use crate::module::Topology;
use crate::pooled::PooledDevice;
use crate::queues::FifoServer;
use crate::request::HostId;
use crate::switch::{Arbitration, CxlSwitch};
use crate::trace::Workload;
use pmu::{CxlEvent, SystemPmu, SystemSnapshot};

/// Fabric-level topology knobs (the per-host machine keeps its own
/// [`MachineConfig`]).
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Number of tenant hosts (= upstream switch ports = pooled-device
    /// accounting slots).
    pub hosts: usize,
    /// Downstream-link arbitration policy.
    pub arbitration: Arbitration,
    /// Switch→pool link flit latency in cycles.
    pub link_latency: u64,
    /// Switch→pool link issue gap (1/bandwidth) in cycles.
    pub link_gap: u64,
}

impl FabricConfig {
    /// Round-robin fabric with the link dimensioned like one FlexBus hop
    /// under `cfg`.
    pub fn balanced(hosts: usize, cfg: &MachineConfig) -> FabricConfig {
        FabricConfig {
            hosts,
            arbitration: Arbitration::RoundRobin,
            link_latency: cfg.flexbus_latency / 2,
            link_gap: cfg.flexbus_gap,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.hosts == 0 {
            return Err("fabric needs at least one host".into());
        }
        if self.link_gap == 0 {
            return Err("link gap must be >= 1".into());
        }
        if let Arbitration::Weighted(w) = &self.arbitration {
            if w.len() != self.hosts {
                return Err(format!(
                    "weighted arbitration needs one weight per host: {} != {}",
                    w.len(),
                    self.hosts
                ));
            }
            if w.iter().all(|&c| c == 0) {
                return Err("weights must not all be zero".into());
            }
        }
        Ok(())
    }
}

/// One fabric epoch: every host's epoch result plus the fabric-level
/// counter snapshot (switch + pooled-device banks).
pub struct FabricEpochResult {
    /// Per-host results, indexed by host id.
    pub hosts: Vec<EpochResult>,
    /// Fabric PMU snapshot at the epoch boundary.
    pub fabric: SystemSnapshot,
    /// True when every host has finished its workloads.
    pub all_done: bool,
}

/// The private-replica state used to price each host's alone wait.
#[derive(Debug)]
struct AloneReplica {
    link: FifoServer,
    mc: FifoServer,
}

/// N hosts sharing a switch and a pooled Type-3 device.
pub struct Fabric {
    cfg: MachineConfig,
    fcfg: FabricConfig,
    hosts: Vec<Machine>,
    switch: CxlSwitch,
    pool: PooledDevice,
    /// Per-host private replay of (link, MC) with calibrated (healthy,
    /// un-shared) parameters — the "alone" baseline for excess pricing.
    alone: Vec<AloneReplica>,
    prev: Vec<SystemSnapshot>,
    /// Fabric-level counters: `switches[h]` + `pools[h]` banks.
    pub pmu: SystemPmu,
    topology: Topology,
    faults: FaultPlan,
    epochs_run: u64,
}

impl Fabric {
    pub fn new(cfg: MachineConfig, fcfg: FabricConfig) -> Fabric {
        cfg.validate().expect("invalid machine configuration");
        fcfg.validate().expect("invalid fabric configuration");
        let hosts: Vec<Machine> = (0..fcfg.hosts)
            .map(|h| {
                let mut m = Machine::new(cfg.clone());
                m.set_host(HostId(h as u16));
                m
            })
            .collect();
        let prev = hosts.iter().map(|m| m.pmu.snapshot(0)).collect();
        Fabric {
            switch: CxlSwitch::new(
                fcfg.hosts,
                fcfg.link_latency,
                fcfg.link_gap,
                fcfg.arbitration.clone(),
            ),
            pool: PooledDevice::new(&cfg, fcfg.hosts),
            alone: (0..fcfg.hosts)
                .map(|_| AloneReplica {
                    link: FifoServer::new(),
                    mc: FifoServer::new(),
                })
                .collect(),
            prev,
            pmu: SystemPmu::fabric(fcfg.hosts),
            topology: Topology::fabric(&cfg, fcfg.hosts),
            faults: FaultPlan::new(),
            epochs_run: 0,
            hosts,
            cfg,
            fcfg,
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    pub fn fabric_config(&self) -> &FabricConfig {
        &self.fcfg
    }

    /// The full stage graph, hosts × pipeline + switch + pool.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    pub fn host(&self, h: usize) -> &Machine {
        &self.hosts[h]
    }

    /// Mutable host access — e.g. to set a per-host (machine-class) fault
    /// plan.
    pub fn host_mut(&mut self, h: usize) -> &mut Machine {
        &mut self.hosts[h]
    }

    /// Select the core-stepping scheduler on every host. The switch and
    /// pool are request-driven stages (`next_event() == None`): they ride
    /// the same wheel discipline by never being polled, so the 1-host
    /// fabric identity holds in both modes (the differential harness pins
    /// this with fabric topologies on and off).
    pub fn set_sched_mode(&mut self, mode: crate::machine::SchedMode) {
        for h in &mut self.hosts {
            h.set_sched_mode(mode);
        }
    }

    /// Select the per-op datapath on every host. Per-host batching never
    /// crosses the fabric boundary: a slice still issues its offcore
    /// requests through the same switch/pool stages in the same order.
    pub fn set_datapath_mode(&mut self, mode: crate::machine::DatapathMode) {
        for h in &mut self.hosts {
            h.set_datapath_mode(mode);
        }
    }

    /// Pin a workload to `core` of host `host`.
    pub fn attach(&mut self, host: usize, core: usize, workload: Workload) {
        self.hosts[host].attach(core, workload);
    }

    pub fn all_done(&self) -> bool {
        self.hosts.iter().all(Machine::all_done)
    }

    /// Attach a fabric-level fault schedule. Only the fabric classes
    /// (`SharedLinkDegrade`, `SwitchPortStall`) act here — machine-class
    /// windows belong on the individual hosts (`host_mut(..).set_fault_plan`),
    /// and `FaultWindow::validate` keeps the two families on their own
    /// stage kinds.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Reset switch fault knobs and re-apply the windows covering the
    /// upcoming epoch (same compose-and-expire contract as the machine's
    /// fault engine).
    fn apply_faults_for_epoch(&mut self) {
        if self.faults.is_empty() {
            return;
        }
        self.switch.clear_faults();
        let epoch_start = self.epochs_run * self.cfg.epoch_cycles;
        let plan = std::mem::take(&mut self.faults);
        for w in plan.active(self.epochs_run) {
            match w.class {
                FaultClass::SharedLinkDegrade => {
                    self.switch.degrade_shared_link(w.severity);
                    obs::metrics::counter_add("fault.shared_link_degrade", 1);
                }
                FaultClass::SwitchPortStall => {
                    self.switch
                        .stall_port(w.stage.index as usize, epoch_start + w.severity);
                    obs::metrics::counter_add("fault.switch_port_stall", 1);
                }
                // Machine-class windows are inert at fabric level.
                _ => {}
            }
        }
        self.faults = plan;
    }

    /// Execute one fabric epoch: run every host, replay its CXL demand
    /// through the shared switch + pooled MC, and derive next epoch's
    /// backpressure from the excess-over-alone wait.
    pub fn run_epoch(&mut self) -> FabricEpochResult {
        self.apply_faults_for_epoch();
        let ec = self.cfg.epoch_cycles;
        let n_hosts = self.hosts.len();
        let mut results = Vec::with_capacity(n_hosts);
        let mut alone_wait = vec![0u64; n_hosts];
        let mut shared_wait = vec![0u64; n_hosts];
        let mut reqs = vec![0u64; n_hosts];
        for h in 0..n_hosts {
            let res = self.hosts[h].run_epoch();
            let delta = res.snapshot.delta(&self.prev[h]);
            self.prev[h] = res.snapshot.clone();
            let reads = delta.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq);
            let writes = delta.cxl_sum(CxlEvent::RxcPackBufInsertsMemData);
            let n = reads + writes;
            reqs[h] = n;
            let epoch_start = self.hosts[h].now() - ec;
            // Synthesize evenly-spaced arrivals from the counted demand
            // (the machine's own FlexBus already shaped the burstiness;
            // the fabric prices aggregate pressure, not per-request
            // timing). Writes interleave by Bresenham so read/write mix
            // is position-independent and deterministic.
            for k in 0..n {
                let arrival = epoch_start + k * ec / n;
                let is_write = (k + 1) * writes / n > k * writes / n;
                self.switch.enqueue(h, arrival, is_write);
                // Private replica: same arrivals, calibrated parameters,
                // no sharing — what this host would pay alone.
                let a = &mut self.alone[h];
                let link = a
                    .link
                    .serve(arrival, self.fcfg.link_latency, self.fcfg.link_gap);
                let mc = a.mc.serve(
                    link.finish,
                    self.cfg.cxl_media_latency,
                    self.cfg.cxl_dev_gap,
                );
                alone_wait[h] += (link.start - arrival) + (mc.start - link.finish);
            }
            results.push(res);
        }
        // Shared path: arbitration onto the one link, then the pooled MC.
        for g in self.switch.drain_queues() {
            let svc = self.pool.access(g.port, g.depart, g.is_write);
            shared_wait[g.port] += (g.start - g.arrival) + (svc.start - g.depart);
        }
        // Excess-over-alone: the contention the *fabric* added. Fed back
        // as per-request media-latency pressure for the next epoch, and
        // exported per host for the analyzer.
        for h in 0..n_hosts {
            let excess = shared_wait[h].saturating_sub(alone_wait[h]);
            self.pool.add_excess(h, excess);
            let extra_lat = excess / reqs[h].max(1);
            self.hosts[h].set_fabric_backpressure(extra_lat, 0);
        }
        {
            use crate::module::SimModule;
            let end = (self.epochs_run + 1) * ec;
            self.switch.tick(end);
            self.switch.drain(&mut self.pmu, ec);
            self.pool.tick(end);
            self.pool.drain(&mut self.pmu, ec);
        }
        self.epochs_run += 1;
        #[cfg(any(debug_assertions, feature = "invariants"))]
        {
            crate::invariants::assert_invariants(&self.switch);
            crate::invariants::assert_invariants(&self.pool);
            crate::invariants::assert_invariants(self);
        }
        let all_done = self.all_done();
        FabricEpochResult {
            hosts: results,
            fabric: self.pmu.snapshot(self.epochs_run * ec),
            all_done,
        }
    }

    /// Fabric-level counter snapshot at the last epoch boundary.
    pub fn fabric_snapshot(&self) -> SystemSnapshot {
        self.pmu.snapshot(self.epochs_run * self.cfg.epoch_cycles)
    }

    /// Run until every host finishes or `max_epochs` elapse; returns the
    /// number of epochs executed, or `None` if the cap was hit first.
    pub fn run_to_completion(&mut self, max_epochs: u64) -> Option<u64> {
        let mut epochs = 0;
        while !self.all_done() && epochs < max_epochs {
            self.run_epoch();
            epochs += 1;
        }
        self.all_done().then_some(epochs)
    }
}

/// Fabric-level flow balance (per-host machines audit themselves): every
/// port's ingress must be granted, every grant must land as exactly one
/// pooled CAS — see `conservation::fabric_conservation`.
impl crate::invariants::Invariants for Fabric {
    fn component(&self) -> &'static str {
        "fabric::Fabric"
    }

    fn collect_violations(&self, out: &mut Vec<crate::invariants::Violation>) {
        crate::conservation::fabric_conservation(&self.pmu, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultWindow;
    use crate::module::StageId;
    use crate::trace::SeqReadTrace;
    use pmu::{PoolEvent, SwitchEvent};

    fn stream(name: &str, ops: usize) -> Workload {
        Workload::new(
            name,
            Box::new(SeqReadTrace::new(1 << 16, ops)),
            crate::config::MemPolicy::Cxl,
        )
    }

    fn two_host_fabric() -> Fabric {
        let cfg = MachineConfig::tiny();
        let fcfg = FabricConfig::balanced(2, &cfg);
        let mut f = Fabric::new(cfg, fcfg);
        f.attach(0, 0, stream("h0", 400));
        f.attach(1, 0, stream("h1", 400));
        f
    }

    #[test]
    fn fabric_runs_and_conserves_per_host_flow() {
        let mut f = two_host_fabric();
        let epochs = f.run_to_completion(200).expect("must finish");
        assert!(epochs > 0);
        let snap = f.fabric_snapshot();
        for h in 0..2 {
            let inserts = snap.pmu.switches[h].read(SwitchEvent::IngressInserts);
            let grants = snap.pmu.switches[h].read(SwitchEvent::ArbGrants);
            let cas = snap.pmu.pools[h].read(PoolEvent::McRdCas)
                + snap.pmu.pools[h].read(PoolEvent::McWrCas);
            assert!(inserts > 0, "host {h} must reach the switch");
            assert_eq!(inserts, grants);
            assert_eq!(grants, cas);
        }
    }

    #[test]
    fn fabric_epochs_are_deterministic() {
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut f = two_host_fabric();
                f.run_to_completion(200).expect("must finish");
                let snap = f.fabric_snapshot();
                let mut raw = Vec::new();
                for b in &snap.pmu.switches {
                    raw.extend_from_slice(b.raw());
                }
                for b in &snap.pmu.pools {
                    raw.extend_from_slice(b.raw());
                }
                raw
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn attach_order_does_not_change_counters() {
        let build = |flip: bool| {
            let cfg = MachineConfig::tiny();
            let mut f = Fabric::new(cfg.clone(), FabricConfig::balanced(2, &cfg));
            if flip {
                f.attach(1, 0, stream("h1", 300));
                f.attach(0, 0, stream("h0", 300));
            } else {
                f.attach(0, 0, stream("h0", 300));
                f.attach(1, 0, stream("h1", 300));
            }
            f.run_to_completion(200).expect("must finish");
            let snap = f.fabric_snapshot();
            let mut raw = Vec::new();
            for b in &snap.pmu.switches {
                raw.extend_from_slice(b.raw());
            }
            for b in &snap.pmu.pools {
                raw.extend_from_slice(b.raw());
            }
            raw
        };
        assert_eq!(build(false), build(true));
    }

    fn heavy_fabric() -> Fabric {
        let cfg = MachineConfig::tiny();
        let fcfg = FabricConfig::balanced(2, &cfg);
        let mut f = Fabric::new(cfg, fcfg);
        // Footprints larger than the LLC so every sweep misses to CXL and
        // the per-epoch demand stays high enough to stress the link.
        f.attach(
            0,
            0,
            Workload::new(
                "h0",
                Box::new(SeqReadTrace::new(1 << 20, 2000)),
                crate::config::MemPolicy::Cxl,
            ),
        );
        f.attach(
            1,
            0,
            Workload::new(
                "h1",
                Box::new(SeqReadTrace::new(1 << 20, 2000)),
                crate::config::MemPolicy::Cxl,
            ),
        );
        f
    }

    #[test]
    fn shared_link_fault_raises_every_hosts_excess() {
        let mut healthy = heavy_fabric();
        healthy.run_to_completion(400).expect("must finish");
        let mut faulted = heavy_fabric();
        faulted.set_fault_plan(
            FaultPlan::new()
                .with(FaultWindow {
                    class: FaultClass::SharedLinkDegrade,
                    stage: StageId::switch_port(0),
                    start_epoch: 0,
                    end_epoch: u64::MAX,
                    severity: 256,
                })
                .unwrap(),
        );
        faulted.run_to_completion(800).expect("must finish");
        let hs = healthy.fabric_snapshot();
        let fs = faulted.fabric_snapshot();
        for h in 0..2 {
            let healthy_excess = hs.pmu.pools[h].read(PoolEvent::ExcessWaitCycles);
            let faulted_excess = fs.pmu.pools[h].read(PoolEvent::ExcessWaitCycles);
            assert!(
                faulted_excess > healthy_excess,
                "host {h}: shared-link degrade must raise excess ({faulted_excess} vs {healthy_excess})"
            );
        }
    }
}
