//! A generic set-associative cache with MESIF-like line states.
//!
//! Used for L1D, L2 and the LLC slices. Lines carry a `ready_at` cycle so a
//! line that is architecturally present but still in flight (a prefetch that
//! has not landed yet) delays a demand hit until the fill completes — this
//! is how prefetch timeliness and LFB-style merge-on-fill behave.

/// MESIF coherence state of a cached line. Absence from the cache is the
/// Invalid state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineState {
    Modified,
    Exclusive,
    Shared,
    /// The MESIF Forward state: shared, but this cache answers snoops.
    Forward,
}

impl LineState {
    /// Whether a store can hit this line without an ownership upgrade.
    pub fn writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }
}

/// One cached line.
#[derive(Clone, Copy, Debug)]
pub struct Line {
    pub tag: u64,
    pub state: LineState,
    /// Cycle at which the fill completes; a demand access before this merges
    /// (waits) rather than hitting instantly.
    pub ready_at: u64,
    /// True if the line was brought in by a prefetch and not yet demanded.
    pub prefetched: bool,
    lru: u64,
}

/// What fell out of the cache on an insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    pub line_addr: u64,
    pub state: LineState,
    /// The victim had never been demanded after prefetch (dead prefetch).
    pub was_prefetched: bool,
}

/// A set-associative cache, LRU replacement.
///
/// Storage is a single flat slab (`sets × ways` lines, set-major) with a
/// per-set occupancy count instead of a `Vec<Vec<Line>>` — one allocation
/// per cache, no pointer chase per set, and insertion never allocates.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    lines: Vec<Line>,
    /// Occupied ways per set; `lines[s*ways .. s*ways + lens[s]]` are live.
    lens: Vec<u16>,
    ways: usize,
    set_mask: u64,
    lru_clock: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    state: LineState::Shared,
    ready_at: 0,
    prefetched: false,
    lru: 0,
};

impl SetAssocCache {
    /// Build a cache with `size_bytes / 64 / ways` sets (rounded down to a
    /// power of two so set selection is a mask).
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        let lines = (size_bytes / crate::mem::CACHELINE).max(1);
        let sets = (lines / ways).max(1).next_power_of_two() / 2;
        let sets = sets.max(1);
        SetAssocCache {
            lines: vec![EMPTY_LINE; sets * ways],
            lens: vec![0; sets],
            ways,
            set_mask: sets as u64 - 1,
            lru_clock: 0,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        // Mix the upper bits in so node/ASID fields don't alias whole sets.
        let h = line_addr ^ (line_addr >> 17);
        (h & self.set_mask) as usize
    }

    /// The live slots of set `s` as a flat-slab range.
    #[inline]
    fn set_range(&self, s: usize) -> std::ops::Range<usize> {
        let base = s * self.ways;
        base..base + self.lens[s] as usize
    }

    /// Total lines currently resident.
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&n| n as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.lens.len() * self.ways
    }

    /// Number of sets (for geometry-aware tests).
    pub fn n_sets(&self) -> usize {
        self.lens.len()
    }

    /// Look a line up, touching LRU on hit.
    // pflint::hot — per-access path; must not allocate.
    pub fn lookup(&mut self, line_addr: u64) -> Option<&mut Line> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set = self.set_of(line_addr);
        let r = self.set_range(set);
        let line = self.lines[r].iter_mut().find(|l| l.tag == line_addr)?;
        line.lru = clock;
        Some(line)
    }

    /// Combined demand-load probe for the batched datapath: one set search
    /// replacing the reference walk's hit-path double `lookup` (find, then
    /// re-find to clear `prefetched`). Clock-exact against that sequence:
    /// a hit advances `lru_clock` twice and stamps the line with the second
    /// tick; a miss advances it once and stamps nothing — so every future
    /// LRU eviction decision is byte-identical to the reference walk's.
    // pflint::hot — batched L1 probe pass; must not allocate.
    #[inline]
    pub fn probe_demand(&mut self, line_addr: u64) -> Option<u64> {
        self.lru_clock += 1;
        let set = self.set_of(line_addr);
        let r = self.set_range(set);
        let line = self.lines[r].iter_mut().find(|l| l.tag == line_addr)?;
        self.lru_clock += 1;
        line.lru = self.lru_clock;
        line.prefetched = false;
        Some(line.ready_at)
    }

    /// Combined store probe: `(ready_at, was_writable)`, upgrading a
    /// writable hit to Modified in the same search. Clock-exact against the
    /// reference double-lookup: writable hit = two ticks, stamped with the
    /// second; non-writable hit = one tick, stamped; miss = one tick.
    // pflint::hot — batched store pass; must not allocate.
    #[inline]
    pub fn probe_store(&mut self, line_addr: u64) -> Option<(u64, bool)> {
        self.lru_clock += 1;
        let set = self.set_of(line_addr);
        let r = self.set_range(set);
        let line = self.lines[r].iter_mut().find(|l| l.tag == line_addr)?;
        let ready_at = line.ready_at;
        if line.state.writable() {
            self.lru_clock += 1;
            line.state = LineState::Modified;
            line.lru = self.lru_clock;
            Some((ready_at, true))
        } else {
            line.lru = self.lru_clock;
            Some((ready_at, false))
        }
    }

    /// Combined L2 probe: `(ready_at, writable_ok)` where `writable_ok`
    /// means the access can be served here (`!rfo` or the line is
    /// writable); an RFO hitting a writable line is upgraded to Modified
    /// in the same search. Clock-exact against the reference sequence
    /// (`lookup`, then a second `lookup` only on the RFO-writable path).
    // pflint::hot — batched L2 pass; must not allocate.
    #[inline]
    pub fn probe_l2(&mut self, line_addr: u64, rfo: bool) -> Option<(u64, bool)> {
        self.lru_clock += 1;
        let set = self.set_of(line_addr);
        let r = self.set_range(set);
        let line = self.lines[r].iter_mut().find(|l| l.tag == line_addr)?;
        let writable_ok = !rfo || line.state.writable();
        if rfo && writable_ok {
            self.lru_clock += 1;
            line.state = LineState::Modified;
        }
        line.lru = self.lru_clock;
        Some((line.ready_at, writable_ok))
    }

    /// Look a line up without touching LRU (snoops, probes).
    // pflint::hot — per-snoop path; must not allocate.
    pub fn peek(&self, line_addr: u64) -> Option<&Line> {
        let set = self.set_of(line_addr);
        self.lines[self.set_range(set)]
            .iter()
            .find(|l| l.tag == line_addr)
    }

    /// Insert (or overwrite) a line, evicting LRU if the set is full.
    // pflint::hot — per-fill path; must not allocate.
    pub fn insert(
        &mut self,
        line_addr: u64,
        state: LineState,
        ready_at: u64,
        prefetched: bool,
    ) -> Option<Eviction> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set_idx = self.set_of(line_addr);
        let base = set_idx * self.ways;
        let n = self.lens[set_idx] as usize;
        let set = &mut self.lines[base..base + n];
        if let Some(l) = set.iter_mut().find(|l| l.tag == line_addr) {
            l.state = state;
            l.ready_at = ready_at;
            l.prefetched = prefetched;
            l.lru = clock;
            return None;
        }
        let new = Line {
            tag: line_addr,
            state,
            ready_at,
            prefetched,
            lru: clock,
        };
        if n >= self.ways {
            // Same victim as Vec::swap_remove + push: the LRU slot takes the
            // last live line and the new line lands in the last slot.
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("set non-empty");
            let v = set[victim_idx];
            set[victim_idx] = set[n - 1];
            set[n - 1] = new;
            Some(Eviction {
                line_addr: v.tag,
                state: v.state,
                was_prefetched: v.prefetched,
            })
        } else {
            self.lines[base + n] = new;
            self.lens[set_idx] += 1;
            None
        }
    }

    /// Remove a line (back-invalidation / snoop-invalidate), returning its
    /// state if it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<LineState> {
        let set_idx = self.set_of(line_addr);
        let base = set_idx * self.ways;
        let n = self.lens[set_idx] as usize;
        let set = &mut self.lines[base..base + n];
        let pos = set.iter().position(|l| l.tag == line_addr)?;
        let state = set[pos].state;
        set[pos] = set[n - 1];
        self.lens[set_idx] -= 1;
        Some(state)
    }

    /// Downgrade a line to Shared (snoop for read). Returns the previous
    /// state if present.
    pub fn downgrade(&mut self, line_addr: u64) -> Option<LineState> {
        let set = self.set_of(line_addr);
        let r = self.set_range(set);
        let l = self.lines[r].iter_mut().find(|l| l.tag == line_addr)?;
        let prev = l.state;
        l.state = LineState::Shared;
        Some(prev)
    }

    /// Iterate all resident lines (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = &Line> {
        self.lens
            .iter()
            .enumerate()
            .flat_map(move |(s, &n)| self.lines[s * self.ways..s * self.ways + n as usize].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_4x2() -> SetAssocCache {
        // 8 lines total: 4 sets × 2 ways.
        SetAssocCache::new(8 * 64, 2)
    }

    #[test]
    fn geometry_is_power_of_two_sets() {
        let c = SetAssocCache::new(48 << 10, 12);
        assert!(c.n_sets().is_power_of_two());
        assert!(c.capacity() <= 48 << 10 >> 6);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = cache_4x2();
        c.insert(100, LineState::Exclusive, 0, false);
        assert!(c.lookup(100).is_some());
        assert!(c.lookup(101).is_none());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(2 * 64, 2); // 1 set × 2 ways
        assert_eq!(c.n_sets(), 1);
        c.insert(1, LineState::Exclusive, 0, false);
        c.insert(2, LineState::Exclusive, 0, false);
        c.lookup(1); // 1 becomes MRU
        let ev = c
            .insert(3, LineState::Exclusive, 0, false)
            .expect("must evict");
        assert_eq!(ev.line_addr, 2);
        assert!(c.peek(1).is_some());
        assert!(c.peek(3).is_some());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = cache_4x2();
        c.insert(5, LineState::Shared, 0, true);
        let ev = c.insert(5, LineState::Modified, 9, false);
        assert!(ev.is_none());
        let l = c.peek(5).unwrap();
        assert_eq!(l.state, LineState::Modified);
        assert_eq!(l.ready_at, 9);
        assert!(!l.prefetched);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = cache_4x2();
        c.insert(7, LineState::Modified, 0, false);
        assert_eq!(c.invalidate(7), Some(LineState::Modified));
        assert!(c.peek(7).is_none());
        assert_eq!(c.invalidate(7), None);
    }

    #[test]
    fn downgrade_to_shared() {
        let mut c = cache_4x2();
        c.insert(9, LineState::Exclusive, 0, false);
        assert_eq!(c.downgrade(9), Some(LineState::Exclusive));
        assert_eq!(c.peek(9).unwrap().state, LineState::Shared);
    }

    /// The combined probes must evolve `lru_clock` and line stamps exactly
    /// like the reference walk's lookup sequences — LRU divergence would
    /// change a future eviction and break counter byte-identity.
    #[test]
    fn combined_probes_are_clock_exact_vs_reference_lookups() {
        let fill = |c: &mut SetAssocCache| {
            c.insert(1, LineState::Exclusive, 5, true);
            c.insert(2, LineState::Shared, 7, true);
        };
        // Demand load hit: reference does lookup + re-lookup (clear
        // prefetched).
        let (mut a, mut b) = (cache_4x2(), cache_4x2());
        fill(&mut a);
        fill(&mut b);
        assert_eq!(a.probe_demand(1), Some(5));
        let rb = b.lookup(1).map(|l| l.ready_at);
        if let Some(l) = b.lookup(1) {
            l.prefetched = false;
        }
        assert_eq!(rb, Some(5));
        assert_eq!(a.lru_clock, b.lru_clock);
        assert_eq!(a.peek(1).unwrap().lru, b.peek(1).unwrap().lru);
        assert!(!a.peek(1).unwrap().prefetched);
        // Demand load miss: one tick, no stamp.
        assert_eq!(a.probe_demand(99), None);
        assert!(b.lookup(99).is_none());
        assert_eq!(a.lru_clock, b.lru_clock);
        // Store writable hit: lookup + re-lookup (Modified upgrade).
        assert_eq!(a.probe_store(1), Some((5, true)));
        let sb = b.lookup(1).map(|l| (l.ready_at, l.state.writable()));
        if let Some(l) = b.lookup(1) {
            l.state = LineState::Modified;
        }
        assert_eq!(sb, Some((5, true)));
        assert_eq!(a.lru_clock, b.lru_clock);
        assert_eq!(a.peek(1).unwrap().lru, b.peek(1).unwrap().lru);
        assert_eq!(a.peek(1).unwrap().state, LineState::Modified);
        // Store non-writable hit: single lookup, no upgrade.
        assert_eq!(a.probe_store(2), Some((7, false)));
        b.lookup(2);
        assert_eq!(a.lru_clock, b.lru_clock);
        assert_eq!(a.peek(2).unwrap().lru, b.peek(2).unwrap().lru);
        assert_eq!(a.peek(2).unwrap().state, LineState::Shared);
        // L2 RFO-writable hit: lookup + re-lookup (Modified upgrade);
        // RFO on a non-writable line and plain reads take one tick.
        let (mut a, mut b) = (cache_4x2(), cache_4x2());
        fill(&mut a);
        fill(&mut b);
        assert_eq!(a.probe_l2(1, true), Some((5, true)));
        b.lookup(1);
        if let Some(l) = b.lookup(1) {
            l.state = LineState::Modified;
        }
        assert_eq!(a.lru_clock, b.lru_clock);
        assert_eq!(a.peek(1).unwrap().lru, b.peek(1).unwrap().lru);
        assert_eq!(a.peek(1).unwrap().state, LineState::Modified);
        assert_eq!(a.probe_l2(2, true), Some((7, false)));
        b.lookup(2);
        assert_eq!(a.lru_clock, b.lru_clock);
        assert_eq!(a.peek(2).unwrap().state, LineState::Shared);
        assert_eq!(a.probe_l2(2, false), Some((7, true)));
        b.lookup(2);
        assert_eq!(a.lru_clock, b.lru_clock);
        assert_eq!(a.probe_l2(50, false), None);
        assert!(b.lookup(50).is_none());
        assert_eq!(a.lru_clock, b.lru_clock);
    }

    #[test]
    fn writable_states() {
        assert!(LineState::Modified.writable());
        assert!(LineState::Exclusive.writable());
        assert!(!LineState::Shared.writable());
        assert!(!LineState::Forward.writable());
    }
}
