//! The intra-epoch demand walk: one memory operation crossing the stages.
//!
//! `machine.rs` owns the epoch scheduler (stage graph, drain order, stall
//! guard); this module owns what happens *between* epoch boundaries — a
//! load, store, or prefetch walking L1D → LFB → L2 → mesh → CHA → IMC /
//! UPI / CXL, reserving time on every shared resource it crosses and
//! incrementing the same counters a real SPR/EMR PMU would. A single walk
//! touches several stages within one borrow of the machine, so these paths
//! use the typed module APIs directly rather than the [`crate::module::SimModule`]
//! face the scheduler sees.

use crate::cache::{Eviction, LineState};
use crate::cha::ChaOutcome;
use crate::machine::Machine;
use crate::mem::{MemNode, PhysAddr, CACHELINE, PAGE_SIZE};
use crate::request::{AccessKind, ServeLoc};
use pmu::{CoreEvent, L3HitSrc, L3MissSrc, PathClass, RespScenario};

/// Retry budget for poisoned CXL.mem completions before viral containment
/// gives up and accepts the line with a scrub penalty.
const POISON_MAX_RETRIES: u32 = 2;

impl Machine {
    /// Migrate a virtual page of `core`'s address space to `node`,
    /// charging the page-copy traffic (64 line reads at the source + 64
    /// line writes at the destination). Returns false if the core has no
    /// workload.
    pub fn migrate_page(&mut self, core: usize, vpage: u64, node: MemNode) -> bool {
        let now = self.epoch_end;
        let Some(run) = self.cores[core].workload.as_mut() else {
            return false;
        };
        let prev = run.space.migrate(vpage, node);
        if prev == Some(node) {
            return true; // already there, no copy
        }
        // Account the copy (64 line reads at the source, 64 writes at the
        // destination) as *background* traffic: every counter a demand
        // request would touch is incremented, but the copies are served from
        // idle bandwidth rather than the demand FIFOs — kernels rate-limit
        // migration precisely so it does not head-of-line-block applications.
        let lines = (PAGE_SIZE / CACHELINE) as u64;
        for i in 0..lines {
            let fake_line = vpage * lines + i;
            match prev {
                Some(MemNode::CxlDram(d)) => {
                    let d = d as usize;
                    self.ports[d].background_read(&mut self.pmu.m2ps[d], &mut self.pmu.cxls[d]);
                }
                Some(MemNode::RemoteDram) | None => {}
                Some(MemNode::LocalDram) => {
                    self.imc.read(fake_line, now, &mut self.pmu.imcs);
                }
            }
            match node {
                MemNode::CxlDram(d) => {
                    let d = d as usize;
                    self.ports[d].background_write(&mut self.pmu.m2ps[d], &mut self.pmu.cxls[d]);
                }
                MemNode::RemoteDram => {}
                MemNode::LocalDram => {
                    self.imc.write(fake_line, now, &mut self.pmu.imcs);
                }
            }
        }
        true
    }

    // -----------------------------------------------------------------
    // Core stepping
    // -----------------------------------------------------------------

    pub(crate) fn step_core(&mut self, c: usize) {
        // Pull the next op (short borrow of the trace).
        let op = {
            let core = &mut self.cores[c];
            match core.workload.as_mut().and_then(|w| w.trace.next_op()) {
                Some(op) => op,
                None => {
                    core.done = true;
                    return;
                }
            }
        };
        {
            let core = &mut self.cores[c];
            core.time += op.work as u64;
            core.ops_executed += 1;
            core.truth.ops += 1;
        }
        self.pmu.cores[c].add(CoreEvent::InstRetired, op.work as u64 + 1);
        // Translate and record page heat.
        let paddr = {
            let core = &mut self.cores[c];
            let run = core.workload.as_mut().expect("runnable core has workload");
            run.space.translate(op.vaddr)
        };
        let vpage = op.vaddr / PAGE_SIZE as u64;
        // Run-length fast path: consecutive ops to the same page bump a
        // register instead of walking the BTreeMap every op.
        let key = (c as u16, vpage);
        match &mut self.heat_run {
            Some((k, n)) if *k == key => *n += 1,
            _ => {
                self.flush_heat_run();
                self.heat_run = Some((key, 1));
            }
        }

        match op.kind {
            AccessKind::Load { dependent } => {
                self.cores[c].truth.loads += 1;
                self.do_load(c, paddr, dependent, PathClass::Drd);
            }
            AccessKind::SwPrefetch => {
                self.cores[c].truth.swpfs += 1;
                self.do_load(c, paddr, false, PathClass::SwPf);
            }
            AccessKind::Store => {
                self.cores[c].truth.stores += 1;
                self.do_store(c, paddr);
            }
        }
    }

    /// Demand load / software prefetch walk. `path` is `Drd` or `SwPf`.
    fn do_load(&mut self, c: usize, paddr: PhysAddr, dependent: bool, path: PathClass) {
        let line = paddr.line();
        let node = paddr.node();
        let demand = path == PathClass::Drd;
        let t_issue = self.cores[c].time;

        // ---- L1D lookup -------------------------------------------------
        let l1_state = self.cores[c]
            .l1d
            .lookup(line)
            .map(|l| (l.ready_at, l.prefetched));
        if let Some((ready_at, _)) = l1_state {
            if let Some(l) = self.cores[c].l1d.lookup(line) {
                l.prefetched = false;
            }
            let bank = &mut self.pmu.cores[c];
            if ready_at <= t_issue {
                if demand {
                    bank.inc(CoreEvent::MemLoadRetiredL1Hit);
                    bank.add(
                        CoreEvent::MemTransRetiredLoadLatency,
                        self.cfg.l1d.hit_latency,
                    );
                    bank.inc(CoreEvent::MemTransRetiredLoadCount);
                }
                if dependent {
                    self.cores[c].time += self.cfg.l1d.hit_latency;
                }
                self.cores[c]
                    .truth
                    .record_served(path, ServeLoc::L1d, self.cfg.l1d.hit_latency);
                return;
            }
            // Present but still filling: the load misses L1 (data not yet
            // there) but merges into the in-flight fill — an LFB hit.
            if demand {
                bank.inc(CoreEvent::MemLoadRetiredL1Miss);
                bank.inc(CoreEvent::MemLoadRetiredL1FbHit);
            }
            self.finish_load(
                c,
                t_issue,
                ready_at,
                ServeLoc::Lfb,
                false,
                false,
                dependent,
                demand,
                node,
                path,
                0,
            );
            return;
        }

        // ---- L1D miss ---------------------------------------------------
        if demand {
            self.pmu.cores[c].inc(CoreEvent::MemLoadRetiredL1Miss);
        }
        self.train_prefetcher(c, line, node, t_issue);
        // Merge into an in-flight fill if one exists.
        if let Some(f) = self.cores[c].inflight.get(line) {
            if f > t_issue {
                if demand {
                    self.pmu.cores[c].inc(CoreEvent::MemLoadRetiredL1FbHit);
                }
                self.finish_load(
                    c,
                    t_issue,
                    f,
                    ServeLoc::Lfb,
                    false,
                    false,
                    dependent,
                    demand,
                    node,
                    path,
                    0,
                );
                return;
            }
        }
        // Allocate an LFB entry; block if full (the paper's fb_full stalls).
        let adm = self.cores[c].lfb.acquire(t_issue);
        if adm.blocked > 0 {
            self.pmu.cores[c].add(CoreEvent::L1dPendMissFbFull, adm.blocked);
            self.cores[c].time = adm.at;
        }
        let blocked = adm.blocked;
        let t = adm.at.max(t_issue);

        // L1 next-line prefetch trigger: fires only on an ascending miss
        // pair (line == previous miss + 1) and stays within the page.
        let ascending = line == self.cores[c].last_l1_miss_line.wrapping_add(1);
        self.cores[c].last_l1_miss_line = line;
        let l1pf = crate::prefetch::l1_next_line(&self.cfg.prefetch, line)
            .filter(|_| demand && ascending)
            .filter(|_| {
                line % (PAGE_SIZE / CACHELINE) as u64 != (PAGE_SIZE / CACHELINE) as u64 - 1
            });

        // ---- L2 lookup --------------------------------------------------
        let t_l2 = t + self.cfg.l1d.tag_latency;
        let (finish, loc, missed_l2, missed_l3) =
            self.l2_and_beyond(c, line, node, path, false, t_l2);

        // Fill L1 + register in-flight.
        self.fill_l1(c, line, LineState::Exclusive, finish, t);
        self.cores[c].inflight.insert(line, finish);
        self.cores[c].lfb.commit(finish);

        self.finish_load(
            c, t_issue, finish, loc, missed_l2, missed_l3, dependent, demand, node, path, blocked,
        );

        // Fire the L1 prefetcher after the demand is fully accounted.
        if let Some(pf_line) = l1pf {
            self.issue_l1_prefetch(c, pf_line, node, t);
        }
    }

    /// L2 lookup and, on miss, the offcore walk. Returns
    /// `(finish_at_core, serve_loc, missed_l2, missed_l3)`.
    fn l2_and_beyond(
        &mut self,
        c: usize,
        line: u64,
        node: MemNode,
        path: PathClass,
        rfo: bool,
        t_l2: u64,
    ) -> (u64, ServeLoc, bool, bool) {
        let demand = matches!(path, PathClass::Drd | PathClass::Rfo | PathClass::Dwr);
        {
            let bank = &mut self.pmu.cores[c];
            bank.inc(CoreEvent::L2RqstsReferences);
            if demand {
                bank.inc(CoreEvent::L2RqstsAllDemandReferences);
            }
            match path {
                PathClass::Drd => bank.inc(CoreEvent::L2RqstsAllDemandDataRd),
                PathClass::Rfo | PathClass::Dwr | PathClass::HwPfL2Rfo => {
                    bank.inc(CoreEvent::L2RqstsAllRfo)
                }
                _ => {}
            }
        }
        let l2_state = self.cores[c].l2.lookup(line).map(|l| (l.ready_at, l.state));
        let result = if let Some((ready_at, state)) = l2_state {
            let writable_ok = !rfo || state.writable();
            if writable_ok {
                let fin = ready_at.max(t_l2 + self.cfg.l2.hit_latency);
                if rfo {
                    if let Some(l) = self.cores[c].l2.lookup(line) {
                        l.state = LineState::Modified;
                    }
                }
                let bank = &mut self.pmu.cores[c];
                match path {
                    PathClass::Drd => {
                        bank.inc(CoreEvent::MemLoadRetiredL2Hit);
                        bank.inc(CoreEvent::L2RqstsDemandDataRdHit);
                    }
                    PathClass::SwPf => bank.inc(CoreEvent::L2RqstsSwpfHit),
                    PathClass::Rfo | PathClass::Dwr => {
                        bank.inc(CoreEvent::L2RqstsRfoHit);
                        bank.inc(CoreEvent::MemStoreRetiredL2Hit);
                    }
                    _ => bank.inc(CoreEvent::L2RqstsHwpfHit),
                }
                (fin, ServeLoc::L2, false, false)
            } else {
                // Present but not writable: ownership upgrade goes offcore.
                self.count_l2_miss(c, path);
                let (fin, loc, missed_l3) =
                    self.offcore_access(c, line, node, path, true, t_l2 + self.cfg.l2.tag_latency);
                (fin, loc, true, missed_l3)
            }
        } else {
            self.count_l2_miss(c, path);
            let (fin, loc, missed_l3) =
                self.offcore_access(c, line, node, path, rfo, t_l2 + self.cfg.l2.tag_latency);
            // Fill L2.
            let state = if rfo {
                LineState::Modified
            } else {
                LineState::Exclusive
            };
            self.fill_l2(c, line, state, fin, !demand, t_l2);
            (fin, loc, true, missed_l3)
        };
        result
    }

    /// Train the L2 stream prefetcher and issue what it produces. Real
    /// prefetchers observe the demand-miss stream itself — including misses
    /// that merge into in-flight fills — so this is called from the L1D
    /// miss path, not from the L2 lookup (a merged miss never reaches L2).
    pub(crate) fn train_prefetcher(&mut self, c: usize, line: u64, node: MemNode, at: u64) {
        // Reuse the machine-owned scratch: `issue_l2_prefetch` re-borrows
        // `self`, so the buffer is moved out for the duration of the loop.
        let mut buf = std::mem::take(&mut self.pf_scratch);
        buf.clear();
        self.cores[c].prefetcher.observe_into(line, &mut buf);
        for &pf_line in &buf {
            self.issue_l2_prefetch(c, pf_line, node, at);
        }
        self.pf_scratch = buf;
    }

    pub(crate) fn count_l2_miss(&mut self, c: usize, path: PathClass) {
        let bank = &mut self.pmu.cores[c];
        bank.inc(CoreEvent::L2RqstsMiss);
        bank.inc(CoreEvent::OffcoreRequestsAllRequests);
        match path {
            PathClass::Drd => {
                bank.inc(CoreEvent::MemLoadRetiredL2Miss);
                bank.inc(CoreEvent::L2RqstsDemandDataRdMiss);
                bank.inc(CoreEvent::L2RqstsAllDemandMiss);
                bank.inc(CoreEvent::OffcoreRequestsDataRd);
                bank.inc(CoreEvent::OffcoreRequestsDemandDataRd);
            }
            PathClass::SwPf => {
                bank.inc(CoreEvent::L2RqstsSwpfMiss);
                bank.inc(CoreEvent::OffcoreRequestsDataRd);
            }
            PathClass::Rfo | PathClass::Dwr => {
                bank.inc(CoreEvent::L2RqstsRfoMiss);
                bank.inc(CoreEvent::L2RqstsAllDemandMiss);
            }
            _ => {
                bank.inc(CoreEvent::L2RqstsHwpfMiss);
                bank.inc(CoreEvent::OffcoreRequestsDataRd);
            }
        }
    }

    /// The uncore walk: mesh → CHA (LLC + SF + TOR) → peer / IMC / CXL.
    /// Returns `(finish_at_core, serve_loc, missed_l3)`.
    pub(crate) fn offcore_access(
        &mut self,
        c: usize,
        line: u64,
        node: MemNode,
        path: PathClass,
        rfo: bool,
        depart: u64,
    ) -> (u64, ServeLoc, bool) {
        // Super-queue admission bounds offcore demand MLP; hardware
        // prefetches occupy their own XQ window instead.
        let is_pf = matches!(
            path,
            PathClass::HwPfL1 | PathClass::HwPfL2Drd | PathClass::HwPfL2Rfo
        );
        let adm = if is_pf {
            self.cores[c].pfq.acquire(depart)
        } else {
            self.cores[c].superq.acquire(depart)
        };
        let depart = adm.at;
        let mesh = self.cfg.mesh_latency;
        let arrive_cha = depart + mesh;
        let outcome = self
            .cha
            .lookup(c, line, rfo, arrive_cha, &mut self.pmu.chas[0]);
        let (finish_at_cha, loc, missed_l3) = match outcome {
            ChaOutcome::LlcHit {
                finish,
                snc_distant,
            } => {
                if rfo {
                    self.invalidate_peers(c, line);
                }
                let loc = if snc_distant {
                    ServeLoc::SncLlc
                } else {
                    ServeLoc::LocalLlc
                };
                (finish, loc, false)
            }
            ChaOutcome::PeerProbe {
                owners,
                dirty,
                finish,
                snc_distant: _,
            } => {
                let found = self.probe_peers(c, line, owners, rfo);
                let bank = &mut self.pmu.chas[0];
                if found {
                    bank.inc(if dirty {
                        pmu::ChaEvent::SnoopRspHitm
                    } else {
                        pmu::ChaEvent::SnoopRspHit
                    });
                    // Serve from the peer cache; line is also installed in
                    // the LLC (the CHA caches the snoop data).
                    let state = if rfo {
                        LineState::Modified
                    } else {
                        LineState::Forward
                    };
                    self.cha_fill(c, line, state, finish, false, depart);
                    (finish, ServeLoc::PeerCache, true)
                } else {
                    bank.inc(pmu::ChaEvent::SnoopRspMiss);
                    // Stale directory entry: pay the probe, then go to
                    // memory.
                    let (fin, loc) = self.memory_access(c, line, node, rfo, finish);
                    let state = if rfo {
                        LineState::Modified
                    } else {
                        LineState::Exclusive
                    };
                    self.cha_fill(c, line, state, fin, false, depart);
                    (fin, loc, true)
                }
            }
            ChaOutcome::Miss {
                depart: d,
                snc_distant: _,
            } => {
                let (fin, loc) = self.memory_access(c, line, node, rfo, d);
                let state = if rfo {
                    LineState::Modified
                } else {
                    LineState::Exclusive
                };
                let prefetched = !matches!(path, PathClass::Drd | PathClass::Rfo | PathClass::Dwr);
                self.cha_fill(c, line, state, fin, prefetched, depart);
                (fin, loc, true)
            }
        };
        // TOR accounting: the entry lives from CHA arrival until the data
        // heads back to the core.
        self.cha.account_tor(
            &mut self.pmu.chas[0],
            path,
            loc,
            node,
            arrive_cha,
            finish_at_cha,
        );
        let finish = finish_at_cha + mesh;
        if is_pf {
            self.cores[c].pfq.commit(finish);
        } else {
            self.cores[c].superq.commit(finish);
        }

        // Core-scope offcore-response (ocr.*) and L3 retired counters.
        let bank = &mut self.pmu.cores[c];
        for &scen in resp_scens(loc) {
            bank.inc(CoreEvent::ocr(path, scen));
        }
        bank.inc(CoreEvent::LongestLatCacheReference);
        if path == PathClass::Drd {
            match loc {
                ServeLoc::LocalLlc => {
                    bank.inc(CoreEvent::MemLoadRetiredL3Hit);
                    bank.inc(CoreEvent::MemLoadL3HitRetired(L3HitSrc::XsnpNone));
                }
                ServeLoc::SncLlc => {
                    bank.inc(CoreEvent::MemLoadRetiredL3Hit);
                    bank.inc(CoreEvent::MemLoadL3HitRetired(L3HitSrc::XsnpMiss));
                }
                ServeLoc::PeerCache => {
                    bank.inc(CoreEvent::MemLoadRetiredL3Hit);
                    bank.inc(CoreEvent::MemLoadL3HitRetired(L3HitSrc::XsnpHitm));
                }
                ServeLoc::LocalDram => {
                    bank.inc(CoreEvent::MemLoadRetiredL3Miss);
                    bank.inc(CoreEvent::LongestLatCacheMiss);
                    bank.inc(CoreEvent::MemLoadL3MissRetired(L3MissSrc::LocalDram));
                }
                ServeLoc::RemoteDram => {
                    bank.inc(CoreEvent::MemLoadRetiredL3Miss);
                    bank.inc(CoreEvent::LongestLatCacheMiss);
                    bank.inc(CoreEvent::MemLoadL3MissRetired(L3MissSrc::RemoteDram));
                }
                ServeLoc::CxlDram => {
                    bank.inc(CoreEvent::MemLoadRetiredL3Miss);
                    bank.inc(CoreEvent::LongestLatCacheMiss);
                    bank.inc(CoreEvent::MemLoadL3MissRetired(L3MissSrc::RemoteDram));
                }
                _ => {}
            }
        }
        (finish, loc, missed_l3)
    }

    /// Memory access below the LLC: IMC for local lines, the CXL port for
    /// device lines. Returns `(finish_at_cha, serve_loc)`.
    fn memory_access(
        &mut self,
        c: usize,
        line: u64,
        node: MemNode,
        _rfo: bool,
        depart_cha: u64,
    ) -> (u64, ServeLoc) {
        let mesh = self.cfg.mesh_latency;
        match node {
            MemNode::LocalDram => {
                let fin = self.imc.read(line, depart_cha + mesh, &mut self.pmu.imcs);
                self.cores[c].truth.add_queue_delay(
                    "IMC",
                    fin.saturating_sub(depart_cha + mesh + self.cfg.dram_latency),
                );
                (fin + mesh, ServeLoc::LocalDram)
            }
            MemNode::RemoteDram => {
                // Cross the UPI link, pay the remote socket's DRAM latency,
                // come back. The remote socket's IMC counters belong to the
                // other socket's PMU and are not visible here.
                let svc = self.remote.serve(depart_cha + mesh);
                self.cores[c]
                    .truth
                    .add_queue_delay("UPI", svc.start.saturating_sub(depart_cha + mesh));
                (svc.finish + mesh, ServeLoc::RemoteDram)
            }
            MemNode::CxlDram(d) => {
                let d = d as usize;
                let mut comp = self.ports[d].mem_load(
                    depart_cha + mesh,
                    &mut self.pmu.m2ps[d],
                    &mut self.pmu.cxls[d],
                );
                self.cores[c].truth.add_queue_delay("CXL", comp.device_wait);
                // Poisoned DRS: retry the load as a complete new CXL.mem
                // transaction (the retry walks the full Req→CAS→DRS chain,
                // so every conservation equality still balances). Bounded
                // retries; if poison persists, viral containment applies —
                // accept the line after one media-latency scrub penalty
                // instead of retrying forever.
                let mut retries = 0;
                while comp.poison && retries < POISON_MAX_RETRIES {
                    retries += 1;
                    obs::metrics::counter_add("fault.poison_retry", 1);
                    comp = self.ports[d].mem_load(
                        comp.finish,
                        &mut self.pmu.m2ps[d],
                        &mut self.pmu.cxls[d],
                    );
                    self.cores[c].truth.add_queue_delay("CXL", comp.device_wait);
                }
                let fin = if comp.poison {
                    obs::metrics::counter_add("fault.poison_contained", 1);
                    comp.finish + self.cfg.cxl_media_latency
                } else {
                    comp.finish
                };
                (fin + mesh, ServeLoc::CxlDram)
            }
        }
    }

    /// Install a line into the LLC, handling the eviction chain (dirty LLC
    /// victims go to memory) and snoop-filter back-invalidations.
    ///
    /// `now` is the triggering request's departure time: eviction traffic is
    /// injected at `now`, not at the fill-completion time, so shared-server
    /// arrivals stay (near-)monotone in time — a future-timestamped arrival
    /// would drag the FIFO horizon forward and falsely serialise every
    /// later request behind it.
    fn cha_fill(
        &mut self,
        c: usize,
        line: u64,
        state: LineState,
        ready_at: u64,
        prefetched: bool,
        now: u64,
    ) {
        let (ev, sf_victim) =
            self.cha
                .fill(c, line, state, ready_at, prefetched, &mut self.pmu.chas[0]);
        if let Some(Eviction {
            line_addr, state, ..
        }) = ev
        {
            self.evict_from_llc(line_addr, state, now);
        }
        if let Some((victim_line, owners)) = sf_victim {
            // Inclusive back-invalidation: the victim leaves every private
            // cache that holds it.
            for o in 0..self.cores.len() {
                if owners & (1 << o) != 0 {
                    self.cores[o].l1d.invalidate(victim_line);
                    self.cores[o].l2.invalidate(victim_line);
                }
            }
        }
    }

    /// An LLC victim: dirty lines are written back to their home memory.
    fn evict_from_llc(&mut self, line: u64, state: LineState, at: u64) {
        // Back-invalidate private copies (inclusive LLC).
        if let Some((owners, _)) = self.cha.sf.probe(line) {
            for o in 0..self.cores.len() {
                if owners & (1 << o) != 0 {
                    self.cores[o].l1d.invalidate(line);
                    self.cores[o].l2.invalidate(line);
                }
            }
            self.cha.sf.drop_line(line);
        }
        if state != LineState::Modified {
            return;
        }
        // The "actual CXL.mem store" of §2.2 path #2.
        match line_node(line) {
            MemNode::LocalDram => {
                self.imc.write(line, at, &mut self.pmu.imcs);
            }
            MemNode::RemoteDram => {
                self.remote.serve(at);
            }
            MemNode::CxlDram(d) => {
                let d = (d as usize).min(self.ports.len() - 1);
                self.ports[d].mem_store(at, &mut self.pmu.m2ps[d], &mut self.pmu.cxls[d]);
            }
        }
    }

    /// Probe peer private caches after an SF hit. Returns true if any peer
    /// actually held the line; peers are downgraded (read) or invalidated
    /// (RFO).
    fn probe_peers(&mut self, requester: usize, line: u64, owners: u64, rfo: bool) -> bool {
        let mut found = false;
        for o in 0..self.cores.len() {
            if o == requester || owners & (1 << o) == 0 {
                continue;
            }
            let core = &mut self.cores[o];
            if rfo {
                found |= core.l1d.invalidate(line).is_some();
                found |= core.l2.invalidate(line).is_some();
                self.cha.sf.clear(line, o);
            } else {
                found |= core.l1d.downgrade(line).is_some();
                found |= core.l2.downgrade(line).is_some();
            }
        }
        found
    }

    /// Invalidate every peer copy (RFO hitting a shared LLC line).
    fn invalidate_peers(&mut self, requester: usize, line: u64) {
        if let Some((owners, _)) = self.cha.sf.probe(line) {
            for o in 0..self.cores.len() {
                if o != requester && owners & (1 << o) != 0 {
                    self.cores[o].l1d.invalidate(line);
                    self.cores[o].l2.invalidate(line);
                    self.cha.sf.clear(line, o);
                }
            }
        }
    }

    /// Fill L1D, spilling dirty victims into L2 (and onward). `now` times
    /// the spill traffic (see [`Self::cha_fill`]).
    pub(crate) fn fill_l1(
        &mut self,
        c: usize,
        line: u64,
        state: LineState,
        ready_at: u64,
        now: u64,
    ) {
        let ev = self.cores[c].l1d.insert(line, state, ready_at, false);
        if let Some(Eviction {
            line_addr, state, ..
        }) = ev
        {
            self.pmu.cores[c].inc(CoreEvent::L1dReplacement);
            if state == LineState::Modified {
                // Dirty spill into L2 (write-back cache).
                let ev2 = self.cores[c]
                    .l2
                    .insert(line_addr, LineState::Modified, ready_at, false);
                if let Some(e2) = ev2 {
                    self.spill_l2_victim(c, e2, now);
                }
            }
        }
    }

    /// Fill L2, spilling victims toward the LLC.
    pub(crate) fn fill_l2(
        &mut self,
        c: usize,
        line: u64,
        state: LineState,
        ready_at: u64,
        prefetched: bool,
        now: u64,
    ) {
        let ev = self.cores[c].l2.insert(line, state, ready_at, prefetched);
        if let Some(e) = ev {
            self.spill_l2_victim(c, e, now);
        }
    }

    fn spill_l2_victim(&mut self, c: usize, ev: Eviction, at: u64) {
        let dirty = ev.state == LineState::Modified;
        self.cha.sf.clear(ev.line_addr, c);
        if dirty {
            self.pmu.cores[c].inc(CoreEvent::OcrModifiedWriteAnyResponse);
            let (_fin, llc_ev) = self.cha.writeback(
                ev.line_addr,
                true,
                at + self.cfg.mesh_latency,
                &mut self.pmu.chas[0],
            );
            if let Some(e) = llc_ev {
                self.evict_from_llc(e.line_addr, e.state, at);
            }
        }
    }

    /// L1 next-line prefetch: cheap fill from L2 if present, else a full
    /// offcore HWPF.L1 walk.
    pub(crate) fn issue_l1_prefetch(&mut self, c: usize, line: u64, node: MemNode, at: u64) {
        if self.cores[c].l1d.peek(line).is_some() {
            return;
        }
        if let Some(l) = self.cores[c].l2.lookup(line) {
            let ready = l.ready_at.max(at + self.cfg.l2.hit_latency);
            self.fill_l1(c, line, LineState::Exclusive, ready, at);
            return;
        }
        // Drop the prefetch when its window is exhausted.
        if self.cores[c].pfq.outstanding(at) + 1 >= self.cfg.pfq_entries {
            return;
        }
        let (fin, _loc, _m3) = self.offcore_access(c, line, node, PathClass::HwPfL1, false, at);
        self.fill_l2(c, line, LineState::Exclusive, fin, true, at);
        self.fill_l1(c, line, LineState::Exclusive, fin, at);
    }

    /// L2 stream prefetch (HWPF.L2 DRd path).
    fn issue_l2_prefetch(&mut self, c: usize, line: u64, node: MemNode, at: u64) {
        if self.cores[c].l2.peek(line).is_some() || self.cores[c].inflight.contains(line) {
            self.pmu.cores[c].inc(CoreEvent::L2RqstsHwpfHit);
            return;
        }
        if self.cores[c].pfq.outstanding(at) + 1 >= self.cfg.pfq_entries {
            return; // dropped: prefetch window full
        }
        self.count_l2_miss(c, PathClass::HwPfL2Drd);
        let (fin, _loc, _m3) = self.offcore_access(c, line, node, PathClass::HwPfL2Drd, false, at);
        self.fill_l2(c, line, LineState::Exclusive, fin, true, at);
        self.cores[c].inflight.insert(line, fin);
    }

    /// Common tail of every load: stall accounting and time advance.
    /// `blocked` carries window-full stall cycles already spent before the
    /// walk; hardware attributes those to the same nested stall counters
    /// (the core was stalled while a miss of this depth was outstanding).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_load(
        &mut self,
        c: usize,
        t_issue: u64,
        finish: u64,
        loc: ServeLoc,
        missed_l2: bool,
        missed_l3: bool,
        dependent: bool,
        demand: bool,
        node: MemNode,
        path: PathClass,
        blocked: u64,
    ) {
        let latency = finish.saturating_sub(t_issue);
        self.cores[c].truth.record_served(path, loc, latency);
        {
            let core = &mut self.cores[c];
            core.cov_l1d_miss.add(t_issue, finish);
            if missed_l2 {
                core.cov_l2_miss.add(t_issue, finish);
            }
            core.cov_oro_data_rd.add(t_issue, finish);
            if demand {
                core.cov_oro_demand_rd.add(t_issue, finish);
            }
        }
        let bank = &mut self.pmu.cores[c];
        if demand {
            bank.add(CoreEvent::MemTransRetiredLoadLatency, latency);
            bank.inc(CoreEvent::MemTransRetiredLoadCount);
            bank.add(CoreEvent::OroDataRd, latency);
            bank.add(CoreEvent::OroDemandDataRd, latency);
            if missed_l3 {
                bank.add(CoreEvent::OroL3MissDemandDataRd, latency);
            }
        }
        let stall = blocked + if dependent && demand { latency } else { 0 };
        if stall > 0 {
            let bank = &mut self.pmu.cores[c];
            bank.add(CoreEvent::MemoryActivityStallsL1dMiss, stall);
            if missed_l2 {
                bank.add(CoreEvent::MemoryActivityStallsL2Miss, stall);
            }
            if missed_l3 {
                bank.add(CoreEvent::CycleActivityStallsL3Miss, stall);
            }
            let core = &mut self.cores[c];
            if node.is_cxl() && loc == ServeLoc::CxlDram {
                core.truth.stall_cxl += stall;
            } else {
                core.truth.stall_local += stall;
            }
        }
        if dependent && demand {
            self.cores[c].time = finish;
        }
    }

    /// Demand store: SB admission, then L1 write or RFO.
    fn do_store(&mut self, c: usize, paddr: PhysAddr) {
        let line = paddr.line();
        let node = paddr.node();
        let t_issue = self.cores[c].time;

        // SB admission; blocking here is the paper's Figure 2-a experiment.
        let adm = self.cores[c].sb.acquire(t_issue);
        if adm.blocked > 0 {
            let loads_outstanding = self.cores[c].lfb.outstanding(t_issue) > 0;
            let bank = &mut self.pmu.cores[c];
            if loads_outstanding {
                bank.add(CoreEvent::ResourceStallsSb, adm.blocked);
            } else {
                bank.add(CoreEvent::ExeActivityBoundOnStores, adm.blocked);
            }
            self.cores[c].time = adm.at;
        }
        let t = adm.at.max(t_issue);

        // Store coalescing: an in-flight SB entry for the same line absorbs
        // the store.
        if let Some(f) = self.cores[c].sb_inflight.get(line) {
            if f > t {
                self.cores[c].sb.commit(f);
                self.cores[c]
                    .truth
                    .record_served(PathClass::Dwr, ServeLoc::StoreBuffer, 0);
                let bank = &mut self.pmu.cores[c];
                bank.inc(CoreEvent::MemTransRetiredStoreCount);
                return;
            }
        }

        // L1D write hit with ownership?
        let l1 = self.cores[c]
            .l1d
            .lookup(line)
            .map(|l| (l.ready_at, l.state));
        let drain = match l1 {
            Some((ready_at, state)) if state.writable() => {
                if let Some(l) = self.cores[c].l1d.lookup(line) {
                    l.state = LineState::Modified;
                }
                self.cha.sf.mark_dirty(line);
                let d = ready_at.max(t) + self.cfg.l1d.hit_latency;
                self.cores[c]
                    .truth
                    .record_served(PathClass::Dwr, ServeLoc::L1d, d - t);
                d
            }
            _ => {
                // RFO: gain exclusive ownership through the hierarchy
                // (§2.2 path #3 — same walk as a DRd, from the L1D).
                self.train_prefetcher(c, line, node, t);
                let core = &mut self.cores[c];
                core.cov_oro_demand_rfo.add(t, t + 1);
                let (fin, _loc, _missed_l2, _missed_l3) = self.l2_and_beyond(
                    c,
                    line,
                    node,
                    PathClass::Rfo,
                    true,
                    t + self.cfg.l1d.tag_latency,
                );
                self.fill_l1(c, line, LineState::Modified, fin, t);
                self.cha.sf.mark_dirty(line);
                self.cores[c].cov_oro_demand_rfo.add(t, fin);
                self.cores[c]
                    .truth
                    .record_served(PathClass::Dwr, ServeLoc::L1d, fin - t);
                fin + self.cfg.l1d.hit_latency
            }
        };
        {
            let core = &mut self.cores[c];
            core.sb.commit(drain);
            core.sb_inflight.insert(line, drain);
        }
        let bank = &mut self.pmu.cores[c];
        bank.add(CoreEvent::MemTransRetiredStoreSample, drain - t);
        bank.inc(CoreEvent::MemTransRetiredStoreCount);
    }
}

/// Map a serve location onto the `ocr.*` response scenarios it satisfies.
/// Static slices: this runs once per offcore access, so it must not
/// allocate (see PERFORMANCE.md).
fn resp_scens(loc: ServeLoc) -> &'static [RespScenario] {
    match loc {
        ServeLoc::LocalLlc | ServeLoc::PeerCache => {
            &[RespScenario::AnyResponse, RespScenario::L3HitSnoopLocal]
        }
        ServeLoc::SncLlc => &[RespScenario::AnyResponse, RespScenario::SncDistantL3],
        ServeLoc::RemoteLlc => &[
            RespScenario::AnyResponse,
            RespScenario::MissLocalCaches,
            RespScenario::RemoteCacheHit,
        ],
        ServeLoc::LocalDram => &[
            RespScenario::AnyResponse,
            RespScenario::MissLocalCaches,
            RespScenario::LocalDram,
        ],
        ServeLoc::RemoteDram => &[
            RespScenario::AnyResponse,
            RespScenario::MissLocalCaches,
            RespScenario::RemoteDram,
        ],
        ServeLoc::CxlDram => &[
            RespScenario::AnyResponse,
            RespScenario::MissLocalCaches,
            RespScenario::CxlDram,
        ],
        _ => &[RespScenario::AnyResponse],
    }
}

/// Recover the home node of a line address (the node field travels in the
/// upper bits of every [`PhysAddr`]).
fn line_node(line: u64) -> MemNode {
    PhysAddr(line * CACHELINE as u64).node()
}

#[cfg(test)]
mod tests {
    use crate::config::{MachineConfig, MemPolicy};
    use crate::machine::Machine;
    use crate::mem::{MemNode, PAGE_SIZE};
    use crate::trace::{SeqReadTrace, SeqRwTrace, Workload};
    use pmu::{ChaEvent, CoreEvent, CxlEvent, ImcEvent, M2pEvent, TorDrdScen};

    fn run_one(policy: MemPolicy, ops: usize) -> (Machine, pmu::SystemSnapshot) {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new("t", Box::new(SeqReadTrace::new(1 << 20, ops)), policy),
        );
        let mut last = None;
        for _ in 0..200 {
            let e = m.run_epoch();
            let done = e.all_done;
            last = Some(e.snapshot);
            if done {
                break;
            }
        }
        (m, last.unwrap())
    }

    #[test]
    fn local_run_uses_imc_not_cxl() {
        let (_m, snap) = run_one(MemPolicy::Local, 20_000);
        let cas: u64 = snap
            .pmu
            .imcs
            .iter()
            .map(|b| b.read(ImcEvent::CasCountRd))
            .sum();
        let cxl: u64 = snap
            .pmu
            .cxls
            .iter()
            .map(|b| b.read(CxlEvent::RxcPackBufInsertsMemReq))
            .sum();
        assert!(cas > 0, "local reads must hit the IMC");
        assert_eq!(cxl, 0, "local run must not touch the CXL device");
    }

    #[test]
    fn cxl_run_bypasses_imc_reads() {
        let (_m, snap) = run_one(MemPolicy::Cxl, 20_000);
        let cxl: u64 = snap
            .pmu
            .cxls
            .iter()
            .map(|b| b.read(CxlEvent::RxcPackBufInsertsMemReq))
            .sum();
        let bl: u64 = snap
            .pmu
            .m2ps
            .iter()
            .map(|b| b.read(M2pEvent::TxcInsertsBl))
            .sum();
        assert!(cxl > 0, "cxl run must reach the device");
        assert_eq!(cxl, bl, "every DRS must produce one M2PCIe BL entry");
        let cas: u64 = snap
            .pmu
            .imcs
            .iter()
            .map(|b| b.read(ImcEvent::CasCountRd))
            .sum();
        assert_eq!(
            cas, 0,
            "paper Fig 4-a: CXL traffic bypasses the IMC read path"
        );
    }

    #[test]
    fn tor_classifies_cxl_targets() {
        let (_m, snap) = run_one(MemPolicy::Cxl, 20_000);
        let drd_cxl = snap.pmu.chas[0].read(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl));
        let drd_ddr = snap.pmu.chas[0].read(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLocalDdr));
        assert!(drd_cxl > 0);
        assert_eq!(drd_ddr, 0);
    }

    #[test]
    fn l1_hits_dominate_small_working_set() {
        let mut m = Machine::new(MachineConfig::tiny());
        // 2 KiB working set fits L1D (4 KiB in tiny config).
        m.attach(
            0,
            Workload::new(
                "hot",
                Box::new(SeqReadTrace::new(2048, 50_000)),
                MemPolicy::Local,
            ),
        );
        let mut snap = None;
        for _ in 0..200 {
            let e = m.run_epoch();
            if e.all_done {
                snap = Some(e.snapshot);
                break;
            }
        }
        let snap = snap.unwrap();
        let hits = snap.pmu.cores[0].read(CoreEvent::MemLoadRetiredL1Hit);
        let misses = snap.pmu.cores[0].read(CoreEvent::MemLoadRetiredL1Miss);
        assert!(hits > misses * 50, "hits {hits} misses {misses}");
    }

    #[test]
    fn cxl_is_slower_than_local_end_to_end() {
        let (_ml, sl) = run_one(MemPolicy::Local, 30_000);
        let (_mc, sc) = run_one(MemPolicy::Cxl, 30_000);
        // Same work, so the CXL run must take more epochs ⇒ larger final cycle.
        assert!(
            sc.cycle > sl.cycle,
            "cxl run finished in {} cycles, local in {}",
            sc.cycle,
            sl.cycle
        );
    }

    #[test]
    fn stores_drive_writeback_traffic() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "wr",
                Box::new(SeqRwTrace::new(1 << 20, 30_000, 2)),
                MemPolicy::Cxl,
            ),
        );
        let mut snap = None;
        for _ in 0..400 {
            let e = m.run_epoch();
            if e.all_done {
                snap = Some(e.snapshot);
                break;
            }
        }
        let snap = snap.unwrap();
        let rwd: u64 = snap
            .pmu
            .cxls
            .iter()
            .map(|b| b.read(CxlEvent::RxcPackBufInsertsMemData))
            .sum();
        assert!(
            rwd > 0,
            "dirty evictions must become CXL.mem stores (M2S RwD)"
        );
        let ak: u64 = snap
            .pmu
            .m2ps
            .iter()
            .map(|b| b.read(M2pEvent::TxcInsertsAk))
            .sum();
        assert_eq!(rwd, ak, "every NDR yields an M2PCIe AK entry");
    }

    #[test]
    fn migration_moves_traffic_between_nodes() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "t",
                Box::new(SeqReadTrace::new(1 << 16, 200_000)),
                MemPolicy::Cxl,
            ),
        );
        m.run_epoch();
        let before = m.cxl_resident_pages(0);
        assert!(before > 0);
        for p in 0..(1 << 16) / PAGE_SIZE as u64 {
            m.migrate_page(0, p, MemNode::LocalDram);
        }
        assert_eq!(m.cxl_resident_pages(0), 0);
        // After migration new fills come from local DRAM.
        let cas_before: u64 = m
            .pmu
            .imcs
            .iter()
            .map(|b| b.read(ImcEvent::CasCountRd))
            .sum();
        m.run_epoch();
        let cas_after: u64 = m
            .pmu
            .imcs
            .iter()
            .map(|b| b.read(ImcEvent::CasCountRd))
            .sum();
        assert!(
            cas_after > cas_before,
            "post-migration reads must hit the IMC"
        );
    }

    #[test]
    fn determinism_same_seedless_run_is_identical() {
        let (_m1, s1) = run_one(MemPolicy::Interleave { cxl_fraction: 0.5 }, 10_000);
        let (_m2, s2) = run_one(MemPolicy::Interleave { cxl_fraction: 0.5 }, 10_000);
        assert_eq!(s1.cycle, s2.cycle);
        for (a, b) in s1.pmu.cores.iter().zip(s2.pmu.cores.iter()) {
            assert_eq!(a.raw(), b.raw());
        }
        assert_eq!(s1.pmu.chas[0].raw(), s2.pmu.chas[0].raw());
    }
}
