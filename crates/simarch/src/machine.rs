//! The whole server as a stage graph, driven epoch by epoch.
//!
//! `Machine` composes the stage modules of Figure 1 — cores (SB/LFB/L1D/L2),
//! the CHA complex, the IMC, the remote socket, and the CXL ports — behind
//! the [`SimModule`] trait and a validated [`Topology`]. The epoch scheduler
//! here is generic: it steps the globally-earliest core until the boundary,
//! then walks the stage list in ascending [`crate::module::StageId`] order,
//! ticking and draining each module into the system PMU. The intra-epoch
//! demand walk (what a load actually does between boundaries) lives in
//! `datapath.rs`.
//!
//! At the end of each scheduling epoch (§4.2) the machine produces a
//! [`pmu::SystemSnapshot`] — the input to all four PathFinder techniques.

use crate::cha::ChaComplex;
use crate::config::MachineConfig;
use crate::core_model::CoreState;
use crate::cxl::CxlPort;
use crate::faults::{FaultClass, FaultPlan};
use crate::imc::Imc;
use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::mem::MemNode;
use crate::module::{SimModule, StageId, StageKind, Topology};
use crate::remote::RemoteSocket;
use crate::trace::Workload;
use crate::wheel::EventWheel;
use pmu::{SystemPmu, SystemSnapshot};

/// Which core-stepping scheduler `run_epoch` uses. The two are proven
/// equivalent (identical counter streams) by `tests/scheduler_equivalence.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// Event-wheel scheduler: cores are keyed on their next progress tick
    /// in an [`EventWheel`] and popped in `(tick, StageId)` order; idle
    /// stretches are skipped instead of polled. The default.
    Wheel,
    /// The original per-step argmin scan over every core — retained as the
    /// executable specification the wheel is differenced against.
    Reference,
}

/// Which per-op datapath `step_core`-level execution uses. The two are
/// proven equivalent (identical counter streams) across the full
/// `SchedMode × DatapathMode` matrix by `tests/datapath_equivalence.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatapathMode {
    /// Staged batch pipeline (`batch.rs`): each scheduled core runs a
    /// *slice* of consecutive ops pulled chunk-wise from the trace into a
    /// machine-owned [`crate::arena::OpRing`], executed through stage-pass
    /// functions with combined single-search cache probes. The default.
    Batched,
    /// The original one-op-per-schedule walk (`datapath.rs`) — retained
    /// verbatim as the executable specification the batched pipeline is
    /// differenced against.
    Reference,
}

/// Result of running one scheduling epoch.
pub struct EpochResult {
    /// All PMU counters at the epoch boundary.
    pub snapshot: SystemSnapshot,
    /// Page-access heat gathered this epoch: `(asid, vpage, accesses)`,
    /// sorted — the input to the tiering layer.
    pub page_heat: Vec<(u16, u64, u32)>,
    /// Ops executed per core during this epoch.
    pub ops_per_core: Vec<u64>,
    /// True when every attached workload has drained its trace.
    pub all_done: bool,
}

/// Summary of a complete run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    pub epochs: u64,
    pub cycles: u64,
    pub ops_per_core: Vec<u64>,
}

/// No module made forward progress across enough consecutive epochs that
/// every pending core must have been eligible — the machine is wedged, and
/// [`Machine::run_to_completion`] reports it instead of spinning to the
/// epoch cap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallError {
    /// Epochs executed when the stall was declared.
    pub epoch: u64,
    /// Cycle of the epoch boundary at the stall.
    pub cycle: u64,
    /// Cores still pending (workload attached, trace not drained).
    pub pending_cores: Vec<usize>,
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no forward progress by epoch {} (cycle {}); pending cores: {:?}",
            self.epoch, self.cycle, self.pending_cores
        )
    }
}

impl std::error::Error for StallError {}

/// Watchdog for [`Machine::run_to_completion`].
///
/// A zero-progress epoch is legitimate while a pending core sits beyond the
/// epoch boundary (catching up after a long operation): the boundary gains
/// `epoch_cycles` per epoch and eventually overtakes every pending core.
/// Zero-progress epochs in which every pending core *was* eligible
/// (`horizon <= epoch_end`) mean eligible cores executed nothing — a
/// genuine stall.
#[derive(Clone, Copy, Debug, Default)]
struct ProgressGuard {
    stalled: u64,
}

impl ProgressGuard {
    /// Record one epoch; returns true when the machine is genuinely stuck.
    /// `progressed` = any op executed or any core newly finished; `horizon`
    /// = latest pending-core time (`None` when all cores are done).
    fn observe(&mut self, progressed: bool, horizon: Option<u64>, epoch_end: u64) -> bool {
        if progressed {
            self.stalled = 0;
            return false;
        }
        let Some(h) = horizon else {
            return false;
        };
        if h > epoch_end {
            // Pending cores sit beyond the boundary: they were not eligible
            // this epoch, so zero progress proves nothing yet.
            return false;
        }
        // Every pending core was eligible and still nothing moved. One such
        // epoch cannot happen in a correct machine (an eligible core always
        // executes an op or finishes); give two epochs of grace anyway.
        self.stalled += 1;
        self.stalled > 2
    }
}

/// The simulated server.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    /// Live PMU counter state (the profiler snapshots this).
    pub pmu: SystemPmu,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) cha: ChaComplex,
    pub(crate) imc: Imc,
    pub(crate) remote: RemoteSocket,
    pub(crate) ports: Vec<CxlPort>,
    topology: Topology,
    pub(crate) epoch_end: u64,
    epochs_run: u64,
    /// Unsorted per-epoch (asid, page) → count entries; duplicates are
    /// merged by one sort at the epoch drain, which is far cheaper than an
    /// ordered-map walk per touched page.
    pub(crate) page_heat: Vec<((u16, u64), u32)>,
    /// Run-length cache in front of `page_heat`: consecutive ops to the same
    /// (core, page) accumulate here and flush in one push —
    /// sequential traces would otherwise pay an append per op.
    pub(crate) heat_run: Option<((u16, u64), u32)>,
    /// Reused scratch for the L2 stream prefetcher's output lines, so a
    /// confirmed stream never allocates per demand miss.
    pub(crate) pf_scratch: Vec<u64>,
    ops_at_last_epoch: Vec<u64>,
    /// Deterministic fault schedule (empty = healthy machine).
    faults: FaultPlan,
    /// Stages whose epoch-boundary PMU flush is suppressed this epoch.
    fault_dropout: Vec<StageId>,
    /// Bumped on every workload (re)attachment; consumers cache derived
    /// per-core state (e.g. the profiler's app labels) against it.
    workload_gen: u64,
    /// Which tenant host this machine is in a multi-host fabric.
    /// `HostId(0)` for a standalone machine.
    host: crate::request::HostId,
    /// Core-stepping scheduler (see [`SchedMode`]).
    sched: SchedMode,
    /// Per-op datapath (see [`DatapathMode`]).
    datapath: DatapathMode,
    /// The wakeup wheel of the event-wheel scheduler; reset each epoch.
    wheel: EventWheel<StageId>,
    /// Per-core op buffers of the batched datapath's gather pass; drained
    /// FIFO, so buffering never reorders a trace.
    pub(crate) rings: Vec<crate::arena::OpRing>,
    /// Snapshot pool: a retired end-of-epoch snapshot handed back via
    /// [`Machine::recycle_snapshot`]. The next `run_epoch` overwrites it in
    /// place instead of cloning every bank afresh.
    spare_snapshot: Option<SystemSnapshot>,
}

/// All stage modules in ascending stage-id (= drain) order, as trait
/// objects. Split borrows so the caller keeps `pmu` free for draining.
fn stage_modules<'a>(
    cores: &'a mut [CoreState],
    cha: &'a mut ChaComplex,
    imc: &'a mut Imc,
    remote: &'a mut RemoteSocket,
    ports: &'a mut [CxlPort],
) -> impl Iterator<Item = &'a mut dyn SimModule> {
    cores
        .iter_mut()
        .map(|c| c as &mut dyn SimModule)
        .chain(std::iter::once(cha as &mut dyn SimModule))
        .chain(std::iter::once(imc as &mut dyn SimModule))
        .chain(std::iter::once(remote as &mut dyn SimModule))
        .chain(ports.iter_mut().map(|p| p as &mut dyn SimModule))
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        cfg.validate().expect("invalid machine configuration");
        let pmu = SystemPmu::new(
            cfg.cores,
            1,
            cfg.dram_channels,
            cfg.cxl_devices,
            cfg.cxl_devices,
        );
        Machine {
            pmu,
            cores: (0..cfg.cores).map(|i| CoreState::new(i, &cfg)).collect(),
            cha: ChaComplex::new(&cfg),
            imc: Imc::new(&cfg),
            remote: RemoteSocket::new(cfg.remote_latency + cfg.dram_latency, cfg.remote_dram_gap),
            ports: (0..cfg.cxl_devices)
                .map(|d| CxlPort::new(&cfg, d))
                .collect(),
            topology: Topology::clos(&cfg),
            epoch_end: 0,
            epochs_run: 0,
            page_heat: Vec::new(),
            heat_run: None,
            pf_scratch: Vec::new(),
            ops_at_last_epoch: vec![0; cfg.cores],
            faults: FaultPlan::new(),
            fault_dropout: Vec::new(),
            workload_gen: 0,
            host: crate::request::HostId(0),
            sched: SchedMode::Wheel,
            datapath: DatapathMode::Batched,
            wheel: EventWheel::new(0),
            rings: (0..cfg.cores)
                .map(|_| crate::arena::OpRing::new())
                .collect(),
            spare_snapshot: None,
            cfg,
        }
    }

    /// Hand a retired snapshot back for reuse: the next `run_epoch`
    /// overwrites it in place (`SystemSnapshot::copy_from`) instead of
    /// cloning every bank. Purely an allocation-recycling hint — the
    /// returned snapshots are byte-identical either way.
    pub fn recycle_snapshot(&mut self, snapshot: SystemSnapshot) {
        self.spare_snapshot = Some(snapshot);
    }

    /// Select the core-stepping scheduler. Both modes produce identical
    /// counter streams; `Reference` exists for the differential harness
    /// and for bisecting any future wheel regression.
    pub fn set_sched_mode(&mut self, mode: SchedMode) {
        self.sched = mode;
    }

    pub fn sched_mode(&self) -> SchedMode {
        self.sched
    }

    /// Select the per-op datapath. Both modes produce identical counter
    /// streams; `Reference` exists for the differential harness and for
    /// bisecting any future batching regression.
    pub fn set_datapath_mode(&mut self, mode: DatapathMode) {
        self.datapath = mode;
    }

    pub fn datapath_mode(&self) -> DatapathMode {
        self.datapath
    }

    /// This machine's tenant identity within a fabric (`HostId(0)` when
    /// standalone).
    pub fn host(&self) -> crate::request::HostId {
        self.host
    }

    /// Assign the tenant identity. Called by `fabric::Fabric` at
    /// construction; identity only — no timing or counter effect.
    pub fn set_host(&mut self, host: crate::request::HostId) {
        self.host = host;
    }

    /// Impose fabric-attributed backpressure on every CXL port of this
    /// machine for the next epoch (see `CxlPort::set_fabric_backpressure`).
    pub fn set_fabric_backpressure(&mut self, extra_lat: u64, extra_gap: u64) {
        for p in &mut self.ports {
            p.set_fabric_backpressure(extra_lat, extra_gap);
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The stage graph this machine was built from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Read-only view of every stage module, in drain order.
    pub fn stages(&self) -> Vec<&dyn SimModule> {
        let mut v: Vec<&dyn SimModule> = self.cores.iter().map(|c| c as &dyn SimModule).collect();
        v.push(&self.cha);
        v.push(&self.imc);
        v.push(&self.remote);
        v.extend(self.ports.iter().map(|p| p as &dyn SimModule));
        v
    }

    /// Pin a workload to a core. Panics if the core is occupied or out of
    /// range.
    pub fn attach(&mut self, core: usize, workload: Workload) {
        assert!(core < self.cores.len(), "core {core} out of range");
        assert!(self.cores[core].done, "core {core} already has a workload");
        assert!(
            (workload.cxl_device as usize) < self.cfg.cxl_devices.max(1),
            "cxl device out of range"
        );
        self.cores[core].attach(workload, core as u16);
        // A freshly attached core starts at the current epoch boundary
        // with an empty op buffer.
        self.cores[core].time = self.epoch_end;
        self.rings[core].clear();
        self.workload_gen += 1;
    }

    /// Name of the workload on `core`, if any.
    pub fn workload_name(&self, core: usize) -> Option<&str> {
        self.cores[core].workload.as_ref().map(|w| w.name.as_str())
    }

    /// Monotone counter of workload (re)attachments — cheap change
    /// detection for per-core caches derived from workload identity.
    pub fn workload_generation(&self) -> u64 {
        self.workload_gen
    }

    /// True when no core has trace ops left.
    pub fn all_done(&self) -> bool {
        self.cores.iter().all(|c| c.done)
    }

    /// Current cycle (last epoch boundary).
    pub fn now(&self) -> u64 {
        self.epoch_end
    }

    /// Epochs executed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Ground-truth per-core statistics (not visible to real PMUs; used by
    /// the ablation benches).
    pub fn ground_truth(&self, core: usize) -> &crate::core_model::GroundTruth {
        &self.cores[core].truth
    }

    /// Current CXL QoS telemetry class (DevLoad) of device `d` — the
    /// CXL 3.0/3.1 capability §3.5 notes shipping DIMMs do not yet expose;
    /// the simulated device does, so the profiler can report it.
    pub fn dev_load(&self, d: usize) -> crate::cxl::DevLoad {
        self.ports[d].dev_load(self.epoch_end)
    }

    /// Pages of `core`'s space currently resident on CXL.
    pub fn cxl_resident_pages(&self, core: usize) -> usize {
        self.cores[core]
            .workload
            .as_ref()
            .map_or(0, |w| w.space.cxl_resident_pages())
    }

    /// Current residency of a virtual page of `core`'s address space
    /// (`None` if the core has no workload or the page is untouched).
    pub fn page_node(&self, core: usize, vpage: u64) -> Option<MemNode> {
        self.cores[core]
            .workload
            .as_ref()
            .and_then(|w| w.space.page_node(vpage))
    }

    /// Attach a deterministic fault schedule (see [`crate::faults`]).
    /// Windows are indexed by epoch number (`epochs_run`); replaces any
    /// previous plan. An empty plan restores the healthy machine.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The active fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Reset every fault knob to its calibrated baseline, then apply the
    /// windows covering the upcoming epoch. Re-applying from scratch each
    /// epoch makes windows compose and expire without order dependence.
    fn apply_faults_for_epoch(&mut self) {
        if self.faults.is_empty() {
            return;
        }
        let _f = obs::span!("fault.apply");
        for p in &mut self.ports {
            p.clear_faults();
        }
        self.fault_dropout.clear();
        let now = self.epoch_end;
        // Move the plan out for the loop instead of cloning the active
        // windows into a per-epoch scratch Vec — fault application mutates
        // ports/CHA/IMC but never the plan itself.
        let plan = std::mem::take(&mut self.faults);
        let mut active = 0usize;
        for w in plan.active(self.epochs_run) {
            active += 1;
            match w.class {
                FaultClass::LinkDegrade => {
                    if let Some(p) = self.ports.get_mut(w.stage.index as usize) {
                        p.degrade_link(w.severity);
                        obs::metrics::counter_add("fault.link_degrade", 1);
                    }
                }
                FaultClass::DevThrottle => {
                    if let Some(p) = self.ports.get_mut(w.stage.index as usize) {
                        p.throttle_device(w.severity);
                        obs::metrics::counter_add("fault.dev_throttle", 1);
                    }
                }
                FaultClass::PoisonedLine => {
                    if let Some(p) = self.ports.get_mut(w.stage.index as usize) {
                        p.set_poison_period(w.severity);
                        obs::metrics::counter_add("fault.poisoned_line", 1);
                    }
                }
                FaultClass::QueueStall => {
                    match w.stage.kind {
                        StageKind::Cha => self.cha.stall_slices(now + w.severity),
                        StageKind::Imc => self.imc.stall_channels(now + w.severity),
                        _ => {}
                    }
                    obs::metrics::counter_add("fault.queue_stall", 1);
                }
                FaultClass::PmuDropout => {
                    self.fault_dropout.push(w.stage);
                    obs::metrics::counter_add("fault.pmu_dropout", 1);
                }
                // Fabric classes target the shared switch, which lives
                // outside any single machine; `fabric::Fabric` applies
                // them. A machine-level plan carrying one is a no-op
                // (validate() already forbids machine stages as targets).
                FaultClass::SharedLinkDegrade | FaultClass::SwitchPortStall => {}
            }
        }
        obs::metrics::gauge_set("fault.active_windows", active as f64);
        self.faults = plan;
    }

    /// Spill the page-heat run-length cache into the accumulator. Must run
    /// before `page_heat` is read or drained.
    pub(crate) fn flush_heat_run(&mut self) {
        if let Some((key, n)) = self.heat_run.take() {
            self.page_heat.push((key, n));
        }
    }

    /// Execute one scheduling epoch: run every core up to the next epoch
    /// boundary, then tick + drain every stage of the topology in stage-id
    /// order and snapshot all PMUs.
    pub fn run_epoch(&mut self) -> EpochResult {
        self.apply_faults_for_epoch();
        let end = self.epoch_end + self.cfg.epoch_cycles;
        {
            let _step = obs::span!("epoch.step");
            match self.sched {
                SchedMode::Wheel => self.wheel_step_loop(end),
                SchedMode::Reference => self.reference_step_loop(end),
            }
        }
        {
            let _drain = obs::span!("epoch.drain");
            let ec = self.cfg.epoch_cycles;
            let Machine {
                cores,
                cha,
                imc,
                remote,
                ports,
                pmu,
                topology,
                fault_dropout,
                ..
            } = self;
            // Stage-graph traversal: each module advances to the boundary
            // and flushes its own banks. Stages touch disjoint state, so the
            // walk order only has to be deterministic — and the topology's
            // validated stage list pins it.
            let mut expected = topology.stages().iter();
            for stage in stage_modules(cores, cha, imc, remote, ports) {
                debug_assert_eq!(
                    expected.next().copied(),
                    Some(stage.stage_id()),
                    "stage drain order must follow the topology"
                );
                let _m = obs::span!(stage.name());
                stage.tick(end);
                if fault_dropout.contains(&stage.stage_id()) {
                    // PMU dropout: the stage still advances, but its epoch
                    // flush is lost — inline-incremented totals keep
                    // accumulating while clockticks (and NE syncs) freeze,
                    // exactly the signature a dead perf collector leaves.
                    obs::metrics::counter_add("fault.drain_suppressed", 1);
                } else {
                    stage.drain(pmu, ec);
                }
            }
            debug_assert!(
                expected.next().is_none(),
                "topology lists stages the machine does not instantiate"
            );
        }
        self.epoch_end = end;
        self.epochs_run += 1;
        // Audit conservation across the whole Clos hierarchy at every epoch
        // boundary. Active in debug builds (so `cargo test` always checks)
        // and in release builds compiled with `--features invariants`.
        #[cfg(any(debug_assertions, feature = "invariants"))]
        {
            let audit = obs::span!("epoch.audit");
            crate::invariants::assert_invariants(self);
            if let Some(d) = audit.finish() {
                obs::metrics::observe("epoch.audit_ns", d.as_nanos() as u64);
            }
        }
        // The accumulator holds unsorted, possibly-duplicated keys; one sort
        // plus an in-place merge reproduces the (asid, page)-ordered list the
        // ordered-map implementation used to emit, byte for byte.
        self.flush_heat_run();
        self.page_heat.sort_unstable_by_key(|&(k, _)| k);
        let mut heat: Vec<(u16, u64, u32)> = Vec::with_capacity(self.page_heat.len());
        for &((a, p), n) in &self.page_heat {
            match heat.last_mut() {
                Some(last) if last.0 == a && last.1 == p => last.2 += n,
                _ => heat.push((a, p, n)),
            }
        }
        // Clear, don't take: the accumulator keeps its capacity across
        // epochs so steady-state heat tracking never re-allocates.
        self.page_heat.clear();
        let ops_per_core: Vec<u64> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| c.ops_executed - self.ops_at_last_epoch[i])
            .collect();
        for (i, c) in self.cores.iter().enumerate() {
            self.ops_at_last_epoch[i] = c.ops_executed;
        }
        let snapshot = match self.spare_snapshot.take() {
            Some(mut s) => {
                s.copy_from(&self.pmu, end);
                s
            }
            None => self.pmu.snapshot(end),
        };
        EpochResult {
            snapshot,
            page_heat: heat,
            ops_per_core,
            all_done: self.all_done(),
        }
    }

    /// Reference scheduler: the per-step argmin scan over every core. Runs
    /// the globally-earliest core so shared-resource arrivals are
    /// interleaved in near-perfect time order; ties break to the lowest
    /// core index. This is the executable specification of the step order —
    /// the wheel scheduler must match it exactly.
    fn reference_step_loop(&mut self, end: u64) {
        loop {
            let next = (0..self.cores.len())
                .filter(|&i| !self.cores[i].done && self.cores[i].time < end)
                .min_by_key(|&i| self.cores[i].time);
            let Some(c) = next else { break };
            match self.datapath {
                DatapathMode::Batched => self.run_core_slice(c, end),
                DatapathMode::Reference => self.step_core(c),
            }
        }
    }

    /// Event-wheel scheduler: every core with a progress tick before the
    /// boundary is keyed on it; pops come back in `(tick, StageId)` order,
    /// which is the reference order (earliest time first, lowest core index
    /// on ties — core `StageId`s order by index). Equivalence holds because
    /// stepping a core never moves another core's time, so the next argmin
    /// is always either the re-scheduled core or an undisturbed key already
    /// in the wheel.
    // pflint::hot — the simulator's innermost scheduling loop.
    fn wheel_step_loop(&mut self, end: u64) {
        self.wheel.reset(self.epoch_end);
        for i in 0..self.cores.len() {
            if let Some(t) = self.cores[i].next_event() {
                if t < end {
                    self.wheel.schedule(t, StageId::core(i));
                }
            }
        }
        while let Some((_, id)) = self.wheel.pop_before(end) {
            let c = id.index as usize;
            match self.datapath {
                DatapathMode::Batched => self.run_core_slice(c, end),
                DatapathMode::Reference => self.step_core(c),
            }
            if let Some(t) = self.cores[c].next_event() {
                if t < end {
                    self.wheel.schedule(t, id);
                }
            }
        }
    }

    /// How many whole upcoming epochs are quiescent — no core eligible, no
    /// fault window active — or `None` if the next epoch has work. The
    /// count is clamped to `cap` and to the next fault-window edge, so a
    /// window starting inside an idle stretch is still applied on exactly
    /// the right epoch.
    fn quiescent_epochs(&self, cap: u64) -> Option<u64> {
        let ec = self.cfg.epoch_cycles;
        let next = self
            .cores
            .iter()
            .filter_map(crate::module::SimModule::next_event)
            .min()?;
        let j = (next - self.epoch_end) / ec;
        if j == 0 {
            return None;
        }
        let mut j = j.min(cap);
        if !self.faults.is_empty() {
            // Active windows mutate per-epoch state (stall horizons are
            // `now`-relative) — never skip through one.
            if self.faults.active(self.epochs_run).next().is_some() {
                return None;
            }
            if let Some(edge) = self.faults.next_edge(self.epochs_run) {
                j = j.min(edge - self.epochs_run);
            }
        }
        (j > 0).then_some(j)
    }

    /// Fast-forward `j` epochs in which nothing can happen. Byte-identical
    /// to `j` calls of [`Machine::run_epoch`] with the results discarded:
    /// core ticks keep their per-boundary schedule (in-flight GC timing is
    /// behavioral — a stale entry reads as a prefetch hit), uncore ticks
    /// are no-ops, and every drain term is either linear in `epoch_cycles`
    /// (clock ticks) or a since-last-sync delta, so one batched drain per
    /// stage replaces `j` unit drains exactly.
    fn skip_quiescent_epochs(&mut self, j: u64) {
        let _s = obs::span!("epoch.skip");
        let ec = self.cfg.epoch_cycles;
        for k in 1..=j {
            let boundary = self.epoch_end + ec * k;
            for c in &mut self.cores {
                crate::module::SimModule::tick(c, boundary);
            }
        }
        let end = self.epoch_end + ec * j;
        {
            let Machine {
                cores,
                cha,
                imc,
                remote,
                ports,
                pmu,
                ..
            } = self;
            for stage in stage_modules(cores, cha, imc, remote, ports) {
                stage.tick(end);
                stage.drain(pmu, ec * j);
            }
        }
        self.epoch_end = end;
        self.epochs_run += j;
        obs::metrics::counter_add("epoch.skipped", j);
    }

    /// Run until all workloads finish or `max_epochs` elapse. Errors when no
    /// module makes forward progress across enough consecutive epochs that
    /// every pending core must have been eligible (a wedged machine).
    ///
    /// Under the wheel scheduler, stretches of whole epochs in which no
    /// core is eligible (every pending core is catching up beyond the
    /// boundary after a long operation) are fast-forwarded instead of
    /// polled epoch by epoch — see [`Machine::skip_quiescent_epochs`].
    pub fn run_to_completion(&mut self, max_epochs: u64) -> Result<RunSummary, StallError> {
        let mut epochs = 0;
        let mut guard = ProgressGuard::default();
        while !self.all_done() && epochs < max_epochs {
            if self.sched == SchedMode::Wheel {
                if let Some(j) = self.quiescent_epochs(max_epochs - epochs) {
                    self.skip_quiescent_epochs(j);
                    epochs += j;
                    continue;
                }
            }
            let done_before = self.cores.iter().filter(|c| c.done).count();
            let e = self.run_epoch();
            epochs += 1;
            let done_after = self.cores.iter().filter(|c| c.done).count();
            let progressed = e.ops_per_core.iter().any(|&n| n > 0) || done_after > done_before;
            let horizon = self.cores.iter().filter(|c| !c.done).map(|c| c.time).max();
            if guard.observe(progressed, horizon, self.epoch_end) {
                return Err(StallError {
                    epoch: self.epochs_run,
                    cycle: self.epoch_end,
                    pending_cores: self
                        .cores
                        .iter()
                        .filter(|c| !c.done)
                        .map(|c| c.id)
                        .collect(),
                });
            }
        }
        Ok(RunSummary {
            epochs,
            cycles: self.epoch_end,
            ops_per_core: self.cores.iter().map(|c| c.ops_executed).collect(),
        })
    }
}

impl Invariants for Machine {
    fn component(&self) -> &'static str {
        "machine::Machine"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        for core in &self.cores {
            core.collect_violations(out);
        }
        self.cha.collect_violations(out);
        self.imc.collect_violations(out);
        self.remote.collect_violations(out);
        for port in &self.ports {
            port.collect_violations(out);
        }
        for (i, core) in self.cores.iter().enumerate() {
            invariant!(
                out,
                self.component(),
                self.ops_at_last_epoch[i] <= core.ops_executed,
                "core {i}: epoch op baseline ahead of execution: {} > {}",
                self.ops_at_last_epoch[i],
                core.ops_executed
            );
        }
        invariant!(
            out,
            self.component(),
            self.topology.validate().is_ok(),
            "stage topology failed validation: {:?}",
            self.topology.validate()
        );
        crate::conservation::pmu_conservation(self.host, &self.pmu, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, MemPolicy};
    use crate::faults::{FaultClass, FaultPlan, FaultWindow};
    use crate::trace::SeqReadTrace;

    #[test]
    fn page_heat_is_reported_and_drained() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "t",
                Box::new(SeqReadTrace::new(1 << 16, 5_000)),
                MemPolicy::Local,
            ),
        );
        let e1 = m.run_epoch();
        assert!(!e1.page_heat.is_empty());
        let total: u32 = e1.page_heat.iter().map(|(_, _, n)| n).sum();
        assert!(total > 0);
    }

    #[test]
    fn two_cores_share_the_llc() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "a",
                Box::new(SeqReadTrace::new(1 << 20, 20_000)),
                MemPolicy::Local,
            ),
        );
        m.attach(
            1,
            Workload::new(
                "b",
                Box::new(SeqReadTrace::new(1 << 20, 20_000)),
                MemPolicy::Local,
            ),
        );
        let summary = m.run_to_completion(500).expect("machine must not stall");
        assert_eq!(summary.ops_per_core, vec![20_000, 20_000]);
        assert!(m.all_done());
    }

    #[test]
    #[should_panic(expected = "already has a workload")]
    fn double_attach_panics() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new("a", Box::new(SeqReadTrace::new(1024, 10)), MemPolicy::Local),
        );
        m.attach(
            0,
            Workload::new("b", Box::new(SeqReadTrace::new(1024, 10)), MemPolicy::Local),
        );
    }

    #[test]
    fn stage_list_matches_topology() {
        let m = Machine::new(MachineConfig::tiny());
        let ids: Vec<_> = m.stages().iter().map(|s| s.stage_id()).collect();
        assert_eq!(ids, m.topology().stages());
        // Drain order is strictly ascending — the determinism anchor.
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "stage order must be strictly ascending");
        }
    }

    #[test]
    fn every_stage_counter_resolves_in_the_registry() {
        let m = Machine::new(MachineConfig::tiny());
        for stage in m.stages() {
            for name in stage.counters() {
                assert!(
                    pmu::registry::lookup(name).is_some(),
                    "{} advertises unknown counter {name}",
                    stage.name()
                );
            }
        }
    }

    #[test]
    fn run_to_completion_finishes_cleanly() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "t",
                Box::new(SeqReadTrace::new(1 << 16, 5_000)),
                MemPolicy::Local,
            ),
        );
        let summary = m.run_to_completion(1_000).expect("no stall");
        assert!(m.all_done());
        assert!(summary.epochs > 0);
    }

    // ---- fault injection ------------------------------------------------

    #[test]
    fn faulted_run_completes_and_conserves() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "t",
                Box::new(SeqReadTrace::new(1 << 16, 20_000)),
                MemPolicy::Cxl,
            ),
        );
        m.set_fault_plan(
            FaultPlan::new()
                .with(FaultWindow {
                    class: FaultClass::LinkDegrade,
                    stage: StageId::cxl(0),
                    start_epoch: 0,
                    end_epoch: 2,
                    severity: 8,
                })
                .unwrap()
                .with(FaultWindow {
                    class: FaultClass::QueueStall,
                    stage: StageId::cha(),
                    start_epoch: 1,
                    end_epoch: 3,
                    severity: 50_000,
                })
                .unwrap()
                .with(FaultWindow {
                    class: FaultClass::PoisonedLine,
                    stage: StageId::cxl(0),
                    start_epoch: 0,
                    end_epoch: 4,
                    severity: 2,
                })
                .unwrap()
                .with(FaultWindow {
                    class: FaultClass::PmuDropout,
                    stage: StageId::imc(),
                    start_epoch: 0,
                    end_epoch: 2,
                    severity: 0,
                })
                .unwrap(),
        );
        let summary = m
            .run_to_completion(2_000)
            .expect("faulted machine must not stall");
        assert!(m.all_done());
        assert!(summary.epochs > 0);
        // Conservation holds under every fault (the debug-build epoch audit
        // already enforced this each boundary; assert once more explicitly).
        let mut v = Vec::new();
        m.collect_violations(&mut v);
        assert!(v.is_empty(), "violations under faults: {v:?}");
    }

    #[test]
    fn pmu_dropout_freezes_clockticks_but_not_flow_counters() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "t",
                Box::new(SeqReadTrace::new(1 << 18, 20_000)),
                MemPolicy::Local,
            ),
        );
        m.set_fault_plan(
            FaultPlan::new()
                .with(FaultWindow {
                    class: FaultClass::PmuDropout,
                    stage: StageId::imc(),
                    start_epoch: 0,
                    end_epoch: u64::MAX,
                    severity: 0,
                })
                .unwrap(),
        );
        m.run_to_completion(500).expect("no stall");
        let snap = m.pmu.snapshot(m.now());
        let ticks: u64 = snap
            .pmu
            .imcs
            .iter()
            .map(|b| b.read(pmu::ImcEvent::ClockTicks))
            .sum();
        let cas: u64 = snap
            .pmu
            .imcs
            .iter()
            .map(|b| b.read(pmu::ImcEvent::CasCountRd))
            .sum();
        assert_eq!(ticks, 0, "dropout must freeze the stage's clockticks");
        assert!(cas > 0, "inline flow counters keep accumulating");
        // Other stages keep draining.
        assert!(snap.pmu.chas[0].read(pmu::ChaEvent::ClockTicks) > 0);
    }

    #[test]
    fn expired_windows_restore_healthy_timing() {
        // Two identical workloads; one machine with a fault window that has
        // already expired before any epoch runs. Results must be identical.
        let build = || {
            let mut m = Machine::new(MachineConfig::tiny());
            m.attach(
                0,
                Workload::new(
                    "t",
                    Box::new(SeqReadTrace::new(1 << 16, 10_000)),
                    MemPolicy::Cxl,
                ),
            );
            m
        };
        let mut healthy = build();
        healthy.run_to_completion(500).unwrap();
        let mut faulted = build();
        // Degrade epochs [0, 1); everything after runs at calibrated speed,
        // so the machine still finishes (more slowly than healthy).
        faulted.set_fault_plan(
            FaultPlan::new()
                .with(FaultWindow {
                    class: FaultClass::LinkDegrade,
                    stage: StageId::cxl(0),
                    start_epoch: 0,
                    end_epoch: 1,
                    severity: 16,
                })
                .unwrap(),
        );
        faulted.run_to_completion(500).unwrap();
        assert!(faulted.all_done());
        assert!(
            faulted.now() >= healthy.now(),
            "a transient fault can only slow the run down"
        );
    }

    // ---- stall-guard predicate ------------------------------------------

    #[test]
    fn progressing_epochs_never_stall() {
        let mut g = ProgressGuard::default();
        for end in (0..100).map(|i| i * 1_000) {
            assert!(!g.observe(true, Some(end + 10), end));
        }
    }

    #[test]
    fn catchup_epochs_are_tolerated() {
        let mut g = ProgressGuard::default();
        // A core sits 5 epochs in the future; the zero-progress epochs it
        // takes the boundary to catch up must not trip the guard.
        let horizon = 5_000;
        for i in 1..=5u64 {
            assert!(
                !g.observe(false, Some(horizon), i * 1_000),
                "catch-up epoch {i} must not stall"
            );
        }
    }

    #[test]
    fn genuine_stall_is_detected() {
        let mut g = ProgressGuard::default();
        // Pending core is eligible (horizon at the boundary) yet nothing
        // progresses: the guard must fire after the grace epochs.
        let mut fired = false;
        for _ in 0..5 {
            if g.observe(false, Some(1_000), 1_000) {
                fired = true;
                break;
            }
        }
        assert!(fired, "eligible-but-idle epochs must be declared a stall");
    }

    #[test]
    fn progress_resets_the_stall_count() {
        let mut g = ProgressGuard::default();
        for _ in 0..2 {
            g.observe(false, Some(1_000), 1_000);
        }
        assert!(!g.observe(true, Some(1_000), 1_000));
        // The counter restarted: two more idle epochs are tolerated again.
        assert!(!g.observe(false, Some(1_000), 1_000));
        assert!(!g.observe(false, Some(1_000), 1_000));
    }

    #[test]
    fn all_cores_done_never_stalls() {
        let mut g = ProgressGuard::default();
        for _ in 0..100 {
            assert!(!g.observe(false, None, 1_000));
        }
    }
}
