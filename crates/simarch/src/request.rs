//! Memory operations and request bookkeeping.

use crate::mem::MemNode;
use pmu::PathClass;

/// One operation emitted by a workload trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessKind {
    /// Demand load. `dependent` marks loads on the program's critical path
    /// (pointer chases): the core cannot issue past them.
    Load { dependent: bool },
    /// Demand store.
    Store,
    /// Explicit software prefetch (`prefetcht0`-style).
    SwPrefetch,
}

/// A single memory operation: a virtual address plus the number of
/// non-memory instructions the core executes before it (`work`), which sets
/// the natural request rate of the workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemOp {
    pub vaddr: u64,
    pub kind: AccessKind,
    /// Non-memory work (cycles) preceding this operation.
    pub work: u32,
}

impl MemOp {
    pub fn load(vaddr: u64) -> MemOp {
        MemOp {
            vaddr,
            kind: AccessKind::Load { dependent: false },
            work: 1,
        }
    }

    pub fn dependent_load(vaddr: u64) -> MemOp {
        MemOp {
            vaddr,
            kind: AccessKind::Load { dependent: true },
            work: 1,
        }
    }

    pub fn store(vaddr: u64) -> MemOp {
        MemOp {
            vaddr,
            kind: AccessKind::Store,
            work: 1,
        }
    }

    pub fn swpf(vaddr: u64) -> MemOp {
        MemOp {
            vaddr,
            kind: AccessKind::SwPrefetch,
            work: 0,
        }
    }

    pub fn with_work(mut self, work: u32) -> MemOp {
        self.work = work;
        self
    }
}

/// Where a request was ultimately served from — the egress stage of its
/// path. This is the simulator's ground truth; the PMU exposes it through
/// the `ocr.*` scenario counters and the CHA TOR target counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServeLoc {
    /// Store absorbed by the store buffer (store-to-line coalescing).
    StoreBuffer,
    L1d,
    /// Merged into an in-flight line-fill-buffer entry.
    Lfb,
    L2,
    /// This core's local LLC slice.
    LocalLlc,
    /// A distant LLC slice in another sub-NUMA cluster.
    SncLlc,
    /// A remote-socket cache, via snoop.
    RemoteLlc,
    /// Another core's private cache on this socket (cross-core snoop).
    PeerCache,
    /// Socket-local DRAM.
    LocalDram,
    /// The other socket's DRAM (NUMA remote).
    RemoteDram,
    /// CXL device DRAM.
    CxlDram,
}

impl ServeLoc {
    /// All serve locations, in `Ord` order (the report order the ground
    /// truth uses).
    pub const ALL: [ServeLoc; 11] = [
        ServeLoc::StoreBuffer,
        ServeLoc::L1d,
        ServeLoc::Lfb,
        ServeLoc::L2,
        ServeLoc::LocalLlc,
        ServeLoc::SncLlc,
        ServeLoc::RemoteLlc,
        ServeLoc::PeerCache,
        ServeLoc::LocalDram,
        ServeLoc::RemoteDram,
        ServeLoc::CxlDram,
    ];

    pub const COUNT: usize = Self::ALL.len();

    /// Dense index into [`Self::ALL`] — lets per-request accounting use a
    /// flat array instead of an ordered map (see `core_model::GroundTruth`).
    pub fn idx(self) -> usize {
        match self {
            ServeLoc::StoreBuffer => 0,
            ServeLoc::L1d => 1,
            ServeLoc::Lfb => 2,
            ServeLoc::L2 => 3,
            ServeLoc::LocalLlc => 4,
            ServeLoc::SncLlc => 5,
            ServeLoc::RemoteLlc => 6,
            ServeLoc::PeerCache => 7,
            ServeLoc::LocalDram => 8,
            ServeLoc::RemoteDram => 9,
            ServeLoc::CxlDram => 10,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ServeLoc::StoreBuffer => "SB",
            ServeLoc::L1d => "L1D",
            ServeLoc::Lfb => "LFB",
            ServeLoc::L2 => "L2",
            ServeLoc::LocalLlc => "local LLC",
            ServeLoc::SncLlc => "snc LLC",
            ServeLoc::RemoteLlc => "remote LLC",
            ServeLoc::PeerCache => "peer cache",
            ServeLoc::LocalDram => "local DRAM",
            ServeLoc::RemoteDram => "remote DRAM",
            ServeLoc::CxlDram => "CXL memory",
        }
    }

    /// True if this location is past the LLC (a memory destination).
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            ServeLoc::LocalDram | ServeLoc::RemoteDram | ServeLoc::CxlDram
        )
    }
}

/// The outcome of walking one request through the hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Cycle at which the data (or ownership) is available to the core.
    pub finish: u64,
    /// Where the request was served from.
    pub loc: ServeLoc,
    /// Cycle at which the L2 lookup completed (miss determined) — used for
    /// the `cycles_l2_miss` family.
    pub l2_miss_at: Option<u64>,
    /// Cycle at which the LLC lookup completed (miss determined).
    pub l3_miss_at: Option<u64>,
}

/// Identity of a tenant host in a multi-host fabric. Host 0 is the only
/// host of a standalone machine; the fabric assigns ids densely so the
/// id doubles as the upstream switch-port index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u16);

impl HostId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for HostId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Identity of an in-flight request: who issued it and on which path class.
#[derive(Clone, Copy, Debug)]
pub struct ReqCtx {
    /// The tenant host the issuing core belongs to.
    pub host: HostId,
    pub core: usize,
    pub path: PathClass,
    /// Destination node if the request reaches memory (by address).
    pub node: MemNode,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors_set_kinds() {
        assert!(matches!(
            MemOp::load(4).kind,
            AccessKind::Load { dependent: false }
        ));
        assert!(matches!(
            MemOp::dependent_load(4).kind,
            AccessKind::Load { dependent: true }
        ));
        assert!(matches!(MemOp::store(4).kind, AccessKind::Store));
        assert!(matches!(MemOp::swpf(4).kind, AccessKind::SwPrefetch));
        assert_eq!(MemOp::load(4).with_work(9).work, 9);
    }

    #[test]
    fn host_ids_order_and_render() {
        assert_eq!(HostId::default(), HostId(0));
        assert!(HostId(0) < HostId(1));
        assert_eq!(HostId(3).index(), 3);
        assert_eq!(HostId(2).to_string(), "host2");
    }

    #[test]
    fn serve_loc_indices_are_dense_and_ordered() {
        for (i, loc) in ServeLoc::ALL.iter().enumerate() {
            assert_eq!(loc.idx(), i);
        }
        // idx order must agree with the derived Ord (report order).
        let mut sorted = ServeLoc::ALL;
        sorted.sort();
        assert_eq!(sorted, ServeLoc::ALL);
    }

    #[test]
    fn serve_loc_memory_classification() {
        assert!(ServeLoc::LocalDram.is_memory());
        assert!(ServeLoc::CxlDram.is_memory());
        assert!(!ServeLoc::LocalLlc.is_memory());
        assert!(!ServeLoc::L1d.is_memory());
    }
}
