//! The `SimModule` stage abstraction and the stage-graph topology.
//!
//! The paper's Figure 1 is a multi-stage Clos network: every architectural
//! block a memory operation crosses — the cores with their SB/LFB/L1D/L2,
//! the CHA complex (LLC + SF + TOR), the IMC, the remote socket behind the
//! UPI link, and each CXL port (M2PCIe + FlexBus + device MC) — is an
//! independently instrumented stage. This module gives each of those
//! blocks one uniform face:
//!
//! * [`SimModule`] — the per-stage lifecycle: `tick` advances internal
//!   clocks to an epoch boundary, `drain` flushes coverage accumulators
//!   into the free-running PMU banks, `counters` names the registry
//!   counters the stage produces, and `occupancy` exposes a backlog gauge.
//! * [`StageId`] — a totally ordered identity. The scheduler drains stages
//!   in ascending `StageId` order, which pins the epoch-boundary flush
//!   sequence and keeps counter streams bit-reproducible.
//! * [`Topology`] — the stage graph itself: the stage list plus the
//!   directed request-path edges between stages. `Machine::run_epoch` is a
//!   traversal of this graph rather than hand-wired glue, and new
//!   topologies (multi-socket, multi-headed CXL pools) are additional
//!   [`Topology`] constructors, not scheduler rewrites.
//!
//! Every `impl SimModule` must route its [`SimModule::counters`] list
//! through [`registered`], which (in debug builds) cross-checks each name
//! against `pmu::registry` — enforced statically by pflint's
//! `module-counter-registration` rule.

use crate::config::MachineConfig;
use crate::invariants::Invariants;
use pmu::SystemPmu;

/// Which kind of architectural stage a module is. The discriminant order
/// is the drain order within an epoch boundary (cores first, then the
/// shared uncore in request-path order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// A core pipeline: SB + LFB + L1D + L2 + private prefetchers.
    Core = 0,
    /// The CHA complex: LLC slices, snoop filter, TOR.
    Cha = 1,
    /// The local integrated memory controller (RPQ/WPQ per channel).
    Imc = 2,
    /// The remote socket's memory path behind the UPI link.
    Remote = 3,
    /// One CXL port: M2PCIe bridge + FlexBus link + Type-3 device.
    CxlPort = 4,
    /// One upstream port of the fabric's CXL switch (index = port = host).
    /// Index 0 doubles as the shared downstream link for fault targeting.
    Switch = 5,
    /// The pooled Type-3 device shared by every host of the fabric.
    PooledDev = 6,
}

impl StageKind {
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Core => "core",
            StageKind::Cha => "cha",
            StageKind::Imc => "imc",
            StageKind::Remote => "remote",
            StageKind::CxlPort => "cxl",
            StageKind::Switch => "cxlsw",
            StageKind::PooledDev => "cxlpool",
        }
    }
}

/// Totally ordered stage identity: `(kind, instance)`. Ordering is
/// lexicographic, so all cores sort before the CHA, the CHA before the
/// IMC, and so on — the deterministic drain order of the epoch scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StageId {
    pub kind: StageKind,
    pub index: u16,
}

impl StageId {
    pub fn new(kind: StageKind, index: u16) -> StageId {
        StageId { kind, index }
    }

    pub fn core(i: usize) -> StageId {
        StageId::new(StageKind::Core, i as u16)
    }

    pub fn cha() -> StageId {
        StageId::new(StageKind::Cha, 0)
    }

    pub fn imc() -> StageId {
        StageId::new(StageKind::Imc, 0)
    }

    pub fn remote() -> StageId {
        StageId::new(StageKind::Remote, 0)
    }

    pub fn cxl(d: usize) -> StageId {
        StageId::new(StageKind::CxlPort, d as u16)
    }

    /// Upstream port `p` of the fabric switch (one port per host).
    pub fn switch_port(p: usize) -> StageId {
        StageId::new(StageKind::Switch, p as u16)
    }

    /// The pooled Type-3 device stage of a fabric topology.
    pub fn pool() -> StageId {
        StageId::new(StageKind::PooledDev, 0)
    }
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.kind.label(), self.index)
    }
}

/// One independently instrumented stage of the simulated machine.
///
/// The scheduler talks to every architectural block through this trait at
/// epoch boundaries; the intra-epoch demand walk stays on the typed module
/// APIs (see `datapath.rs`), because a load crosses several stages within
/// one borrow of the machine.
pub trait SimModule: Invariants {
    /// The stage's position in the drain order (unique per machine).
    fn stage_id(&self) -> StageId;

    /// Static name for obs spans and diagnostics (`module.core`, …).
    fn name(&self) -> &'static str;

    /// Advance internal clocks to the epoch boundary `until` and retire
    /// whatever completed. Must be idempotent for the same `until`.
    fn tick(&mut self, until: u64);

    /// Flush coverage/full accumulators into the stage's free-running PMU
    /// banks. Each stage knows its own bank(s) inside `pmu`.
    fn drain(&mut self, pmu: &mut SystemPmu, epoch_cycles: u64);

    /// Registry names of the counters this stage produces, routed through
    /// [`registered`] (pflint: `module-counter-registration`).
    fn counters(&self) -> &'static [&'static str];

    /// Backlog gauge at `now`: queued entries (or backlog cycles for pure
    /// FIFO-server stages). A scheduler-visible congestion signal; not a
    /// PMU counter.
    fn occupancy(&self, now: u64) -> u64;

    /// The next tick at which this stage makes self-driven progress, or
    /// `None` if it only ever reacts to requests pushed into it. The
    /// event-wheel scheduler keys each stage on this: a `None` stage is
    /// never polled — it advances for free inside `tick`/`drain` at the
    /// boundary — while a `Some(t)` stage is woken exactly at `t`.
    /// Cores (the only self-driven stages: they own the trace cursors)
    /// return their pipeline time; every uncore stage takes the default.
    fn next_event(&self) -> Option<u64> {
        None
    }
}

/// Mark a module's counter list as registered. Debug builds verify every
/// name against `pmu::registry::lookup`; release builds pass the list
/// through untouched. Every `impl SimModule` must call this from
/// `counters()` — pflint's `module-counter-registration` rule checks for
/// the call site textually, and the debug assertion checks the names
/// semantically.
pub fn registered(names: &'static [&'static str]) -> &'static [&'static str] {
    debug_assert!(
        names.iter().all(|n| pmu::registry::lookup(n).is_some()),
        "SimModule counter list contains a name unknown to pmu::registry: {:?}",
        names.iter().find(|n| pmu::registry::lookup(n).is_none())
    );
    names
}

/// A directed edge of the stage graph: requests flow `from → to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    pub from: StageId,
    pub to: StageId,
}

/// The stage graph of one machine configuration: every stage, plus the
/// request-path edges between them. `Machine` builds one at construction
/// and the epoch scheduler iterates `stages` for the boundary drain; the
/// edge list is the machine's self-description (topology tests, docs, and
/// future multi-socket layouts build on it).
#[derive(Clone, Debug)]
pub struct Topology {
    stages: Vec<StageId>,
    edges: Vec<Edge>,
}

impl Topology {
    /// The single-socket Clos topology of the paper's Figure 1: every core
    /// feeds the CHA over the mesh; the CHA fans out to the IMC, the
    /// remote socket, and every CXL port.
    pub fn clos(cfg: &MachineConfig) -> Topology {
        let mut stages: Vec<StageId> = (0..cfg.cores).map(StageId::core).collect();
        stages.push(StageId::cha());
        stages.push(StageId::imc());
        stages.push(StageId::remote());
        stages.extend((0..cfg.cxl_devices).map(StageId::cxl));

        let mut edges: Vec<Edge> = (0..cfg.cores)
            .map(|c| Edge {
                from: StageId::core(c),
                to: StageId::cha(),
            })
            .collect();
        edges.push(Edge {
            from: StageId::cha(),
            to: StageId::imc(),
        });
        edges.push(Edge {
            from: StageId::cha(),
            to: StageId::remote(),
        });
        edges.extend((0..cfg.cxl_devices).map(|d| Edge {
            from: StageId::cha(),
            to: StageId::cxl(d),
        }));

        let t = Topology { stages, edges };
        debug_assert!(t.validate().is_ok(), "clos topology must validate");
        t
    }

    /// The multi-host fabric topology: `hosts` copies of the per-host Clos
    /// pipeline (stage indices offset by host so ids stay unique), each
    /// host's CXL ports feeding upstream port `h` of one shared switch,
    /// and every switch port feeding the pooled Type-3 device. With
    /// `hosts == 1` this is the degenerate single-host fabric whose
    /// machine-side stages are exactly [`Topology::clos`]'s.
    pub fn fabric(cfg: &MachineConfig, hosts: usize) -> Topology {
        let mut stages: Vec<StageId> = Vec::new();
        let mut edges: Vec<Edge> = Vec::new();
        for h in 0..hosts {
            let core0 = h * cfg.cores;
            stages.extend((0..cfg.cores).map(|c| StageId::core(core0 + c)));
        }
        for h in 0..hosts {
            stages.push(StageId::new(StageKind::Cha, h as u16));
        }
        for h in 0..hosts {
            stages.push(StageId::new(StageKind::Imc, h as u16));
        }
        for h in 0..hosts {
            stages.push(StageId::new(StageKind::Remote, h as u16));
        }
        for h in 0..hosts {
            let dev0 = h * cfg.cxl_devices;
            stages.extend((0..cfg.cxl_devices).map(|d| StageId::cxl(dev0 + d)));
        }
        stages.extend((0..hosts).map(StageId::switch_port));
        stages.push(StageId::pool());

        for h in 0..hosts {
            let cha = StageId::new(StageKind::Cha, h as u16);
            for c in 0..cfg.cores {
                edges.push(Edge {
                    from: StageId::core(h * cfg.cores + c),
                    to: cha,
                });
            }
            edges.push(Edge {
                from: cha,
                to: StageId::new(StageKind::Imc, h as u16),
            });
            edges.push(Edge {
                from: cha,
                to: StageId::new(StageKind::Remote, h as u16),
            });
            for d in 0..cfg.cxl_devices {
                let port = StageId::cxl(h * cfg.cxl_devices + d);
                edges.push(Edge {
                    from: cha,
                    to: port,
                });
                edges.push(Edge {
                    from: port,
                    to: StageId::switch_port(h),
                });
            }
            edges.push(Edge {
                from: StageId::switch_port(h),
                to: StageId::pool(),
            });
        }

        let t = Topology { stages, edges };
        debug_assert!(t.validate().is_ok(), "fabric topology must validate");
        t
    }

    /// All stages, in ascending [`StageId`] (= drain) order.
    pub fn stages(&self) -> &[StageId] {
        &self.stages
    }

    /// All request-path edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Downstream stages of `from`, in id order.
    pub fn successors(&self, from: StageId) -> Vec<StageId> {
        self.edges
            .iter()
            .filter(|e| e.from == from)
            .map(|e| e.to)
            .collect()
    }

    /// Structural checks: stages strictly ordered (no duplicates), every
    /// edge endpoint present, and every edge pointing strictly downstream
    /// (ascending `StageId`), which makes the graph trivially acyclic.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.stages.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("stages out of order: {} >= {}", w[0], w[1]));
            }
        }
        for e in &self.edges {
            if !self.stages.contains(&e.from) {
                return Err(format!("edge source {} is not a stage", e.from));
            }
            if !self.stages.contains(&e.to) {
                return Err(format!("edge target {} is not a stage", e.to));
            }
            if e.from >= e.to {
                return Err(format!("edge {} -> {} is not downstream", e.from, e.to));
            }
        }
        Ok(())
    }

    /// Render the graph as `from -> to` lines (docs and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.edges {
            out.push_str(&format!("{} -> {}\n", e.from, e.to));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ids_order_cores_before_uncore() {
        assert!(StageId::core(63) < StageId::cha());
        assert!(StageId::cha() < StageId::imc());
        assert!(StageId::imc() < StageId::remote());
        assert!(StageId::remote() < StageId::cxl(0));
        assert!(StageId::cxl(0) < StageId::cxl(1));
        assert!(StageId::core(0) < StageId::core(1));
        assert!(StageId::cxl(7) < StageId::switch_port(0));
        assert!(StageId::switch_port(0) < StageId::switch_port(1));
        assert!(StageId::switch_port(63) < StageId::pool());
    }

    #[test]
    fn fabric_topology_routes_every_host_through_the_switch_to_the_pool() {
        let cfg = MachineConfig::tiny();
        let hosts = 3;
        let t = Topology::fabric(&cfg, hosts);
        assert!(t.validate().is_ok());
        assert_eq!(
            t.stages().len(),
            hosts * (cfg.cores + 3 + cfg.cxl_devices) + hosts + 1
        );
        for h in 0..hosts {
            for d in 0..cfg.cxl_devices {
                let port = StageId::cxl(h * cfg.cxl_devices + d);
                assert_eq!(t.successors(port), vec![StageId::switch_port(h)]);
            }
            assert_eq!(t.successors(StageId::switch_port(h)), vec![StageId::pool()]);
        }
        assert!(t.successors(StageId::pool()).is_empty());
    }

    #[test]
    fn single_host_fabric_keeps_the_clos_machine_stages() {
        let cfg = MachineConfig::tiny();
        let clos = Topology::clos(&cfg);
        let fabric = Topology::fabric(&cfg, 1);
        // The machine-side prefix of the 1-host fabric is exactly the clos
        // stage list; only the switch port and pool are appended.
        assert_eq!(&fabric.stages()[..clos.stages().len()], clos.stages());
        assert_eq!(
            &fabric.stages()[clos.stages().len()..],
            &[StageId::switch_port(0), StageId::pool()]
        );
    }

    #[test]
    fn clos_topology_validates_and_fans_out() {
        let cfg = MachineConfig::tiny();
        let t = Topology::clos(&cfg);
        assert!(t.validate().is_ok());
        assert_eq!(t.stages().len(), cfg.cores + 3 + cfg.cxl_devices);
        // Every core feeds the CHA.
        for c in 0..cfg.cores {
            assert_eq!(t.successors(StageId::core(c)), vec![StageId::cha()]);
        }
        // The CHA fans out to IMC, remote, and every CXL port.
        let down = t.successors(StageId::cha());
        assert!(down.contains(&StageId::imc()));
        assert!(down.contains(&StageId::remote()));
        for d in 0..cfg.cxl_devices {
            assert!(down.contains(&StageId::cxl(d)));
        }
    }

    #[test]
    fn invalid_topologies_are_rejected() {
        let upstream = Topology {
            stages: vec![StageId::core(0), StageId::cha()],
            edges: vec![Edge {
                from: StageId::cha(),
                to: StageId::core(0),
            }],
        };
        assert!(upstream.validate().is_err());

        let dup = Topology {
            stages: vec![StageId::cha(), StageId::cha()],
            edges: vec![],
        };
        assert!(dup.validate().is_err());

        let dangling = Topology {
            stages: vec![StageId::core(0)],
            edges: vec![Edge {
                from: StageId::core(0),
                to: StageId::cha(),
            }],
        };
        assert!(dangling.validate().is_err());
    }

    #[test]
    fn registered_passes_known_names() {
        let names = registered(&["inst_retired.any", "unc_m_cas_count.rd"]);
        assert_eq!(names.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown to pmu::registry")]
    #[cfg(debug_assertions)]
    fn registered_rejects_unknown_names() {
        let _ = registered(&["not_a_counter.at_all"]);
    }
}
