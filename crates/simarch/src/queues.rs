//! Timing primitives: FIFO servers, occupancy coverage, bounded windows.
//!
//! These three small structures carry the whole timing model:
//!
//! * [`FifoServer`] — a work-conserving server with a fixed service latency
//!   and an issue gap (1/bandwidth). Queueing delay emerges from
//!   `start = max(arrival, next_free)`, which for deterministic service is
//!   exactly a G/D/1 queue.
//! * [`Coverage`] — a union-of-intervals accumulator that turns per-request
//!   residency intervals into "cycles the queue was non-empty" counters
//!   (`unc_m_rpq_cycles_ne`, `unc_m2p_rxc_cycles_ne`,
//!   `unc_cxlcm_rxc_pack_buf_ne.*`, TOR threshold1).
//! * [`BoundedWindow`] — a finite set of in-flight entries (SB, LFB, super
//!   queue). When full, the next acquisition blocks until the earliest
//!   in-flight entry completes; the blocked cycles are the PMU's
//!   `resource_stalls.sb` / `l1d_pend_miss.fb_full` stalls.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::invariant;
use crate::invariants::{Invariants, Violation};

/// A FIFO server with deterministic service time and issue gap.
#[derive(Clone, Debug, Default)]
pub struct FifoServer {
    next_free: u64,
    /// Total busy (serving) cycles — for utilisation accounting.
    busy: u64,
    /// Total queueing delay imposed on requests.
    queue_delay: u64,
    /// Requests served.
    served: u64,
}

/// The outcome of offering a request to a [`FifoServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Service {
    /// When the server began working on the request (≥ arrival).
    pub start: u64,
    /// When the response is ready.
    pub finish: u64,
}

impl Service {
    /// Queueing delay experienced before service began.
    pub fn wait(&self, arrival: u64) -> u64 {
        self.start - arrival
    }
}

impl FifoServer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a request arriving at `arrival`; the server occupies its issue
    /// slot for `gap` cycles and the response is ready after `service`
    /// cycles (`service >= gap` is typical: latency ≥ 1/bandwidth).
    pub fn serve(&mut self, arrival: u64, service: u64, gap: u64) -> Service {
        let start = arrival.max(self.next_free);
        self.next_free = start + gap;
        self.busy += gap;
        self.queue_delay += start - arrival;
        self.served += 1;
        Service {
            start,
            finish: start + service,
        }
    }

    /// The earliest cycle a new request could start service.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Push the issue horizon out to at least `cycle` without serving
    /// anything — a transient stall (fault injection, firmware pause). The
    /// blocked cycles surface as queueing delay on whatever arrives next;
    /// no busy time is charged because the server did no work.
    pub fn block_until(&mut self, cycle: u64) {
        self.next_free = self.next_free.max(cycle);
    }

    /// Total cycles spent serving (busy time).
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }

    /// Total queueing delay imposed so far.
    pub fn total_queue_delay(&self) -> u64 {
        self.queue_delay
    }

    /// Requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl Invariants for FifoServer {
    fn component(&self) -> &'static str {
        "queues::FifoServer"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        // Work conservation: the server cannot have been busy for longer
        // than its issue horizon (idle gaps only push next_free further).
        invariant!(
            out,
            self.component(),
            self.busy <= self.next_free,
            "busy cycles exceed issue horizon: busy={} next_free={}",
            self.busy,
            self.next_free
        );
        // Nothing served ⇒ no busy time and no queueing delay charged.
        invariant!(
            out,
            self.component(),
            self.served > 0 || (self.busy == 0 && self.queue_delay == 0),
            "idle server accumulated work: busy={} queue_delay={}",
            self.busy,
            self.queue_delay
        );
    }
}

/// Union-of-intervals accumulator.
///
/// Exact when intervals are added in non-decreasing start order (the
/// simulator's per-resource residency intervals are); degrades gracefully
/// (never over-counts) otherwise.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    covered: u64,
    covered_until: u64,
}

impl Coverage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the half-open interval `[start, end)`.
    pub fn add(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        if start >= self.covered_until {
            self.covered += end - start;
            self.covered_until = end;
        } else if end > self.covered_until {
            self.covered += end - self.covered_until;
            self.covered_until = end;
        }
    }

    /// Total covered cycles.
    pub fn total(&self) -> u64 {
        self.covered
    }

    /// Covered cycles accumulated and reset baseline — used when the PMU is
    /// read as a free-running counter (it is; we only ever add).
    pub fn high_water(&self) -> u64 {
        self.covered_until
    }
}

impl Invariants for Coverage {
    fn component(&self) -> &'static str {
        "queues::Coverage"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        // A union of intervals inside [0, covered_until) can never cover
        // more than covered_until cycles.
        invariant!(
            out,
            self.component(),
            self.covered <= self.covered_until,
            "covered cycles exceed high water: covered={} until={}",
            self.covered,
            self.covered_until
        );
    }
}

/// A finite window of in-flight entries keyed by completion cycle.
#[derive(Clone, Debug)]
pub struct BoundedWindow {
    capacity: usize,
    inflight: BinaryHeap<Reverse<u64>>,
    /// Entries admitted (committed) over the window's lifetime.
    committed: u64,
    /// Entries retired (completed and dropped) over the window's lifetime.
    retired: u64,
}

/// Result of acquiring a window slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// When the slot became available (≥ request time).
    pub at: u64,
    /// Cycles the requester was blocked waiting for a slot.
    pub blocked: u64,
}

impl BoundedWindow {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        BoundedWindow {
            capacity,
            inflight: BinaryHeap::new(),
            committed: 0,
            retired: 0,
        }
    }

    /// Drop entries that completed at or before `now`.
    fn retire(&mut self, now: u64) {
        while let Some(&Reverse(f)) = self.inflight.peek() {
            if f <= now {
                self.inflight.pop();
                self.retired += 1;
            } else {
                break;
            }
        }
    }

    /// Acquire a slot at `now`, blocking (in simulated time) until one frees
    /// if the window is full. The caller must follow up with
    /// [`Self::commit`] once it knows the entry's completion cycle.
    pub fn acquire(&mut self, now: u64) -> Admission {
        self.retire(now);
        if self.inflight.len() < self.capacity {
            return Admission {
                at: now,
                blocked: 0,
            };
        }
        // Window full: wait for the earliest completion.
        let Reverse(earliest) = self.inflight.pop().expect("full window is non-empty");
        self.retired += 1;
        debug_assert!(earliest > now);
        Admission {
            at: earliest,
            blocked: earliest - now,
        }
    }

    /// Register the completion time of the entry admitted by the last
    /// [`Self::acquire`].
    pub fn commit(&mut self, finish: u64) {
        self.committed += 1;
        self.inflight.push(Reverse(finish));
    }

    /// Entries still in flight at `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.retire(now);
        self.inflight.len()
    }

    /// Entries still in flight at `now`, without retiring completed ones —
    /// a read-only gauge for `SimModule::occupancy`.
    pub fn occupancy_at(&self, now: u64) -> usize {
        self.inflight.iter().filter(|Reverse(f)| *f > now).count()
    }

    /// The earliest in-flight completion, if any.
    pub fn earliest(&self) -> Option<u64> {
        self.inflight.peek().map(|Reverse(f)| *f)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries admitted over the window's lifetime.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Entries retired over the window's lifetime.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl Invariants for BoundedWindow {
    fn component(&self) -> &'static str {
        "queues::BoundedWindow"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        // Flow conservation: every entry ever committed is either retired
        // or still in flight — the window neither creates nor loses them.
        invariant!(
            out,
            self.component(),
            self.committed == self.retired + self.inflight.len() as u64,
            "flow not conserved: committed={} retired={} in_flight={}",
            self.committed,
            self.retired,
            self.inflight.len()
        );
        // The finite window can never hold more than its capacity.
        invariant!(
            out,
            self.component(),
            self.inflight.len() <= self.capacity,
            "occupancy exceeds capacity: in_flight={} capacity={}",
            self.inflight.len(),
            self.capacity
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = FifoServer::new();
        let r = s.serve(100, 50, 10);
        assert_eq!(
            r,
            Service {
                start: 100,
                finish: 150
            }
        );
        assert_eq!(r.wait(100), 0);
    }

    #[test]
    fn back_to_back_requests_queue_at_gap_rate() {
        let mut s = FifoServer::new();
        let a = s.serve(0, 50, 10);
        let b = s.serve(0, 50, 10);
        let c = s.serve(0, 50, 10);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 10);
        assert_eq!(c.start, 20);
        assert_eq!(c.wait(0), 20);
        assert_eq!(s.total_queue_delay(), 30);
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn server_goes_idle_between_sparse_arrivals() {
        let mut s = FifoServer::new();
        s.serve(0, 50, 10);
        let b = s.serve(1000, 50, 10);
        assert_eq!(b.start, 1000);
        assert_eq!(s.busy_cycles(), 20);
    }

    #[test]
    fn block_until_stalls_later_arrivals_without_busy_time() {
        let mut s = FifoServer::new();
        s.serve(0, 50, 10);
        s.block_until(500);
        // The stall is pure queueing delay: no busy cycles were added and
        // the next request waits for the horizon.
        assert_eq!(s.busy_cycles(), 10);
        let r = s.serve(100, 50, 10);
        assert_eq!(r.start, 500);
        assert_eq!(r.wait(100), 400);
        // A horizon already past `cycle` is left alone.
        s.block_until(200);
        assert_eq!(s.next_free(), 510);
    }

    #[test]
    fn coverage_merges_overlaps() {
        let mut c = Coverage::new();
        c.add(0, 10);
        c.add(5, 15); // overlap: adds 5
        c.add(20, 30); // gap: adds 10
        c.add(25, 27); // fully inside: adds 0
        assert_eq!(c.total(), 25);
    }

    #[test]
    fn coverage_ignores_empty_intervals() {
        let mut c = Coverage::new();
        c.add(10, 10);
        c.add(10, 5);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn window_blocks_when_full() {
        let mut w = BoundedWindow::new(2);
        let a = w.acquire(0);
        assert_eq!(a, Admission { at: 0, blocked: 0 });
        w.commit(100);
        let b = w.acquire(0);
        assert_eq!(b.blocked, 0);
        w.commit(200);
        // Full now; next acquire at t=10 must wait for the t=100 completion.
        let c = w.acquire(10);
        assert_eq!(
            c,
            Admission {
                at: 100,
                blocked: 90
            }
        );
        w.commit(300);
        assert_eq!(w.outstanding(150), 2); // 200 and 300 remain
    }

    #[test]
    fn window_retires_completed_entries() {
        let mut w = BoundedWindow::new(1);
        w.acquire(0);
        w.commit(50);
        // At t=60 the single slot is free again.
        let a = w.acquire(60);
        assert_eq!(a.blocked, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_window_rejected() {
        let _ = BoundedWindow::new(0);
    }

    // ---- backpressure edges (module-level, no Machine involved) ---------

    #[test]
    fn full_window_rejects_until_earliest_completion() {
        let mut w = BoundedWindow::new(3);
        for fin in [100, 200, 300] {
            let a = w.acquire(0);
            assert_eq!(a.blocked, 0);
            w.commit(fin);
        }
        // Full: each further acquire is pushed to the earliest completion,
        // in completion order, never earlier.
        let a = w.acquire(0);
        assert_eq!(
            a,
            Admission {
                at: 100,
                blocked: 100
            }
        );
        w.commit(400);
        let b = w.acquire(0);
        assert_eq!(
            b,
            Admission {
                at: 200,
                blocked: 200
            }
        );
        w.commit(500);
        let c = w.acquire(250);
        assert_eq!(
            c,
            Admission {
                at: 300,
                blocked: 50
            }
        );
    }

    #[test]
    fn window_drains_in_completion_order() {
        let mut w = BoundedWindow::new(4);
        // Commit out of order; the window must retire earliest-first.
        for fin in [400, 100, 300, 200] {
            w.acquire(0);
            w.commit(fin);
        }
        assert_eq!(w.earliest(), Some(100));
        assert_eq!(w.outstanding(150), 3);
        assert_eq!(w.earliest(), Some(200));
        assert_eq!(w.outstanding(350), 1);
        assert_eq!(w.earliest(), Some(400));
        assert_eq!(w.outstanding(400), 0);
        assert_eq!(w.retired(), w.committed());
    }

    #[test]
    fn window_credit_returns_exactly_one_slot_per_retirement() {
        let mut w = BoundedWindow::new(2);
        w.acquire(0);
        w.commit(100);
        w.acquire(0);
        w.commit(100);
        // Both entries retire at the same cycle; both credits come back, and
        // the two freed slots admit exactly two requests without blocking.
        let a = w.acquire(100);
        assert_eq!(a.blocked, 0);
        w.commit(250);
        let b = w.acquire(100);
        assert_eq!(b.blocked, 0);
        w.commit(250);
        // Third request finds no credit until t=250.
        let c = w.acquire(100);
        assert_eq!(
            c,
            Admission {
                at: 250,
                blocked: 150
            }
        );
    }

    #[test]
    fn occupancy_at_is_read_only() {
        let mut w = BoundedWindow::new(4);
        for fin in [100, 200, 300] {
            w.acquire(0);
            w.commit(fin);
        }
        assert_eq!(w.occupancy_at(0), 3);
        assert_eq!(w.occupancy_at(150), 2);
        assert_eq!(w.occupancy_at(300), 0);
        // The gauge retired nothing: a mutable query still sees all three.
        assert_eq!(w.outstanding(0), 3);
    }
}
