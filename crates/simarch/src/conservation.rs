//! Cross-PMU flit/command conservation checks.
//!
//! Counters that observe the same traffic from different points of the path
//! must agree: CAS splits, pending-queue inserts, M2PCIe ingress/egress,
//! and the CXL.mem read/write flows. `Machine`'s `Invariants` impl runs
//! these at every epoch boundary (debug builds and `--features invariants`).

use crate::invariant;
use crate::invariants::Violation;
use pmu::{CxlEvent, ImcEvent, M2pEvent, SystemPmu};

pub(crate) fn pmu_conservation(pmu: &SystemPmu, out: &mut Vec<Violation>) {
    const C: &str = "machine::Machine(pmu)";
    for (ch, bank) in pmu.imcs.iter().enumerate() {
        let rd = bank.read(ImcEvent::CasCountRd);
        let wr = bank.read(ImcEvent::CasCountWr);
        let all = bank.read(ImcEvent::CasCountAll);
        invariant!(
            out,
            C,
            rd + wr == all,
            "imc ch{ch}: cas rd({rd})+wr({wr}) != all({all})"
        );
        // Every CAS entered through the matching pending queue.
        let rpq = bank.read(ImcEvent::RpqInserts);
        let wpq = bank.read(ImcEvent::WpqInserts);
        invariant!(
            out,
            C,
            rpq == rd,
            "imc ch{ch}: rpq inserts({rpq}) != rd cas({rd})"
        );
        invariant!(
            out,
            C,
            wpq == wr,
            "imc ch{ch}: wpq inserts({wpq}) != wr cas({wr})"
        );
    }
    for (d, m2p) in pmu.m2ps.iter().enumerate() {
        // Each CXL.mem transaction inserts one M2PCIe ingress entry and
        // exactly one egress entry: BL data for loads, AK for stores.
        let rx = m2p.read(M2pEvent::RxcInserts);
        let bl = m2p.read(M2pEvent::TxcInsertsBl);
        let ak = m2p.read(M2pEvent::TxcInsertsAk);
        invariant!(
            out,
            C,
            rx == bl + ak,
            "m2p {d}: ingress({rx}) != bl({bl})+ak({ak})"
        );
    }
    for (d, dev) in pmu.cxls.iter().enumerate() {
        // M2S Req → read CAS → S2M DRS; M2S RwD → write CAS → S2M NDR.
        let req_in = dev.read(CxlEvent::RxcPackBufInsertsMemReq);
        let rd_cas = dev.read(CxlEvent::DevMcRdCas);
        let drs_out = dev.read(CxlEvent::TxcPackBufInsertsMemData);
        invariant!(
            out,
            C,
            req_in == rd_cas && rd_cas == drs_out,
            "cxl dev {d}: read flow not conserved: req({req_in}) cas({rd_cas}) drs({drs_out})"
        );
        let rwd_in = dev.read(CxlEvent::RxcPackBufInsertsMemData);
        let wr_cas = dev.read(CxlEvent::DevMcWrCas);
        let ndr_out = dev.read(CxlEvent::TxcPackBufInsertsMemReq);
        invariant!(
            out,
            C,
            rwd_in == wr_cas && wr_cas == ndr_out,
            "cxl dev {d}: write flow not conserved: rwd({rwd_in}) cas({wr_cas}) ndr({ndr_out})"
        );
    }
}
