//! Cross-PMU flit/command conservation checks.
//!
//! Counters that observe the same traffic from different points of the path
//! must agree: CAS splits, pending-queue inserts, M2PCIe ingress/egress,
//! and the CXL.mem read/write flows. `Machine`'s `Invariants` impl runs
//! these at every epoch boundary (debug builds and `--features invariants`).
//! In a multi-host fabric each machine audits its own banks with its host
//! identity in the message, and [`fabric_conservation`] additionally audits
//! the switch→pool flow balance per upstream port.

use crate::invariant;
use crate::invariants::Violation;
use crate::request::HostId;
use pmu::{CxlEvent, ImcEvent, M2pEvent, PoolEvent, SwitchEvent, SystemPmu};

pub(crate) fn pmu_conservation(host: HostId, pmu: &SystemPmu, out: &mut Vec<Violation>) {
    const C: &str = "machine::Machine(pmu)";
    for (ch, bank) in pmu.imcs.iter().enumerate() {
        let rd = bank.read(ImcEvent::CasCountRd);
        let wr = bank.read(ImcEvent::CasCountWr);
        let all = bank.read(ImcEvent::CasCountAll);
        invariant!(
            out,
            C,
            rd + wr == all,
            "{host} imc ch{ch}: cas rd({rd})+wr({wr}) != all({all})"
        );
        // Every CAS entered through the matching pending queue.
        let rpq = bank.read(ImcEvent::RpqInserts);
        let wpq = bank.read(ImcEvent::WpqInserts);
        invariant!(
            out,
            C,
            rpq == rd,
            "{host} imc ch{ch}: rpq inserts({rpq}) != rd cas({rd})"
        );
        invariant!(
            out,
            C,
            wpq == wr,
            "{host} imc ch{ch}: wpq inserts({wpq}) != wr cas({wr})"
        );
    }
    for (d, m2p) in pmu.m2ps.iter().enumerate() {
        // Each CXL.mem transaction inserts one M2PCIe ingress entry and
        // exactly one egress entry: BL data for loads, AK for stores.
        let rx = m2p.read(M2pEvent::RxcInserts);
        let bl = m2p.read(M2pEvent::TxcInsertsBl);
        let ak = m2p.read(M2pEvent::TxcInsertsAk);
        invariant!(
            out,
            C,
            rx == bl + ak,
            "{host} m2p {d}: ingress({rx}) != bl({bl})+ak({ak})"
        );
    }
    for (d, dev) in pmu.cxls.iter().enumerate() {
        // M2S Req → read CAS → S2M DRS; M2S RwD → write CAS → S2M NDR.
        let req_in = dev.read(CxlEvent::RxcPackBufInsertsMemReq);
        let rd_cas = dev.read(CxlEvent::DevMcRdCas);
        let drs_out = dev.read(CxlEvent::TxcPackBufInsertsMemData);
        invariant!(
            out,
            C,
            req_in == rd_cas && rd_cas == drs_out,
            "{host} cxl dev {d}: read flow not conserved: req({req_in}) cas({rd_cas}) drs({drs_out})"
        );
        let rwd_in = dev.read(CxlEvent::RxcPackBufInsertsMemData);
        let wr_cas = dev.read(CxlEvent::DevMcWrCas);
        let ndr_out = dev.read(CxlEvent::TxcPackBufInsertsMemReq);
        invariant!(
            out,
            C,
            rwd_in == wr_cas && wr_cas == ndr_out,
            "{host} cxl dev {d}: write flow not conserved: rwd({rwd_in}) cas({wr_cas}) ndr({ndr_out})"
        );
    }
}

/// Fabric-level flow balance: every request inserted at an upstream switch
/// port must be granted onto the shared link, and every grant must land as
/// exactly one CAS in that host's pooled-device accounting. Runs against
/// the fabric PMU (`SystemPmu::fabric`), where port index == host index;
/// `Fabric`'s `Invariants` impl is the caller, exercised at every epoch
/// boundary under `debug_assertions` or the `invariants` feature.
pub(crate) fn fabric_conservation(pmu: &SystemPmu, out: &mut Vec<Violation>) {
    const C: &str = "fabric::Fabric(pmu)";
    invariant!(
        out,
        C,
        pmu.switches.len() == pmu.pools.len(),
        "fabric banks misshapen: {} switch ports vs {} pool hosts",
        pmu.switches.len(),
        pmu.pools.len()
    );
    for (h, (sw, pool)) in pmu.switches.iter().zip(pmu.pools.iter()).enumerate() {
        let inserts = sw.read(SwitchEvent::IngressInserts);
        let grants = sw.read(SwitchEvent::ArbGrants);
        invariant!(
            out,
            C,
            inserts == grants,
            "switch port {h}: ingress({inserts}) != grants({grants})"
        );
        let rd = pool.read(PoolEvent::McRdCas);
        let wr = pool.read(PoolEvent::McWrCas);
        invariant!(
            out,
            C,
            grants == rd + wr,
            "host {h}: grants({grants}) != pool cas rd({rd})+wr({wr})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_conservation_passes_on_balanced_counters() {
        let mut pmu = SystemPmu::fabric(2);
        for h in 0..2 {
            pmu.switches[h].add(SwitchEvent::IngressInserts, 10);
            pmu.switches[h].add(SwitchEvent::ArbGrants, 10);
            pmu.pools[h].add(PoolEvent::McRdCas, 7);
            pmu.pools[h].add(PoolEvent::McWrCas, 3);
        }
        let mut out = Vec::new();
        fabric_conservation(&pmu, &mut out);
        assert!(out.is_empty(), "unexpected violations: {out:?}");
    }

    #[test]
    fn fabric_conservation_flags_dropped_grants() {
        let mut pmu = SystemPmu::fabric(1);
        pmu.switches[0].add(SwitchEvent::IngressInserts, 10);
        pmu.switches[0].add(SwitchEvent::ArbGrants, 9);
        pmu.pools[0].add(PoolEvent::McRdCas, 9);
        let mut out = Vec::new();
        fabric_conservation(&pmu, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].detail.contains("ingress(10) != grants(9)"));
    }

    #[test]
    fn machine_conservation_labels_the_host() {
        let mut pmu = SystemPmu::new(1, 1, 1, 1, 1);
        pmu.imcs[0].add(ImcEvent::CasCountRd, 5);
        // CasCountAll left at 0: rd+wr != all must fire with the host label.
        let mut out = Vec::new();
        pmu_conservation(HostId(3), &pmu, &mut out);
        assert!(
            out.iter().any(|v| v.detail.starts_with("host3 ")),
            "violations must carry the host label: {out:?}"
        );
    }
}
