//! The Caching-and-Home-Agent complex: LLC slices, snoop filter, TOR.
//!
//! Each CHA pairs one LLC slice with a slice of the coherence directory
//! (snoop filter) and the Table-of-Requests (TOR), the request queue whose
//! insert/occupancy counters PFBuilder and PFAnalyzer consume (paper §4.3:
//! "we find a special hardware module — called TOR — which records the
//! core-CHA mapping for different types of requests").
//!
//! Sub-NUMA clustering: slices are split into two clusters; a request from a
//! core in the other cluster pays `snc_latency` and is reported as an
//! SNC-distant hit, which is how the paper's `snc LLC` rows arise.

use crate::cache::{Eviction, LineState, SetAssocCache};
use crate::config::MachineConfig;
use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::mem::{slice_of, MemNode};
use crate::queues::{Coverage, FifoServer};
use crate::request::ServeLoc;
use pmu::{Bank, ChaEvent, IaScen, PathClass, TorDrdScen, TorRfoScen, WbScen};

/// TOR request families (the counter groupings of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TorClass {
    Drd,
    DrdPref,
    Rfo,
    RfoPref,
    Wb,
}

impl TorClass {
    pub const COUNT: usize = 5;

    pub fn idx(self) -> usize {
        match self {
            TorClass::Drd => 0,
            TorClass::DrdPref => 1,
            TorClass::Rfo => 2,
            TorClass::RfoPref => 3,
            TorClass::Wb => 4,
        }
    }

    /// TOR family for an architectural path class. SW and HW prefetches land
    /// in the `_pref` families (Table 5); demand writes appear as
    /// write-backs.
    pub fn of_path(path: PathClass) -> TorClass {
        match path {
            PathClass::Drd => TorClass::Drd,
            PathClass::SwPf | PathClass::HwPfL1 | PathClass::HwPfL2Drd => TorClass::DrdPref,
            PathClass::Rfo => TorClass::Rfo,
            PathClass::HwPfL2Rfo => TorClass::RfoPref,
            PathClass::Dwr => TorClass::Wb,
        }
    }
}

/// The outcome of a CHA lookup, before any memory access.
#[derive(Clone, Copy, Debug)]
pub enum ChaOutcome {
    /// Served by the LLC slice.
    LlcHit {
        /// Data available at the CHA at this cycle (mesh-back not included).
        finish: u64,
        /// True if the slice is in the requester's other SNC cluster.
        snc_distant: bool,
    },
    /// The snoop filter says peer core(s) may hold the line: the machine
    /// must probe those private caches.
    PeerProbe {
        /// Bitmask of candidate cores.
        owners: u64,
        /// Directory believes the line is modified somewhere.
        dirty: bool,
        /// Cycle at which the probe (snoop) responses are in.
        finish: u64,
        snc_distant: bool,
    },
    /// True LLC + SF miss: go to memory. `depart` is when the request leaves
    /// the CHA toward the IMC or M2PCIe.
    Miss { depart: u64, snc_distant: bool },
}

#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    owners: u64,
    dirty: bool,
}

/// The snoop filter: a capacity-bounded coherence directory over all
/// private-cache lines in the socket.
///
/// The directory is an open-addressed [`LineMap`] rather than the seed's
/// BTreeMap: every probe/record/clear is keyed by line, and victim
/// selection reads only the FIFO `order` queue — never map iteration
/// order — so the swap is invisible to the counter stream while removing
/// a per-miss tree allocation (`record` was 6% of profiled time).
#[derive(Debug, Default)]
pub struct SnoopFilter {
    entries: crate::arena::LineMap<DirEntry>,
    /// FIFO victimisation order; may lag `entries` with stale keys that
    /// are skipped lazily at overflow time.
    order: std::collections::VecDeque<u64>,
    capacity: usize,
}

impl SnoopFilter {
    pub fn new(capacity: usize) -> Self {
        SnoopFilter {
            entries: crate::arena::LineMap::new(),
            order: std::collections::VecDeque::new(),
            capacity: capacity.max(16),
        }
    }

    /// Record that `core` now holds `line`. Returns a victim line whose
    /// owners must be back-invalidated if the directory overflowed.
    // pflint::hot
    pub fn record(&mut self, line: u64, core: usize, dirty: bool) -> Option<(u64, u64)> {
        if let Some(e) = self.entries.get_mut(line) {
            e.owners |= 1 << core;
            e.dirty |= dirty;
            return None;
        }
        self.entries.insert(
            line,
            DirEntry {
                owners: 1 << core,
                dirty,
            },
        );
        self.order.push_back(line);
        if self.entries.len() > self.capacity {
            // FIFO victimisation; skip stale order entries.
            while let Some(victim) = self.order.pop_front() {
                if victim == line {
                    self.order.push_back(victim);
                    continue;
                }
                if let Some(e) = self.entries.remove(victim) {
                    return Some((victim, e.owners));
                }
            }
        }
        None
    }

    /// Look the line up without modifying it.
    // pflint::hot
    pub fn probe(&self, line: u64) -> Option<(u64, bool)> {
        self.entries.get(line).map(|e| (e.owners, e.dirty))
    }

    /// Drop `core` from the owner set (eviction/invalidation upstream).
    // pflint::hot
    pub fn clear(&mut self, line: u64, core: usize) {
        if let Some(e) = self.entries.get_mut(line) {
            e.owners &= !(1 << core);
            if e.owners == 0 {
                self.entries.remove(line);
            }
        }
    }

    /// Remove the whole entry (line left all private caches).
    pub fn drop_line(&mut self, line: u64) {
        self.entries.remove(line);
    }

    /// Mark the line dirty (a core wrote it).
    pub fn mark_dirty(&mut self, line: u64) {
        if let Some(e) = self.entries.get_mut(line) {
            e.dirty = true;
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Invariants for SnoopFilter {
    fn component(&self) -> &'static str {
        "cha::SnoopFilter"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        // Capacity bound: record() victimises before returning, so the
        // directory never rests above its capacity.
        invariant!(
            out,
            self.component(),
            self.entries.len() <= self.capacity,
            "directory overflow: entries={} capacity={}",
            self.entries.len(),
            self.capacity
        );
        // Ownership conservation: an entry with no owners must have been
        // removed (clear() drops empties eagerly).
        let mut ownerless = false;
        self.entries.for_each(|_, e| ownerless |= e.owners == 0);
        invariant!(
            out,
            self.component(),
            !ownerless,
            "ownerless directory entries present"
        );
        // The FIFO order queue tracks at least every live entry (it may
        // additionally hold stale keys awaiting lazy cleanup).
        invariant!(
            out,
            self.component(),
            self.order.len() >= self.entries.len(),
            "order queue lost entries: order={} entries={}",
            self.order.len(),
            self.entries.len()
        );
    }
}

struct Slice {
    llc: SetAssocCache,
    port: FifoServer,
}

/// All CHAs of one socket, plus the socket-scope counter plumbing.
pub struct ChaComplex {
    slices: Vec<Slice>,
    pub sf: SnoopFilter,
    n_cores: usize,
    tag_latency: u64,
    hit_latency: u64,
    mesh_latency: u64,
    snc_latency: u64,
    /// Per-TOR-class non-empty coverage (threshold1 counters).
    tor_ne: Vec<Coverage>,
    synced_tor_ne: Vec<u64>,
}

impl ChaComplex {
    pub fn new(cfg: &MachineConfig) -> Self {
        let per_slice = cfg.llc.size_bytes / cfg.llc_slices;
        // SF sized to cover all private caches with 1.5x slack, as on real
        // parts; undersizing causes back-invalidations (SfEviction).
        let private_lines =
            cfg.cores * (cfg.l1d.size_bytes + cfg.l2.size_bytes) / crate::mem::CACHELINE;
        ChaComplex {
            slices: (0..cfg.llc_slices)
                .map(|_| Slice {
                    llc: SetAssocCache::new(per_slice, cfg.llc.ways),
                    port: FifoServer::new(),
                })
                .collect(),
            sf: SnoopFilter::new(private_lines * 3 / 2),
            n_cores: cfg.cores,
            tag_latency: cfg.llc.tag_latency,
            hit_latency: cfg.llc.hit_latency,
            mesh_latency: cfg.mesh_latency,
            snc_latency: cfg.snc_latency,
            tor_ne: (0..TorClass::COUNT).map(|_| Coverage::new()).collect(),
            synced_tor_ne: vec![0; TorClass::COUNT],
        }
    }

    pub fn n_slices(&self) -> usize {
        self.slices.len()
    }

    /// Stall every slice port until `until` (fault injection: a transient
    /// uncore queue stall). Pure timing — see `FifoServer::block_until`.
    pub(crate) fn stall_slices(&mut self, until: u64) {
        for s in &mut self.slices {
            s.port.block_until(until);
        }
    }

    fn cluster_of_core(&self, core: usize) -> usize {
        usize::from(core >= self.n_cores.div_ceil(2))
    }

    fn cluster_of_slice(&self, slice: usize) -> usize {
        usize::from(slice >= self.slices.len().div_ceil(2))
    }

    /// Look up a read-like request (DRd / RFO / prefetch) arriving at the
    /// CHA at `arrive` (mesh hop already paid by the caller).
    pub fn lookup(
        &mut self,
        core: usize,
        line: u64,
        rfo: bool,
        arrive: u64,
        bank: &mut Bank<ChaEvent>,
    ) -> ChaOutcome {
        let s = slice_of(line, self.slices.len());
        let snc_distant = self.cluster_of_core(core) != self.cluster_of_slice(s);
        let snc_extra = if snc_distant { self.snc_latency } else { 0 };
        let slice = &mut self.slices[s];
        let svc = slice.port.serve(arrive + snc_extra, self.tag_latency, 2);
        let t = svc.finish;
        if let Some(l) = slice.llc.lookup(line) {
            let ready = l.ready_at.max(t);
            l.prefetched = false;
            if rfo {
                l.state = LineState::Modified;
            }
            bank.inc(ChaEvent::LlcLookupHit);
            let owners_to_invalidate = if rfo {
                self.sf.probe(line).map(|(o, _)| o)
            } else {
                None
            };
            if let Some(owners) = owners_to_invalidate {
                // Ownership transfer: peers must drop their copies; the
                // machine handles the actual private-cache invalidations via
                // the PeerProbe path only on LLC miss, so for an LLC hit we
                // invalidate eagerly through the directory.
                let _ = owners;
            }
            return ChaOutcome::LlcHit {
                finish: ready + (self.hit_latency - self.tag_latency),
                snc_distant,
            };
        }
        bank.inc(ChaEvent::LlcLookupMiss);
        // Snoop filter consultation.
        match self.sf.probe(line) {
            Some((owners, dirty)) if owners & !(1 << core) != 0 => {
                bank.inc(ChaEvent::SfHit);
                bank.inc(ChaEvent::SnoopLocalSent);
                let probe_done = t + 2 * self.mesh_latency + self.tag_latency;
                ChaOutcome::PeerProbe {
                    owners: owners & !(1 << core),
                    dirty,
                    finish: probe_done,
                    snc_distant,
                }
            }
            _ => {
                bank.inc(ChaEvent::SfMiss);
                ChaOutcome::Miss {
                    depart: t,
                    snc_distant,
                }
            }
        }
    }

    /// Install a line into the LLC after a fill from memory or a peer, and
    /// record the requester in the snoop filter. Returns (llc_eviction,
    /// sf_back_invalidation).
    pub fn fill(
        &mut self,
        core: usize,
        line: u64,
        state: LineState,
        ready_at: u64,
        prefetched: bool,
        bank: &mut Bank<ChaEvent>,
    ) -> (Option<Eviction>, Option<(u64, u64)>) {
        let s = slice_of(line, self.slices.len());
        let ev = self.slices[s].llc.insert(line, state, ready_at, prefetched);
        let dirty = state == LineState::Modified;
        let sf_victim = self.sf.record(line, core, dirty);
        if sf_victim.is_some() {
            bank.inc(ChaEvent::SfEviction);
        }
        (ev, sf_victim)
    }

    /// A write-back from a core's L2 (or an explicit flush) lands in the
    /// LLC. Returns the LLC eviction it displaced, if any — the caller must
    /// push a Modified victim to memory.
    pub fn writeback(
        &mut self,
        line: u64,
        dirty: bool,
        arrive: u64,
        bank: &mut Bank<ChaEvent>,
    ) -> (u64, Option<Eviction>) {
        let s = slice_of(line, self.slices.len());
        let svc = self.slices[s].port.serve(arrive, self.tag_latency, 2);
        let scen = if dirty { WbScen::MToI } else { WbScen::EfToI };
        bank.inc(ChaEvent::TorInsertsIaWb(scen));
        bank.add(ChaEvent::TorOccupancyIaWbMtoI, svc.finish - arrive);
        self.tor_ne[TorClass::Wb.idx()].add(arrive, svc.finish);
        let state = if dirty {
            LineState::Modified
        } else {
            LineState::Exclusive
        };
        let ev = self.slices[s].llc.insert(line, state, svc.finish, false);
        (svc.finish, ev)
    }

    /// Direct probe of the LLC without timing (tests / tiering heat checks).
    pub fn llc_contains(&self, line: u64) -> bool {
        let s = slice_of(line, self.slices.len());
        self.slices[s].llc.peek(line).is_some()
    }

    /// Drop a line from the LLC (used for inclusive back-invalidation).
    pub fn llc_invalidate(&mut self, line: u64) -> Option<LineState> {
        let s = slice_of(line, self.slices.len());
        self.slices[s].llc.invalidate(line)
    }

    /// Record TOR insert/occupancy/threshold counters for one completed
    /// read-like request. `loc` is where it was ultimately served; `finish`
    /// is when the TOR entry deallocated (data returned to the core side).
    pub fn account_tor(
        &mut self,
        bank: &mut Bank<ChaEvent>,
        path: PathClass,
        loc: ServeLoc,
        node: MemNode,
        arrive: u64,
        finish: u64,
    ) {
        let class = TorClass::of_path(path);
        let resid = finish.saturating_sub(arrive);
        self.tor_ne[class.idx()].add(arrive, finish);

        // .ia aggregate family (4 scenarios).
        let hit_llc = matches!(loc, ServeLoc::LocalLlc | ServeLoc::SncLlc);
        bank.inc(ChaEvent::TorInsertsIa(IaScen::Total));
        bank.add(ChaEvent::TorOccupancyIa(IaScen::Total), resid);
        if hit_llc {
            bank.inc(ChaEvent::TorInsertsIa(IaScen::HitLlc));
            bank.add(ChaEvent::TorOccupancyIa(IaScen::HitLlc), resid);
        } else {
            bank.inc(ChaEvent::TorInsertsIa(IaScen::MissLlc));
            bank.add(ChaEvent::TorOccupancyIa(IaScen::MissLlc), resid);
            if loc == ServeLoc::CxlDram {
                bank.inc(ChaEvent::TorInsertsIa(IaScen::MissCxl));
                bank.add(ChaEvent::TorOccupancyIa(IaScen::MissCxl), resid);
            }
        }

        // Per-class scenario loops, specialized so the class test runs once
        // per request instead of once per scenario and each arm constructs
        // its events directly (every `index()` folds to base + scen).
        // Threshold1 ≈ cycles the class had an entry; a per-request
        // residency add is an upper bound refined by the per-class coverage
        // at sync time for the Total scenario.
        match class {
            TorClass::Drd => {
                for &scen in drd_scens(loc, node) {
                    bank.inc(ChaEvent::TorInsertsIaDrd(scen));
                    bank.add(ChaEvent::TorOccupancyIaDrd(scen), resid);
                    if scen != TorDrdScen::Total {
                        bank.add(ChaEvent::TorThreshold1IaDrd(scen), resid);
                    }
                }
            }
            TorClass::DrdPref => {
                for &scen in drd_scens(loc, node) {
                    bank.inc(ChaEvent::TorInsertsIaDrdPref(scen));
                    bank.add(ChaEvent::TorOccupancyIaDrdPref(scen), resid);
                    if scen != TorDrdScen::Total {
                        bank.add(ChaEvent::TorThreshold1IaDrdPref(scen), resid);
                    }
                }
            }
            TorClass::Rfo => {
                for &scen in rfo_scens(loc, node) {
                    bank.inc(ChaEvent::TorInsertsIaRfo(scen));
                    bank.add(ChaEvent::TorOccupancyIaRfo(scen), resid);
                    if scen != TorRfoScen::Total {
                        bank.add(ChaEvent::TorThreshold1IaRfo(scen), resid);
                    }
                }
            }
            TorClass::RfoPref => {
                for &scen in rfo_scens(loc, node) {
                    bank.inc(ChaEvent::TorInsertsIaRfoPref(scen));
                    bank.add(ChaEvent::TorOccupancyIaRfoPref(scen), resid);
                    if scen != TorRfoScen::Total {
                        bank.add(ChaEvent::TorThreshold1IaRfoPref(scen), resid);
                    }
                }
            }
            TorClass::Wb => {}
        }
    }

    /// Epoch-boundary counter flush: clock ticks and per-class threshold1
    /// coverage (Total scenarios).
    // pflint::hot
    pub fn sync_counters(&mut self, bank: &mut Bank<ChaEvent>, epoch_cycles: u64) {
        bank.add(ChaEvent::ClockTicks, epoch_cycles);
        for class in [
            TorClass::Drd,
            TorClass::DrdPref,
            TorClass::Rfo,
            TorClass::RfoPref,
            TorClass::Wb,
        ] {
            let cov = self.tor_ne[class.idx()].total();
            let delta = cov - self.synced_tor_ne[class.idx()];
            self.synced_tor_ne[class.idx()] = cov;
            match class {
                TorClass::Drd => bank.add(ChaEvent::TorThreshold1IaDrd(TorDrdScen::Total), delta),
                TorClass::DrdPref => {
                    bank.add(ChaEvent::TorThreshold1IaDrdPref(TorDrdScen::Total), delta)
                }
                TorClass::Rfo => bank.add(ChaEvent::TorThreshold1IaRfo(TorRfoScen::Total), delta),
                TorClass::RfoPref => {
                    bank.add(ChaEvent::TorThreshold1IaRfoPref(TorRfoScen::Total), delta)
                }
                TorClass::Wb => bank.add(ChaEvent::TorThreshold1Ia(IaScen::Total), delta),
            }
        }
    }
}

impl crate::module::SimModule for ChaComplex {
    fn stage_id(&self) -> crate::module::StageId {
        crate::module::StageId::cha()
    }

    fn name(&self) -> &'static str {
        "module.cha"
    }

    // pflint::hot
    fn tick(&mut self, _until: u64) {}

    // pflint::hot
    fn drain(&mut self, pmu: &mut pmu::SystemPmu, epoch_cycles: u64) {
        self.sync_counters(&mut pmu.chas[0], epoch_cycles);
    }

    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&[
            "unc_cha_clockticks",
            "unc_cha_llc_lookup.hit",
            "unc_cha_llc_lookup.miss",
            "unc_cha_sf_lookup.hit",
            "unc_cha_sf_lookup.miss",
            "unc_cha_sf_eviction",
            "unc_cha_snoop_resp.hitm",
            "unc_cha_snoop_resp.hit",
            "unc_cha_snoop_resp.miss",
        ])
    }

    fn occupancy(&self, now: u64) -> u64 {
        self.slices
            .iter()
            .map(|s| s.port.next_free().saturating_sub(now))
            .sum()
    }
}

impl Invariants for ChaComplex {
    fn component(&self) -> &'static str {
        "cha::ChaComplex"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        for slice in &self.slices {
            slice.port.collect_violations(out);
        }
        self.sf.collect_violations(out);
        for (i, cov) in self.tor_ne.iter().enumerate() {
            cov.collect_violations(out);
            // The flushed TOR baseline can never run ahead of its coverage.
            invariant!(
                out,
                self.component(),
                self.synced_tor_ne[i] <= cov.total(),
                "TOR class {} synced baseline ahead of coverage: synced={} total={}",
                i,
                self.synced_tor_ne[i],
                cov.total()
            );
        }
    }
}

/// The TOR DRd scenarios a completed request contributes to (Table 2).
/// Static slices: this runs once per offcore request, so it must not
/// allocate (see PERFORMANCE.md) — the scenario sets are fixed per serve
/// location.
pub fn drd_scens(loc: ServeLoc, node: MemNode) -> &'static [TorDrdScen] {
    use TorDrdScen::*;
    match loc {
        ServeLoc::LocalLlc | ServeLoc::SncLlc => &[Total, HitLlc],
        ServeLoc::PeerCache => &[Total, MissLlc, MissLocal],
        ServeLoc::RemoteLlc => &[Total, MissLlc, MissRemote],
        ServeLoc::LocalDram => &[Total, MissLlc, MissDdr, MissLocal, MissLocalDdr],
        ServeLoc::RemoteDram => &[Total, MissLlc, MissDdr, MissRemote, MissRemoteDdr],
        ServeLoc::CxlDram => &[Total, MissLlc, MissCxl],
        _ => {
            debug_assert_eq!(node.is_cxl(), loc == ServeLoc::CxlDram || !node.is_cxl());
            &[Total]
        }
    }
}

/// The TOR RFO scenarios a completed request contributes to.
pub fn rfo_scens(loc: ServeLoc, _node: MemNode) -> &'static [TorRfoScen] {
    use TorRfoScen::*;
    match loc {
        ServeLoc::LocalLlc | ServeLoc::SncLlc => &[Total, HitLlc],
        ServeLoc::PeerCache | ServeLoc::LocalDram => &[Total, MissLlc, MissLocal],
        ServeLoc::RemoteLlc | ServeLoc::RemoteDram => &[Total, MissLlc, MissRemote],
        ServeLoc::CxlDram => &[Total, MissLlc, MissCxl],
        _ => &[Total],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ChaComplex, Bank<ChaEvent>) {
        (ChaComplex::new(&MachineConfig::tiny()), Bank::new())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let (mut cha, mut bank) = setup();
        let out = cha.lookup(0, 42, false, 100, &mut bank);
        assert!(matches!(out, ChaOutcome::Miss { .. }));
        cha.fill(0, 42, LineState::Exclusive, 500, false, &mut bank);
        let out2 = cha.lookup(0, 42, false, 600, &mut bank);
        assert!(matches!(out2, ChaOutcome::LlcHit { .. }), "{out2:?}");
        assert_eq!(bank.read(ChaEvent::LlcLookupHit), 1);
        assert_eq!(bank.read(ChaEvent::LlcLookupMiss), 1);
    }

    #[test]
    fn snoop_filter_directs_peer_probe() {
        let (mut cha, mut bank) = setup();
        // Core 1 holds line 7 per the directory, but it's not in the LLC.
        cha.sf.record(7, 1, true);
        let out = cha.lookup(0, 7, false, 0, &mut bank);
        match out {
            ChaOutcome::PeerProbe { owners, dirty, .. } => {
                assert_eq!(owners, 0b10);
                assert!(dirty);
            }
            o => panic!("expected PeerProbe, got {o:?}"),
        }
        assert_eq!(bank.read(ChaEvent::SfHit), 1);
        assert_eq!(bank.read(ChaEvent::SnoopLocalSent), 1);
    }

    #[test]
    fn requester_own_stale_entry_does_not_probe_itself() {
        let (mut cha, mut bank) = setup();
        cha.sf.record(9, 0, false);
        let out = cha.lookup(0, 9, false, 0, &mut bank);
        assert!(matches!(out, ChaOutcome::Miss { .. }), "{out:?}");
    }

    #[test]
    fn fill_records_owner_in_directory() {
        let (mut cha, mut bank) = setup();
        cha.fill(2, 13, LineState::Exclusive, 0, false, &mut bank);
        assert_eq!(cha.sf.probe(13), Some((0b100, false)));
    }

    #[test]
    fn sf_overflow_back_invalidates() {
        let mut sf = SnoopFilter::new(16);
        let mut victims = 0;
        for line in 0..64 {
            if sf.record(line, 0, false).is_some() {
                victims += 1;
            }
        }
        assert!(victims > 0);
        assert!(sf.len() <= 17);
    }

    #[test]
    fn writeback_lands_in_llc_and_counts_wb_scenario() {
        let (mut cha, mut bank) = setup();
        let (_fin, _ev) = cha.writeback(77, true, 10, &mut bank);
        assert!(cha.llc_contains(77));
        assert_eq!(bank.read(ChaEvent::TorInsertsIaWb(WbScen::MToI)), 1);
        let (_f2, _e2) = cha.writeback(78, false, 20, &mut bank);
        assert_eq!(bank.read(ChaEvent::TorInsertsIaWb(WbScen::EfToI)), 1);
    }

    #[test]
    fn account_tor_cxl_scenarios() {
        let (mut cha, mut bank) = setup();
        cha.account_tor(
            &mut bank,
            PathClass::Drd,
            ServeLoc::CxlDram,
            MemNode::CxlDram(0),
            100,
            800,
        );
        assert_eq!(bank.read(ChaEvent::TorInsertsIaDrd(TorDrdScen::Total)), 1);
        assert_eq!(bank.read(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc)), 1);
        assert_eq!(bank.read(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl)), 1);
        assert_eq!(
            bank.read(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissCxl)),
            700
        );
        assert_eq!(bank.read(ChaEvent::TorInsertsIa(IaScen::MissCxl)), 1);
    }

    #[test]
    fn account_tor_prefetch_family() {
        let (mut cha, mut bank) = setup();
        cha.account_tor(
            &mut bank,
            PathClass::HwPfL2Drd,
            ServeLoc::LocalDram,
            MemNode::LocalDram,
            0,
            300,
        );
        assert_eq!(
            bank.read(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::Total)),
            1
        );
        assert_eq!(
            bank.read(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLocalDdr)),
            1
        );
        assert_eq!(bank.read(ChaEvent::TorInsertsIaDrd(TorDrdScen::Total)), 0);
    }

    #[test]
    fn snc_distance_depends_on_clusters() {
        let (mut cha, mut bank) = setup();
        // With 2 slices and 2 cores, core 0 is cluster 0; find a line on
        // slice 1 to force distance.
        let mut distant_line = None;
        for line in 0..1000 {
            if slice_of(line, cha.n_slices()) == 1 {
                distant_line = Some(line);
                break;
            }
        }
        let line = distant_line.unwrap();
        cha.fill(0, line, LineState::Exclusive, 0, false, &mut bank);
        match cha.lookup(0, line, false, 0, &mut bank) {
            ChaOutcome::LlcHit { snc_distant, .. } => assert!(snc_distant),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn sync_counters_flush_threshold_totals() {
        let (mut cha, mut bank) = setup();
        cha.account_tor(
            &mut bank,
            PathClass::Drd,
            ServeLoc::LocalDram,
            MemNode::LocalDram,
            0,
            250,
        );
        cha.sync_counters(&mut bank, 1_000);
        assert_eq!(
            bank.read(ChaEvent::TorThreshold1IaDrd(TorDrdScen::Total)),
            250
        );
        assert_eq!(bank.read(ChaEvent::ClockTicks), 1_000);
        cha.sync_counters(&mut bank, 1_000);
        assert_eq!(
            bank.read(ChaEvent::TorThreshold1IaDrd(TorDrdScen::Total)),
            250
        );
    }
}
