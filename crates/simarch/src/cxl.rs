//! The FlexBus I/O path and the CXL Type-3 memory device.
//!
//! Models the full CXL.mem transaction flow of §2.1:
//!
//! ```text
//!  mesh → M2PCIe ingress → FlexBus link → device Rx packing buffers
//!       (M2S Req for reads, M2S RwD for writes)
//!  device MC → media → device Tx packing buffers → FlexBus → M2PCIe egress
//!       (S2M DRS data for reads, S2M NDR completion for writes)
//! ```
//!
//! Counters: the M2PCIe rows of Table 3 and the CXL-device rows of Table 4.
//! The device also derives the CXL 3.x QoS telemetry class (DevLoad) from
//! its internal queue occupancy — the capability §3.5 notes that shipping
//! DIMMs do not yet expose; the simulated device does.

use crate::config::MachineConfig;
use crate::invariant;
use crate::invariants::{Invariants, Violation};
use crate::queues::{Coverage, FifoServer};
use pmu::{Bank, CxlEvent, M2pEvent};

/// CXL.mem QoS telemetry classes (CXL spec 3.0/3.1 DevLoad; paper §3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DevLoad {
    Light,
    Optimal,
    Moderate,
    Severe,
}

/// One CXL Type-3 endpoint: M2PCIe bridge + FlexBus link + device.
#[derive(Debug)]
pub struct CxlPort {
    /// Device index: selects this port's M2PCIe and device banks in the
    /// system PMU.
    dev: usize,
    /// M2PCIe ingress (requests from the mesh).
    m2p_ingress: FifoServer,
    m2p_ne: Coverage,
    synced_m2p_ne: u64,
    /// FlexBus link, request direction (shared by Req and RwD flits).
    link_up: FifoServer,
    /// FlexBus link, response direction (DRS data + NDR completions).
    link_down: FifoServer,
    /// Device memory controller + media.
    dev_mc: FifoServer,
    req_buf_ne: Coverage,
    data_buf_ne: Coverage,
    synced_req_ne: u64,
    synced_data_ne: u64,
    /// Cycles the Rx packing buffers were full (overload indicator).
    req_buf_full: u64,
    data_buf_full: u64,
    synced_req_full: u64,
    synced_data_full: u64,

    latency_link: u64,
    gap_link: u64,
    latency_media: u64,
    gap_dev: u64,
    queue_cap: u64,

    /// Calibrated (fault-free) link/device timings, for fault restore.
    base_latency_link: u64,
    base_gap_link: u64,
    base_gap_dev: u64,
    /// When set, every `period`-th CXL.mem load completion is poisoned
    /// (deterministic media-error injection; see `faults.rs`).
    poison_period: Option<u64>,
    loads_seen: u64,

    /// Extra media latency imposed by fabric contention (switch + pooled
    /// device queueing attributed to this host by `fabric.rs`). Zero on a
    /// standalone machine, so the arithmetic below is bit-identical to the
    /// pre-fabric model. Orthogonal to fault state: `clear_faults` does
    /// not reset it.
    fabric_extra_lat: u64,
    /// Extra device issue gap from fabric bandwidth sharing; same
    /// contract as `fabric_extra_lat`.
    fabric_extra_gap: u64,
}

/// Completion of one CXL.mem transaction.
#[derive(Clone, Copy, Debug)]
pub struct CxlCompletion {
    /// Cycle the S2M response reaches the mesh.
    pub finish: u64,
    /// Device-side queueing delay component (for ground-truth checks).
    pub device_wait: u64,
    /// The returned data carries poison (injected media error); the
    /// datapath retries or contains it (CXL viral semantics).
    pub poison: bool,
}

impl CxlPort {
    pub fn new(cfg: &MachineConfig, dev: usize) -> Self {
        CxlPort {
            dev,
            m2p_ingress: FifoServer::new(),
            m2p_ne: Coverage::new(),
            synced_m2p_ne: 0,
            link_up: FifoServer::new(),
            link_down: FifoServer::new(),
            dev_mc: FifoServer::new(),
            req_buf_ne: Coverage::new(),
            data_buf_ne: Coverage::new(),
            synced_req_ne: 0,
            synced_data_ne: 0,
            req_buf_full: 0,
            data_buf_full: 0,
            synced_req_full: 0,
            synced_data_full: 0,
            latency_link: cfg.flexbus_latency,
            gap_link: cfg.flexbus_gap,
            latency_media: cfg.cxl_media_latency,
            gap_dev: cfg.cxl_dev_gap,
            queue_cap: cfg.cxl_dev_queue as u64,
            base_latency_link: cfg.flexbus_latency,
            base_gap_link: cfg.flexbus_gap,
            base_gap_dev: cfg.cxl_dev_gap,
            poison_period: None,
            loads_seen: 0,
            fabric_extra_lat: 0,
            fabric_extra_gap: 0,
        }
    }

    /// Impose fabric-attributed contention on this port for the next
    /// epoch: `extra_lat` cycles of additional media latency and
    /// `extra_gap` cycles of additional device issue gap. Set by
    /// `fabric::Fabric` from the pooled device's excess-over-alone wait;
    /// both zero on a standalone machine.
    pub fn set_fabric_backpressure(&mut self, extra_lat: u64, extra_gap: u64) {
        self.fabric_extra_lat = extra_lat;
        self.fabric_extra_gap = extra_gap;
    }

    /// Device issue gap including fabric backpressure.
    fn eff_gap_dev(&self) -> u64 {
        self.gap_dev + self.fabric_extra_gap
    }

    /// Media latency including fabric backpressure.
    fn eff_media_latency(&self) -> u64 {
        self.latency_media + self.fabric_extra_lat
    }

    // ---- fault knobs (driven by `faults.rs` via the machine) ------------

    /// Degrade the FlexBus link: the flit gap is multiplied by `gap_mult`
    /// (width reduction) and every flit pays half the base latency again
    /// (retraining/retry overhead). Timing only — counters are untouched,
    /// so conservation holds.
    pub(crate) fn degrade_link(&mut self, gap_mult: u64) {
        self.gap_link = self.base_gap_link * gap_mult.max(1);
        self.latency_link = self.base_latency_link + self.base_latency_link / 2;
    }

    /// Throttle the device memory controller: the issue gap is multiplied
    /// by `gap_mult`, so backlog — and the DevLoad class — escalates.
    pub(crate) fn throttle_device(&mut self, gap_mult: u64) {
        self.gap_dev = self.base_gap_dev * gap_mult.max(1);
    }

    /// Poison every `period`-th load completion (`period` ≥ 2).
    pub(crate) fn set_poison_period(&mut self, period: u64) {
        self.poison_period = Some(period.max(2));
    }

    /// Restore calibrated timings and stop poisoning (window expiry).
    pub(crate) fn clear_faults(&mut self) {
        self.latency_link = self.base_latency_link;
        self.gap_link = self.base_gap_link;
        self.gap_dev = self.base_gap_dev;
        self.poison_period = None;
    }

    /// Estimate the device-queue backlog (entries) implied by the MC's
    /// `next_free` horizon at `arrive`.
    fn backlog(&self, arrive: u64) -> u64 {
        self.dev_mc.next_free().saturating_sub(arrive) / self.eff_gap_dev().max(1)
    }

    /// A CXL.mem load: M2S Req → media read → S2M DRS.
    pub fn mem_load(
        &mut self,
        arrive: u64,
        m2p: &mut Bank<M2pEvent>,
        dev: &mut Bank<CxlEvent>,
    ) -> CxlCompletion {
        // M2PCIe ingress from the mesh. The entry occupies the ingress
        // queue until the FlexBus link accepts its flit, so link-credit
        // starvation shows up as M2PCIe occupancy — exactly what
        // `unc_m2p_rxc_cycles_ne` observes on real parts.
        m2p.inc(M2pEvent::RxcInserts);
        let in_svc = self.m2p_ingress.serve(arrive, 2, 1);
        // FlexBus up: a Req slot in a 68B flit.
        let up = self
            .link_up
            .serve(in_svc.finish, self.latency_link / 2, self.gap_link);
        self.m2p_ne.add(arrive, up.start.max(in_svc.finish));
        m2p.add(M2pEvent::RxcOccupancy, up.start.max(in_svc.finish) - arrive);
        // Device Rx Mem-Request packing buffer + MC + media.
        dev.inc(CxlEvent::RxcPackBufInsertsMemReq);
        let backlog = self.backlog(up.finish);
        if backlog >= self.queue_cap {
            let over = (backlog - self.queue_cap + 1) * self.eff_gap_dev();
            self.req_buf_full += over;
        }
        let mc = self
            .dev_mc
            .serve(up.finish, self.eff_media_latency(), self.eff_gap_dev());
        self.req_buf_ne.add(up.finish, mc.finish);
        dev.add(CxlEvent::RxcPackBufOccupancyMemReq, mc.finish - up.finish);
        dev.inc(CxlEvent::DevMcRdCas);
        dev.add(CxlEvent::DevMcRpqOccupancy, mc.finish - up.finish);
        // S2M DRS back over FlexBus.
        dev.inc(CxlEvent::TxcPackBufInsertsMemData);
        let down = self
            .link_down
            .serve(mc.finish, self.latency_link / 2, self.gap_link);
        // M2PCIe egress: one BL (block data) entry per returned line.
        m2p.inc(M2pEvent::TxcInsertsBl);
        self.loads_seen += 1;
        CxlCompletion {
            finish: down.finish,
            device_wait: mc.start - up.finish,
            poison: self
                .poison_period
                .is_some_and(|p| self.loads_seen.is_multiple_of(p)),
        }
    }

    /// A CXL.mem store: M2S RwD → media write → S2M NDR. Posted from the
    /// host's perspective; the returned cycle is when the NDR lands.
    pub fn mem_store(
        &mut self,
        arrive: u64,
        m2p: &mut Bank<M2pEvent>,
        dev: &mut Bank<CxlEvent>,
    ) -> CxlCompletion {
        m2p.inc(M2pEvent::RxcInserts);
        let in_svc = self.m2p_ingress.serve(arrive, 2, 1);
        // RwD carries 64B of data: same link, data-buffer accounting. As in
        // `mem_load`, the ingress entry lives until the link takes the flit.
        let up = self
            .link_up
            .serve(in_svc.finish, self.latency_link / 2, self.gap_link);
        self.m2p_ne.add(arrive, up.start.max(in_svc.finish));
        m2p.add(M2pEvent::RxcOccupancy, up.start.max(in_svc.finish) - arrive);
        dev.inc(CxlEvent::RxcPackBufInsertsMemData);
        let backlog = self.backlog(up.finish);
        if backlog >= self.queue_cap {
            let over = (backlog - self.queue_cap + 1) * self.eff_gap_dev();
            self.data_buf_full += over;
        }
        let mc = self
            .dev_mc
            .serve(up.finish, self.eff_media_latency(), self.eff_gap_dev());
        self.data_buf_ne.add(up.finish, mc.finish);
        dev.add(CxlEvent::RxcPackBufOccupancyMemData, mc.finish - up.finish);
        dev.inc(CxlEvent::DevMcWrCas);
        dev.add(CxlEvent::DevMcWpqOccupancy, mc.finish - up.finish);
        // S2M NDR completion.
        dev.inc(CxlEvent::TxcPackBufInsertsMemReq);
        let down = self
            .link_down
            .serve(mc.finish, self.latency_link / 2, self.gap_link);
        // M2PCIe egress: one AK (acknowledgement) entry per completed store.
        m2p.inc(M2pEvent::TxcInsertsAk);
        // Poison is injected on the read (DRS) path only: a poisoned NDR
        // has no data to contain.
        CxlCompletion {
            finish: down.finish,
            device_wait: mc.start - up.finish,
            poison: false,
        }
    }

    /// A background (kernel page-migration) read: counted by every PMU the
    /// demand path touches, but served from idle bandwidth — it does not
    /// advance the shared FIFO horizons, so demand traffic never queues
    /// behind it (kernels rate-limit migration copies for exactly this
    /// reason).
    pub fn background_read(&mut self, m2p: &mut Bank<M2pEvent>, dev: &mut Bank<CxlEvent>) {
        m2p.inc(M2pEvent::RxcInserts);
        dev.inc(CxlEvent::RxcPackBufInsertsMemReq);
        dev.inc(CxlEvent::DevMcRdCas);
        dev.add(CxlEvent::DevMcRpqOccupancy, self.latency_media);
        dev.inc(CxlEvent::TxcPackBufInsertsMemData);
        m2p.inc(M2pEvent::TxcInsertsBl);
    }

    /// A background (kernel page-migration) write; see [`Self::background_read`].
    pub fn background_write(&mut self, m2p: &mut Bank<M2pEvent>, dev: &mut Bank<CxlEvent>) {
        m2p.inc(M2pEvent::RxcInserts);
        dev.inc(CxlEvent::RxcPackBufInsertsMemData);
        dev.inc(CxlEvent::DevMcWrCas);
        dev.add(CxlEvent::DevMcWpqOccupancy, self.latency_media);
        dev.inc(CxlEvent::TxcPackBufInsertsMemReq);
        m2p.inc(M2pEvent::TxcInsertsAk);
    }

    /// Current QoS telemetry class from the device backlog at `now`
    /// (CXL 3.x DevLoad; thresholds at ¼, ½ and full queue).
    pub fn dev_load(&self, now: u64) -> DevLoad {
        let backlog = self.backlog(now);
        if backlog >= self.queue_cap {
            DevLoad::Severe
        } else if backlog >= self.queue_cap / 2 {
            DevLoad::Moderate
        } else if backlog >= self.queue_cap / 4 {
            DevLoad::Optimal
        } else {
            DevLoad::Light
        }
    }

    /// Flush coverage/full accumulators into the free-running counters at an
    /// epoch boundary.
    // pflint::hot
    pub fn sync_counters(
        &mut self,
        m2p: &mut Bank<M2pEvent>,
        dev: &mut Bank<CxlEvent>,
        epoch_cycles: u64,
    ) {
        m2p.add(M2pEvent::ClockTicks, epoch_cycles);
        dev.add(CxlEvent::ClockTicks, epoch_cycles);
        let ne = self.m2p_ne.total();
        m2p.add(M2pEvent::RxcCyclesNe, ne - self.synced_m2p_ne);
        self.synced_m2p_ne = ne;
        let rq = self.req_buf_ne.total();
        dev.add(CxlEvent::RxcPackBufNeMemReq, rq - self.synced_req_ne);
        self.synced_req_ne = rq;
        let dt = self.data_buf_ne.total();
        dev.add(CxlEvent::RxcPackBufNeMemData, dt - self.synced_data_ne);
        self.synced_data_ne = dt;
        dev.add(
            CxlEvent::RxcPackBufFullMemReq,
            self.req_buf_full - self.synced_req_full,
        );
        self.synced_req_full = self.req_buf_full;
        dev.add(
            CxlEvent::RxcPackBufFullMemData,
            self.data_buf_full - self.synced_data_full,
        );
        self.synced_data_full = self.data_buf_full;
    }
}

impl crate::module::SimModule for CxlPort {
    fn stage_id(&self) -> crate::module::StageId {
        crate::module::StageId::cxl(self.dev)
    }

    fn name(&self) -> &'static str {
        "module.cxl"
    }

    // pflint::hot
    fn tick(&mut self, _until: u64) {}

    // pflint::hot
    fn drain(&mut self, pmu: &mut pmu::SystemPmu, epoch_cycles: u64) {
        let pmu::SystemPmu { m2ps, cxls, .. } = pmu;
        self.sync_counters(&mut m2ps[self.dev], &mut cxls[self.dev], epoch_cycles);
    }

    fn counters(&self) -> &'static [&'static str] {
        crate::module::registered(&[
            "unc_m2p_clockticks",
            "unc_m2p_rxc_inserts.all",
            "unc_m2p_rxc_cycles_ne.all",
            "unc_m2p_txc_inserts.ak",
            "unc_m2p_txc_inserts.bl",
            "unc_cxlcm_clockticks",
            "unc_cxlcm_rxc_pack_buf_inserts.mem_req",
            "unc_cxlcm_rxc_pack_buf_inserts.mem_data",
            "unc_cxlcm_txc_pack_buf_inserts.mem_req",
            "unc_cxlcm_txc_pack_buf_inserts.mem_data",
            "unc_cxldev_mc_cas.rd",
            "unc_cxldev_mc_cas.wr",
        ])
    }

    fn occupancy(&self, now: u64) -> u64 {
        self.backlog(now)
    }
}

impl Invariants for CxlPort {
    fn component(&self) -> &'static str {
        "cxl::CxlPort"
    }

    fn collect_violations(&self, out: &mut Vec<Violation>) {
        self.m2p_ingress.collect_violations(out);
        self.link_up.collect_violations(out);
        self.link_down.collect_violations(out);
        self.dev_mc.collect_violations(out);
        self.m2p_ne.collect_violations(out);
        self.req_buf_ne.collect_violations(out);
        self.data_buf_ne.collect_violations(out);
        let baselines = [
            ("m2p_ne", self.synced_m2p_ne, self.m2p_ne.total()),
            ("req_buf_ne", self.synced_req_ne, self.req_buf_ne.total()),
            ("data_buf_ne", self.synced_data_ne, self.data_buf_ne.total()),
            ("req_buf_full", self.synced_req_full, self.req_buf_full),
            ("data_buf_full", self.synced_data_full, self.data_buf_full),
        ];
        for (name, synced, total) in baselines {
            invariant!(
                out,
                self.component(),
                synced <= total,
                "{name} synced baseline ahead of accumulator: synced={synced} total={total}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CxlPort, Bank<M2pEvent>, Bank<CxlEvent>) {
        (
            CxlPort::new(&MachineConfig::spr(), 0),
            Bank::new(),
            Bank::new(),
        )
    }

    #[test]
    fn idle_load_latency_matches_calibration() {
        let (mut port, mut m2p, mut dev) = setup();
        let c = port.mem_load(0, &mut m2p, &mut dev);
        let cfg = MachineConfig::spr();
        let expect = 2 + cfg.flexbus_latency / 2 + cfg.cxl_media_latency + cfg.flexbus_latency / 2;
        assert_eq!(c.finish, expect);
        assert_eq!(c.device_wait, 0);
        assert_eq!(m2p.read(M2pEvent::TxcInsertsBl), 1);
        assert_eq!(dev.read(CxlEvent::DevMcRdCas), 1);
        assert_eq!(dev.read(CxlEvent::TxcPackBufInsertsMemData), 1);
    }

    #[test]
    fn store_produces_ndr_and_ak() {
        let (mut port, mut m2p, mut dev) = setup();
        port.mem_store(0, &mut m2p, &mut dev);
        assert_eq!(m2p.read(M2pEvent::TxcInsertsAk), 1);
        assert_eq!(dev.read(CxlEvent::TxcPackBufInsertsMemReq), 1);
        assert_eq!(dev.read(CxlEvent::RxcPackBufInsertsMemData), 1);
        assert_eq!(dev.read(CxlEvent::DevMcWrCas), 1);
    }

    #[test]
    fn saturation_escalates_devload_and_full_cycles() {
        let (mut port, mut m2p, mut dev) = setup();
        assert_eq!(port.dev_load(0), DevLoad::Light);
        for _ in 0..500 {
            port.mem_load(0, &mut m2p, &mut dev);
        }
        assert_eq!(port.dev_load(0), DevLoad::Severe);
        port.sync_counters(&mut m2p, &mut dev, 1_000_000);
        assert!(dev.read(CxlEvent::RxcPackBufFullMemReq) > 0);
    }

    #[test]
    fn queueing_grows_with_offered_load() {
        let (mut port, mut m2p, mut dev) = setup();
        let solo = port.mem_load(0, &mut m2p, &mut dev).finish;
        let mut last = 0;
        for _ in 0..100 {
            last = port.mem_load(0, &mut m2p, &mut dev).finish;
        }
        assert!(last > solo * 2, "100 back-to-back loads must queue heavily");
    }

    #[test]
    fn degraded_link_slows_and_restores() {
        let (mut port, mut m2p, mut dev) = setup();
        let healthy = port.mem_load(0, &mut m2p, &mut dev).finish;
        port.degrade_link(8);
        let mut degraded = 0;
        for _ in 0..50 {
            degraded = port.mem_load(0, &mut m2p, &mut dev).finish;
        }
        assert!(degraded > healthy, "degraded link must add latency");
        port.clear_faults();
        // After restore a request at a far-future idle point sees the
        // calibrated latency again.
        let far = 1_000_000;
        let c = port.mem_load(far, &mut m2p, &mut dev);
        let cfg = MachineConfig::spr();
        let expect = 2 + cfg.flexbus_latency / 2 + cfg.cxl_media_latency + cfg.flexbus_latency / 2;
        assert_eq!(c.finish - far, expect);
    }

    #[test]
    fn throttled_device_escalates_devload_sooner() {
        let (mut port, mut m2p, mut dev) = setup();
        port.throttle_device(16);
        for _ in 0..64 {
            port.mem_load(0, &mut m2p, &mut dev);
        }
        assert_eq!(port.dev_load(0), DevLoad::Severe);
    }

    #[test]
    fn poison_follows_the_configured_period_exactly() {
        let (mut port, mut m2p, mut dev) = setup();
        port.set_poison_period(3);
        let flags: Vec<bool> = (0..9)
            .map(|_| port.mem_load(0, &mut m2p, &mut dev).poison)
            .collect();
        assert_eq!(
            flags,
            vec![false, false, true, false, false, true, false, false, true]
        );
        port.clear_faults();
        assert!(!port.mem_load(0, &mut m2p, &mut dev).poison);
        // Stores never carry poison.
        port.set_poison_period(2);
        assert!(!port.mem_store(0, &mut m2p, &mut dev).poison);
        assert!(!port.mem_store(0, &mut m2p, &mut dev).poison);
    }

    #[test]
    fn fabric_backpressure_adds_latency_and_survives_fault_clear() {
        let (mut port, mut m2p, mut dev) = setup();
        let cfg = MachineConfig::spr();
        let base = 2 + cfg.flexbus_latency / 2 + cfg.cxl_media_latency + cfg.flexbus_latency / 2;
        assert_eq!(port.mem_load(0, &mut m2p, &mut dev).finish, base);
        port.set_fabric_backpressure(37, 5);
        let far = 1_000_000;
        let c = port.mem_load(far, &mut m2p, &mut dev);
        assert_eq!(c.finish - far, base + 37);
        // clear_faults restores fault knobs only; fabric pressure is
        // re-derived each epoch by the fabric, not by the fault engine.
        port.clear_faults();
        let far = 2_000_000;
        let c = port.mem_load(far, &mut m2p, &mut dev);
        assert_eq!(c.finish - far, base + 37);
        port.set_fabric_backpressure(0, 0);
        let far = 3_000_000;
        let c = port.mem_load(far, &mut m2p, &mut dev);
        assert_eq!(c.finish - far, base);
    }

    #[test]
    fn sync_is_idempotent_without_traffic() {
        let (mut port, mut m2p, mut dev) = setup();
        port.mem_load(0, &mut m2p, &mut dev);
        port.sync_counters(&mut m2p, &mut dev, 1000);
        let ne1 = dev.read(CxlEvent::RxcPackBufNeMemReq);
        port.sync_counters(&mut m2p, &mut dev, 1000);
        assert_eq!(dev.read(CxlEvent::RxcPackBufNeMemReq), ne1);
    }
}
