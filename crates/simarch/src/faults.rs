//! Deterministic fault injection for the stage graph.
//!
//! Real CXL.mem deployments fail in ways a healthy simulator never shows:
//! FlexBus links drop to a degraded width and retrain, device memory
//! controllers throttle under thermal pressure, media errors return
//! poisoned lines, uncore queues stall transiently, and PMU readouts go
//! missing. A [`FaultPlan`] is a pure-literal schedule of such anomalies —
//! epoch-indexed windows, no wall clock, no OS entropy — so a faulted run
//! is exactly as reproducible as a healthy one (pflint's
//! `fault-plan-determinism` rule enforces this for every fault schedule in
//! the workspace).
//!
//! The machine applies the plan at every epoch boundary
//! (`Machine::set_fault_plan`): knobs are reset to baseline and the
//! windows covering the upcoming epoch are re-applied, so windows compose
//! and expire without order dependence. Every fault class preserves the
//! counter-conservation equalities audited by `conservation.rs` — faults
//! bend *timing* and *visibility*, never the flow balance of the counters
//! themselves (a poisoned line is retried as a complete new transaction;
//! a PMU dropout skips the epoch flush but leaves the inline-incremented
//! totals intact).

use crate::config::MachineConfig;
use crate::module::{StageId, StageKind};

/// The five injected anomaly classes (ROADMAP robustness axis; the
/// detector in `core::analyzer` names each one from counters alone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// FlexBus link degradation/retraining: the link gap is multiplied by
    /// `severity` and every flit pays a retrain latency penalty. Targets a
    /// `CxlPort` stage.
    LinkDegrade,
    /// Thermal throttling of the device memory controller: the device
    /// issue gap is multiplied by `severity`, escalating `DevLoad` toward
    /// `Severe`. Targets a `CxlPort` stage.
    DevThrottle,
    /// Poisoned-line completions: every `severity`-th CXL.mem load returns
    /// poison; the datapath retries (viral containment bounds the retries).
    /// Targets a `CxlPort` stage.
    PoisonedLine,
    /// Transient queue stall: the stage's FIFO servers are blocked for
    /// `severity` cycles at each covered epoch boundary. Targets the CHA
    /// or IMC stage.
    QueueStall,
    /// PMU counter dropout: the stage's epoch-boundary counter flush is
    /// suppressed while the window is active (clockticks freeze). Targets
    /// CHA, IMC, or a CXL port.
    PmuDropout,
    /// Degradation of the shared switch→pool link: the link gap is
    /// multiplied by `severity` and every granted request pays extra link
    /// latency. A cross-tenant fault — every host behind the switch sees
    /// elevated wait, so the blast radius spans tenants. Targets the
    /// `Switch` stage (conventionally port 0: the link is shared, the
    /// port index is ignored).
    SharedLinkDegrade,
    /// A stuck upstream switch port: requests queued at the targeted port
    /// are not eligible for arbitration for `severity` cycles past each
    /// covered epoch boundary. Under FIFO arbitration the stalled head
    /// HOL-blocks the shared link; other tenants see collateral wait.
    /// Targets the `Switch` stage (port index selects the victim port).
    SwitchPortStall,
}

impl FaultClass {
    pub const ALL: [FaultClass; 7] = [
        FaultClass::LinkDegrade,
        FaultClass::DevThrottle,
        FaultClass::PoisonedLine,
        FaultClass::QueueStall,
        FaultClass::PmuDropout,
        FaultClass::SharedLinkDegrade,
        FaultClass::SwitchPortStall,
    ];

    /// The classes a single-host `Machine` can host. `FaultPlan::from_seed`
    /// draws from this subset so seeded machine plans stay byte-identical
    /// to their pre-fabric selves; the fabric classes are literal-only.
    pub const MACHINE: [FaultClass; 5] = [
        FaultClass::LinkDegrade,
        FaultClass::DevThrottle,
        FaultClass::PoisonedLine,
        FaultClass::QueueStall,
        FaultClass::PmuDropout,
    ];

    /// Static label for obs metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::LinkDegrade => "link_degrade",
            FaultClass::DevThrottle => "dev_throttle",
            FaultClass::PoisonedLine => "poisoned_line",
            FaultClass::QueueStall => "queue_stall",
            FaultClass::PmuDropout => "pmu_dropout",
            FaultClass::SharedLinkDegrade => "shared_link_degrade",
            FaultClass::SwitchPortStall => "switch_port_stall",
        }
    }

    /// Which stage kinds this class can legally target.
    pub fn targets(self, kind: StageKind) -> bool {
        match self {
            FaultClass::LinkDegrade | FaultClass::DevThrottle | FaultClass::PoisonedLine => {
                kind == StageKind::CxlPort
            }
            FaultClass::QueueStall => matches!(kind, StageKind::Cha | StageKind::Imc),
            FaultClass::PmuDropout => {
                matches!(kind, StageKind::Cha | StageKind::Imc | StageKind::CxlPort)
            }
            FaultClass::SharedLinkDegrade | FaultClass::SwitchPortStall => {
                kind == StageKind::Switch
            }
        }
    }
}

/// One scheduled anomaly: a class, a target stage, a half-open epoch
/// window `[start_epoch, end_epoch)`, and a class-specific severity knob
/// (gap multiplier, poison period, or stall cycles — see [`FaultClass`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    pub class: FaultClass,
    pub stage: StageId,
    pub start_epoch: u64,
    pub end_epoch: u64,
    pub severity: u64,
}

impl FaultWindow {
    /// True when the window covers epoch index `epoch`.
    pub fn covers(&self, epoch: u64) -> bool {
        self.start_epoch <= epoch && epoch < self.end_epoch
    }

    /// Structural sanity: non-empty window, legal target, positive
    /// severity where the class consumes one.
    pub fn validate(&self) -> Result<(), String> {
        if self.end_epoch <= self.start_epoch {
            return Err(format!(
                "empty fault window: [{}, {})",
                self.start_epoch, self.end_epoch
            ));
        }
        if !self.class.targets(self.stage.kind) {
            return Err(format!(
                "{} cannot target stage {}",
                self.class.label(),
                self.stage
            ));
        }
        let needs_severity = !matches!(self.class, FaultClass::PmuDropout);
        if needs_severity && self.severity == 0 {
            return Err(format!("{} needs severity > 0", self.class.label()));
        }
        if self.class == FaultClass::PoisonedLine && self.severity < 2 {
            return Err("poison period must be >= 2 (period 1 never converges)".into());
        }
        Ok(())
    }
}

/// A deterministic schedule of fault windows. Either written as a pure
/// literal (the bench scenarios) or expanded from a seed via the internal
/// splitmix64 generator ([`FaultPlan::from_seed`]) — never from OS entropy
/// or the wall clock.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder-style append; rejects a structurally invalid window so bad
    /// plans fail at construction, not mid-run.
    pub fn with(mut self, w: FaultWindow) -> Result<FaultPlan, String> {
        self.push(w)?;
        Ok(self)
    }

    pub fn push(&mut self, w: FaultWindow) -> Result<(), String> {
        w.validate()
            .map_err(|e| format!("invalid fault window: {e}"))?;
        self.windows.push(w);
        Ok(())
    }

    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows covering epoch `epoch`, in schedule order.
    pub fn active(&self, epoch: u64) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.covers(epoch))
    }

    /// The next epoch strictly after `epoch` at which the active-window
    /// set can change (a window starting or expiring). The quiescence
    /// skipper wakes at every such edge so a fault landing inside an
    /// otherwise-idle stretch is applied on exactly the right epoch.
    pub fn next_edge(&self, epoch: u64) -> Option<u64> {
        self.windows
            .iter()
            .flat_map(|w| [w.start_epoch, w.end_epoch])
            .filter(|&e| e > epoch)
            .min()
    }

    /// Expand `n` windows from a seed, valid for `cfg` and confined to the
    /// first `horizon_epochs` epochs. Same `(seed, n, cfg, horizon)` ⇒
    /// byte-identical plan on every platform.
    pub fn from_seed(seed: u64, n: usize, cfg: &MachineConfig, horizon_epochs: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let horizon = horizon_epochs.max(1);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let class = FaultClass::MACHINE[rng.below(FaultClass::MACHINE.len() as u64) as usize];
            let stage = match class {
                FaultClass::LinkDegrade | FaultClass::DevThrottle | FaultClass::PoisonedLine => {
                    StageId::cxl(rng.below(cfg.cxl_devices.max(1) as u64) as usize)
                }
                FaultClass::QueueStall => {
                    if rng.below(2) == 0 {
                        StageId::cha()
                    } else {
                        StageId::imc()
                    }
                }
                FaultClass::PmuDropout => match rng.below(3) {
                    0 => StageId::cha(),
                    1 => StageId::imc(),
                    _ => StageId::cxl(rng.below(cfg.cxl_devices.max(1) as u64) as usize),
                },
                FaultClass::SharedLinkDegrade | FaultClass::SwitchPortStall => {
                    unreachable!("fabric fault classes are not in FaultClass::MACHINE")
                }
            };
            let start = rng.below(horizon);
            let len = 1 + rng.below(horizon - start);
            let severity = match class {
                FaultClass::LinkDegrade | FaultClass::DevThrottle => 2 + rng.below(15),
                FaultClass::PoisonedLine => 2 + rng.below(7),
                FaultClass::QueueStall => {
                    (cfg.epoch_cycles / 4).max(1) + rng.below(cfg.epoch_cycles / 4 + 1)
                }
                FaultClass::PmuDropout => 0,
                FaultClass::SharedLinkDegrade | FaultClass::SwitchPortStall => {
                    unreachable!("fabric fault classes are not in FaultClass::MACHINE")
                }
            };
            let w = FaultWindow {
                class,
                stage,
                start_epoch: start,
                end_epoch: start + len,
                severity,
            };
            // By construction every generated window is valid for `cfg`;
            // validate() is re-checked in debug builds and by the tests.
            debug_assert!(w.validate().is_ok(), "seeded window invalid: {w:?}");
            plan.windows.push(w);
        }
        plan
    }
}

/// splitmix64 (Steele, Lea & Flood) — a tiny, seedable, allocation-free
/// generator. Fault plans must not depend on `rand` front-ends that could
/// be seeded from OS entropy; this keeps the schedule a pure function of
/// the seed.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[0, bound)` (`bound` ≥ 1).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(class: FaultClass, stage: StageId) -> FaultWindow {
        FaultWindow {
            class,
            stage,
            start_epoch: 1,
            end_epoch: 3,
            severity: 4,
        }
    }

    #[test]
    fn windows_cover_half_open_epoch_ranges() {
        let w = window(FaultClass::LinkDegrade, StageId::cxl(0));
        assert!(!w.covers(0));
        assert!(w.covers(1));
        assert!(w.covers(2));
        assert!(!w.covers(3));
    }

    #[test]
    fn validation_rejects_illegal_targets() {
        assert!(window(FaultClass::LinkDegrade, StageId::imc())
            .validate()
            .is_err());
        assert!(window(FaultClass::QueueStall, StageId::cxl(0))
            .validate()
            .is_err());
        assert!(window(FaultClass::PmuDropout, StageId::core(0))
            .validate()
            .is_err());
        assert!(window(FaultClass::DevThrottle, StageId::cxl(0))
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_empty_windows_and_zero_severity() {
        let mut w = window(FaultClass::DevThrottle, StageId::cxl(0));
        w.end_epoch = w.start_epoch;
        assert!(w.validate().is_err());
        let mut w = window(FaultClass::QueueStall, StageId::cha());
        w.severity = 0;
        assert!(w.validate().is_err());
        let mut w = window(FaultClass::PoisonedLine, StageId::cxl(0));
        w.severity = 1;
        assert!(w.validate().is_err());
    }

    #[test]
    fn plan_rejects_invalid_windows_at_construction() {
        let res = FaultPlan::new().with(window(FaultClass::PoisonedLine, StageId::cha()));
        let err = res.err().expect("illegal target must be rejected");
        assert!(err.contains("invalid fault window"), "{err}");
    }

    #[test]
    fn active_filters_by_epoch() {
        let plan = FaultPlan::new()
            .with(window(FaultClass::LinkDegrade, StageId::cxl(0)))
            .unwrap()
            .with(FaultWindow {
                start_epoch: 2,
                end_epoch: 5,
                ..window(FaultClass::QueueStall, StageId::imc())
            })
            .unwrap();
        assert_eq!(plan.active(0).count(), 0);
        assert_eq!(plan.active(1).count(), 1);
        assert_eq!(plan.active(2).count(), 2);
        assert_eq!(plan.active(4).count(), 1);
        assert_eq!(plan.active(5).count(), 0);
    }

    #[test]
    fn fabric_classes_target_only_the_switch() {
        for class in [FaultClass::SharedLinkDegrade, FaultClass::SwitchPortStall] {
            assert!(window(class, StageId::switch_port(0)).validate().is_ok());
            assert!(window(class, StageId::switch_port(1)).validate().is_ok());
            assert!(window(class, StageId::cxl(0)).validate().is_err());
            assert!(window(class, StageId::pool()).validate().is_err());
        }
        // Machine classes must not leak onto fabric stages.
        assert!(window(FaultClass::LinkDegrade, StageId::switch_port(0))
            .validate()
            .is_err());
        assert!(window(FaultClass::QueueStall, StageId::pool())
            .validate()
            .is_err());
    }

    #[test]
    fn seeded_plans_never_draw_fabric_classes() {
        let cfg = MachineConfig::tiny();
        let plan = FaultPlan::from_seed(0xfab, 200, &cfg, 16);
        for w in plan.windows() {
            assert!(
                FaultClass::MACHINE.contains(&w.class),
                "from_seed drew a fabric-only class: {:?}",
                w.class
            );
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_valid() {
        let cfg = MachineConfig::tiny();
        let a = FaultPlan::from_seed(42, 20, &cfg, 8);
        let b = FaultPlan::from_seed(42, 20, &cfg, 8);
        assert_eq!(a.windows(), b.windows());
        assert_eq!(a.windows().len(), 20);
        for w in a.windows() {
            assert!(w.validate().is_ok(), "seeded window invalid: {w:?}");
            assert!(w.start_epoch < 8);
        }
        let c = FaultPlan::from_seed(43, 20, &cfg, 8);
        assert_ne!(a.windows(), c.windows(), "different seeds must diverge");
    }
}
