//! Batched datapath: stage-pass execution of the per-op hot path.
//!
//! `datapath.rs` is the executable specification — one full per-access
//! descent (`step_core` → `do_load` → `l2_and_beyond` → `offcore_access` →
//! `memory_access` → `finish_load`) every time the epoch scheduler picks a
//! core. This module is the optimized pipeline the specification is
//! differenced against (`DatapathMode::Batched`, the default): when the
//! scheduler picks a core, a whole *slice* of its consecutive ops runs in
//! one dispatch, structured as stage passes —
//!
//! * **gather** — ops are decoded chunk-wise from the trace into the
//!   machine-owned [`crate::arena::OpRing`] (one virtual `fill_ops` call
//!   per chunk instead of one `next_op` call per op);
//! * **L1 probe** (`datapath.pass.l1`) — a combined single-search probe
//!   with a short-circuit hit fast path that retires ready hits without
//!   touching anything below the core;
//! * **L2/prefetch + offcore/CHA + memory/CXL** (`datapath.pass.offcore`)
//!   — a combined L2 probe, then the shared uncore walk (`offcore_access`
//!   and below are the *same* functions the reference walk runs, so the
//!   two modes cannot drift on the deep path);
//! * **retire** (`datapath.pass.retire`) — stall accounting and time
//!   advance via the shared `finish_load` tail.
//!
//! ## Why a slice is byte-identical to one-op scheduling
//!
//! Stepping core *c* never mutates another core's `time` (peer probes
//! touch caches and the snoop filter, never clocks), so while `c.time`
//! stays strictly below every other pending core's time — or ties it and
//! `c` has the lower index, the reference argmin's first-wins tie-break —
//! the scheduler would pick `c` again anyway. The slice loop runs exactly
//! as long as that predicate holds and then returns to the scheduler, so
//! the global op interleaving (and with it every shared-FIFO arrival
//! order, LRU clock, and counter stream) is unchanged. Both schedulers
//! agree on the predicate: the wheel pops `(tick, StageId)` ordered, which
//! is earliest-time-first with lowest-core-index tie-break too.
//!
//! ## Why the combined probes are byte-identical
//!
//! The reference walk's hit paths search a set twice (find, then re-find
//! to flip `prefetched`/`state`), advancing the cache's `lru_clock` twice.
//! The combined probes (`cache.rs`) search once but replicate the clock
//! arithmetic and stamp values of the double search exactly, so every
//! future LRU eviction — and therefore every downstream counter — is
//! unchanged. `tests/datapath_equivalence.rs` proves the whole matrix.

use crate::cache::LineState;
use crate::machine::Machine;
use crate::mem::{MemNode, PhysAddr, CACHELINE, PAGE_SIZE};
use crate::request::{AccessKind, MemOp, ServeLoc};
use pmu::{CoreEvent, PathClass};

/// Ops decoded from the trace per gather-pass refill. Large enough to
/// amortize the virtual dispatch, small enough that a buffered tail never
/// outlives a scheduling decision by much.
const OP_CHUNK: usize = 64;

impl Machine {
    /// Run one scheduling slice of core `c`: consecutive ops while `c`
    /// would remain the scheduler's argmin winner (see module docs).
    /// The caller guarantees `c` is eligible (`!done && time < end`).
    // pflint::hot — the batched datapath's innermost dispatch loop.
    pub(crate) fn run_core_slice(&mut self, c: usize, end: u64) {
        // Slice bound: the earliest other pending core. `tie_win` records
        // whether `c` would still win the reference argmin's first-wins
        // tie-break at exactly that time. Other cores' times cannot move
        // while this slice runs, so the bound stays valid throughout.
        let mut limit = end;
        let mut tie_win = false;
        for i in 0..self.cores.len() {
            if i == c || self.cores[i].done {
                continue;
            }
            let t = self.cores[i].time;
            if t < limit {
                limit = t;
                tie_win = c < i;
            }
        }
        let mut executed: u64 = 0;
        loop {
            if executed > 0 {
                let t = self.cores[c].time;
                if !(t < limit || (t == limit && tie_win)) {
                    break;
                }
            }
            let Some(op) = self.next_ring_op(c) else {
                self.cores[c].done = true;
                break;
            };
            executed += 1;
            self.batch_exec(c, op);
        }
        obs::metrics::observe("datapath.batch_len", executed);
    }

    /// Gather pass: the next buffered op, refilling the ring chunk-wise
    /// from the trace when it runs dry. `None` means the trace finished.
    // pflint::hot — gather pass.
    fn next_ring_op(&mut self, c: usize) -> Option<MemOp> {
        if let Some(op) = self.rings[c].pop() {
            return Some(op);
        }
        let Machine { rings, cores, .. } = self;
        let run = cores[c].workload.as_mut()?;
        let ring = &mut rings[c];
        if run.trace.fill_ops(ring, OP_CHUNK) == 0 {
            return None;
        }
        ring.pop()
    }

    /// Per-op prologue and kind dispatch — the batched `step_core` body.
    // pflint::hot — per-op dispatch.
    fn batch_exec(&mut self, c: usize, op: MemOp) {
        {
            let core = &mut self.cores[c];
            core.time += op.work as u64;
            core.ops_executed += 1;
            core.truth.ops += 1;
        }
        self.pmu.cores[c].add(CoreEvent::InstRetired, op.work as u64 + 1);
        let paddr = {
            let core = &mut self.cores[c];
            let run = core.workload.as_mut().expect("runnable core has workload");
            run.space.translate(op.vaddr)
        };
        let vpage = op.vaddr / PAGE_SIZE as u64;
        let key = (c as u16, vpage);
        match &mut self.heat_run {
            Some((k, n)) if *k == key => *n += 1,
            _ => {
                self.flush_heat_run();
                self.heat_run = Some((key, 1));
            }
        }
        match op.kind {
            AccessKind::Load { dependent } => {
                self.cores[c].truth.loads += 1;
                self.batch_load(c, paddr, dependent, PathClass::Drd);
            }
            AccessKind::SwPrefetch => {
                self.cores[c].truth.swpfs += 1;
                self.batch_load(c, paddr, false, PathClass::SwPf);
            }
            AccessKind::Store => {
                self.cores[c].truth.stores += 1;
                self.batch_store(c, paddr);
            }
        }
    }

    /// L1 probe pass with the short-circuit hit fast path; misses descend
    /// through the L2/offcore passes and the shared retire tail.
    // pflint::hot — L1 probe pass.
    fn batch_load(&mut self, c: usize, paddr: PhysAddr, dependent: bool, path: PathClass) {
        let line = paddr.line();
        let node = paddr.node();
        let demand = path == PathClass::Drd;
        let t_issue = self.cores[c].time;

        let probe = {
            let _p = obs::span!("datapath.pass.l1");
            self.cores[c].l1d.probe_demand(line)
        };
        if let Some(ready_at) = probe {
            if ready_at <= t_issue {
                // Ready hit: retire in place without touching the uncore.
                let _r = obs::span!("datapath.pass.retire");
                let bank = &mut self.pmu.cores[c];
                if demand {
                    bank.inc(CoreEvent::MemLoadRetiredL1Hit);
                    bank.add(
                        CoreEvent::MemTransRetiredLoadLatency,
                        self.cfg.l1d.hit_latency,
                    );
                    bank.inc(CoreEvent::MemTransRetiredLoadCount);
                }
                if dependent {
                    self.cores[c].time += self.cfg.l1d.hit_latency;
                }
                self.cores[c]
                    .truth
                    .record_served(path, ServeLoc::L1d, self.cfg.l1d.hit_latency);
                return;
            }
            // Present but still filling: merge into the in-flight fill.
            if demand {
                let bank = &mut self.pmu.cores[c];
                bank.inc(CoreEvent::MemLoadRetiredL1Miss);
                bank.inc(CoreEvent::MemLoadRetiredL1FbHit);
            }
            self.batch_retire_load(
                c,
                t_issue,
                ready_at,
                ServeLoc::Lfb,
                false,
                false,
                dependent,
                demand,
                node,
                path,
                0,
            );
            return;
        }

        // ---- L1D miss ---------------------------------------------------
        if demand {
            self.pmu.cores[c].inc(CoreEvent::MemLoadRetiredL1Miss);
        }
        self.train_prefetcher(c, line, node, t_issue);
        if let Some(f) = self.cores[c].inflight.get(line) {
            if f > t_issue {
                if demand {
                    self.pmu.cores[c].inc(CoreEvent::MemLoadRetiredL1FbHit);
                }
                self.batch_retire_load(
                    c,
                    t_issue,
                    f,
                    ServeLoc::Lfb,
                    false,
                    false,
                    dependent,
                    demand,
                    node,
                    path,
                    0,
                );
                return;
            }
        }
        let adm = self.cores[c].lfb.acquire(t_issue);
        if adm.blocked > 0 {
            self.pmu.cores[c].add(CoreEvent::L1dPendMissFbFull, adm.blocked);
            self.cores[c].time = adm.at;
        }
        let blocked = adm.blocked;
        let t = adm.at.max(t_issue);

        let ascending = line == self.cores[c].last_l1_miss_line.wrapping_add(1);
        self.cores[c].last_l1_miss_line = line;
        let l1pf = crate::prefetch::l1_next_line(&self.cfg.prefetch, line)
            .filter(|_| demand && ascending)
            .filter(|_| {
                line % (PAGE_SIZE / CACHELINE) as u64 != (PAGE_SIZE / CACHELINE) as u64 - 1
            });

        let t_l2 = t + self.cfg.l1d.tag_latency;
        let (finish, loc, missed_l2, missed_l3) =
            self.batch_l2_pass(c, line, node, path, false, t_l2);

        self.fill_l1(c, line, LineState::Exclusive, finish, t);
        self.cores[c].inflight.insert(line, finish);
        self.cores[c].lfb.commit(finish);

        self.batch_retire_load(
            c, t_issue, finish, loc, missed_l2, missed_l3, dependent, demand, node, path, blocked,
        );

        if let Some(pf_line) = l1pf {
            self.issue_l1_prefetch(c, pf_line, node, t);
        }
    }

    /// L2/prefetch pass and, on miss, the offcore/CHA and memory/CXL
    /// passes (the shared `offcore_access` walk). Combined single-search
    /// L2 probe; returns `(finish_at_core, serve_loc, missed_l2,
    /// missed_l3)` exactly like the reference `l2_and_beyond`.
    // pflint::hot — L2/offcore pass.
    fn batch_l2_pass(
        &mut self,
        c: usize,
        line: u64,
        node: MemNode,
        path: PathClass,
        rfo: bool,
        t_l2: u64,
    ) -> (u64, ServeLoc, bool, bool) {
        let _o = obs::span!("datapath.pass.offcore");
        let demand = matches!(path, PathClass::Drd | PathClass::Rfo | PathClass::Dwr);
        {
            let bank = &mut self.pmu.cores[c];
            bank.inc(CoreEvent::L2RqstsReferences);
            if demand {
                bank.inc(CoreEvent::L2RqstsAllDemandReferences);
            }
            match path {
                PathClass::Drd => bank.inc(CoreEvent::L2RqstsAllDemandDataRd),
                PathClass::Rfo | PathClass::Dwr | PathClass::HwPfL2Rfo => {
                    bank.inc(CoreEvent::L2RqstsAllRfo)
                }
                _ => {}
            }
        }
        match self.cores[c].l2.probe_l2(line, rfo) {
            Some((ready_at, true)) => {
                let fin = ready_at.max(t_l2 + self.cfg.l2.hit_latency);
                let bank = &mut self.pmu.cores[c];
                match path {
                    PathClass::Drd => {
                        bank.inc(CoreEvent::MemLoadRetiredL2Hit);
                        bank.inc(CoreEvent::L2RqstsDemandDataRdHit);
                    }
                    PathClass::SwPf => bank.inc(CoreEvent::L2RqstsSwpfHit),
                    PathClass::Rfo | PathClass::Dwr => {
                        bank.inc(CoreEvent::L2RqstsRfoHit);
                        bank.inc(CoreEvent::MemStoreRetiredL2Hit);
                    }
                    _ => bank.inc(CoreEvent::L2RqstsHwpfHit),
                }
                (fin, ServeLoc::L2, false, false)
            }
            Some((_ready, false)) => {
                // Present but not writable: ownership upgrade goes offcore.
                self.count_l2_miss(c, path);
                let (fin, loc, missed_l3) =
                    self.offcore_access(c, line, node, path, true, t_l2 + self.cfg.l2.tag_latency);
                (fin, loc, true, missed_l3)
            }
            None => {
                self.count_l2_miss(c, path);
                let (fin, loc, missed_l3) =
                    self.offcore_access(c, line, node, path, rfo, t_l2 + self.cfg.l2.tag_latency);
                let state = if rfo {
                    LineState::Modified
                } else {
                    LineState::Exclusive
                };
                self.fill_l2(c, line, state, fin, !demand, t_l2);
                (fin, loc, true, missed_l3)
            }
        }
    }

    /// Retire pass: the shared stall-accounting tail under its own span.
    // pflint::hot — retire pass.
    #[allow(clippy::too_many_arguments)]
    fn batch_retire_load(
        &mut self,
        c: usize,
        t_issue: u64,
        finish: u64,
        loc: ServeLoc,
        missed_l2: bool,
        missed_l3: bool,
        dependent: bool,
        demand: bool,
        node: MemNode,
        path: PathClass,
        blocked: u64,
    ) {
        let _r = obs::span!("datapath.pass.retire");
        self.finish_load(
            c, t_issue, finish, loc, missed_l2, missed_l3, dependent, demand, node, path, blocked,
        );
    }

    /// Store pass: SB admission and coalescing, then a combined L1 write
    /// probe or the RFO descent through the L2/offcore passes.
    // pflint::hot — store pass.
    fn batch_store(&mut self, c: usize, paddr: PhysAddr) {
        let line = paddr.line();
        let node = paddr.node();
        let t_issue = self.cores[c].time;

        let adm = self.cores[c].sb.acquire(t_issue);
        if adm.blocked > 0 {
            let loads_outstanding = self.cores[c].lfb.outstanding(t_issue) > 0;
            let bank = &mut self.pmu.cores[c];
            if loads_outstanding {
                bank.add(CoreEvent::ResourceStallsSb, adm.blocked);
            } else {
                bank.add(CoreEvent::ExeActivityBoundOnStores, adm.blocked);
            }
            self.cores[c].time = adm.at;
        }
        let t = adm.at.max(t_issue);

        if let Some(f) = self.cores[c].sb_inflight.get(line) {
            if f > t {
                self.cores[c].sb.commit(f);
                self.cores[c]
                    .truth
                    .record_served(PathClass::Dwr, ServeLoc::StoreBuffer, 0);
                let bank = &mut self.pmu.cores[c];
                bank.inc(CoreEvent::MemTransRetiredStoreCount);
                return;
            }
        }

        let probe = {
            let _p = obs::span!("datapath.pass.l1");
            self.cores[c].l1d.probe_store(line)
        };
        let drain = match probe {
            Some((ready_at, true)) => {
                self.cha.sf.mark_dirty(line);
                let d = ready_at.max(t) + self.cfg.l1d.hit_latency;
                self.cores[c]
                    .truth
                    .record_served(PathClass::Dwr, ServeLoc::L1d, d - t);
                d
            }
            _ => {
                // RFO: gain exclusive ownership through the hierarchy.
                self.train_prefetcher(c, line, node, t);
                let core = &mut self.cores[c];
                core.cov_oro_demand_rfo.add(t, t + 1);
                let (fin, _loc, _missed_l2, _missed_l3) = self.batch_l2_pass(
                    c,
                    line,
                    node,
                    PathClass::Rfo,
                    true,
                    t + self.cfg.l1d.tag_latency,
                );
                self.fill_l1(c, line, LineState::Modified, fin, t);
                self.cha.sf.mark_dirty(line);
                self.cores[c].cov_oro_demand_rfo.add(t, fin);
                self.cores[c]
                    .truth
                    .record_served(PathClass::Dwr, ServeLoc::L1d, fin - t);
                fin + self.cfg.l1d.hit_latency
            }
        };
        {
            let core = &mut self.cores[c];
            core.sb.commit(drain);
            core.sb_inflight.insert(line, drain);
        }
        let bank = &mut self.pmu.cores[c];
        bank.add(CoreEvent::MemTransRetiredStoreSample, drain - t);
        bank.inc(CoreEvent::MemTransRetiredStoreCount);
    }
}
