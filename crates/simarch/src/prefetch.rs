//! Hardware prefetchers (paper §2.2, path #4).
//!
//! * L1: next-line prefetch on a demand miss.
//! * L2: a 16-entry stream (stride) detector. Once a stride is confirmed
//!   twice, it runs `distance` strides ahead of the demand stream, issuing
//!   at most `degree` prefetches per triggering access.

use crate::config::PrefetchConfig;
use crate::mem::LINES_PER_PAGE;

#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    page: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
    /// Furthest line already prefetched for this stream.
    head: i64,
    lru: u64,
}

/// The per-core L2 stream prefetcher.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    table: Vec<StreamEntry>,
    /// Table index of the most recently hit stream. Sequential workloads hit
    /// the same stream on nearly every miss, so checking this slot first
    /// skips the linear table scan on the common path.
    last_idx: usize,
    distance: i64,
    degree: usize,
    enabled: bool,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    pub fn new(cfg: &PrefetchConfig) -> Self {
        StreamPrefetcher {
            table: Vec::with_capacity(16),
            last_idx: 0,
            distance: cfg.l2_distance as i64,
            degree: cfg.l2_degree,
            enabled: cfg.l2_stream,
            clock: 0,
            issued: 0,
        }
    }

    /// Observe an L2 access to `line` (a global line address); returns the
    /// lines to prefetch. Convenience wrapper over [`Self::observe_into`]
    /// for tests and cold callers.
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(line, &mut out);
        out
    }

    /// Observe an L2 access to `line`, appending the lines to prefetch to
    /// `out`. The hot path passes a reused scratch buffer so a confirmed
    /// stream never allocates per demand miss (see PERFORMANCE.md).
    pub fn observe_into(&mut self, line: u64, out: &mut Vec<u64>) {
        if !self.enabled {
            return;
        }
        self.clock += 1;
        let page = line / LINES_PER_PAGE as u64;
        let clock = self.clock;
        // Same stream found either way — the hint only skips the scan.
        let hit = match self.table.get(self.last_idx) {
            Some(e) if e.page == page => Some(self.last_idx),
            _ => self.table.iter().position(|e| e.page == page),
        };
        if let Some(i) = hit {
            self.last_idx = i;
            let e = &mut self.table[i];
            e.lru = clock;
            let delta = line as i64 - e.last_line as i64;
            e.last_line = line;
            if delta == 0 {
                return;
            }
            if delta == e.stride {
                e.confidence = e.confidence.saturating_add(1);
            } else {
                e.stride = delta;
                e.confidence = 1;
                e.head = line as i64;
                return;
            }
            if e.confidence < 2 {
                return;
            }
            // Confirmed stream: run ahead up to `distance` strides.
            let target = line as i64 + e.stride * self.distance;
            let before = out.len();
            let ahead = e.stride > 0;
            // Never issue at or behind the demand stream.
            if (ahead && e.head < line as i64) || (!ahead && e.head > line as i64) {
                e.head = line as i64;
            }
            while out.len() - before < self.degree {
                let next = e.head + e.stride;
                if (ahead && next > target) || (!ahead && next < target) {
                    break;
                }
                e.head = next;
                if next >= 0 {
                    out.push(next as u64);
                }
            }
            self.issued += (out.len() - before) as u64;
            return;
        }
        // New stream: allocate, evicting the LRU entry if full.
        if self.table.len() >= 16 {
            let (idx, _) = self
                .table
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("non-empty");
            self.table.swap_remove(idx);
        }
        self.last_idx = self.table.len();
        self.table.push(StreamEntry {
            page,
            last_line: line,
            stride: 0,
            confidence: 0,
            head: line as i64,
            lru: clock,
        });
    }

    /// Total prefetches issued (diagnostics).
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// The L1 next-line prefetcher: trivial, stateless.
pub fn l1_next_line(cfg: &PrefetchConfig, miss_line: u64) -> Option<u64> {
    if cfg.l1_next_line {
        Some(miss_line + 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(&PrefetchConfig::default())
    }

    #[test]
    fn sequential_stream_is_detected_after_two_strides() {
        let mut p = pf();
        assert!(p.observe(100).is_empty()); // allocate
        assert!(p.observe(101).is_empty()); // stride=1, conf=1
        let out = p.observe(102); // conf=2 → issue
        assert!(!out.is_empty());
        assert!(out.iter().all(|&l| l > 102));
    }

    #[test]
    fn stream_runs_ahead_bounded_by_distance() {
        let cfg = PrefetchConfig {
            l2_distance: 4,
            l2_degree: 8,
            ..Default::default()
        };
        let mut p = StreamPrefetcher::new(&cfg);
        p.observe(10);
        p.observe(11);
        let out = p.observe(12);
        // Head starts at the stream start; at most distance ahead of 12.
        assert!(*out.iter().max().unwrap() <= 16);
    }

    #[test]
    fn negative_strides_are_followed() {
        let mut p = pf();
        p.observe(1000);
        p.observe(998);
        let out = p.observe(996);
        assert!(!out.is_empty());
        assert!(out.iter().all(|&l| l < 996));
    }

    #[test]
    fn random_pattern_issues_nothing() {
        let mut p = pf();
        for &l in &[5u64, 900, 17, 4400, 23, 1, 777] {
            assert!(p.observe(l).is_empty() || false);
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut p = pf();
        p.observe(50);
        p.observe(51);
        p.observe(52);
        let before = p.issued();
        assert!(p.observe(52).is_empty());
        assert_eq!(p.issued(), before);
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let cfg = PrefetchConfig {
            l2_stream: false,
            ..Default::default()
        };
        let mut p = StreamPrefetcher::new(&cfg);
        p.observe(1);
        p.observe(2);
        assert!(p.observe(3).is_empty());
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut p = pf();
        for page in 0..100u64 {
            p.observe(page * LINES_PER_PAGE as u64);
        }
        assert!(p.table.len() <= 16);
    }

    #[test]
    fn next_line_respects_config() {
        let on = PrefetchConfig::default();
        let off = PrefetchConfig {
            l1_next_line: false,
            ..Default::default()
        };
        assert_eq!(l1_next_line(&on, 9), Some(10));
        assert_eq!(l1_next_line(&off, 9), None);
    }
}
