//! Address layout, page tables and placement.
//!
//! Every workload thread owns a private virtual address space. Pages are
//! mapped on first touch to a physical node according to the thread's
//! [`crate::MemPolicy`]; the tiering layer can later migrate pages between
//! nodes (TPP / Colloid, paper §5.8). Physical addresses are synthesised so
//! that node, page and line survive round-trips.

use crate::config::MemPolicy;

/// Cache line size in bytes.
pub const CACHELINE: usize = 64;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// Cache lines per page.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / CACHELINE;

/// A physical memory destination: the egress stage of the Clos network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemNode {
    /// Socket-local DDR5 behind the IMC.
    LocalDram,
    /// DDR5 on the other socket, reached over the cross-socket link (the
    /// paper's "NUMA node" tier: ~164 ns, ~94 GB/s on SPR).
    RemoteDram,
    /// A CXL Type-3 device behind FlexBus, identified by device index.
    CxlDram(u8),
}

impl MemNode {
    pub fn is_cxl(self) -> bool {
        matches!(self, MemNode::CxlDram(_))
    }

    pub fn label(self) -> String {
        match self {
            MemNode::LocalDram => "local".into(),
            MemNode::RemoteDram => "remote".into(),
            MemNode::CxlDram(d) => format!("cxl{d}"),
        }
    }
}

/// A synthesised physical address.
///
/// Bit layout: `[node:8][asid:8][vpage:32][offset:12]` — enough for 16 TiB
/// of per-thread address space, and the node travels with the address so
/// every hierarchy stage can classify the request's destination without a
/// reverse lookup (exactly what the CHA's TOR does with the target field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr(pub u64);

const OFFSET_BITS: u64 = 12;
const VPAGE_BITS: u64 = 32;
const ASID_BITS: u64 = 8;

impl PhysAddr {
    fn compose(node: MemNode, asid: u16, vpage: u64, offset: u64) -> PhysAddr {
        let node_bits: u64 = match node {
            MemNode::LocalDram => 0,
            MemNode::RemoteDram => 255,
            MemNode::CxlDram(d) => 1 + d as u64,
        };
        debug_assert!(vpage < (1 << VPAGE_BITS));
        debug_assert!(offset < (1 << OFFSET_BITS));
        PhysAddr(
            (node_bits << (ASID_BITS + VPAGE_BITS + OFFSET_BITS))
                | ((asid as u64) << (VPAGE_BITS + OFFSET_BITS))
                | (vpage << OFFSET_BITS)
                | offset,
        )
    }

    /// The memory node this address lives on.
    pub fn node(self) -> MemNode {
        let node_bits = self.0 >> (ASID_BITS + VPAGE_BITS + OFFSET_BITS);
        match node_bits {
            0 => MemNode::LocalDram,
            255 => MemNode::RemoteDram,
            d => MemNode::CxlDram((d - 1) as u8),
        }
    }

    /// Cache-line address (offset bits below the line dropped).
    pub fn line(self) -> u64 {
        self.0 / CACHELINE as u64
    }

    /// Physical page number.
    pub fn page(self) -> u64 {
        self.0 >> OFFSET_BITS
    }

    /// Byte offset within the page.
    pub fn offset(self) -> u64 {
        self.0 & ((1 << OFFSET_BITS) - 1)
    }
}

/// Per-thread page table: virtual page → node mapping with first-touch
/// placement and migration support.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    asid: u16,
    policy: MemPolicy,
    /// `vpage → Some(node)` once touched.
    pages: Vec<Option<MemNode>>,
    /// Default CXL device for this space's CXL placements.
    cxl_device: u8,
    /// Pages currently resident on CXL (maintained incrementally).
    cxl_pages: usize,
    /// Total mapped pages.
    mapped_pages: usize,
    /// One-entry translation memo: (pre-modulo page number, resolved
    /// in-bounds vpage, node). Pure memoization of the `translate` lookup —
    /// consecutive accesses to the same page (the common case for a stream
    /// of cacheline-granular ops) skip the `%` division and the table load.
    /// Invalidated whenever `pages` is written (`migrate`).
    tlb: Option<(u64, u64, MemNode)>,
}

impl AddressSpace {
    /// Create an address space covering `size_bytes` of virtual memory.
    pub fn new(asid: u16, size_bytes: usize, policy: MemPolicy, cxl_device: u8) -> Self {
        let n_pages = size_bytes.div_ceil(PAGE_SIZE).max(1);
        AddressSpace {
            asid,
            policy,
            pages: vec![None; n_pages],
            cxl_device,
            cxl_pages: 0,
            mapped_pages: 0,
            tlb: None,
        }
    }

    /// Number of virtual pages in the space.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Size of the space in bytes.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Pages currently placed on CXL.
    pub fn cxl_resident_pages(&self) -> usize {
        self.cxl_pages
    }

    /// Pages touched at least once.
    pub fn mapped_pages(&self) -> usize {
        self.mapped_pages
    }

    /// First-touch placement: deterministic in the page number so runs are
    /// reproducible. With `Interleave{f}`, page `p` goes to CXL iff
    /// `fract(p * φ) < f` (low-discrepancy, so any contiguous window of the
    /// address space sees ≈f of its pages on CXL).
    fn place(&self, vpage: u64) -> MemNode {
        if matches!(self.policy, MemPolicy::RemoteNuma) {
            return MemNode::RemoteDram;
        }
        let f = self.policy.cxl_fraction();
        if f <= 0.0 {
            return MemNode::LocalDram;
        }
        if f >= 1.0 {
            return MemNode::CxlDram(self.cxl_device);
        }
        const PHI: f64 = 0.618_033_988_749_894_9;
        let x = (vpage as f64 * PHI).fract();
        if x < f {
            MemNode::CxlDram(self.cxl_device)
        } else {
            MemNode::LocalDram
        }
    }

    /// Translate a virtual address, mapping the page on first touch.
    pub fn translate(&mut self, vaddr: u64) -> PhysAddr {
        let raw = vaddr / PAGE_SIZE as u64;
        let offset = vaddr % PAGE_SIZE as u64;
        if let Some((tag, vpage, node)) = self.tlb {
            if tag == raw {
                return PhysAddr::compose(node, self.asid, vpage, offset);
            }
        }
        let vpage = raw % self.pages.len() as u64;
        let node = match self.pages[vpage as usize] {
            Some(n) => n,
            None => {
                let n = self.place(vpage);
                self.pages[vpage as usize] = Some(n);
                self.mapped_pages += 1;
                if n.is_cxl() {
                    self.cxl_pages += 1;
                }
                n
            }
        };
        self.tlb = Some((raw, vpage, node));
        PhysAddr::compose(node, self.asid, vpage, offset)
    }

    /// Current node of a virtual page, if mapped.
    pub fn page_node(&self, vpage: u64) -> Option<MemNode> {
        self.pages.get(vpage as usize).copied().flatten()
    }

    /// Migrate a page to `to`. Returns the previous node, or `None` if the
    /// page was unmapped (in which case it is now mapped to `to`).
    ///
    /// This is the mechanism TPP/Colloid use for promotion (CXL → local) and
    /// demotion (local → CXL).
    pub fn migrate(&mut self, vpage: u64, to: MemNode) -> Option<MemNode> {
        let idx = (vpage as usize) % self.pages.len();
        let prev = self.pages[idx];
        match prev {
            Some(n) if n.is_cxl() && !to.is_cxl() => self.cxl_pages -= 1,
            Some(n) if !n.is_cxl() && to.is_cxl() => self.cxl_pages += 1,
            None => {
                self.mapped_pages += 1;
                if to.is_cxl() {
                    self.cxl_pages += 1;
                }
            }
            _ => {}
        }
        self.pages[idx] = Some(to);
        self.tlb = None;
        prev
    }

    /// The policy this space was created with.
    pub fn policy(&self) -> MemPolicy {
        self.policy
    }

    /// The ASID (thread id) of this space.
    pub fn asid(&self) -> u16 {
        self.asid
    }
}

/// Hash a line address onto one of `n` LLC slices (the proprietary slice
/// hash on real parts; a Fibonacci multiplicative hash here — uniform and
/// deterministic).
pub fn slice_of(line: u64, n_slices: usize) -> usize {
    debug_assert!(n_slices > 0);
    let h = ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33) as usize;
    // Slice counts are powers of two on every shipped config; `% 2^k` is
    // `& (2^k - 1)`, identical result without the division.
    if n_slices.is_power_of_two() {
        h & (n_slices - 1)
    } else {
        h % n_slices
    }
}

/// Hash a line address onto one of `n` DRAM pseudo-channels.
pub fn channel_of(line: u64, n_channels: usize) -> usize {
    debug_assert!(n_channels > 0);
    let h = ((line.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)) >> 29) as usize;
    if n_channels.is_power_of_two() {
        h & (n_channels - 1)
    } else {
        h % n_channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_round_trips_fields() {
        let a = PhysAddr::compose(MemNode::CxlDram(2), 7, 12345, 321);
        assert_eq!(a.node(), MemNode::CxlDram(2));
        assert_eq!(a.offset(), 321);
        let b = PhysAddr::compose(MemNode::LocalDram, 7, 12345, 321);
        assert_eq!(b.node(), MemNode::LocalDram);
        assert_ne!(a.line(), b.line(), "different nodes must not alias lines");
    }

    #[test]
    fn first_touch_respects_pure_policies() {
        let mut local = AddressSpace::new(0, 1 << 20, MemPolicy::Local, 0);
        let mut cxl = AddressSpace::new(1, 1 << 20, MemPolicy::Cxl, 0);
        for i in 0..256 {
            assert_eq!(local.translate(i * 4096).node(), MemNode::LocalDram);
            assert_eq!(cxl.translate(i * 4096).node(), MemNode::CxlDram(0));
        }
        assert_eq!(local.cxl_resident_pages(), 0);
        assert_eq!(cxl.cxl_resident_pages(), 256);
    }

    #[test]
    fn interleave_fraction_is_respected() {
        let f = 0.3;
        let mut s = AddressSpace::new(2, 4 << 20, MemPolicy::Interleave { cxl_fraction: f }, 0);
        let n = s.n_pages();
        for p in 0..n {
            s.translate(p as u64 * PAGE_SIZE as u64);
        }
        let got = s.cxl_resident_pages() as f64 / n as f64;
        assert!((got - f).abs() < 0.05, "wanted ≈{f}, got {got}");
    }

    #[test]
    fn translate_is_stable_after_first_touch() {
        let mut s = AddressSpace::new(3, 1 << 20, MemPolicy::Interleave { cxl_fraction: 0.5 }, 1);
        let a1 = s.translate(0x1234);
        let a2 = s.translate(0x1234);
        assert_eq!(a1, a2);
    }

    #[test]
    fn migration_updates_residency_and_translation() {
        let mut s = AddressSpace::new(4, 1 << 20, MemPolicy::Cxl, 0);
        let before = s.translate(0);
        assert!(before.node().is_cxl());
        let prev = s.migrate(0, MemNode::LocalDram);
        assert_eq!(prev, Some(MemNode::CxlDram(0)));
        assert_eq!(s.cxl_resident_pages(), 0);
        let after = s.translate(0);
        assert_eq!(after.node(), MemNode::LocalDram);
    }

    #[test]
    fn migrating_unmapped_page_maps_it() {
        let mut s = AddressSpace::new(5, 1 << 20, MemPolicy::Local, 0);
        assert_eq!(s.migrate(3, MemNode::CxlDram(0)), None);
        assert_eq!(s.page_node(3), Some(MemNode::CxlDram(0)));
        assert_eq!(s.cxl_resident_pages(), 1);
    }

    #[test]
    fn slice_and_channel_hashes_cover_all_targets() {
        let mut slices = std::collections::HashSet::new();
        let mut chans = std::collections::HashSet::new();
        for line in 0..10_000u64 {
            slices.insert(slice_of(line, 8));
            chans.insert(channel_of(line, 4));
        }
        assert_eq!(slices.len(), 8);
        assert_eq!(chans.len(), 4);
    }

    #[test]
    fn slice_hash_is_roughly_uniform() {
        let n = 8;
        let mut counts = vec![0usize; n];
        let samples = 80_000u64;
        for line in 0..samples {
            counts[slice_of(line, n)] += 1;
        }
        let expect = samples as usize / n;
        for c in counts {
            assert!((c as i64 - expect as i64).unsigned_abs() < expect as u64 / 5);
        }
    }
}
