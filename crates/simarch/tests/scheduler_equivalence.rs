//! Differential proof of the event-wheel scheduler.
//!
//! The wheel (`SchedMode::Wheel`, the default) and the retained per-tick
//! reference scheduler (`SchedMode::Reference`) must be *indistinguishable
//! through the PMU*: for randomized (scenario, fault plan, epochs,
//! topology) tuples, both modes must emit byte-identical counter streams
//! at every epoch boundary. Conservation is audited on both sides for
//! free — these are debug builds, so `Machine::run_epoch` asserts the
//! full invariant set (flow conservation included) every epoch.
//!
//! The scenarios deliberately include heavy `work` weights that push
//! cores multiple epochs past the boundary, so the wheel side exercises
//! its quiescence fast-forward (`skip_quiescent_epochs`) against the
//! reference's epoch-by-epoch crawl, and fault plans whose windows open
//! inside those idle stretches, so the wake-at-edge clamp is load-bearing.

use simarch::trace::TraceSource;
use simarch::{FaultPlan, Machine, MachineConfig, MemOp, MemPolicy, SchedMode, Workload};

/// The same splitmix64 the fault seeder uses — good enough scalar PRNG,
/// no dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded pseudo-random access trace: loads, dependent loads, stores
/// and software prefetches over a bounded footprint with variable work.
/// Two instances built from the same seed replay identically.
struct RandomTrace {
    rng: SplitMix64,
    footprint: u64,
    remaining: usize,
    work: u32,
}

impl RandomTrace {
    fn new(seed: u64, footprint: u64, ops: usize, work: u32) -> RandomTrace {
        RandomTrace {
            rng: SplitMix64(seed),
            footprint,
            remaining: ops,
            work,
        }
    }
}

impl TraceSource for RandomTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = (self.rng.below(self.footprint / 64)) * 64;
        let op = match self.rng.below(10) {
            0..=5 => MemOp::load(addr),
            6 => MemOp::dependent_load(addr),
            7..=8 => MemOp::store(addr),
            _ => MemOp::swpf(addr),
        };
        Some(op.with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint as usize
    }
}

/// One randomized scenario drawn from `seed`.
struct Scenario {
    seed: u64,
    ops: usize,
    work: u32,
    footprint: u64,
    policy: MemPolicy,
    fault_windows: usize,
    epochs: u64,
}

impl Scenario {
    fn draw(seed: u64) -> Scenario {
        let mut rng = SplitMix64(seed ^ 0xC0FF_EE00_5EED);
        let policy = match rng.below(4) {
            0 => MemPolicy::Local,
            1 => MemPolicy::Cxl,
            2 => MemPolicy::RemoteNuma,
            _ => MemPolicy::Interleave {
                cxl_fraction: (rng.below(100) as f64) / 100.0,
            },
        };
        Scenario {
            seed,
            ops: 400 + rng.below(1200) as usize,
            // High work weights (>> epoch_cycles) force multi-epoch
            // catch-up gaps — the quiescence-skip path under test.
            work: [1u32, 4, 40, 1700][rng.below(4) as usize],
            footprint: 1 << (14 + rng.below(6)),
            policy,
            fault_windows: rng.below(4) as usize,
            epochs: 30 + rng.below(60),
        }
    }

    fn build(&self, mode: SchedMode) -> Machine {
        let mut cfg = MachineConfig::tiny();
        // Short epochs (like the profiler's hot configuration) make the
        // heavy `work` weights span multiple epochs, so the wheel side
        // actually takes its quiescence fast-forward.
        cfg.epoch_cycles = 500;
        let mut m = Machine::new(cfg.clone());
        m.set_sched_mode(mode);
        for core in 0..cfg.cores {
            m.attach(
                core,
                Workload::new(
                    format!("rand{core}"),
                    Box::new(RandomTrace::new(
                        self.seed ^ (core as u64) << 32,
                        self.footprint,
                        self.ops,
                        self.work,
                    )),
                    self.policy,
                ),
            );
        }
        if self.fault_windows > 0 {
            m.set_fault_plan(FaultPlan::from_seed(
                self.seed,
                self.fault_windows,
                &cfg,
                self.epochs,
            ));
        }
        m
    }
}

/// Every counter of every bank, flattened — the full PMU byte stream of
/// one epoch boundary.
fn flatten(snap: &pmu::SystemSnapshot) -> Vec<u64> {
    let mut out = vec![snap.cycle];
    let p = &snap.pmu;
    for b in &p.cores {
        out.extend_from_slice(b.raw());
    }
    for b in &p.chas {
        out.extend_from_slice(b.raw());
    }
    for b in &p.imcs {
        out.extend_from_slice(b.raw());
    }
    for b in &p.m2ps {
        out.extend_from_slice(b.raw());
    }
    for b in &p.cxls {
        out.extend_from_slice(b.raw());
    }
    for b in &p.switches {
        out.extend_from_slice(b.raw());
    }
    for b in &p.pools {
        out.extend_from_slice(b.raw());
    }
    out
}

/// Epoch-by-epoch counter stream over `epochs` epochs.
fn machine_stream(m: &mut Machine, epochs: u64) -> Vec<Vec<u64>> {
    (0..epochs)
        .map(|_| flatten(&m.run_epoch().snapshot))
        .collect()
}

#[test]
fn wheel_matches_reference_across_randomized_scenarios() {
    for seed in 0..12u64 {
        let sc = Scenario::draw(seed.wrapping_mul(0x9E37_79B9) ^ 0x5CED);
        let mut wheel = sc.build(SchedMode::Wheel);
        let mut reference = sc.build(SchedMode::Reference);
        let ws = machine_stream(&mut wheel, sc.epochs);
        let rs = machine_stream(&mut reference, sc.epochs);
        for (e, (w, r)) in ws.iter().zip(rs.iter()).enumerate() {
            assert_eq!(
                w, r,
                "seed {seed}: counter stream diverged at epoch {e} \
                 (ops={}, work={}, policy={:?}, faults={})",
                sc.ops, sc.work, sc.policy, sc.fault_windows
            );
        }
    }
}

#[test]
fn wheel_quiescence_skip_matches_reference_to_completion() {
    // run_to_completion is where the wheel fast-forwards idle epochs; the
    // reference crawls them one by one. Final counters, cycle counts and
    // op totals must agree exactly — including under fault plans whose
    // windows open inside the idle stretches.
    for seed in 0..8u64 {
        let sc = Scenario::draw(seed ^ 0xD1FF_5EED);
        let mut wheel = sc.build(SchedMode::Wheel);
        let mut reference = sc.build(SchedMode::Reference);
        let wsum = wheel.run_to_completion(8_000).expect("wheel run finishes");
        let rsum = reference
            .run_to_completion(8_000)
            .expect("reference run finishes");
        assert_eq!(wsum.epochs, rsum.epochs, "seed {seed}: epoch counts differ");
        assert_eq!(wsum.cycles, rsum.cycles, "seed {seed}: cycle counts differ");
        assert_eq!(
            wsum.ops_per_core, rsum.ops_per_core,
            "seed {seed}: op totals differ"
        );
        assert_eq!(
            flatten(&wheel.pmu.snapshot(wheel.now())),
            flatten(&reference.pmu.snapshot(reference.now())),
            "seed {seed}: final PMU state diverged (work={})",
            sc.work
        );
    }
}

#[test]
fn quiescence_skip_is_exercised_and_identical_under_faults() {
    // Deterministic worst case for the fast-forward: work ≫ epoch_cycles
    // guarantees multi-epoch idle gaps every op, and a fault plan drops
    // window edges into those gaps. Not seed-dependent — this pins the
    // skip path even if the random scenarios above happen not to draw it.
    let sc = Scenario {
        seed: 0xBEE5,
        ops: 500,
        work: 1700,
        footprint: 1 << 16,
        policy: MemPolicy::Cxl,
        fault_windows: 3,
        epochs: 0, // unused: this test runs to completion
    };
    let mut wheel = sc.build(SchedMode::Wheel);
    let mut reference = sc.build(SchedMode::Reference);
    let wsum = wheel.run_to_completion(50_000).expect("wheel finishes");
    let rsum = reference
        .run_to_completion(50_000)
        .expect("reference finishes");
    assert!(
        wsum.epochs > 1_000,
        "scenario too light to exercise the skip ({} epochs)",
        wsum.epochs
    );
    assert_eq!(wsum.epochs, rsum.epochs);
    assert_eq!(wsum.cycles, rsum.cycles);
    assert_eq!(wsum.ops_per_core, rsum.ops_per_core);
    assert_eq!(
        flatten(&wheel.pmu.snapshot(wheel.now())),
        flatten(&reference.pmu.snapshot(reference.now()))
    );
}

#[test]
fn wheel_matches_reference_with_fabric_topology() {
    use simarch::{Fabric, FabricConfig};
    // Fabric on/off × host count: the switch and pool are request-driven
    // stages riding the same scheduler; the per-host machines flip modes.
    for seed in 0..4u64 {
        for hosts in [1usize, 2] {
            let sc = Scenario::draw(seed ^ (hosts as u64) << 17 ^ 0xFAB);
            let build = |mode: SchedMode| {
                let mut cfg = MachineConfig::tiny();
                cfg.epoch_cycles = 2_000;
                let mut f = Fabric::new(cfg.clone(), FabricConfig::balanced(hosts, &cfg));
                f.set_sched_mode(mode);
                for h in 0..hosts {
                    f.attach(
                        h,
                        0,
                        Workload::new(
                            format!("h{h}"),
                            Box::new(RandomTrace::new(
                                sc.seed ^ (h as u64) << 40,
                                sc.footprint,
                                sc.ops.min(800),
                                sc.work.min(40),
                            )),
                            MemPolicy::Cxl,
                        ),
                    );
                }
                f
            };
            let mut wheel = build(SchedMode::Wheel);
            let mut reference = build(SchedMode::Reference);
            for e in 0..sc.epochs.min(40) {
                let we = wheel.run_epoch();
                let re = reference.run_epoch();
                for (h, (w, r)) in we.hosts.iter().zip(re.hosts.iter()).enumerate() {
                    assert_eq!(
                        flatten(&w.snapshot),
                        flatten(&r.snapshot),
                        "seed {seed}, hosts {hosts}: host {h} diverged at epoch {e}"
                    );
                }
                assert_eq!(
                    flatten(&we.fabric),
                    flatten(&re.fabric),
                    "seed {seed}, hosts {hosts}: fabric banks diverged at epoch {e}"
                );
            }
        }
    }
}
