//! Differential proof of the batched datapath.
//!
//! The staged batch pipeline (`DatapathMode::Batched`, the default) and the
//! retained per-op reference walk (`DatapathMode::Reference`) must be
//! *indistinguishable through the PMU*: for randomized (scenario, fault
//! plan, epochs, topology) tuples, both datapaths must emit byte-identical
//! counter streams at every epoch boundary.
//!
//! The datapath axis is orthogonal to the scheduler axis, so the harness
//! sweeps the full 2×2 (`SchedMode` × `DatapathMode`) grid: any divergence
//! that only manifests when batching rides the wheel's quiescence
//! fast-forward (or only on the reference scheduler's epoch crawl) is
//! caught here, not in production. Debug builds assert the full invariant
//! set (flow conservation included) every epoch on all four corners.

use simarch::trace::TraceSource;
use simarch::{
    DatapathMode, Fabric, FabricConfig, FaultPlan, Machine, MachineConfig, MemOp, MemPolicy,
    SchedMode, Workload,
};

/// The same splitmix64 the fault seeder uses — good enough scalar PRNG,
/// no dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded pseudo-random access trace: loads, dependent loads, stores
/// and software prefetches over a bounded footprint with variable work.
/// Two instances built from the same seed replay identically.
struct RandomTrace {
    rng: SplitMix64,
    footprint: u64,
    remaining: usize,
    work: u32,
}

impl RandomTrace {
    fn new(seed: u64, footprint: u64, ops: usize, work: u32) -> RandomTrace {
        RandomTrace {
            rng: SplitMix64(seed),
            footprint,
            remaining: ops,
            work,
        }
    }
}

impl TraceSource for RandomTrace {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = (self.rng.below(self.footprint / 64)) * 64;
        let op = match self.rng.below(10) {
            0..=5 => MemOp::load(addr),
            6 => MemOp::dependent_load(addr),
            7..=8 => MemOp::store(addr),
            _ => MemOp::swpf(addr),
        };
        Some(op.with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint as usize
    }
}

/// One randomized scenario drawn from `seed`.
struct Scenario {
    seed: u64,
    ops: usize,
    work: u32,
    footprint: u64,
    policy: MemPolicy,
    fault_windows: usize,
    epochs: u64,
}

impl Scenario {
    fn draw(seed: u64) -> Scenario {
        let mut rng = SplitMix64(seed ^ 0xC0FF_EE00_5EED);
        let policy = match rng.below(4) {
            0 => MemPolicy::Local,
            1 => MemPolicy::Cxl,
            2 => MemPolicy::RemoteNuma,
            _ => MemPolicy::Interleave {
                cxl_fraction: (rng.below(100) as f64) / 100.0,
            },
        };
        Scenario {
            seed,
            ops: 400 + rng.below(1200) as usize,
            // Mixed work weights: small ones keep many ops in flight per
            // epoch (deep batches), the huge one forces multi-epoch
            // catch-up gaps (batch slices ending mid-op).
            work: [1u32, 4, 40, 1700][rng.below(4) as usize],
            footprint: 1 << (14 + rng.below(6)),
            policy,
            fault_windows: rng.below(4) as usize,
            epochs: 30 + rng.below(60),
        }
    }

    fn build(&self, sched: SchedMode, datapath: DatapathMode) -> Machine {
        let mut cfg = MachineConfig::tiny();
        // Short epochs (like the profiler's hot configuration): batch
        // slices end at the epoch edge constantly, so slice-boundary
        // carry state is exercised every few ops.
        cfg.epoch_cycles = 500;
        let mut m = Machine::new(cfg.clone());
        m.set_sched_mode(sched);
        m.set_datapath_mode(datapath);
        for core in 0..cfg.cores {
            m.attach(
                core,
                Workload::new(
                    format!("rand{core}"),
                    Box::new(RandomTrace::new(
                        self.seed ^ (core as u64) << 32,
                        self.footprint,
                        self.ops,
                        self.work,
                    )),
                    self.policy,
                ),
            );
        }
        if self.fault_windows > 0 {
            m.set_fault_plan(FaultPlan::from_seed(
                self.seed,
                self.fault_windows,
                &cfg,
                self.epochs,
            ));
        }
        m
    }
}

/// Every counter of every bank, flattened — the full PMU byte stream of
/// one epoch boundary.
fn flatten(snap: &pmu::SystemSnapshot) -> Vec<u64> {
    let mut out = vec![snap.cycle];
    let p = &snap.pmu;
    for b in &p.cores {
        out.extend_from_slice(b.raw());
    }
    for b in &p.chas {
        out.extend_from_slice(b.raw());
    }
    for b in &p.imcs {
        out.extend_from_slice(b.raw());
    }
    for b in &p.m2ps {
        out.extend_from_slice(b.raw());
    }
    for b in &p.cxls {
        out.extend_from_slice(b.raw());
    }
    for b in &p.switches {
        out.extend_from_slice(b.raw());
    }
    for b in &p.pools {
        out.extend_from_slice(b.raw());
    }
    out
}

/// Epoch-by-epoch counter stream over `epochs` epochs.
fn machine_stream(m: &mut Machine, epochs: u64) -> Vec<Vec<u64>> {
    (0..epochs)
        .map(|_| flatten(&m.run_epoch().snapshot))
        .collect()
}

/// The full scheduler × datapath grid. The (Reference, Reference) corner
/// is the oracle; every other corner must match it stream-for-stream.
const GRID: [(SchedMode, DatapathMode); 4] = [
    (SchedMode::Reference, DatapathMode::Reference),
    (SchedMode::Reference, DatapathMode::Batched),
    (SchedMode::Wheel, DatapathMode::Reference),
    (SchedMode::Wheel, DatapathMode::Batched),
];

#[test]
fn batched_matches_reference_across_randomized_scenarios() {
    for seed in 0..12u64 {
        let sc = Scenario::draw(seed.wrapping_mul(0x9E37_79B9) ^ 0xDA7A);
        let mut streams = GRID.map(|(s, d)| {
            let mut m = sc.build(s, d);
            machine_stream(&mut m, sc.epochs)
        });
        let oracle = streams[0].clone();
        for (i, stream) in streams.iter_mut().enumerate().skip(1) {
            let (s, d) = GRID[i];
            for (e, (got, want)) in stream.iter().zip(oracle.iter()).enumerate() {
                assert_eq!(
                    got, want,
                    "seed {seed}: ({s:?}, {d:?}) diverged from the oracle at \
                     epoch {e} (ops={}, work={}, policy={:?}, faults={})",
                    sc.ops, sc.work, sc.policy, sc.fault_windows
                );
            }
        }
    }
}

#[test]
fn batched_matches_reference_to_completion() {
    // run_to_completion drains the tail: final partial batches, LFB/SB
    // flushes, and the wheel's quiescence fast-forward all land here.
    for seed in 0..8u64 {
        let sc = Scenario::draw(seed ^ 0xBA7C_5EED);
        let summaries = GRID.map(|(s, d)| {
            let mut m = sc.build(s, d);
            let sum = m
                .run_to_completion(8_000)
                .unwrap_or_else(|_| panic!("({s:?}, {d:?}) run finishes"));
            (sum, flatten(&m.pmu.snapshot(m.now())))
        });
        let (oracle_sum, oracle_pmu) = &summaries[0];
        for (i, (sum, pmu)) in summaries.iter().enumerate().skip(1) {
            let (s, d) = GRID[i];
            assert_eq!(
                sum.epochs, oracle_sum.epochs,
                "seed {seed}: ({s:?}, {d:?}) epoch count differs"
            );
            assert_eq!(
                sum.cycles, oracle_sum.cycles,
                "seed {seed}: ({s:?}, {d:?}) cycle count differs"
            );
            assert_eq!(
                sum.ops_per_core, oracle_sum.ops_per_core,
                "seed {seed}: ({s:?}, {d:?}) op totals differ"
            );
            assert_eq!(
                pmu, oracle_pmu,
                "seed {seed}: ({s:?}, {d:?}) final PMU state diverged (work={})",
                sc.work
            );
        }
    }
}

#[test]
fn batched_store_heavy_stream_is_identical_under_faults() {
    // Deterministic worst case for the store path: store-buffer pressure
    // plus fault windows that open mid-run. The batch store pass acquires
    // SB slots and coalesces against in-flight RFOs; any slip in that
    // ordering shows up as a counter diff here.
    struct StoreTrace {
        rng: SplitMix64,
        remaining: usize,
    }
    impl TraceSource for StoreTrace {
        fn next_op(&mut self) -> Option<MemOp> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let addr = self.rng.below(1 << 10) * 64;
            // 70% stores, rest loads — far past the SB-pressure knee.
            let op = if self.rng.below(10) < 7 {
                MemOp::store(addr)
            } else {
                MemOp::load(addr)
            };
            Some(op.with_work(2))
        }
        fn footprint(&self) -> usize {
            1 << 16
        }
    }
    let build = |sched: SchedMode, datapath: DatapathMode| {
        let mut cfg = MachineConfig::tiny();
        cfg.epoch_cycles = 500;
        let mut m = Machine::new(cfg.clone());
        m.set_sched_mode(sched);
        m.set_datapath_mode(datapath);
        for core in 0..cfg.cores {
            m.attach(
                core,
                Workload::new(
                    format!("st{core}"),
                    Box::new(StoreTrace {
                        rng: SplitMix64(0x57AB_1E ^ (core as u64) << 24),
                        remaining: 1_500,
                    }),
                    MemPolicy::Cxl,
                ),
            );
        }
        m.set_fault_plan(FaultPlan::from_seed(0x57AB_1E, 3, &cfg, 80));
        m
    };
    let streams = GRID.map(|(s, d)| {
        let mut m = build(s, d);
        machine_stream(&mut m, 80)
    });
    for (i, stream) in streams.iter().enumerate().skip(1) {
        let (s, d) = GRID[i];
        assert_eq!(
            stream, &streams[0],
            "({s:?}, {d:?}) diverged from the oracle on the store-heavy stream"
        );
    }
}

#[test]
fn batched_matches_reference_with_fabric_topology() {
    // Fabric topologies, 1 and 2 hosts: per-host batching must never
    // reorder the offcore requests a host feeds through the shared
    // switch/pool stages, or cross-host arbitration (and therefore every
    // host's counters) shifts.
    for seed in 0..4u64 {
        for hosts in [1usize, 2] {
            let sc = Scenario::draw(seed ^ (hosts as u64) << 17 ^ 0xFAB2);
            let build = |sched: SchedMode, datapath: DatapathMode| {
                let mut cfg = MachineConfig::tiny();
                cfg.epoch_cycles = 2_000;
                let mut f = Fabric::new(cfg.clone(), FabricConfig::balanced(hosts, &cfg));
                f.set_sched_mode(sched);
                f.set_datapath_mode(datapath);
                for h in 0..hosts {
                    f.attach(
                        h,
                        0,
                        Workload::new(
                            format!("h{h}"),
                            Box::new(RandomTrace::new(
                                sc.seed ^ (h as u64) << 40,
                                sc.footprint,
                                sc.ops.min(800),
                                sc.work.min(40),
                            )),
                            MemPolicy::Cxl,
                        ),
                    );
                }
                f
            };
            let epochs = sc.epochs.min(40);
            let streams = GRID.map(|(s, d)| {
                let mut f = build(s, d);
                (0..epochs)
                    .map(|_| {
                        let ep = f.run_epoch();
                        let mut row: Vec<Vec<u64>> =
                            ep.hosts.iter().map(|h| flatten(&h.snapshot)).collect();
                        row.push(flatten(&ep.fabric));
                        row
                    })
                    .collect::<Vec<_>>()
            });
            for (i, stream) in streams.iter().enumerate().skip(1) {
                let (s, d) = GRID[i];
                for (e, (got, want)) in stream.iter().zip(streams[0].iter()).enumerate() {
                    assert_eq!(
                        got, want,
                        "seed {seed}, hosts {hosts}: ({s:?}, {d:?}) diverged \
                         from the oracle at epoch {e}"
                    );
                }
            }
        }
    }
}
