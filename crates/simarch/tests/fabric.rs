//! Fabric integration: degenerate single-host identity and arbitration
//! fairness under adversarial load.
//!
//! The 1-host fabric must be a *byte-for-byte* no-op relative to a bare
//! `Machine`: with one tenant the shared switch + pooled MC see the same
//! arrival sequence as the private "alone" replica, the excess is
//! structurally zero, and the backpressure never perturbs the machine.
//! This is the invariant that lets every pre-fabric golden CSV survive
//! the refactor unchanged.

use simarch::switch::{Arbitration, CxlSwitch};
use simarch::{Fabric, FabricConfig, Machine, MachineConfig, MemPolicy, Workload};

fn stream(ops: usize) -> Workload {
    Workload::new(
        "stream",
        Box::new(simarch::trace::SeqReadTrace::new(1 << 20, ops)),
        MemPolicy::Interleave { cxl_fraction: 0.5 },
    )
}

/// Every machine-side PMU bank of `m`, flattened to raw words.
fn machine_raw(m: &Machine) -> Vec<u64> {
    let mut raw = Vec::new();
    for b in &m.pmu.cores {
        raw.extend_from_slice(b.raw());
    }
    for b in &m.pmu.chas {
        raw.extend_from_slice(b.raw());
    }
    for b in &m.pmu.imcs {
        raw.extend_from_slice(b.raw());
    }
    for b in &m.pmu.m2ps {
        raw.extend_from_slice(b.raw());
    }
    for b in &m.pmu.cxls {
        raw.extend_from_slice(b.raw());
    }
    raw
}

#[test]
fn single_host_fabric_is_byte_identical_to_a_bare_machine() {
    let cfg = MachineConfig::tiny();
    let mut bare = Machine::new(cfg.clone());
    bare.attach(0, stream(20_000));
    let mut fabric = Fabric::new(cfg.clone(), FabricConfig::balanced(1, &cfg));
    fabric.attach(0, 0, stream(20_000));
    // Epoch-by-epoch comparison: the fabric must not perturb the machine
    // at ANY boundary, not just at the end (a transient excess would
    // disqualify the degenerate-identity claim even if it later washed
    // out).
    let mut epochs = 0;
    while !bare.all_done() {
        bare.run_epoch();
        fabric.run_epoch();
        assert_eq!(
            machine_raw(&bare),
            machine_raw(fabric.host(0)),
            "1-host fabric diverged from the bare machine at epoch {epochs}"
        );
        epochs += 1;
        assert!(epochs < 10_000, "workload failed to finish");
    }
    assert!(fabric.host(0).all_done());
    assert!(epochs > 1, "test must cover multiple epochs");
}

#[test]
fn single_host_fabric_reports_zero_excess() {
    let cfg = MachineConfig::tiny();
    let mut fabric = Fabric::new(cfg.clone(), FabricConfig::balanced(1, &cfg));
    fabric.attach(0, 0, stream(1000));
    fabric.run_to_completion(10_000).expect("must finish");
    let snap = fabric.fabric_snapshot();
    assert_eq!(
        snap.pmu.pools[0].read(pmu::PoolEvent::ExcessWaitCycles),
        0,
        "one tenant cannot experience cross-tenant excess"
    );
    assert!(
        snap.pmu.switches[0].read(pmu::SwitchEvent::IngressInserts) > 0,
        "traffic must still flow through the fabric stages"
    );
}

/// splitmix64, locally: the property inputs must be a pure function of
/// the seed (no `rand`, no OS entropy), same as every fault plan.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Round-robin arbitration: across 10k randomized epochs, (a) every
/// queued request is granted (conservation), and (b) no backlogged port
/// waits more than `ports` grants between two of its own grants
/// (starvation-freedom). Port loads are adversarial: some ports flood,
/// some trickle, some go silent for whole epochs.
#[test]
fn round_robin_starves_no_port_across_10k_random_epochs() {
    const PORTS: usize = 4;
    const EPOCHS: u64 = 10_000;
    let mut rng = SplitMix64(0x5eed_cafe);
    let mut sw = CxlSwitch::new(PORTS, 10, 3, Arbitration::RoundRobin);
    let mut total_inserted = 0u64;
    let mut total_granted = 0u64;
    for epoch in 0..EPOCHS {
        // Epochs spaced far enough apart that the link always drains
        // between rounds; all arrivals land at the epoch start so every
        // port with load is backlogged for the whole round (the regime
        // where starvation would show).
        let start = epoch * 1_000_000;
        let mut inserted = 0u64;
        for p in 0..PORTS {
            // Adversarial mix: port 0 floods, others draw 0..=8.
            let n = if p == 0 {
                8 + rng.below(8)
            } else {
                rng.below(9)
            };
            for _ in 0..n {
                sw.enqueue(p, start, rng.below(2) == 1);
                inserted += 1;
            }
        }
        let grants = sw.drain_queues();
        assert_eq!(
            grants.len() as u64,
            inserted,
            "epoch {epoch}: requests lost in arbitration"
        );
        // Starvation bound: between consecutive grants of a port that
        // stayed backlogged, at most PORTS grants elapse (round-robin
        // visits every other port at most once in between).
        let mut last_grant: [Option<usize>; PORTS] = [None; PORTS];
        for (i, g) in grants.iter().enumerate() {
            if let Some(prev) = last_grant[g.port] {
                assert!(
                    i - prev <= PORTS,
                    "epoch {epoch}: port {} waited {} grants (round-robin bound is {PORTS})",
                    g.port,
                    i - prev
                );
            }
            last_grant[g.port] = Some(i);
        }
        total_inserted += inserted;
        total_granted += grants.len() as u64;
    }
    assert_eq!(total_inserted, total_granted);
    assert!(total_inserted > 100_000, "property must exercise real load");
}
