//! Phase-changing and compute-bound generators.
//!
//! `MixedPhase` models compiler-like applications (`602.gcc_s`) whose
//! behaviour shifts between phases — the paper's Case 1 compares two
//! `602.gcc_s` snapshots where the RFO share of CXL hits jumps from 1.1% to
//! 69.0%. `ComputeBound` models `541.leela_r` / `548.exchange2_r`: tiny
//! working sets, high work per access.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simarch::request::MemOp;
use simarch::TraceSource;

/// One phase of a [`MixedPhase`] program.
#[derive(Clone, Copy, Debug)]
pub struct Phase {
    /// Ops in this phase.
    pub ops: u64,
    /// Fraction of accesses that are stores.
    pub write_ratio: f64,
    /// Fraction of accesses that are random (rest is streaming).
    pub random_ratio: f64,
    /// Non-memory work per access.
    pub work: u32,
    /// Working-set fraction of the footprint this phase touches.
    pub ws_fraction: f64,
}

/// A program that cycles through a list of phases.
pub struct MixedPhase {
    footprint: usize,
    phases: Vec<Phase>,
    rng: StdRng,
    phase_idx: usize,
    ops_in_phase: u64,
    remaining: u64,
    pos: u64,
    n: u64,
}

impl MixedPhase {
    pub fn new(footprint: usize, phases: Vec<Phase>, total_ops: u64, seed: u64) -> Self {
        assert!(!phases.is_empty());
        MixedPhase {
            footprint,
            phases,
            rng: StdRng::seed_from_u64(seed),
            phase_idx: 0,
            ops_in_phase: 0,
            remaining: total_ops,
            pos: 0,
            n: 0,
        }
    }

    /// A gcc-like two-phase program: a read-mostly streaming parse phase and
    /// a write-heavy random codegen phase (drives the paper's Case-1 RFO
    /// shift between snapshots).
    pub fn gcc_like(footprint: usize, total_ops: u64, seed: u64) -> Self {
        MixedPhase::new(
            footprint,
            vec![
                Phase {
                    ops: 200_000,
                    write_ratio: 0.05,
                    random_ratio: 0.3,
                    work: 6,
                    ws_fraction: 0.25,
                },
                Phase {
                    ops: 200_000,
                    write_ratio: 0.45,
                    random_ratio: 0.7,
                    work: 2,
                    ws_fraction: 1.0,
                },
            ],
            total_ops,
            seed,
        )
    }

    /// Index of the current phase (tests / reports).
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }
}

impl TraceSource for MixedPhase {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.n += 1;
        let phase = self.phases[self.phase_idx];
        self.ops_in_phase += 1;
        if self.ops_in_phase >= phase.ops {
            self.ops_in_phase = 0;
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
        }
        let ws = ((self.footprint as f64 * phase.ws_fraction) as u64).max(4096);
        let addr = if self.rng.random_bool(phase.random_ratio) {
            self.rng.random_range(0..ws / 64) * 64
        } else {
            self.pos = (self.pos + 64) % ws;
            self.pos
        };
        let op = if self.rng.random_bool(phase.write_ratio) {
            MemOp::store(addr)
        } else {
            MemOp::load(addr)
        };
        Some(op.with_work(phase.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

/// A compute-bound program: a small hot working set and lots of arithmetic
/// between accesses (`541.leela_r`, `548.exchange2_r`, `511.povray_r`).
pub struct ComputeBound {
    footprint: usize,
    rng: StdRng,
    remaining: u64,
    work: u32,
}

impl ComputeBound {
    pub fn new(footprint: usize, total_ops: u64, work: u32, seed: u64) -> Self {
        ComputeBound {
            footprint,
            rng: StdRng::seed_from_u64(seed),
            remaining: total_ops,
            work,
        }
    }
}

impl TraceSource for ComputeBound {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.rng.random_range(0..self.footprint as u64 / 64) * 64;
        Some(MemOp::load(addr).with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simarch::request::AccessKind;

    #[test]
    fn phases_rotate_at_their_op_budget() {
        let phases = vec![
            Phase {
                ops: 10,
                write_ratio: 0.0,
                random_ratio: 0.0,
                work: 1,
                ws_fraction: 1.0,
            },
            Phase {
                ops: 10,
                write_ratio: 1.0,
                random_ratio: 0.0,
                work: 1,
                ws_fraction: 1.0,
            },
        ];
        let mut m = MixedPhase::new(1 << 16, phases, 40, 1);
        let mut stores_by_chunk = [0usize; 4];
        for chunk in 0..4 {
            for _ in 0..10 {
                if matches!(m.next_op().unwrap().kind, AccessKind::Store) {
                    stores_by_chunk[chunk] += 1;
                }
            }
        }
        assert_eq!(stores_by_chunk[0], 0);
        assert_eq!(stores_by_chunk[1], 10);
        assert_eq!(stores_by_chunk[2], 0);
        assert_eq!(stores_by_chunk[3], 10);
    }

    #[test]
    fn gcc_like_second_phase_is_write_heavy() {
        let mut m = MixedPhase::gcc_like(1 << 20, 400_000, 3);
        let count_stores = |m: &mut MixedPhase, n: u64| {
            let mut s = 0;
            for _ in 0..n {
                if matches!(m.next_op().unwrap().kind, AccessKind::Store) {
                    s += 1;
                }
            }
            s
        };
        let p1 = count_stores(&mut m, 200_000);
        let p2 = count_stores(&mut m, 200_000);
        assert!(p2 > p1 * 5, "phase2 stores {p2} vs phase1 {p1}");
    }

    #[test]
    fn ws_fraction_limits_addresses() {
        let phases = vec![Phase {
            ops: 1000,
            write_ratio: 0.0,
            random_ratio: 1.0,
            work: 1,
            ws_fraction: 0.1,
        }];
        let mut m = MixedPhase::new(1 << 20, phases, 1000, 2);
        let limit = ((1u64 << 20) as f64 * 0.1) as u64;
        while let Some(op) = m.next_op() {
            assert!(op.vaddr < limit);
        }
    }

    #[test]
    fn compute_bound_carries_high_work() {
        let mut c = ComputeBound::new(8 << 10, 100, 50, 4);
        while let Some(op) = c.next_op() {
            assert_eq!(op.work, 50);
            assert!(op.vaddr < 8 << 10);
        }
    }
}
