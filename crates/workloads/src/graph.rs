//! Graph-analytics traffic (GAP suite: BFS, PageRank, CC, SSSP…).
//!
//! The access signature of frontier-based graph processing: a sequential
//! scan of a vertex's adjacency list (prefetch-friendly), then one
//! *dependent* random access into the property array per neighbour
//! (prefetch-hostile). The ratio of the two is set by the synthetic degree
//! distribution — power-law, like the Kronecker/twitter inputs GAP uses.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simarch::request::MemOp;
use simarch::TraceSource;

/// A synthetic frontier-driven graph traversal.
pub struct GraphTraversal {
    /// Property array size in bytes (the random-access working set).
    prop_bytes: u64,
    /// Adjacency (CSR) region size in bytes (the streaming working set).
    adj_bytes: u64,
    rng: StdRng,
    remaining: u64,
    /// Remaining neighbours of the current vertex.
    neighbours_left: u32,
    adj_cursor: u64,
    max_degree: u32,
    work: u32,
    /// Whether property accesses update (PageRank-style) or only read (BFS).
    updates: bool,
    pending_store: Option<u64>,
}

impl GraphTraversal {
    /// `footprint` is split 1/3 property array, 2/3 adjacency lists —
    /// roughly the CSR layout of the GAP inputs.
    pub fn new(footprint: usize, total_ops: u64, seed: u64) -> Self {
        GraphTraversal {
            prop_bytes: footprint as u64 / 3,
            adj_bytes: footprint as u64 * 2 / 3,
            rng: StdRng::seed_from_u64(seed),
            remaining: total_ops,
            neighbours_left: 0,
            adj_cursor: 0,
            max_degree: 64,
            work: 2,
            updates: false,
            pending_store: None,
        }
    }

    /// PageRank-style: every property access is a read-modify-write.
    pub fn with_updates(mut self) -> Self {
        self.updates = true;
        self
    }

    pub fn work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }

    fn pick_degree(&mut self) -> u32 {
        // Discrete power-law: degree = max_degree / k for uniform k.
        let k = self.rng.random_range(1..=self.max_degree);
        (self.max_degree / k).max(1)
    }
}

impl TraceSource for GraphTraversal {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if let Some(addr) = self.pending_store.take() {
            return Some(MemOp::store(addr).with_work(0));
        }
        if self.neighbours_left == 0 {
            // New vertex: jump to a random place in the adjacency region and
            // stream from there.
            self.neighbours_left = self.pick_degree();
            self.adj_cursor = self.rng.random_range(0..self.adj_bytes / 64) * 64;
        }
        self.neighbours_left -= 1;
        // Alternate: adjacency stream load, then dependent property access.
        if self.neighbours_left % 2 == 1 {
            let addr = self.prop_bytes + self.adj_cursor;
            self.adj_cursor = (self.adj_cursor + 64) % self.adj_bytes;
            Some(MemOp::load(addr).with_work(self.work))
        } else {
            let addr = self.rng.random_range(0..self.prop_bytes / 64) * 64;
            if self.updates {
                self.pending_store = Some(addr);
            }
            Some(MemOp::dependent_load(addr).with_work(self.work))
        }
    }

    fn footprint(&self) -> usize {
        (self.prop_bytes + self.adj_bytes) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simarch::request::AccessKind;

    #[test]
    fn mixes_streaming_and_dependent_accesses() {
        let mut g = GraphTraversal::new(12 << 20, 20_000, 5);
        let mut dependent = 0;
        let mut streaming = 0;
        while let Some(op) = g.next_op() {
            match op.kind {
                AccessKind::Load { dependent: true } => dependent += 1,
                AccessKind::Load { dependent: false } => streaming += 1,
                _ => {}
            }
        }
        assert!(dependent > 1000, "dependent {dependent}");
        assert!(streaming > 1000, "streaming {streaming}");
    }

    #[test]
    fn adjacency_accesses_stay_in_adjacency_region() {
        let fp = 12 << 20;
        let prop = (fp as u64) / 3;
        let mut g = GraphTraversal::new(fp, 5_000, 6);
        while let Some(op) = g.next_op() {
            if matches!(op.kind, AccessKind::Load { dependent: false }) {
                assert!(op.vaddr >= prop, "stream access in property region");
            } else {
                assert!(op.vaddr < prop, "dependent access outside property region");
            }
        }
    }

    #[test]
    fn pagerank_mode_pairs_load_with_store() {
        let mut g = GraphTraversal::new(6 << 20, 10_000, 7).with_updates();
        let mut prev: Option<MemOp> = None;
        while let Some(op) = g.next_op() {
            if matches!(op.kind, AccessKind::Store) {
                let p = prev.expect("store must follow a load");
                assert_eq!(p.vaddr, op.vaddr);
                assert!(matches!(p.kind, AccessKind::Load { dependent: true }));
            }
            prev = Some(op);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut g = GraphTraversal::new(3 << 20, 100, seed);
            std::iter::from_fn(move || g.next_op())
                .map(|o| o.vaddr)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
