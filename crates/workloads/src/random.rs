//! Irregular-access generators: GUPS and pointer chasing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simarch::request::MemOp;
use simarch::TraceSource;

/// GUPS (giga-updates per second): random read-modify-write over a table.
///
/// Matches the paper's GUPS configuration knobs (§5.8): an optional hot set
/// covering `hot_fraction` of the table receiving `hot_probability` of the
/// accesses, and a read:write ratio (1:1 in the paper's TPP case study).
pub struct Gups {
    footprint: usize,
    remaining: u64,
    rng: StdRng,
    hot_fraction: f64,
    hot_probability: f64,
    read_only: bool,
    pending_store: Option<u64>,
    work: u32,
}

impl Gups {
    pub fn new(footprint: usize, total_ops: u64, seed: u64) -> Self {
        Gups {
            footprint,
            remaining: total_ops,
            rng: StdRng::seed_from_u64(seed),
            hot_fraction: 1.0,
            hot_probability: 1.0,
            read_only: false,
            pending_store: None,
            work: 2,
        }
    }

    /// Configure a hot set: `fraction` of the table gets `probability` of
    /// the traffic (paper: 24 GB hot of 72 GB total, 90% probability).
    pub fn hot_set(mut self, fraction: f64, probability: f64) -> Self {
        self.hot_fraction = fraction.clamp(0.0, 1.0);
        self.hot_probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Loads only (no update half).
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    pub fn work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }
}

impl TraceSource for Gups {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // The update half of a read-modify-write.
        if let Some(addr) = self.pending_store.take() {
            return Some(MemOp::store(addr).with_work(0));
        }
        let hot_bytes = (self.footprint as f64 * self.hot_fraction) as u64;
        let addr = if self.rng.random_bool(self.hot_probability) && hot_bytes >= 64 {
            self.rng.random_range(0..hot_bytes / 64) * 64
        } else {
            self.rng.random_range(0..self.footprint as u64 / 64) * 64
        };
        if !self.read_only {
            self.pending_store = Some(addr);
        }
        Some(MemOp::dependent_load(addr).with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

/// Pointer chasing over a random Hamiltonian cycle — fully dependent loads,
/// zero memory-level parallelism. Models `505.mcf_r` and the Intel-MLC
/// idle-latency probe (§2.3): the measured per-op time *is* the load-to-use
/// latency of the backing memory.
pub struct PointerChase {
    /// next[i] = index of the next line in the cycle.
    next: Vec<u32>,
    cur: u32,
    remaining: u64,
    work: u32,
}

impl PointerChase {
    pub fn new(footprint: usize, total_ops: u64, seed: u64) -> Self {
        let n = (footprint / 64).max(2);
        assert!(
            n <= u32::MAX as usize,
            "footprint too large for a u32 cycle"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Sattolo's algorithm: a uniformly random single cycle.
        let mut next: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..i);
            next.swap(i, j);
        }
        PointerChase {
            next,
            cur: 0,
            remaining: total_ops,
            work: 1,
        }
    }

    pub fn work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }
}

impl TraceSource for PointerChase {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.cur as u64 * 64;
        self.cur = self.next[self.cur as usize];
        Some(MemOp::dependent_load(addr).with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.next.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simarch::request::AccessKind;

    #[test]
    fn gups_alternates_load_store() {
        let mut g = Gups::new(1 << 20, 10, 42);
        let ops: Vec<_> = std::iter::from_fn(|| g.next_op()).collect();
        assert_eq!(ops.len(), 10);
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0].kind, AccessKind::Load { dependent: true }));
            if pair.len() == 2 {
                assert!(matches!(pair[1].kind, AccessKind::Store));
                assert_eq!(
                    pair[0].vaddr, pair[1].vaddr,
                    "RMW must store where it loaded"
                );
            }
        }
    }

    #[test]
    fn gups_read_only_has_no_stores() {
        let mut g = Gups::new(1 << 20, 100, 1).read_only();
        while let Some(op) = g.next_op() {
            assert!(!matches!(op.kind, AccessKind::Store));
        }
    }

    #[test]
    fn gups_hot_set_concentrates_traffic() {
        let mut g = Gups::new(1 << 22, 20_000, 7).hot_set(0.25, 0.9).read_only();
        let hot_limit = ((1u64 << 22) as f64 * 0.25) as u64;
        let mut hot = 0;
        let mut total = 0;
        while let Some(op) = g.next_op() {
            total += 1;
            if op.vaddr < hot_limit {
                hot += 1;
            }
        }
        let frac = hot as f64 / total as f64;
        // 90% directed + 25% of the residual uniform ≈ 92.5%.
        assert!(frac > 0.85, "hot fraction {frac}");
    }

    #[test]
    fn gups_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut g = Gups::new(1 << 20, 50, seed);
            std::iter::from_fn(move || g.next_op())
                .map(|o| o.vaddr)
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn pointer_chase_visits_every_line_once_per_lap() {
        let n_lines = 256;
        let mut p = PointerChase::new(n_lines * 64, n_lines as u64, 3);
        let mut seen = std::collections::HashSet::new();
        while let Some(op) = p.next_op() {
            assert!(matches!(op.kind, AccessKind::Load { dependent: true }));
            assert!(
                seen.insert(op.vaddr),
                "revisited {} within one lap",
                op.vaddr
            );
        }
        assert_eq!(seen.len(), n_lines);
    }

    #[test]
    fn pointer_chase_cycle_returns_to_start() {
        let n_lines = 64u64;
        let mut p = PointerChase::new(n_lines as usize * 64, n_lines + 1, 9);
        let first = p.next_op().unwrap().vaddr;
        let mut last = 0;
        while let Some(op) = p.next_op() {
            last = op.vaddr;
        }
        assert_eq!(first, last, "a Hamiltonian cycle closes after n steps");
    }
}
