//! Key-value store traffic: Redis/YCSB with Zipfian key popularity.
//!
//! The paper drives Redis with YCSB (§5.1) and uses YCSB-C with a Zipf
//! pattern in the TPP case study (§5.8). Each record spans several cache
//! lines; a read touches the whole record sequentially (after one dependent
//! index lookup), an update rewrites it.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simarch::request::MemOp;
use simarch::TraceSource;

/// YCSB core-workload operation mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YcsbMix {
    /// 50% reads / 50% updates.
    A,
    /// 95% reads / 5% updates.
    B,
    /// 100% reads.
    C,
}

impl YcsbMix {
    fn read_permille(self) -> u32 {
        match self {
            YcsbMix::A => 500,
            YcsbMix::B => 950,
            YcsbMix::C => 1000,
        }
    }
}

/// A Zipf sampler over `n` items with exponent `theta`, via inverse-CDF
/// binary search on a precomputed table (exact, O(log n) per sample).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// The YCSB-over-Redis trace generator.
pub struct ZipfKv {
    zipf: Zipf,
    record_lines: u64,
    mix: YcsbMix,
    rng: StdRng,
    remaining: u64,
    /// Queue of ops for the record currently being processed.
    burst: Vec<MemOp>,
    work: u32,
}

impl ZipfKv {
    /// `footprint` bytes of records, each `record_bytes` long (rounded to
    /// lines), Zipf exponent 0.99 (the YCSB default).
    pub fn new(
        footprint: usize,
        record_bytes: usize,
        mix: YcsbMix,
        total_ops: u64,
        seed: u64,
    ) -> Self {
        Self::with_theta(footprint, record_bytes, mix, total_ops, seed, 0.99)
    }

    /// As [`Self::new`] with an explicit Zipf exponent. Smaller `theta`
    /// flattens the popularity curve: less of the working set stays
    /// cache-resident and more traffic reaches the backing memory.
    pub fn with_theta(
        footprint: usize,
        record_bytes: usize,
        mix: YcsbMix,
        total_ops: u64,
        seed: u64,
        theta: f64,
    ) -> Self {
        let record_lines = (record_bytes / 64).max(1) as u64;
        let n_records = (footprint as u64 / (record_lines * 64)).max(1) as usize;
        ZipfKv {
            zipf: Zipf::new(n_records, theta),
            record_lines,
            mix,
            rng: StdRng::seed_from_u64(seed),
            remaining: total_ops,
            burst: Vec::new(),
            work: 4,
        }
    }

    pub fn work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }

    fn begin_record(&mut self) {
        let r = self.zipf.sample(&mut self.rng) as u64;
        let base = r * self.record_lines * 64;
        let is_read = self.rng.random_range(0..1000u32) < self.mix.read_permille();
        // Index lookup: one dependent load (the hash-table probe), then the
        // record body, reversed so pops come out in order.
        for i in (0..self.record_lines).rev() {
            let addr = base + i * 64;
            let op = if is_read {
                MemOp::load(addr)
            } else {
                MemOp::store(addr)
            };
            self.burst.push(op.with_work(1));
        }
        self.burst
            .push(MemOp::dependent_load(base).with_work(self.work));
    }
}

impl TraceSource for ZipfKv {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        if self.burst.is_empty() {
            self.begin_record();
        }
        self.remaining -= 1;
        self.burst.pop()
    }

    fn footprint(&self) -> usize {
        self.zipf.len() * self.record_lines as usize * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simarch::request::AccessKind;

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(11);
        let mut head = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of keys take a large share (≈50%+).
        let frac = head as f64 / n as f64;
        assert!(frac > 0.4, "head share {frac}");
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn ycsb_c_never_stores() {
        let mut kv = ZipfKv::new(1 << 22, 1024, YcsbMix::C, 5_000, 3);
        while let Some(op) = kv.next_op() {
            assert!(!matches!(op.kind, AccessKind::Store));
        }
    }

    #[test]
    fn ycsb_a_mixes_roughly_half_updates() {
        let mut kv = ZipfKv::new(1 << 22, 1024, YcsbMix::A, 40_000, 3);
        let mut stores = 0u64;
        let mut total = 0u64;
        while let Some(op) = kv.next_op() {
            total += 1;
            if matches!(op.kind, AccessKind::Store) {
                stores += 1;
            }
        }
        // Each update record = 1 dependent load + 16 stores ⇒ stores ≈ 47%.
        let frac = stores as f64 / total as f64;
        assert!((0.35..0.6).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn record_access_is_one_probe_then_sequential_body() {
        let mut kv = ZipfKv::new(1 << 20, 256, YcsbMix::C, 5, 9);
        let probe = kv.next_op().unwrap();
        assert!(matches!(probe.kind, AccessKind::Load { dependent: true }));
        let mut prev = probe.vaddr;
        for _ in 0..3 {
            let op = kv.next_op().unwrap();
            assert!(matches!(op.kind, AccessKind::Load { dependent: false }));
            assert!(op.vaddr == prev || op.vaddr == prev + 64);
            prev = op.vaddr;
        }
    }

    #[test]
    fn respects_total_ops_budget() {
        let mut kv = ZipfKv::new(1 << 20, 4096, YcsbMix::B, 10, 1);
        let mut n = 0;
        while kv.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, 10, "must cut off mid-record at the op budget");
    }
}
