//! The application registry: the paper's Table-6 benchmarks as named,
//! configured generators.
//!
//! Working sets are the paper's, scaled by **1/16** (clamped to
//! [2 MiB, 96 MiB]) to match the simulator's 4-core slice of the SPR socket
//! (7 MiB LLC model vs the real 60 MiB) — the ratio of working set to LLC,
//! which drives all the locality behaviour the paper studies, is preserved.
//! DESIGN.md documents this substitution.

use crate::graph::GraphTraversal;
use crate::kv::{YcsbMix, ZipfKv};
use crate::phase::{ComputeBound, MixedPhase};
use crate::random::{Gups, PointerChase};
use crate::stream::{Mbw, Stencil, StreamGen};
use simarch::TraceSource;

/// The behavioural class of an application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AppClass {
    /// Sequential sweep with the given store fraction.
    Stream { write_ratio: f64 },
    /// Multi-array stencil with `arrays` concurrent streams.
    Stencil { arrays: usize },
    /// Dependent pointer chasing.
    PointerChase,
    /// Random read-modify-write.
    Gups,
    /// Frontier graph traversal; `updates` = PageRank-style RMW.
    Graph { updates: bool },
    /// Zipf key-value store.
    Kv { mix: YcsbMix },
    /// Phase-changing (gcc-like).
    Phased,
    /// Compute-bound with `work` cycles per access.
    Compute { work: u32 },
    /// MBW copy at full rate.
    Copy,
}

/// One registered application.
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    /// The paper's mnemonic, e.g. `"519.lbm_r"`.
    pub name: &'static str,
    /// Table-6 suite.
    pub suite: &'static str,
    /// Paper working set in MiB (Table 6).
    pub paper_ws_mib: f64,
    pub class: AppClass,
}

/// The scale factor applied to Table-6 working sets.
pub const WS_SCALE: f64 = 1.0 / 16.0;

impl AppSpec {
    /// Scaled working-set size in bytes.
    pub fn ws_bytes(&self) -> usize {
        let mib = (self.paper_ws_mib * WS_SCALE).clamp(2.0, 96.0);
        (mib * 1024.0 * 1024.0) as usize
    }
}

/// Every registered application.
pub const APPS: &[AppSpec] = &[
    // --- SPEC CPU 2017 ----------------------------------------------------
    AppSpec {
        name: "500.perlbench_r",
        suite: "SPEC",
        paper_ws_mib: 202.5,
        class: AppClass::Phased,
    },
    AppSpec {
        name: "502.gcc_r",
        suite: "SPEC",
        paper_ws_mib: 1366.9,
        class: AppClass::Phased,
    },
    AppSpec {
        name: "503.bwaves_r",
        suite: "SPEC",
        paper_ws_mib: 822.3,
        class: AppClass::Stencil { arrays: 3 },
    },
    AppSpec {
        name: "505.mcf_r",
        suite: "SPEC",
        paper_ws_mib: 609.1,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "507.cactuBSSN_r",
        suite: "SPEC",
        paper_ws_mib: 789.5,
        class: AppClass::Stencil { arrays: 6 },
    },
    AppSpec {
        name: "508.namd_r",
        suite: "SPEC",
        paper_ws_mib: 162.5,
        class: AppClass::Compute { work: 20 },
    },
    AppSpec {
        name: "510.parest_r",
        suite: "SPEC",
        paper_ws_mib: 419.4,
        class: AppClass::Stream { write_ratio: 0.15 },
    },
    AppSpec {
        name: "511.povray_r",
        suite: "SPEC",
        paper_ws_mib: 7.0,
        class: AppClass::Compute { work: 30 },
    },
    AppSpec {
        name: "519.lbm_r",
        suite: "SPEC",
        paper_ws_mib: 410.5,
        class: AppClass::Stream { write_ratio: 0.5 },
    },
    AppSpec {
        name: "520.omnetpp_r",
        suite: "SPEC",
        paper_ws_mib: 242.0,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "521.wrf_r",
        suite: "SPEC",
        paper_ws_mib: 178.8,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "523.xalancbmk_r",
        suite: "SPEC",
        paper_ws_mib: 481.0,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "525.x264_r",
        suite: "SPEC",
        paper_ws_mib: 156.0,
        class: AppClass::Stream { write_ratio: 0.3 },
    },
    AppSpec {
        name: "526.blender_r",
        suite: "SPEC",
        paper_ws_mib: 633.7,
        class: AppClass::Compute { work: 12 },
    },
    AppSpec {
        name: "531.deepsjeng_r",
        suite: "SPEC",
        paper_ws_mib: 699.5,
        class: AppClass::Compute { work: 15 },
    },
    AppSpec {
        name: "541.leela_r",
        suite: "SPEC",
        paper_ws_mib: 24.7,
        class: AppClass::Compute { work: 25 },
    },
    AppSpec {
        name: "548.exchange2_r",
        suite: "SPEC",
        paper_ws_mib: 2.5,
        class: AppClass::Compute { work: 40 },
    },
    AppSpec {
        name: "549.fotonik3d_r",
        suite: "SPEC",
        paper_ws_mib: 848.4,
        class: AppClass::Stencil { arrays: 5 },
    },
    AppSpec {
        name: "554.roms_r",
        suite: "SPEC",
        paper_ws_mib: 841.6,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "557.xz_r",
        suite: "SPEC",
        paper_ws_mib: 775.4,
        class: AppClass::Stream { write_ratio: 0.35 },
    },
    AppSpec {
        name: "602.gcc_s",
        suite: "SPEC",
        paper_ws_mib: 7620.2,
        class: AppClass::Phased,
    },
    AppSpec {
        name: "605.mcf_s",
        suite: "SPEC",
        paper_ws_mib: 3960.8,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "619.lbm_s",
        suite: "SPEC",
        paper_ws_mib: 3224.5,
        class: AppClass::Stream { write_ratio: 0.5 },
    },
    AppSpec {
        name: "649.fotonik3d_s",
        suite: "SPEC",
        paper_ws_mib: 9642.8,
        class: AppClass::Stencil { arrays: 5 },
    },
    AppSpec {
        name: "654.roms_s",
        suite: "SPEC",
        paper_ws_mib: 10386.9,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "600.perlbench_s",
        suite: "SPEC",
        paper_ws_mib: 202.5,
        class: AppClass::Phased,
    },
    AppSpec {
        name: "603.bwaves_s",
        suite: "SPEC",
        paper_ws_mib: 11467.1,
        class: AppClass::Stencil { arrays: 3 },
    },
    AppSpec {
        name: "607.cactuBSSN_s",
        suite: "SPEC",
        paper_ws_mib: 6724.0,
        class: AppClass::Stencil { arrays: 6 },
    },
    AppSpec {
        name: "620.omnetpp_s",
        suite: "SPEC",
        paper_ws_mib: 242.3,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "621.wrf_s",
        suite: "SPEC",
        paper_ws_mib: 177.8,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "623.xalancbmk_s",
        suite: "SPEC",
        paper_ws_mib: 481.8,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "625.x264_s",
        suite: "SPEC",
        paper_ws_mib: 156.0,
        class: AppClass::Stream { write_ratio: 0.3 },
    },
    AppSpec {
        name: "627.cam4_s",
        suite: "SPEC",
        paper_ws_mib: 873.6,
        class: AppClass::Stencil { arrays: 5 },
    },
    AppSpec {
        name: "628.pop2_s",
        suite: "SPEC",
        paper_ws_mib: 1434.3,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "631.deepsjeng_s",
        suite: "SPEC",
        paper_ws_mib: 6879.5,
        class: AppClass::Compute { work: 15 },
    },
    AppSpec {
        name: "638.imagick_s",
        suite: "SPEC",
        paper_ws_mib: 7007.8,
        class: AppClass::Stream { write_ratio: 0.4 },
    },
    AppSpec {
        name: "641.leela_s",
        suite: "SPEC",
        paper_ws_mib: 25.0,
        class: AppClass::Compute { work: 25 },
    },
    AppSpec {
        name: "644.nab_s",
        suite: "SPEC",
        paper_ws_mib: 561.3,
        class: AppClass::Compute { work: 18 },
    },
    AppSpec {
        name: "648.exchange2_s",
        suite: "SPEC",
        paper_ws_mib: 2.5,
        class: AppClass::Compute { work: 40 },
    },
    AppSpec {
        name: "657.xz_s",
        suite: "SPEC",
        paper_ws_mib: 15344.0,
        class: AppClass::Stream { write_ratio: 0.35 },
    },
    AppSpec {
        name: "521.wrf_r_alt",
        suite: "SPEC",
        paper_ws_mib: 178.8,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "527.cam4_r",
        suite: "SPEC",
        paper_ws_mib: 856.0,
        class: AppClass::Stencil { arrays: 5 },
    },
    AppSpec {
        name: "538.imagick_r",
        suite: "SPEC",
        paper_ws_mib: 286.5,
        class: AppClass::Stream { write_ratio: 0.4 },
    },
    AppSpec {
        name: "544.nab_r",
        suite: "SPEC",
        paper_ws_mib: 146.3,
        class: AppClass::Compute { work: 18 },
    },
    // --- PARSEC -----------------------------------------------------------
    AppSpec {
        name: "blackscholes",
        suite: "PARSEC",
        paper_ws_mib: 612.0,
        class: AppClass::Stream { write_ratio: 0.2 },
    },
    AppSpec {
        name: "canneal",
        suite: "PARSEC",
        paper_ws_mib: 850.5,
        class: AppClass::PointerChase,
    },
    AppSpec {
        name: "dedup",
        suite: "PARSEC",
        paper_ws_mib: 1443.0,
        class: AppClass::Kv { mix: YcsbMix::A },
    },
    AppSpec {
        name: "freqmine",
        suite: "PARSEC",
        paper_ws_mib: 631.9,
        class: AppClass::Graph { updates: true },
    },
    AppSpec {
        name: "raytrace",
        suite: "PARSEC",
        paper_ws_mib: 1282.7,
        class: AppClass::Graph { updates: false },
    },
    AppSpec {
        name: "streamcluster",
        suite: "PARSEC",
        paper_ws_mib: 109.0,
        class: AppClass::Stream { write_ratio: 0.1 },
    },
    AppSpec {
        name: "blackscholes_l",
        suite: "PARSEC",
        paper_ws_mib: 612.0,
        class: AppClass::Stream { write_ratio: 0.2 },
    },
    AppSpec {
        name: "bodytrack",
        suite: "PARSEC",
        paper_ws_mib: 32.9,
        class: AppClass::Compute { work: 14 },
    },
    AppSpec {
        name: "facesim",
        suite: "PARSEC",
        paper_ws_mib: 304.3,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "ferret",
        suite: "PARSEC",
        paper_ws_mib: 97.9,
        class: AppClass::Kv { mix: YcsbMix::B },
    },
    AppSpec {
        name: "fluidanimate",
        suite: "PARSEC",
        paper_ws_mib: 519.5,
        class: AppClass::Stencil { arrays: 3 },
    },
    AppSpec {
        name: "swaptions",
        suite: "PARSEC",
        paper_ws_mib: 5.5,
        class: AppClass::Compute { work: 22 },
    },
    AppSpec {
        name: "vips",
        suite: "PARSEC",
        paper_ws_mib: 37.5,
        class: AppClass::Stream { write_ratio: 0.3 },
    },
    AppSpec {
        name: "x264",
        suite: "PARSEC",
        paper_ws_mib: 80.0,
        class: AppClass::Stream { write_ratio: 0.3 },
    },
    // --- SPLASH-2x ---------------------------------------------------------
    AppSpec {
        name: "barnes",
        suite: "SPLASH2X",
        paper_ws_mib: 1584.0,
        class: AppClass::Graph { updates: true },
    },
    AppSpec {
        name: "fft",
        suite: "SPLASH2X",
        paper_ws_mib: 12291.0,
        class: AppClass::Stencil { arrays: 2 },
    },
    AppSpec {
        name: "lu_cb",
        suite: "SPLASH2X",
        paper_ws_mib: 502.0,
        class: AppClass::Stencil { arrays: 3 },
    },
    AppSpec {
        name: "ocean_cp",
        suite: "SPLASH2X",
        paper_ws_mib: 3546.5,
        class: AppClass::Stencil { arrays: 4 },
    },
    AppSpec {
        name: "radix",
        suite: "SPLASH2X",
        paper_ws_mib: 4097.5,
        class: AppClass::Gups,
    },
    AppSpec {
        name: "water_spatial",
        suite: "SPLASH2X",
        paper_ws_mib: 669.5,
        class: AppClass::Compute { work: 10 },
    },
    AppSpec {
        name: "water_nsquared",
        suite: "SPLASH2X",
        paper_ws_mib: 28.5,
        class: AppClass::Compute { work: 12 },
    },
    AppSpec {
        name: "lu_ncb",
        suite: "SPLASH2X",
        paper_ws_mib: 501.5,
        class: AppClass::Stencil { arrays: 3 },
    },
    AppSpec {
        name: "radiosity",
        suite: "SPLASH2X",
        paper_ws_mib: 1442.5,
        class: AppClass::Graph { updates: true },
    },
    AppSpec {
        name: "raytrace_s",
        suite: "SPLASH2X",
        paper_ws_mib: 22.5,
        class: AppClass::Graph { updates: false },
    },
    AppSpec {
        name: "volrend",
        suite: "SPLASH2X",
        paper_ws_mib: 54.0,
        class: AppClass::Compute { work: 16 },
    },
    AppSpec {
        name: "ocean_ncp",
        suite: "SPLASH2X",
        paper_ws_mib: 3546.5,
        class: AppClass::Stencil { arrays: 4 },
    },
    // --- GAP ----------------------------------------------------------------
    AppSpec {
        name: "BFS",
        suite: "GAP",
        paper_ws_mib: 15778.0,
        class: AppClass::Graph { updates: false },
    },
    AppSpec {
        name: "PR",
        suite: "GAP",
        paper_ws_mib: 12616.1,
        class: AppClass::Graph { updates: true },
    },
    AppSpec {
        name: "CC",
        suite: "GAP",
        paper_ws_mib: 12381.1,
        class: AppClass::Graph { updates: true },
    },
    AppSpec {
        name: "SSSP",
        suite: "GAP",
        paper_ws_mib: 36456.3,
        class: AppClass::Graph { updates: true },
    },
    AppSpec {
        name: "TC",
        suite: "GAP",
        paper_ws_mib: 21027.0,
        class: AppClass::Graph { updates: false },
    },
    AppSpec {
        name: "BC",
        suite: "GAP",
        paper_ws_mib: 13394.5,
        class: AppClass::Graph { updates: true },
    },
    // --- Micro-benchmarks ----------------------------------------------------
    AppSpec {
        name: "GUPS",
        suite: "MICRO",
        paper_ws_mib: 4096.0,
        class: AppClass::Gups,
    },
    AppSpec {
        name: "MBW",
        suite: "MICRO",
        paper_ws_mib: 1024.0,
        class: AppClass::Copy,
    },
    AppSpec {
        name: "STREAM",
        suite: "MICRO",
        paper_ws_mib: 2048.0,
        class: AppClass::Stream { write_ratio: 0.33 },
    },
    AppSpec {
        name: "YCSB-A",
        suite: "MICRO",
        paper_ws_mib: 2048.0,
        class: AppClass::Kv { mix: YcsbMix::A },
    },
    AppSpec {
        name: "YCSB-B",
        suite: "MICRO",
        paper_ws_mib: 2048.0,
        class: AppClass::Kv { mix: YcsbMix::B },
    },
    AppSpec {
        name: "YCSB-C",
        suite: "MICRO",
        paper_ws_mib: 2048.0,
        class: AppClass::Kv { mix: YcsbMix::C },
    },
];

/// Look an application up by its paper mnemonic.
pub fn spec(name: &str) -> Option<&'static AppSpec> {
    APPS.iter().find(|a| a.name == name)
}

/// All registered application names.
pub fn app_names() -> Vec<&'static str> {
    APPS.iter().map(|a| a.name).collect()
}

/// Build a trace generator for a registered application.
///
/// Returns `None` for unknown names. `total_ops` bounds the run length;
/// `seed` controls every random choice.
pub fn build(name: &str, total_ops: u64, seed: u64) -> Option<Box<dyn TraceSource>> {
    let app = spec(name)?;
    Some(build_spec(app, total_ops, seed))
}

/// Build a generator from a spec (useful for sweeps over custom specs).
pub fn build_spec(app: &AppSpec, total_ops: u64, seed: u64) -> Box<dyn TraceSource> {
    let ws = app.ws_bytes();
    match app.class {
        // Registry streams carry 3% irregular dependent accesses — real
        // kernels are never perfectly prefetchable.
        AppClass::Stream { write_ratio } => Box::new(
            StreamGen::new(ws, total_ops)
                .write_ratio(write_ratio)
                .noise(30),
        ),
        AppClass::Stencil { arrays } => Box::new(Stencil::new(ws, arrays, total_ops).noise(30)),
        AppClass::PointerChase => Box::new(PointerChase::new(ws, total_ops, seed)),
        AppClass::Gups => Box::new(Gups::new(ws, total_ops, seed)),
        AppClass::Graph { updates } => {
            let g = GraphTraversal::new(ws, total_ops, seed);
            Box::new(if updates { g.with_updates() } else { g })
        }
        AppClass::Kv { mix } => Box::new(ZipfKv::new(ws, 1024, mix, total_ops, seed)),
        AppClass::Phased => Box::new(MixedPhase::gcc_like(ws, total_ops, seed)),
        AppClass::Compute { work } => Box::new(ComputeBound::new(ws, total_ops, work, seed)),
        AppClass::Copy => Box::new(Mbw::new(ws, total_ops, 1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<_> = app_names();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn every_app_builds_and_produces_its_op_budget() {
        for app in APPS {
            let mut t = build(app.name, 100, 42).unwrap();
            let mut n = 0;
            while t.next_op().is_some() {
                n += 1;
            }
            assert_eq!(n, 100, "{} produced {} ops", app.name, n);
        }
    }

    #[test]
    fn working_sets_are_scaled_and_clamped() {
        let fot = spec("649.fotonik3d_s").unwrap();
        assert!(fot.ws_bytes() <= 96 << 20);
        let exc = spec("548.exchange2_r").unwrap();
        assert_eq!(exc.ws_bytes(), 2 << 20, "small apps clamp at 2 MiB");
        let lbm = spec("519.lbm_r").unwrap();
        let expect = (410.5 / 16.0 * 1024.0 * 1024.0) as usize;
        assert_eq!(lbm.ws_bytes(), expect);
    }

    #[test]
    fn unknown_app_is_none() {
        assert!(build("999.nonexistent", 10, 0).is_none());
    }

    #[test]
    fn footprints_match_spec() {
        for app in APPS {
            let t = build(app.name, 1, 1).unwrap();
            // Generators may round internally (records, line counts) but
            // must stay within 1% of the requested working set.
            let fp = t.footprint() as f64;
            let want = app.ws_bytes() as f64;
            assert!(
                (fp - want).abs() / want < 0.01,
                "{}: footprint {} vs spec {}",
                app.name,
                fp,
                want
            );
        }
    }

    #[test]
    fn registry_matches_the_papers_scale() {
        // The paper evaluates 77 applications (Table 6); the registry keeps
        // the same order of magnitude of distinct configurations.
        assert!(APPS.len() >= 75, "only {} registered apps", APPS.len());
    }

    #[test]
    fn suites_cover_the_papers_five_sources() {
        for s in ["SPEC", "PARSEC", "SPLASH2X", "GAP", "MICRO"] {
            assert!(APPS.iter().any(|a| a.suite == s), "missing suite {s}");
        }
    }
}
