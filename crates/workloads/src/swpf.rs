//! Software-prefetch instrumentation (paper §2.2, path #4):
//! "explicit software prefetching, guided by programs, preloads data from
//! memory, benefiting irregular data structure traversal."
//!
//! [`SwPrefetchAhead`] wraps any trace and inserts a `prefetcht0`-style
//! operation `distance` ops ahead of each dependent load — the classic
//! compiler/manual optimisation for pointer-chasing codes whose addresses
//! are computable in advance (offset arrays, software pipelining).

use std::collections::VecDeque;

use simarch::request::{AccessKind, MemOp};
use simarch::TraceSource;

/// Wraps a trace; every dependent load's address is also emitted as a
/// software prefetch `distance` operations earlier.
pub struct SwPrefetchAhead<T: TraceSource> {
    inner: T,
    /// Look-ahead pipeline: `(op, prefetch_already_emitted)`.
    window: VecDeque<(MemOp, bool)>,
    distance: usize,
    drained: bool,
}

impl<T: TraceSource> SwPrefetchAhead<T> {
    pub fn new(inner: T, distance: usize) -> Self {
        assert!(distance >= 1);
        SwPrefetchAhead {
            inner,
            window: VecDeque::new(),
            distance,
            drained: false,
        }
    }

    fn refill(&mut self) {
        while !self.drained && self.window.len() < self.distance {
            match self.inner.next_op() {
                Some(op) => self.window.push_back((op, false)),
                None => self.drained = true,
            }
        }
    }
}

impl<T: TraceSource> TraceSource for SwPrefetchAhead<T> {
    fn next_op(&mut self) -> Option<MemOp> {
        self.refill();
        // When a dependent load enters the far end of the window, emit its
        // prefetch now — it lands `distance` ops before the load itself.
        if let Some((tail, emitted)) = self.window.back_mut() {
            if !*emitted && matches!(tail.kind, AccessKind::Load { dependent: true }) {
                *emitted = true;
                let addr = tail.vaddr;
                return Some(MemOp::swpf(addr));
            }
        }
        self.window.pop_front().map(|(op, _)| op)
    }

    fn footprint(&self) -> usize {
        self.inner.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::PointerChase;

    #[test]
    fn prefetches_precede_their_loads() {
        let inner = PointerChase::new(64 * 64, 32, 5);
        let mut t = SwPrefetchAhead::new(inner, 4);
        let mut ops = Vec::new();
        while let Some(op) = t.next_op() {
            ops.push(op);
        }
        let swpfs: Vec<(usize, u64)> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.kind, AccessKind::SwPrefetch))
            .map(|(i, o)| (i, o.vaddr))
            .collect();
        assert!(!swpfs.is_empty(), "wrapper must emit prefetches");
        for (i, addr) in swpfs {
            let found = ops[i + 1..]
                .iter()
                .any(|o| matches!(o.kind, AccessKind::Load { dependent: true }) && o.vaddr == addr);
            assert!(
                found,
                "prefetch at {i} (addr {addr}) has no later demand load"
            );
        }
    }

    #[test]
    fn all_original_ops_are_preserved_in_order() {
        let n = 50u64;
        let make = || PointerChase::new(128 * 64, n, 7);
        let mut plain = Vec::new();
        let mut src = make();
        while let Some(op) = src.next_op() {
            plain.push(op.vaddr);
        }
        let mut t = SwPrefetchAhead::new(make(), 3);
        let mut demand = Vec::new();
        while let Some(op) = t.next_op() {
            if matches!(op.kind, AccessKind::Load { dependent: true }) {
                demand.push(op.vaddr);
            }
        }
        assert_eq!(demand, plain, "wrapping must preserve the demand stream");
    }

    #[test]
    fn prefetch_leads_by_at_most_distance_ops() {
        let inner = PointerChase::new(64 * 64, 20, 1);
        let mut t = SwPrefetchAhead::new(inner, 2);
        let mut ops = Vec::new();
        while let Some(op) = t.next_op() {
            ops.push(op);
        }
        for (i, op) in ops.iter().enumerate() {
            if matches!(op.kind, AccessKind::SwPrefetch) {
                let lead = ops[i + 1..]
                    .iter()
                    .position(|o| o.vaddr == op.vaddr && !matches!(o.kind, AccessKind::SwPrefetch))
                    .expect("demand follows");
                assert!(lead < 2 * 2 + 2, "lead {lead} too large");
            }
        }
    }
}
