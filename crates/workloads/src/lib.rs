//! # workloads — synthetic applications for the PathFinder reproduction
//!
//! The paper evaluates PathFinder with 77 applications from SPEC CPU 2017,
//! PARSEC, SPLASH-2x, GAP, Redis/YCSB, plus the MLC/MBW/GUPS
//! micro-benchmarks (paper Table 6). Running the real suites requires their
//! inputs and days of machine time; what PathFinder actually observes is
//! each program's *memory access behaviour* — locality, intensity,
//! read/write mix, stride structure, phase changes. This crate provides
//! deterministic generators for those behaviours and a registry that maps
//! every paper application mnemonic onto a configured generator (with the
//! paper's Table-6 working sets scaled by a documented factor; see
//! DESIGN.md).
//!
//! All generators implement [`simarch::TraceSource`] and are pure functions
//! of their seed.

pub mod graph;
pub mod kv;
pub mod phase;
pub mod random;
pub mod stream;
pub mod suite;
pub mod swpf;

pub use graph::GraphTraversal;
pub use kv::{YcsbMix, ZipfKv};
pub use phase::{ComputeBound, MixedPhase};
pub use random::{Gups, PointerChase};
pub use stream::{Mbw, Stencil, StreamGen};
pub use suite::{app_names, build, AppClass, AppSpec};
pub use swpf::SwPrefetchAhead;
