//! Streaming generators: sequential sweeps, copies, and stencils.
//!
//! These model the paper's bandwidth-bound applications: `519.lbm_r`,
//! `503.bwaves_r`, `554.roms_r`, `649.fotonik3d_s`, STREAM, and the MBW
//! micro-benchmark. Their signature behaviours: long unit-stride runs
//! (hardware-prefetch friendly), large working sets, and a read/write mix
//! set by the kernel.

use simarch::request::MemOp;
use simarch::TraceSource;

/// A sequential sweep over one array with a configurable store mix.
///
/// `write_ratio` in 0..=1: fraction of accesses that are stores (interleaved
/// deterministically). `work` is the non-memory work per access, which sets
/// the natural request rate (0–2 for bandwidth-bound kernels, tens for
/// compute-bound ones).
pub struct StreamGen {
    footprint: usize,
    stride: u64,
    write_permille: u32,
    noise_permille: u32,
    work: u32,
    remaining: u64,
    pos: u64,
    n: u64,
    lcg: u64,
}

impl StreamGen {
    pub fn new(footprint: usize, total_ops: u64) -> Self {
        StreamGen {
            footprint,
            stride: 64,
            write_permille: 0,
            noise_permille: 0,
            work: 2,
            remaining: total_ops,
            pos: 0,
            n: 0,
            lcg: 0x2545_F491_4F6C_DD1D,
        }
    }

    /// Set the store fraction (0.0–1.0).
    pub fn write_ratio(mut self, ratio: f64) -> Self {
        self.write_permille = (ratio.clamp(0.0, 1.0) * 1000.0) as u32;
        self
    }

    /// Set the access stride in bytes.
    pub fn stride(mut self, stride: u64) -> Self {
        assert!(stride > 0);
        self.stride = stride;
        self
    }

    /// Set the per-access compute work (cycles).
    pub fn work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }

    /// Irregularity: `permille` of accesses become dependent random loads
    /// (pointer-ish detours real applications have; pure streams are
    /// unrealistically prefetch-perfect).
    pub fn noise(mut self, permille: u32) -> Self {
        self.noise_permille = permille.min(1000);
        self
    }
}

impl TraceSource for StreamGen {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.n += 1;
        if self.noise_permille > 0 {
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (self.lcg >> 33) % 1000 < self.noise_permille as u64 {
                let lines = (self.footprint / 64) as u64;
                let addr = ((self.lcg >> 17) % lines) * 64;
                return Some(MemOp::dependent_load(addr).with_work(self.work));
            }
        }
        let addr = self.pos;
        self.pos = (self.pos + self.stride) % self.footprint as u64;
        // Deterministic permille interleaving of stores.
        let is_store = (self.n * self.write_permille as u64) % 1000
            < ((self.n - 1) * self.write_permille as u64) % 1000
            || (self.write_permille >= 1000);
        let op = if is_store {
            MemOp::store(addr)
        } else {
            MemOp::load(addr)
        };
        Some(op.with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

/// MBW-style memory copy: alternating load (source) / store (destination)
/// over two disjoint halves of the footprint, with a rate limiter.
///
/// `target_fraction` throttles the offered bandwidth: 1.0 issues
/// back-to-back, 0.2 inserts 4× idle work between accesses. This is the
/// knob behind the paper's "vary the CXL traffic load from 20% to 100%"
/// experiments (Cases 3 and 4).
pub struct Mbw {
    footprint: usize,
    remaining: u64,
    n: u64,
    work: u32,
}

impl Mbw {
    pub fn new(footprint: usize, total_ops: u64, target_fraction: f64) -> Self {
        let f = target_fraction.clamp(0.05, 1.0);
        // The device serves one 64B command every ~8 cycles; an offered
        // load of `f` therefore means one access every `8/f` cycles. The
        // throttle must exceed the MLP-covered latency to actually bite.
        let work = (8.0 / f).round() as u32;
        Mbw {
            footprint,
            remaining: total_ops,
            n: 0,
            work,
        }
    }
}

impl TraceSource for Mbw {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.n += 1;
        let half = (self.footprint / 2) as u64;
        let offset = (self.n / 2 * 64) % half;
        let op = if self.n % 2 == 1 {
            MemOp::load(offset) // source half
        } else {
            MemOp::store(half + offset) // destination half
        };
        Some(op.with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

/// A multi-array stencil sweep (`k` concurrent streams, one written).
///
/// Models `554.roms_r` / `649.fotonik3d_s` / `fft`-style kernels: several
/// simultaneous unit-stride streams at different base addresses — exactly
/// the shape that keeps multiple L2 stream-prefetcher entries hot, which is
/// why the paper sees HWPF dominate these applications' uncore traffic
/// (Table 7: 59.3% of `649.fotonik3d_s` uncore accesses are HWPF).
pub struct Stencil {
    footprint: usize,
    arrays: u64,
    remaining: u64,
    i: u64,
    work: u32,
    write_last: bool,
    noise_permille: u32,
    lcg: u64,
}

impl Stencil {
    pub fn new(footprint: usize, arrays: usize, total_ops: u64) -> Self {
        assert!(arrays >= 2);
        Stencil {
            footprint,
            arrays: arrays as u64,
            remaining: total_ops,
            i: 0,
            work: 3,
            write_last: true,
            noise_permille: 0,
            lcg: 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn work(mut self, work: u32) -> Self {
        self.work = work;
        self
    }

    /// Disable the output-array stores (read-only stencil).
    pub fn read_only(mut self) -> Self {
        self.write_last = false;
        self
    }

    /// Irregularity, as in [`StreamGen::noise`].
    pub fn noise(mut self, permille: u32) -> Self {
        self.noise_permille = permille.min(1000);
        self
    }
}

impl TraceSource for Stencil {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.noise_permille > 0 {
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (self.lcg >> 33) % 1000 < self.noise_permille as u64 {
                let lines = (self.footprint / 64) as u64;
                let addr = ((self.lcg >> 17) % lines) * 64;
                return Some(MemOp::dependent_load(addr).with_work(self.work));
            }
        }
        let region = (self.footprint as u64) / self.arrays;
        let a = self.i % self.arrays;
        let step = self.i / self.arrays;
        let addr = a * region + (step * 64) % region;
        self.i += 1;
        let op = if self.write_last && a == self.arrays - 1 {
            MemOp::store(addr)
        } else {
            MemOp::load(addr)
        };
        Some(op.with_work(self.work))
    }

    fn footprint(&self) -> usize {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simarch::request::AccessKind;

    fn drain(mut t: impl TraceSource) -> Vec<MemOp> {
        let mut v = Vec::new();
        while let Some(op) = t.next_op() {
            v.push(op);
        }
        v
    }

    #[test]
    fn stream_write_ratio_is_exact_over_long_runs() {
        let ops = drain(StreamGen::new(1 << 20, 10_000).write_ratio(0.25));
        let stores = ops
            .iter()
            .filter(|o| matches!(o.kind, AccessKind::Store))
            .count();
        assert!((2400..=2600).contains(&stores), "stores = {stores}");
    }

    #[test]
    fn stream_pure_read_and_pure_write() {
        let rd = drain(StreamGen::new(1 << 16, 1000).write_ratio(0.0));
        assert!(rd.iter().all(|o| matches!(o.kind, AccessKind::Load { .. })));
        let wr = drain(StreamGen::new(1 << 16, 1000).write_ratio(1.0));
        assert!(wr.iter().all(|o| matches!(o.kind, AccessKind::Store)));
    }

    #[test]
    fn stream_addresses_are_sequential_mod_footprint() {
        let ops = drain(StreamGen::new(4096, 100));
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.vaddr, (i as u64 * 64) % 4096);
        }
    }

    #[test]
    fn mbw_alternates_halves() {
        let ops = drain(Mbw::new(1 << 20, 100, 1.0));
        let half = 1u64 << 19;
        for pair in ops.chunks(2) {
            assert!(pair[0].vaddr < half);
            assert!(matches!(pair[0].kind, AccessKind::Load { .. }));
            if pair.len() == 2 {
                assert!(pair[1].vaddr >= half);
                assert!(matches!(pair[1].kind, AccessKind::Store));
            }
        }
    }

    #[test]
    fn mbw_rate_limit_scales_work() {
        let fast = Mbw::new(1 << 20, 1, 1.0).next_op().unwrap().work;
        let slow = Mbw::new(1 << 20, 1, 0.2).next_op().unwrap().work;
        assert_eq!(fast, 8);
        assert_eq!(slow, 40);
    }

    #[test]
    fn stencil_interleaves_arrays_with_one_writer() {
        let ops = drain(Stencil::new(4 << 20, 4, 400));
        let region = (4u64 << 20) / 4;
        for (i, op) in ops.iter().enumerate() {
            let a = (i as u64) % 4;
            assert!(op.vaddr / region == a, "op {i} in wrong array");
            if a == 3 {
                assert!(matches!(op.kind, AccessKind::Store));
            } else {
                assert!(matches!(op.kind, AccessKind::Load { .. }));
            }
        }
    }

    #[test]
    fn stencil_read_only_never_stores() {
        let ops = drain(Stencil::new(1 << 20, 3, 300).read_only());
        assert!(ops.iter().all(|o| !matches!(o.kind, AccessKind::Store)));
    }
}
