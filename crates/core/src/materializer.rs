//! **PFMaterializer** (§4.6): cross-snapshot synthesis.
//!
//! Each epoch digest is compacted into tagged records in an embedded
//! time-series database (the `tsdb` crate standing in for InfluxDB). On top
//! of the store, the materializer runs PathFinder's analysis workflow:
//! scope (tag-filtered query) → overall statistics → window clustering →
//! trend/seasonality via Holt-Winters → cross-application correlation via
//! Pearson's r.

use crate::builder::PathMap;
use crate::model::{Component, HitLevel, PathGroup};
use tsdb::{ops, tsa, Db, SeriesId};

/// Resolved series handles for the per-app record families (`path_set`,
/// `app`). Built once per workload assignment; while the apps stay the
/// same, every epoch's ingest is pure handle-indexed column appends —
/// zero string formatting, zero map insertion (see PERFORMANCE.md).
struct AppHandles {
    /// The per-core labels these handles encode; a mismatch invalidates.
    apps: Vec<Option<String>>,
    /// `path_set` series per (core, level, path).
    path_set: Vec<[[SeriesId; PathGroup::COUNT]; HitLevel::COUNT]>,
    /// `app` progress series per core.
    progress: Vec<SeriesId>,
}

/// The materializer: a DB plus ingestion and analysis workflows.
#[derive(Default)]
pub struct Materializer {
    pub db: Db,
    app_handles: Option<AppHandles>,
    vertex_handles: Option<[[SeriesId; Component::COUNT]; PathGroup::COUNT]>,
}

impl Materializer {
    pub fn new() -> Self {
        Materializer::default()
    }

    /// (Re)build the app-tagged handle cache when the workload assignment
    /// changes. This is the one place the per-app series names are
    /// formatted; the epoch loops below never touch strings again.
    fn ensure_app_handles(&mut self, cores: usize, apps: &[Option<String>]) {
        if self
            .app_handles
            .as_ref()
            .is_some_and(|h| h.path_set.len() == cores && h.apps[..] == *apps)
        {
            return;
        }
        let dummy = self.db.series_handle("path_set", &[], &[]);
        let mut path_set = vec![[[dummy; PathGroup::COUNT]; HitLevel::COUNT]; cores];
        let mut progress = Vec::with_capacity(cores);
        for (core, row) in path_set.iter_mut().enumerate() {
            let core_s = core.to_string();
            let app = apps
                .get(core)
                .and_then(|a| a.as_deref())
                .unwrap_or_default();
            for l in HitLevel::ALL {
                for p in PathGroup::ALL {
                    row[l.idx()][p.idx()] = self.db.series_handle(
                        "path_set",
                        &[
                            ("core", &core_s),
                            ("app", app),
                            ("path", p.label()),
                            ("dst", l.label()),
                        ],
                        &["hits"],
                    );
                }
            }
            progress.push(self.db.series_handle(
                "app",
                &[("core", &core_s), ("app", app)],
                &["ops"],
            ));
        }
        self.app_handles = Some(AppHandles {
            apps: apps.to_vec(),
            path_set,
            progress,
        });
    }

    /// Ingest one epoch's path map as `path_set` records: one record per
    /// (core, path, level) with a non-zero hit count. `apps[core]` labels
    /// the records so cross-application queries can scope by program.
    // pflint::hot
    pub fn ingest_path_map(&mut self, ts: u64, map: &PathMap, apps: &[Option<String>]) {
        self.ensure_app_handles(map.per_core.len(), apps);
        let Materializer {
            db, app_handles, ..
        } = self;
        let handles = app_handles.as_ref().expect("handles just ensured");
        for (core, m) in map.per_core.iter().enumerate() {
            let row = &handles.path_set[core];
            for l in HitLevel::ALL {
                for p in PathGroup::ALL {
                    let v = m.get(l, p);
                    if v == 0 {
                        continue;
                    }
                    db.ingest(row[l.idx()][p.idx()], ts, &[v as f64]);
                }
            }
        }
    }

    /// Ingest per-(path, component) queue lengths as `vertex` records.
    // pflint::hot
    pub fn ingest_queues(&mut self, ts: u64, q: &crate::analyzer::QueueEstimate) {
        if self.vertex_handles.is_none() {
            let dummy = self.db.series_handle("vertex", &[], &[]);
            let mut grid = [[dummy; Component::COUNT]; PathGroup::COUNT];
            for p in PathGroup::ALL {
                for c in Component::ALL {
                    grid[p.idx()][c.idx()] = self.db.series_handle(
                        "vertex",
                        &[("path", p.label()), ("hw", c.label())],
                        &["queue"],
                    );
                }
            }
            self.vertex_handles = Some(grid);
        }
        let Materializer {
            db, vertex_handles, ..
        } = self;
        let grid = vertex_handles.as_ref().expect("handles just ensured");
        for p in PathGroup::ALL {
            for c in Component::ALL {
                let v = q.get(p, c);
                if v > 0.0 {
                    db.ingest(grid[p.idx()][c.idx()], ts, &[v]);
                }
            }
        }
    }

    /// Ingest application progress (`ops` per epoch) as `app` records.
    // pflint::hot
    pub fn ingest_progress(&mut self, ts: u64, ops_per_core: &[u64], apps: &[Option<String>]) {
        self.ensure_app_handles(ops_per_core.len(), apps);
        let Materializer {
            db, app_handles, ..
        } = self;
        let handles = app_handles.as_ref().expect("handles just ensured");
        for (core, &n) in ops_per_core.iter().enumerate() {
            if n == 0 {
                continue;
            }
            db.ingest(handles.progress[core], ts, &[n as f64]);
        }
    }

    /// The hit series of one (core, level) scope across all snapshots —
    /// PathFinder's "query scope" step.
    pub fn hit_series(&self, core: usize, level: HitLevel) -> Vec<(u64, f64)> {
        let per_path: Vec<Vec<(u64, f64)>> = PathGroup::ALL
            .iter()
            .map(|p| {
                self.db
                    .from("path_set")
                    .filter("core", core.to_string())
                    .filter("dst", level.label())
                    .filter("path", p.label())
                    .values("hits")
            })
            .collect();
        // Sum per timestamp across paths.
        let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for series in per_path {
            for (ts, v) in series {
                *acc.entry(ts).or_insert(0.0) += v;
            }
        }
        acc.into_iter().collect()
    }

    /// Phase windows of consistent locality for a (core, level) scope —
    /// Case 6's "windows with stable memory access patterns".
    pub fn locality_windows(&self, core: usize, level: HitLevel) -> Vec<tsa::Window> {
        let series = self.hit_series(core, level);
        let data: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
        tsa::cluster_windows(&data, 0.25, 1.0)
    }

    /// Summary statistics of a scope (min/max/mean/moving-average tail).
    pub fn scope_stats(&self, core: usize, level: HitLevel) -> Option<(f64, f64, f64)> {
        let series = self.hit_series(core, level);
        Some((ops::min(&series)?, ops::max(&series)?, ops::mean(&series)?))
    }

    /// Pearson correlation between two cores' hit series at a level, on the
    /// overlapping snapshots (Case 6: identify locality-impacting factors
    /// from co-located applications).
    pub fn correlate_cores(&self, a: usize, b: usize, level: HitLevel) -> Option<f64> {
        let sa = self.hit_series(a, level);
        let sb = self.hit_series(b, level);
        let mb: std::collections::BTreeMap<u64, f64> = sb.into_iter().collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (ts, v) in sa {
            if let Some(&w) = mb.get(&ts) {
                xs.push(v);
                ys.push(w);
            }
        }
        tsa::pearsonr(&xs, &ys)
    }

    /// Pearson correlation between two arbitrary aligned samples — Case 5
    /// uses this between per-mFlow CXL request frequency and delivered
    /// bandwidth (the paper reports r = 0.998).
    pub fn correlate(xs: &[f64], ys: &[f64]) -> Option<f64> {
        tsa::pearsonr(xs, ys)
    }

    /// Does the scope's hit series look predictable (seasonal)? Returns the
    /// Holt-Winters relative fit error — small values indicate regular,
    /// forecastable access patterns (§4.6 step 4).
    pub fn predictability(&self, core: usize, level: HitLevel, season: usize) -> Option<f64> {
        let series = self.hit_series(core, level);
        let data: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
        let hw = tsa::HoltWinters::new(season);
        let err = hw.fit_error(&data)?;
        let sd = ops::stddev(&series)?;
        if sd == 0.0 {
            return Some(0.0);
        }
        Some(err / sd)
    }

    /// The per-epoch ops series of one core (`app` measurement).
    pub fn ops_series(&self, core: usize) -> Vec<(u64, f64)> {
        self.db
            .from("app")
            .filter("core", core.to_string())
            .values("ops")
    }

    /// Compute-burst windows (§4.6: "computing burst"): phases of consistent
    /// execution throughput, found by clustering the per-epoch ops series.
    pub fn burst_windows(&self, core: usize) -> Vec<tsa::Window> {
        let series = self.ops_series(core);
        let data: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
        tsa::cluster_windows(&data, 0.25, 1.0)
    }

    /// Execution orthogonality (§4.6): do two co-located applications
    /// progress independently (r ≈ 0), constructively (r > 0), or do they
    /// contend (r < 0)? Pearson correlation of the two cores' per-epoch ops
    /// on the overlapping snapshots.
    pub fn orthogonality(&self, a: usize, b: usize) -> Option<f64> {
        let sa = self.ops_series(a);
        let mb: std::collections::BTreeMap<u64, f64> = self.ops_series(b).into_iter().collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (ts, v) in sa {
            if let Some(&w) = mb.get(&ts) {
                xs.push(v);
                ys.push(w);
            }
        }
        tsa::pearsonr(&xs, &ys)
    }

    /// Spatial-locality digest (§4.6: "spatial data locality"): given one
    /// epoch's page-heat samples for an address space, return
    /// `(touched_pages, gini)` where gini in 0..=1 measures how concentrated
    /// the accesses are (0 = uniform over touched pages, →1 = one hot page).
    pub fn spatial_locality(heat: &[(u16, u64, u32)], asid: u16) -> (usize, f64) {
        let mut counts: Vec<f64> = heat
            .iter()
            .filter(|&&(a, _, _)| a == asid)
            .map(|&(_, _, n)| n as f64)
            .collect();
        let n = counts.len();
        if n == 0 {
            return (0, 0.0);
        }
        counts.sort_by(|x, y| x.total_cmp(y));
        let total: f64 = counts.iter().sum();
        if total == 0.0 {
            return (n, 0.0);
        }
        // Gini via the sorted-rank formula.
        let weighted: f64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c)
            .sum();
        let gini = (2.0 * weighted / (n as f64 * total)) - (n as f64 + 1.0) / n as f64;
        (n, gini.clamp(0.0, 1.0))
    }

    /// Resident bytes of the record store (overhead accounting, §5.9).
    pub fn footprint_bytes(&self) -> usize {
        self.db.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CoreMap;

    fn map_with(core: usize, level: HitLevel, path: PathGroup, v: u64, cores: usize) -> PathMap {
        let mut per_core = vec![CoreMap::default(); cores];
        per_core[core].hits[level.idx()][path.idx()] = v;
        let mut total = CoreMap::default();
        total.hits[level.idx()][path.idx()] = v;
        PathMap { per_core, total }
    }

    #[test]
    fn ingest_and_query_round_trip() {
        let mut m = Materializer::new();
        for t in 0..5u64 {
            let map = map_with(0, HitLevel::LocalLlc, PathGroup::Drd, 100 + t, 2);
            m.ingest_path_map(t * 1000, &map, &[Some("a".into()), None]);
        }
        let s = m.hit_series(0, HitLevel::LocalLlc);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], (0, 100.0));
        assert_eq!(s[4], (4000, 104.0));
        assert!(m.hit_series(1, HitLevel::LocalLlc).is_empty());
    }

    #[test]
    fn hit_series_sums_paths() {
        let mut m = Materializer::new();
        let mut map = map_with(0, HitLevel::CxlMemory, PathGroup::Drd, 10, 1);
        map.per_core[0].hits[HitLevel::CxlMemory.idx()][PathGroup::HwPf.idx()] = 30;
        m.ingest_path_map(0, &map, &[None]);
        assert_eq!(m.hit_series(0, HitLevel::CxlMemory), vec![(0, 40.0)]);
    }

    #[test]
    fn locality_windows_find_phase_change() {
        let mut m = Materializer::new();
        for t in 0..60u64 {
            let hits = if t < 30 { 1000 } else { 100 };
            let map = map_with(0, HitLevel::LocalLlc, PathGroup::Drd, hits, 1);
            m.ingest_path_map(t, &map, &[None]);
        }
        let w = m.locality_windows(0, HitLevel::LocalLlc);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].end, 30);
    }

    #[test]
    fn correlation_between_coupled_cores() {
        let mut m = Materializer::new();
        for t in 0..20u64 {
            let mut map = map_with(0, HitLevel::LocalLlc, PathGroup::Drd, 10 + t, 2);
            map.per_core[1].hits[HitLevel::LocalLlc.idx()][PathGroup::Drd.idx()] = 1000 - 3 * t;
            m.ingest_path_map(t, &map, &[None, None]);
        }
        let r = m.correlate_cores(0, 1, HitLevel::LocalLlc).unwrap();
        assert!(r < -0.99, "anti-correlated series, r = {r}");
    }

    #[test]
    fn scope_stats_and_footprint() {
        let mut m = Materializer::new();
        let map = map_with(0, HitLevel::L2, PathGroup::Rfo, 7, 1);
        m.ingest_path_map(0, &map, &[None]);
        let (mn, mx, mean) = m.scope_stats(0, HitLevel::L2).unwrap();
        assert_eq!((mn, mx, mean), (7.0, 7.0, 7.0));
        assert!(m.footprint_bytes() > 0);
    }

    #[test]
    fn burst_windows_and_orthogonality() {
        let mut m = Materializer::new();
        for t in 0..40u64 {
            // Core 0 bursts (fast first half, slow second); core 1 inverse.
            let o0 = if t < 20 { 1000 } else { 100 };
            let o1 = if t < 20 { 100 } else { 1000 };
            m.ingest_progress(t, &[o0, o1], &[Some("a".into()), Some("b".into())]);
        }
        let w = m.burst_windows(0);
        assert_eq!(w.len(), 2, "two throughput phases: {w:?}");
        let r = m.orthogonality(0, 1).unwrap();
        assert!(r < -0.9, "anti-phased apps must anti-correlate, r = {r}");
    }

    #[test]
    fn spatial_locality_gini() {
        // Uniform heat: gini ≈ 0.
        let uniform: Vec<(u16, u64, u32)> = (0..100).map(|p| (0u16, p as u64, 10u32)).collect();
        let (n, g) = Materializer::spatial_locality(&uniform, 0);
        assert_eq!(n, 100);
        assert!(g < 0.05, "uniform gini {g}");
        // One dominant page: gini → 1.
        let mut skewed = uniform.clone();
        skewed.push((0, 999, 100_000));
        let (_, g2) = Materializer::spatial_locality(&skewed, 0);
        assert!(g2 > 0.9, "skewed gini {g2}");
        // Foreign ASIDs are excluded.
        let (n3, _) = Materializer::spatial_locality(&uniform, 7);
        assert_eq!(n3, 0);
    }

    #[test]
    fn predictability_detects_seasonal_series() {
        let mut m = Materializer::new();
        for t in 0..64u64 {
            let hits = 1000 + 500 * (t % 8);
            let map = map_with(0, HitLevel::LocalLlc, PathGroup::Drd, hits, 1);
            m.ingest_path_map(t, &map, &[None]);
        }
        let err = m.predictability(0, HitLevel::LocalLlc, 8).unwrap();
        assert!(err < 0.5, "seasonal series must be predictable, err {err}");
    }
}
