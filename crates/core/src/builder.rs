//! **PFBuilder** (§4.3): constructing the path map.
//!
//! Traceroute is impossible through non-programmable micro-architecture, but
//! the PMUs report path-specific hit/miss information at every station.
//! PFBuilder synthesises the Table-5 counters into a quantitative path map:
//! for each core, how many DRd / RFO / HW-PF / DWr requests were served at
//! SB, L1D, LFB, L2, and — via the offcore-response target scenarios — at
//! the local/SNC/remote LLC, local DRAM, or CXL memory.
//!
//! Faithfully reproduced hardware limitation (§5.9): RFO and DWr cannot be
//! observed at L1D/LFB granularity, and the L2 RFO counters mix demand and
//! prefetch RFOs. Those map cells stay empty exactly as Table 7's do.

use crate::model::{HitLevel, PathGroup};
use pmu::{CoreEvent, RespScenario, SystemDelta};

/// The per-core path map: `hits[level][path]`.
#[derive(Clone, Debug, Default)]
pub struct CoreMap {
    pub hits: [[u64; PathGroup::COUNT]; HitLevel::COUNT],
}

impl CoreMap {
    pub fn get(&self, level: HitLevel, path: PathGroup) -> u64 {
        self.hits[level.idx()][path.idx()]
    }

    /// Total requests this core issued across all paths and levels.
    pub fn total(&self) -> u64 {
        self.hits.iter().flatten().sum()
    }

    /// Total hits at uncore levels (past the private caches).
    pub fn uncore_total(&self) -> u64 {
        HitLevel::ALL
            .iter()
            .filter(|l| l.is_uncore())
            .map(|l| self.hits[l.idx()].iter().sum::<u64>())
            .sum()
    }

    /// Hits at a given level across all paths.
    pub fn level_total(&self, level: HitLevel) -> u64 {
        self.hits[level.idx()].iter().sum()
    }

    /// Hits for a path across all levels.
    pub fn path_total(&self, path: PathGroup) -> u64 {
        self.hits.iter().map(|row| row[path.idx()]).sum()
    }
}

/// The whole-machine path map.
#[derive(Clone, Debug)]
pub struct PathMap {
    pub per_core: Vec<CoreMap>,
    /// Element-wise sum of the per-core maps.
    pub total: CoreMap,
}

impl PathMap {
    /// The hottest (level, path) cell for a core — "the per-core hot path"
    /// of Case 1.
    pub fn hot_path(&self, core: usize) -> Option<(HitLevel, PathGroup, u64)> {
        let m = &self.per_core[core];
        let mut best = None;
        for l in HitLevel::ALL {
            for p in PathGroup::ALL {
                let v = m.get(l, p);
                if v > 0 && best.map(|(_, _, b)| v > b).unwrap_or(true) {
                    best = Some((l, p, v));
                }
            }
        }
        best
    }

    /// The dominant path among uncore hits for a core (Case 1: "at the
    /// uncore, the hot path is HWPF, accounting for 59.3%").
    pub fn uncore_hot_path(&self, core: usize) -> Option<(PathGroup, f64)> {
        let m = &self.per_core[core];
        let total = m.uncore_total();
        if total == 0 {
            return None;
        }
        PathGroup::ALL
            .iter()
            .map(|&p| {
                let v: u64 = HitLevel::ALL
                    .iter()
                    .filter(|l| l.is_uncore())
                    .map(|l| m.get(*l, p))
                    .sum();
                (p, v as f64 / total as f64)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Ratio of CXL-memory hits to local-LLC hits (Case 1: "CXL memory hits
    /// are 8.1× more than the local LLC hits" for fotonik3d).
    pub fn cxl_to_llc_ratio(&self, core: usize) -> Option<f64> {
        let m = &self.per_core[core];
        let llc = m.level_total(HitLevel::LocalLlc);
        if llc == 0 {
            return None;
        }
        Some(m.level_total(HitLevel::CxlMemory) as f64 / llc as f64)
    }

    /// Share of CXL-memory hits carried by each path group for a core.
    pub fn cxl_path_shares(&self, core: usize) -> [f64; PathGroup::COUNT] {
        let m = &self.per_core[core];
        let row = &m.hits[HitLevel::CxlMemory.idx()];
        let total: u64 = row.iter().sum();
        let mut out = [0.0; PathGroup::COUNT];
        if total > 0 {
            for p in PathGroup::ALL {
                out[p.idx()] = row[p.idx()] as f64 / total as f64;
            }
        }
        out
    }

    /// Render the Table-7 style path map for a set of cores.
    pub fn render(&self, cores: &[usize]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<12}", "Hit Location"));
        for &c in cores {
            for p in PathGroup::ALL {
                out.push_str(&format!("{:>12}", format!("{}@c{}", p.label(), c)));
            }
        }
        out.push('\n');
        for l in HitLevel::ALL {
            out.push_str(&format!("{:<12}", l.label()));
            for &c in cores {
                for p in PathGroup::ALL {
                    let v = self.per_core[c].get(l, p);
                    if v == 0 {
                        out.push_str(&format!("{:>12}", ""));
                    } else {
                        out.push_str(&format!("{:>12}", crate::report::sci(v)));
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The PFBuilder mechanism.
pub struct PfBuilder;

impl PfBuilder {
    /// Build the path map for one epoch digest.
    pub fn build(delta: &SystemDelta) -> PathMap {
        let per_core: Vec<CoreMap> = (0..delta.pmu.cores.len())
            .map(|c| Self::build_core(delta, c))
            .collect();
        let mut total = CoreMap::default();
        for m in &per_core {
            for l in 0..HitLevel::COUNT {
                for p in 0..PathGroup::COUNT {
                    total.hits[l][p] += m.hits[l][p];
                }
            }
        }
        PathMap { per_core, total }
    }

    fn build_core(delta: &SystemDelta, c: usize) -> CoreMap {
        let b = &delta.pmu.cores[c];
        let mut m = CoreMap::default();
        let set = |m: &mut CoreMap, l: HitLevel, p: PathGroup, v: u64| {
            m.hits[l.idx()][p.idx()] = v;
        };

        // Core-private stations (Table 5, "Core" rows). RFO/DWr are not
        // observable at L1D/LFB (§5.9) — those cells stay zero.
        set(
            &mut m,
            HitLevel::Sb,
            PathGroup::Dwr,
            b.read(CoreEvent::MemTransRetiredStoreCount),
        );
        set(
            &mut m,
            HitLevel::L1d,
            PathGroup::Drd,
            b.read(CoreEvent::MemLoadRetiredL1Hit),
        );
        set(
            &mut m,
            HitLevel::Lfb,
            PathGroup::Drd,
            b.read(CoreEvent::MemLoadRetiredL1FbHit),
        );
        set(
            &mut m,
            HitLevel::L2,
            PathGroup::Drd,
            b.read(CoreEvent::L2RqstsDemandDataRdHit) + b.read(CoreEvent::L2RqstsSwpfHit),
        );
        // L2 RFO counters indiscriminately include demand + prefetch RFO.
        set(
            &mut m,
            HitLevel::L2,
            PathGroup::Rfo,
            b.read(CoreEvent::L2RqstsRfoHit),
        );
        set(
            &mut m,
            HitLevel::L2,
            PathGroup::HwPf,
            b.read(CoreEvent::L2RqstsHwpfHit),
        );
        set(
            &mut m,
            HitLevel::L2,
            PathGroup::Dwr,
            b.read(CoreEvent::MemStoreRetiredL2Hit),
        );

        // Uncore destinations from the offcore-response scenario counters.
        // One monomorphized row-fill per path group: the per-scenario reads
        // inline straight into counter loads (no virtual dispatch on the
        // epoch hot path; see PERFORMANCE.md).
        fn uncore_rows(m: &mut CoreMap, p: PathGroup, f: impl Fn(RespScenario) -> u64) {
            let row = |l: HitLevel| (l.idx(), p.idx());
            let (l, pi) = row(HitLevel::LocalLlc);
            m.hits[l][pi] = f(RespScenario::L3HitSnoopLocal);
            let (l, pi) = row(HitLevel::SncLlc);
            m.hits[l][pi] = f(RespScenario::SncDistantL3);
            let (l, pi) = row(HitLevel::RemoteLlc);
            m.hits[l][pi] = f(RespScenario::RemoteCacheHit);
            let (l, pi) = row(HitLevel::LocalDram);
            m.hits[l][pi] = f(RespScenario::LocalDram)
                + f(RespScenario::SncDistantDram)
                + f(RespScenario::RemoteDram);
            let (l, pi) = row(HitLevel::CxlMemory);
            m.hits[l][pi] = f(RespScenario::CxlDram);
        }
        uncore_rows(&mut m, PathGroup::Drd, |s| {
            b.read(CoreEvent::OcrDemandDataRd(s)) + b.read(CoreEvent::OcrSwPf(s))
        });
        uncore_rows(&mut m, PathGroup::Rfo, |s| b.read(CoreEvent::OcrRfo(s)));
        uncore_rows(&mut m, PathGroup::HwPf, |s| {
            b.read(CoreEvent::OcrL1dHwPf(s))
                + b.read(CoreEvent::OcrL2HwPfDrd(s))
                + b.read(CoreEvent::OcrL2HwPfRfo(s))
        });
        // Write-backs of modified lines leave the core toward the LLC; the
        // per-core PMU only exposes their total (Table 7 reports them on the
        // remote-LLC row for CXL-resident data).
        set(
            &mut m,
            HitLevel::RemoteLlc,
            PathGroup::Dwr,
            b.read(CoreEvent::OcrModifiedWriteAnyResponse),
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::{SystemPmu, SystemSnapshot};

    fn delta_with(f: impl FnOnce(&mut SystemPmu)) -> SystemDelta {
        let mut pmu = SystemPmu::new(2, 1, 2, 1, 1);
        let s0: SystemSnapshot = pmu.snapshot(0);
        f(&mut pmu);
        pmu.snapshot(1000).delta(&s0)
    }

    #[test]
    fn core_rows_come_from_the_table5_counters() {
        let d = delta_with(|p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 470);
            p.cores[0].add(CoreEvent::MemLoadRetiredL1FbHit, 31);
            p.cores[0].add(CoreEvent::L2RqstsDemandDataRdHit, 4);
            p.cores[0].add(CoreEvent::L2RqstsSwpfHit, 3);
            p.cores[0].add(CoreEvent::L2RqstsRfoHit, 44);
            p.cores[0].add(CoreEvent::MemTransRetiredStoreCount, 78);
        });
        let map = PfBuilder::build(&d);
        let m = &map.per_core[0];
        assert_eq!(m.get(HitLevel::L1d, PathGroup::Drd), 470);
        assert_eq!(m.get(HitLevel::Lfb, PathGroup::Drd), 31);
        assert_eq!(
            m.get(HitLevel::L2, PathGroup::Drd),
            7,
            "SWPF merges into DRd"
        );
        assert_eq!(m.get(HitLevel::L2, PathGroup::Rfo), 44);
        assert_eq!(m.get(HitLevel::Sb, PathGroup::Dwr), 78);
        // §5.9 limitation: RFO not observable at L1D/LFB.
        assert_eq!(m.get(HitLevel::L1d, PathGroup::Rfo), 0);
        assert_eq!(m.get(HitLevel::Lfb, PathGroup::Rfo), 0);
    }

    #[test]
    fn uncore_rows_come_from_ocr_scenarios() {
        let d = delta_with(|p| {
            p.cores[1].add(CoreEvent::OcrDemandDataRd(RespScenario::CxlDram), 25);
            p.cores[1].add(CoreEvent::OcrDemandDataRd(RespScenario::L3HitSnoopLocal), 5);
            p.cores[1].add(CoreEvent::OcrL1dHwPf(RespScenario::CxlDram), 100);
            p.cores[1].add(CoreEvent::OcrL2HwPfDrd(RespScenario::CxlDram), 120);
            p.cores[1].add(CoreEvent::OcrRfo(RespScenario::LocalDram), 9);
        });
        let map = PfBuilder::build(&d);
        let m = &map.per_core[1];
        assert_eq!(m.get(HitLevel::CxlMemory, PathGroup::Drd), 25);
        assert_eq!(m.get(HitLevel::LocalLlc, PathGroup::Drd), 5);
        assert_eq!(m.get(HitLevel::CxlMemory, PathGroup::HwPf), 220);
        assert_eq!(m.get(HitLevel::LocalDram, PathGroup::Rfo), 9);
        // Core 0 saw nothing.
        assert_eq!(map.per_core[0].total(), 0);
        // Totals aggregate.
        assert_eq!(map.total.get(HitLevel::CxlMemory, PathGroup::HwPf), 220);
    }

    #[test]
    fn hot_path_and_ratios() {
        let d = delta_with(|p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 1000);
            p.cores[0].add(
                CoreEvent::OcrDemandDataRd(RespScenario::L3HitSnoopLocal),
                10,
            );
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::CxlDram), 81);
            p.cores[0].add(CoreEvent::OcrL2HwPfDrd(RespScenario::CxlDram), 500);
        });
        let map = PfBuilder::build(&d);
        let (l, p, v) = map.hot_path(0).unwrap();
        assert_eq!((l, p, v), (HitLevel::L1d, PathGroup::Drd, 1000));
        let (up, share) = map.uncore_hot_path(0).unwrap();
        assert_eq!(up, PathGroup::HwPf);
        assert!(share > 0.8);
        assert!((map.cxl_to_llc_ratio(0).unwrap() - 58.1).abs() < 0.2);
        let shares = map.cxl_path_shares(0);
        assert!((shares[PathGroup::HwPf.idx()] - 500.0 / 581.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_rows_and_sci_numbers() {
        let d = delta_with(|p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 4_700_000_000);
        });
        let map = PfBuilder::build(&d);
        let table = map.render(&[0]);
        assert!(table.contains("L1D"));
        assert!(table.contains("CXL Memory"));
        assert!(table.contains("4.7E+09"));
    }

    #[test]
    fn empty_delta_has_no_hot_path() {
        let d = delta_with(|_| {});
        let map = PfBuilder::build(&d);
        assert!(map.hot_path(0).is_none());
        assert!(map.uncore_hot_path(0).is_none());
        assert!(map.cxl_to_llc_ratio(0).is_none());
    }
}
