//! **PFEstimator** (§4.4, Algorithm 2): CXL-induced stall breakdown.
//!
//! Stall-cycle counters capture the combined impact of local and CXL memory
//! paths; splitting by miss-target proportion alone is inaccurate. Inspired
//! by reverse traceroute, PFEstimator back-propagates the stall observed at
//! the CXL DIMM toward the core: each segment's own queueing is added and
//! the accumulated stall is redistributed to the upstream modules
//! proportionally to their traffic loads.
//!
//! Concretely, per path group `p`:
//!
//! * The in-core hierarchy telescopes: the paper's counters are nested
//!   (`stalls_l1d_miss ⊇ stalls_l2_miss ⊇ stalls_l3_miss`), so each level's
//!   *exclusive* contribution is the difference, scaled by the CXL traffic
//!   share of `p` at that level.
//! * The uncore pool (`stalls_l3_miss × share`) is split across LLC, CHA,
//!   FlexBus+MC and CXL DIMM proportionally to the measured residencies:
//!   TOR occupancy (CXL-target scenarios), M2PCIe ingress occupancy plus
//!   link transfer, and the device-controller occupancy.
//!
//! The same counters give per-class, per-tier latency estimates
//! ([`PfEstimator::tor_latency`]) — the input the paper's dynamic
//! TPP+Colloid uses.

use crate::model::{Component, LatencyModel, PathGroup};
use pmu::{
    ChaEvent, CoreEvent, CxlEvent, M2pEvent, RespScenario, SystemDelta, TorDrdScen, TorRfoScen,
};

/// CXL-induced stall cycles per (path group, component).
#[derive(Clone, Debug, Default)]
pub struct StallBreakdown {
    /// `cycles[path][component]`.
    pub cycles: [[f64; Component::COUNT]; PathGroup::COUNT],
}

impl StallBreakdown {
    pub fn get(&self, p: PathGroup, c: Component) -> f64 {
        self.cycles[p.idx()][c.idx()]
    }

    /// Total CXL-induced stall for a path group.
    pub fn path_total(&self, p: PathGroup) -> f64 {
        self.cycles[p.idx()].iter().sum()
    }

    /// Percentage breakdown across components for a path (Figure 6 bars).
    pub fn percentages(&self, p: PathGroup) -> [f64; Component::COUNT] {
        let total = self.path_total(p);
        let mut out = [0.0; Component::COUNT];
        if total > 0.0 {
            for c in Component::ALL {
                out[c.idx()] = 100.0 * self.get(p, c) / total;
            }
        }
        out
    }

    /// Grand total across paths.
    pub fn total(&self) -> f64 {
        PathGroup::ALL.iter().map(|&p| self.path_total(p)).sum()
    }
}

/// Which memory tier a TOR-latency query targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    Local,
    Cxl,
}

/// The PFEstimator mechanism.
pub struct PfEstimator;

impl PfEstimator {
    /// Break down the CXL-induced stall cycles of one epoch digest across
    /// all cores.
    pub fn breakdown(delta: &SystemDelta, lat: &LatencyModel) -> StallBreakdown {
        Self::breakdown_scoped(delta, lat, None)
    }

    /// Per-mFlow variant: attribute only `core`'s stall cycles, scaling the
    /// shared uncore pools by that core's share of the machine's CXL
    /// traffic (the proportional-load distribution of Algorithm 2).
    pub fn breakdown_core(delta: &SystemDelta, lat: &LatencyModel, core: usize) -> StallBreakdown {
        Self::breakdown_scoped(delta, lat, Some(core))
    }

    fn breakdown_scoped(
        delta: &SystemDelta,
        lat: &LatencyModel,
        core: Option<usize>,
    ) -> StallBreakdown {
        let mut out = StallBreakdown::default();

        // --- CXL traffic shares per path group (from the core OCR counters),
        // read once into per-path arrays: the share weights and the
        // machine-wide scope fraction below reuse them instead of re-walking
        // the banks.
        let mut cxl_p = [0u64; PathGroup::COUNT];
        let mut any_p = [0u64; PathGroup::COUNT];
        for p in PathGroup::ALL {
            cxl_p[p.idx()] = cxl_requests_scoped(delta, p, core);
            any_p[p.idx()] = any_requests_scoped(delta, p, core);
        }
        let cxl_total: u64 = cxl_p.iter().sum();
        let any_total: u64 = any_p.iter().sum();
        if cxl_total == 0 {
            return out; // no CXL traffic this epoch: nothing to attribute
        }
        // Latency-weighted CXL share: a CXL request holds the pipeline for
        // its whole (much longer) residency, so splitting stall cycles by
        // request counts alone under-blames CXL (§5.3: "separating stalls
        // based solely on the proportion of request miss targets is
        // inaccurate"). Weight each destination's request count by its
        // *measured* mean residency (TOR occupancy / inserts), falling back
        // to the platform's nominal latencies when the epoch has no sample.
        let local_total = any_total.saturating_sub(cxl_total);
        let l_cxl = measured_or(delta, Tier::Cxl, lat.cxl_mem);
        let l_local = measured_or(delta, Tier::Local, lat.dram);
        let weighted_cxl = cxl_total as f64 * l_cxl;
        let weighted_all = weighted_cxl + local_total as f64 * l_local;
        let share = weighted_cxl / weighted_all.max(f64::EPSILON);
        let w = |p: PathGroup| cxl_p[p.idx()] as f64 / cxl_total as f64;

        // --- In-core nested stall counters (scoped to one core or summed).
        let csum = |ev: CoreEvent| -> f64 {
            match core {
                Some(c) => delta.pmu.cores[c].read(ev) as f64,
                None => delta.core_sum(ev) as f64,
            }
        };
        let s_l1d = csum(CoreEvent::MemoryActivityStallsL1dMiss);
        let s_l2 = csum(CoreEvent::MemoryActivityStallsL2Miss);
        let s_l3 = csum(CoreEvent::CycleActivityStallsL3Miss);
        let s_sb = csum(CoreEvent::ResourceStallsSb) + csum(CoreEvent::ExeActivityBoundOnStores);
        let s_lfb = csum(CoreEvent::L1dPendMissFbFull);

        // --- Uncore residency pools (CXL side, machine-wide), scaled to the
        // scope's share of machine-wide CXL traffic.
        let machine_cxl: u64 = match core {
            // Whole-machine scope: already summed above.
            None => cxl_total,
            Some(_) => PathGroup::ALL.iter().map(|&p| cxl_requests(delta, p)).sum(),
        };
        let scope_frac = cxl_total as f64 / machine_cxl.max(1) as f64;
        let tor_occ_cxl = tor_cxl_occupancy(delta) * scope_frac;
        let m2p_occ = delta.m2p_sum(M2pEvent::RxcOccupancy) as f64 * scope_frac;
        let m2p_inserts = delta.m2p_sum(M2pEvent::RxcInserts) as f64 * scope_frac;
        let link_transfer = m2p_inserts * lat.flexbus;
        let dev_occ = (delta.cxl_sum(CxlEvent::DevMcRpqOccupancy)
            + delta.cxl_sum(CxlEvent::DevMcWpqOccupancy)) as f64
            * scope_frac;
        let r_flex = m2p_occ + link_transfer;
        let r_dev = dev_occ;
        let r_cha = (tor_occ_cxl - r_flex - r_dev).max(0.0);
        let r_llc = cxl_total as f64 * lat.llc_hit;
        let r_sum = (r_llc + r_cha + r_flex + r_dev).max(f64::EPSILON);

        // Core-private stall pools belong to the paths that can actually
        // block the pipeline there: the L1D/LFB counters observe demand
        // loads only (§5.9), the L2 counters demand loads and RFOs;
        // prefetches never stall the core upstream of the uncore, and the
        // store buffer belongs to DWr. The uncore pool is shared by every
        // path in proportion to its traffic.
        let uncore_pool = s_l3 * share;
        let w_drd = w(PathGroup::Drd);
        let w_rfo = w(PathGroup::Rfo);
        let demand_w = (w_drd + w_rfo).max(f64::EPSILON);
        for p in PathGroup::ALL {
            let wp = w(p);
            let row = &mut out.cycles[p.idx()];
            if p == PathGroup::Drd {
                row[Component::L1d.idx()] = (s_l1d - s_l2).max(0.0) * share;
                row[Component::Lfb.idx()] = s_lfb * share;
            }
            if p == PathGroup::Drd || p == PathGroup::Rfo {
                row[Component::L2.idx()] = (s_l2 - s_l3).max(0.0) * share * wp / demand_w;
            }
            row[Component::Llc.idx()] = uncore_pool * wp * r_llc / r_sum;
            row[Component::Cha.idx()] = uncore_pool * wp * r_cha / r_sum;
            row[Component::FlexBusMc.idx()] = uncore_pool * wp * r_flex / r_sum;
            row[Component::CxlDimm.idx()] = uncore_pool * wp * r_dev / r_sum;
        }
        // The store buffer stall pool is attributed to the DWr path.
        out.cycles[PathGroup::Dwr.idx()][Component::Sb.idx()] = s_sb * share;
        out
    }

    /// Per-class, per-tier latency from the TOR counters: mean residency of
    /// a TOR entry whose target matched the tier (occupancy / inserts).
    /// This is the latency signal the paper feeds into Colloid (§5.8).
    pub fn tor_latency(delta: &SystemDelta, p: PathGroup, tier: Tier) -> Option<f64> {
        let (occ, ins) = match (p, tier) {
            (PathGroup::Drd | PathGroup::HwPf, Tier::Cxl) => {
                let s = TorDrdScen::MissCxl;
                if p == PathGroup::Drd {
                    (
                        delta.cha_sum(ChaEvent::TorOccupancyIaDrd(s)),
                        delta.cha_sum(ChaEvent::TorInsertsIaDrd(s)),
                    )
                } else {
                    (
                        delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(s)),
                        delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(s)),
                    )
                }
            }
            (PathGroup::Drd | PathGroup::HwPf, Tier::Local) => {
                let s = TorDrdScen::MissLocalDdr;
                if p == PathGroup::Drd {
                    (
                        delta.cha_sum(ChaEvent::TorOccupancyIaDrd(s)),
                        delta.cha_sum(ChaEvent::TorInsertsIaDrd(s)),
                    )
                } else {
                    (
                        delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(s)),
                        delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(s)),
                    )
                }
            }
            (PathGroup::Rfo, Tier::Cxl) => (
                delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::MissCxl)),
                delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissCxl)),
            ),
            (PathGroup::Rfo, Tier::Local) => (
                delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::MissLocal)),
                delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLocal)),
            ),
            (PathGroup::Dwr, _) => return None,
        };
        if ins == 0 {
            None
        } else {
            Some(occ as f64 / ins as f64)
        }
    }

    /// CHA miss-ratio weights per class — PFBuilder's signal for selecting
    /// the dominant request type in the dynamic TPP+Colloid (§5.8).
    pub fn class_miss_weights(delta: &SystemDelta) -> [f64; 3] {
        let drd = delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc));
        let rfo = delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLlc));
        let pf = delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLlc))
            + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::MissLlc));
        let total = (drd + rfo + pf).max(1) as f64;
        [drd as f64 / total, rfo as f64 / total, pf as f64 / total]
    }
}

/// CXL-destined offcore requests for a path group (core OCR counters).
pub fn cxl_requests(delta: &SystemDelta, p: PathGroup) -> u64 {
    scen_requests(delta, p, RespScenario::CxlDram, None)
}

/// All offcore requests for a path group.
pub fn any_requests(delta: &SystemDelta, p: PathGroup) -> u64 {
    scen_requests(delta, p, RespScenario::AnyResponse, None)
}

/// Scoped variants (one core's counters only).
pub fn cxl_requests_scoped(delta: &SystemDelta, p: PathGroup, core: Option<usize>) -> u64 {
    scen_requests(delta, p, RespScenario::CxlDram, core)
}

pub fn any_requests_scoped(delta: &SystemDelta, p: PathGroup, core: Option<usize>) -> u64 {
    scen_requests(delta, p, RespScenario::AnyResponse, core)
}

fn scen_requests(delta: &SystemDelta, p: PathGroup, s: RespScenario, core: Option<usize>) -> u64 {
    let read = |ev: CoreEvent| -> u64 {
        match core {
            Some(c) => delta.pmu.cores[c].read(ev),
            None => delta.core_sum(ev),
        }
    };
    match p {
        PathGroup::Drd => read(CoreEvent::OcrDemandDataRd(s)) + read(CoreEvent::OcrSwPf(s)),
        PathGroup::Rfo => read(CoreEvent::OcrRfo(s)),
        PathGroup::HwPf => {
            read(CoreEvent::OcrL1dHwPf(s))
                + read(CoreEvent::OcrL2HwPfDrd(s))
                + read(CoreEvent::OcrL2HwPfRfo(s))
        }
        // Write-backs: approximate with the modified-write counter for the
        // "any" bucket and the M2S RwD inserts for the CXL bucket. The RwD
        // counter is per-device, not per-core, so the scoped variant uses
        // the core's modified-write count as its proxy for both buckets.
        PathGroup::Dwr => match (s, core) {
            (RespScenario::CxlDram, None) => delta.cxl_sum(CxlEvent::RxcPackBufInsertsMemData),
            _ => read(CoreEvent::OcrModifiedWriteAnyResponse),
        },
    }
}

/// Mean TOR residency toward a tier across all read classes, or `fallback`
/// when the epoch has no samples.
fn measured_or(delta: &SystemDelta, tier: Tier, fallback: f64) -> f64 {
    let mut occ = 0u64;
    let mut ins = 0u64;
    let (drd_s, rfo_s) = match tier {
        Tier::Cxl => (TorDrdScen::MissCxl, TorRfoScen::MissCxl),
        Tier::Local => (TorDrdScen::MissLocalDdr, TorRfoScen::MissLocal),
    };
    occ += delta.cha_sum(ChaEvent::TorOccupancyIaDrd(drd_s));
    ins += delta.cha_sum(ChaEvent::TorInsertsIaDrd(drd_s));
    occ += delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(drd_s));
    ins += delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(drd_s));
    occ += delta.cha_sum(ChaEvent::TorOccupancyIaRfo(rfo_s));
    ins += delta.cha_sum(ChaEvent::TorInsertsIaRfo(rfo_s));
    if ins == 0 {
        fallback
    } else {
        occ as f64 / ins as f64
    }
}

/// Total TOR occupancy of CXL-destined entries across all classes.
fn tor_cxl_occupancy(delta: &SystemDelta) -> f64 {
    (delta.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissCxl))
        + delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(TorDrdScen::MissCxl))
        + delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::MissCxl))
        + delta.cha_sum(ChaEvent::TorOccupancyIaRfoPref(TorRfoScen::MissCxl))) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::{SystemPmu, SystemSnapshot};

    fn delta_with(f: impl FnOnce(&mut SystemPmu)) -> SystemDelta {
        let mut pmu = SystemPmu::new(1, 1, 2, 1, 1);
        let s0: SystemSnapshot = pmu.snapshot(0);
        f(&mut pmu);
        pmu.snapshot(1_000_000).delta(&s0)
    }

    fn cxl_heavy_delta() -> SystemDelta {
        delta_with(|p| {
            // 1000 CXL DRd + 0 local: share = 1.
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::AnyResponse), 1000);
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::CxlDram), 1000);
            p.cores[0].add(CoreEvent::MemoryActivityStallsL1dMiss, 700_000);
            p.cores[0].add(CoreEvent::MemoryActivityStallsL2Miss, 650_000);
            p.cores[0].add(CoreEvent::CycleActivityStallsL3Miss, 600_000);
            p.cores[0].add(CoreEvent::L1dPendMissFbFull, 10_000);
            // Uncore residencies: TOR 660k covering m2p 100k + link + dev 400k.
            p.chas[0].add(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissCxl), 660_000);
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl), 1000);
            p.m2ps[0].add(M2pEvent::RxcOccupancy, 100_000);
            p.m2ps[0].add(M2pEvent::RxcInserts, 1000);
            p.cxls[0].add(CxlEvent::DevMcRpqOccupancy, 400_000);
        })
    }

    #[test]
    fn breakdown_mass_is_conserved() {
        let lat = LatencyModel::spr();
        let d = cxl_heavy_delta();
        let b = PfEstimator::breakdown(&d, &lat);
        // All traffic is CXL-destined, so the latency-weighted share is 1 and
        // total attributed = L1D excl + LFB + L2 excl + uncore pool.
        let want = (700_000.0 - 650_000.0) + 10_000.0 + (650_000.0 - 600_000.0) + 600_000.0;
        assert!(
            (b.path_total(PathGroup::Drd) - want).abs() < 1.0,
            "{}",
            b.path_total(PathGroup::Drd)
        );
    }

    #[test]
    fn uncore_dominates_for_cxl_bound_runs() {
        let lat = LatencyModel::spr();
        let b = PfEstimator::breakdown(&cxl_heavy_delta(), &lat);
        let pct = b.percentages(PathGroup::Drd);
        let uncore = pct[Component::Cha.idx()]
            + pct[Component::FlexBusMc.idx()]
            + pct[Component::CxlDimm.idx()]
            + pct[Component::Llc.idx()];
        assert!(uncore > 70.0, "uncore share {uncore}%");
        // The device pool must be visible and FlexBus+MC nonzero.
        assert!(pct[Component::CxlDimm.idx()] > 20.0);
        assert!(pct[Component::FlexBusMc.idx()] > 5.0);
    }

    #[test]
    fn no_cxl_traffic_no_attribution() {
        let lat = LatencyModel::spr();
        let d = delta_with(|p| {
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::AnyResponse), 1000);
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::LocalDram), 1000);
            p.cores[0].add(CoreEvent::MemoryActivityStallsL1dMiss, 500_000);
        });
        let b = PfEstimator::breakdown(&d, &lat);
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn partial_share_scales_attribution() {
        let lat = LatencyModel::spr();
        let d = delta_with(|p| {
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::AnyResponse), 1000);
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::CxlDram), 250);
            p.cores[0].add(CoreEvent::OcrDemandDataRd(RespScenario::LocalDram), 750);
            p.cores[0].add(CoreEvent::MemoryActivityStallsL1dMiss, 400_000);
            p.cores[0].add(CoreEvent::MemoryActivityStallsL2Miss, 0);
        });
        let b = PfEstimator::breakdown(&d, &lat);
        // The CXL share is latency-weighted: 250 CXL requests at the nominal
        // CXL latency vs 750 local at the nominal DRAM latency.
        let share = 250.0 * lat.cxl_mem / (250.0 * lat.cxl_mem + 750.0 * lat.dram);
        let want = 400_000.0 * share;
        assert!(
            (b.get(PathGroup::Drd, Component::L1d) - want).abs() < 1.0,
            "got {}, want {}",
            b.get(PathGroup::Drd, Component::L1d),
            want
        );
    }

    #[test]
    fn tor_latency_is_occupancy_over_inserts() {
        let d = cxl_heavy_delta();
        let l = PfEstimator::tor_latency(&d, PathGroup::Drd, Tier::Cxl).unwrap();
        assert!((l - 660.0).abs() < 1e-9);
        assert!(PfEstimator::tor_latency(&d, PathGroup::Drd, Tier::Local).is_none());
        assert!(PfEstimator::tor_latency(&d, PathGroup::Dwr, Tier::Cxl).is_none());
    }

    #[test]
    fn class_weights_normalise() {
        let d = delta_with(|p| {
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc), 100);
            p.chas[0].add(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLlc), 300);
            p.chas[0].add(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLlc), 600);
        });
        let w = PfEstimator::class_miss_weights(&d);
        assert!((w[0] - 0.1).abs() < 1e-9);
        assert!((w[1] - 0.3).abs() < 1e-9);
        assert!((w[2] - 0.6).abs() < 1e-9);
    }
}
