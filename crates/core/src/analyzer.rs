//! **PFAnalyzer** (§4.5, Algorithm 1): delay-based queueing analysis.
//!
//! Each hardware module is modelled as an FCFS queue; combining its
//! hit/miss frequency counters (arrival rate λ) with its data-response-time
//! counters (delay W), Little's law `L = λ·W` estimates the average queue
//! length per cycle. For components that forward misses downstream the
//! extended form `L = λ_hit·W_hit + λ_miss·W_miss` applies, where `W_miss`
//! is the tag-lookup constant for L1D/L2 and the *measured* miss delay for
//! the LLC (missing entries sit in the TOR until completion). LFB and DIMM
//! use the hit-only model. The (path, component) with the maximum queue
//! length is the culprit of the snapshot.

use crate::model::{Component, LatencyModel, PathGroup};
use pmu::{ChaEvent, CoreEvent, CxlEvent, M2pEvent, SystemDelta, TorDrdScen, TorRfoScen};

/// Queue-length estimates per (path group, component).
#[derive(Clone, Debug, Default)]
pub struct QueueEstimate {
    /// `q[path][component]` — average entries per cycle.
    pub q: [[f64; Component::COUNT]; PathGroup::COUNT],
}

/// The contention point of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Culprit {
    pub path: PathGroup,
    pub component: Component,
    pub queue_len: f64,
}

impl QueueEstimate {
    pub fn get(&self, p: PathGroup, c: Component) -> f64 {
        self.q[p.idx()][c.idx()]
    }

    /// The maximum-occupancy (path, component) pair — Algorithm 1, L19.
    pub fn culprit(&self) -> Option<Culprit> {
        let mut best: Option<Culprit> = None;
        for p in PathGroup::ALL {
            for c in Component::ALL {
                let q = self.get(p, c);
                if q > 0.0 && best.map(|b| q > b.queue_len).unwrap_or(true) {
                    best = Some(Culprit {
                        path: p,
                        component: c,
                        queue_len: q,
                    });
                }
            }
        }
        best
    }
}

/// The PFAnalyzer mechanism.
pub struct PfAnalyzer;

impl PfAnalyzer {
    /// Estimate per-component queue lengths for one epoch digest.
    pub fn analyze(delta: &SystemDelta, lat: &LatencyModel) -> QueueEstimate {
        let mut out = QueueEstimate::default();
        let clocks = delta.cycles().max(1) as f64;

        // ---- L1D / LFB: only the DRd path is observable (§5.9). ---------
        let l1_hits = delta.core_sum(CoreEvent::MemLoadRetiredL1Hit) as f64;
        let l1_misses = delta.core_sum(CoreEvent::MemLoadRetiredL1Miss) as f64;
        out.q[PathGroup::Drd.idx()][Component::L1d.idx()] =
            (l1_hits / clocks) * lat.l1_hit + (l1_misses / clocks) * lat.l1_tag;
        let fb_hits = delta.core_sum(CoreEvent::MemLoadRetiredL1FbHit) as f64;
        out.q[PathGroup::Drd.idx()][Component::Lfb.idx()] = (fb_hits / clocks) * lat.lfb_hit;

        // ---- L2: per-path hit/miss counters exist. -----------------------
        let l2 = [
            (
                PathGroup::Drd,
                delta.core_sum(CoreEvent::L2RqstsDemandDataRdHit)
                    + delta.core_sum(CoreEvent::L2RqstsSwpfHit),
                delta.core_sum(CoreEvent::L2RqstsDemandDataRdMiss)
                    + delta.core_sum(CoreEvent::L2RqstsSwpfMiss),
            ),
            (
                PathGroup::Rfo,
                delta.core_sum(CoreEvent::L2RqstsRfoHit),
                delta.core_sum(CoreEvent::L2RqstsRfoMiss),
            ),
            (
                PathGroup::HwPf,
                delta.core_sum(CoreEvent::L2RqstsHwpfHit),
                delta.core_sum(CoreEvent::L2RqstsHwpfMiss),
            ),
        ];
        for (p, hits, misses) in l2 {
            out.q[p.idx()][Component::L2.idx()] =
                (hits as f64 / clocks) * lat.l2_hit + (misses as f64 / clocks) * lat.l2_tag;
        }

        // ---- Downstream (FlexBus+MC, device) residencies, per-path split
        // by the share of CXL-destined TOR inserts.
        let m2p_occ = delta.m2p_sum(M2pEvent::RxcOccupancy) as f64;
        let m2p_inserts = delta.m2p_sum(M2pEvent::RxcInserts) as f64;
        let link_transfer = m2p_inserts * lat.flexbus;
        let dev_occ = (delta.cxl_sum(CxlEvent::DevMcRpqOccupancy)
            + delta.cxl_sum(CxlEvent::DevMcWpqOccupancy)) as f64;
        let shares = cxl_insert_shares(delta);

        // ---- LLC via TOR: W_miss measured from occupancy/inserts, with
        // the downstream residency (FlexBus + device) subtracted so the LLC
        // queue reflects time spent *at the CHA/LLC*, not the whole trip —
        // missing entries park in the TOR until completion (§4.5), so the
        // raw occupancy includes everything below.
        for p in [PathGroup::Drd, PathGroup::Rfo, PathGroup::HwPf] {
            let (hit_ins, hit_occ, miss_ins, miss_occ) = tor_family(delta, p);
            let downstream = shares[p.idx()] * (m2p_occ + link_transfer + dev_occ);
            let excl_miss_occ = (miss_occ as f64 - downstream).max(0.0);
            let w_hit = lat.llc_hit;
            let w_miss = if miss_ins > 0 {
                excl_miss_occ / miss_ins as f64
            } else {
                0.0
            };
            out.q[p.idx()][Component::Llc.idx()] =
                (hit_ins as f64 / clocks) * w_hit + (miss_ins as f64 / clocks) * w_miss;
            // CHA queueing: the exclusive occupancy expressed directly as
            // entries per cycle (an occupancy integral / cycles IS a queue
            // length — no model needed where the hardware measures it).
            out.q[p.idx()][Component::Cha.idx()] = (hit_occ as f64 + excl_miss_occ) / clocks;
        }

        // ---- FlexBus+MC and the DIMM: hit-only model. ---------------------
        for p in [PathGroup::Drd, PathGroup::Rfo, PathGroup::HwPf] {
            let s = shares[p.idx()];
            out.q[p.idx()][Component::FlexBusMc.idx()] = s * (m2p_occ + link_transfer) / clocks;
            out.q[p.idx()][Component::CxlDimm.idx()] = s * dev_occ / clocks;
        }
        // DWr: the write-side device queue.
        let wr_occ = delta.cxl_sum(CxlEvent::RxcPackBufOccupancyMemData) as f64;
        out.q[PathGroup::Dwr.idx()][Component::CxlDimm.idx()] = wr_occ / clocks;

        out
    }
}

/// TOR (hit inserts, hit occupancy, miss inserts, miss occupancy) for a
/// read-like path family.
fn tor_family(delta: &SystemDelta, p: PathGroup) -> (u64, u64, u64, u64) {
    match p {
        PathGroup::Drd => (
            delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissLlc)),
        ),
        PathGroup::Rfo => (
            delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::MissLlc)),
        ),
        PathGroup::HwPf => (
            delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::HitLlc))
                + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(TorDrdScen::HitLlc))
                + delta.cha_sum(ChaEvent::TorOccupancyIaRfoPref(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLlc))
                + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::MissLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(TorDrdScen::MissLlc))
                + delta.cha_sum(ChaEvent::TorOccupancyIaRfoPref(TorRfoScen::MissLlc)),
        ),
        PathGroup::Dwr => (0, 0, 0, 0),
    }
}

/// Shares of CXL-destined TOR inserts per path group.
fn cxl_insert_shares(delta: &SystemDelta) -> [f64; PathGroup::COUNT] {
    let drd = delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl));
    let rfo = delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissCxl));
    let pf = delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissCxl))
        + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::MissCxl));
    let total = (drd + rfo + pf) as f64;
    let mut out = [0.0; PathGroup::COUNT];
    if total > 0.0 {
        out[PathGroup::Drd.idx()] = drd as f64 / total;
        out[PathGroup::Rfo.idx()] = rfo as f64 / total;
        out[PathGroup::HwPf.idx()] = pf as f64 / total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::{SystemPmu, SystemSnapshot};

    fn delta_with(cycles: u64, f: impl FnOnce(&mut SystemPmu)) -> SystemDelta {
        let mut pmu = SystemPmu::new(1, 1, 2, 1, 1);
        let s0: SystemSnapshot = pmu.snapshot(0);
        f(&mut pmu);
        pmu.snapshot(cycles).delta(&s0)
    }

    #[test]
    fn littles_law_on_l1d() {
        let lat = LatencyModel::spr();
        // 1000 cycles, 100 L1 hits (W=l1_hit), 50 misses (W=l1_tag).
        let d = delta_with(1000, |p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 100);
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Miss, 50);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        let want = 0.1 * lat.l1_hit + 0.05 * lat.l1_tag;
        assert!((q.get(PathGroup::Drd, Component::L1d) - want).abs() < 1e-12);
    }

    #[test]
    fn llc_miss_delay_is_measured_not_modelled() {
        let lat = LatencyModel::spr();
        let d = delta_with(10_000, |p| {
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc), 10);
            // Mean miss residency 700 cycles.
            p.chas[0].add(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissLlc), 7_000);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        // L = λ_miss × W_miss = (10/10_000) × 700 = 0.7.
        assert!((q.get(PathGroup::Drd, Component::Llc) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn culprit_is_max_queue() {
        let lat = LatencyModel::spr();
        let d = delta_with(1_000, |p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 10);
            p.m2ps[0].add(M2pEvent::RxcOccupancy, 90_000);
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl), 100);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        let c = q.culprit().unwrap();
        assert_eq!(c.component, Component::FlexBusMc);
        assert_eq!(c.path, PathGroup::Drd);
        assert!((c.queue_len - 90.0).abs() < 1e-9);
    }

    #[test]
    fn cxl_queue_splits_by_path_shares() {
        let lat = LatencyModel::spr();
        let d = delta_with(1_000, |p| {
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl), 25);
            p.chas[0].add(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissCxl), 75);
            p.cxls[0].add(CxlEvent::DevMcRpqOccupancy, 4_000);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        assert!((q.get(PathGroup::Drd, Component::CxlDimm) - 1.0).abs() < 1e-9);
        assert!((q.get(PathGroup::HwPf, Component::CxlDimm) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_delta_has_no_culprit() {
        let lat = LatencyModel::spr();
        let d = delta_with(100, |_| {});
        assert!(PfAnalyzer::analyze(&d, &lat).culprit().is_none());
    }
}
