//! **PFAnalyzer** (§4.5, Algorithm 1): delay-based queueing analysis.
//!
//! Each hardware module is modelled as an FCFS queue; combining its
//! hit/miss frequency counters (arrival rate λ) with its data-response-time
//! counters (delay W), Little's law `L = λ·W` estimates the average queue
//! length per cycle. For components that forward misses downstream the
//! extended form `L = λ_hit·W_hit + λ_miss·W_miss` applies, where `W_miss`
//! is the tag-lookup constant for L1D/L2 and the *measured* miss delay for
//! the LLC (missing entries sit in the TOR until completion). LFB and DIMM
//! use the hit-only model. The (path, component) with the maximum queue
//! length is the culprit of the snapshot.

use crate::model::{Component, LatencyModel, PathGroup};
use pmu::{
    ChaEvent, CoreEvent, CxlEvent, IaScen, ImcEvent, M2pEvent, SystemDelta, TorDrdScen, TorRfoScen,
};
use simarch::FaultClass;

/// Queue-length estimates per (path group, component).
#[derive(Clone, Debug, Default)]
pub struct QueueEstimate {
    /// `q[path][component]` — average entries per cycle.
    pub q: [[f64; Component::COUNT]; PathGroup::COUNT],
}

/// The contention point of a snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Culprit {
    pub path: PathGroup,
    pub component: Component,
    pub queue_len: f64,
}

impl QueueEstimate {
    pub fn get(&self, p: PathGroup, c: Component) -> f64 {
        self.q[p.idx()][c.idx()]
    }

    /// The maximum-occupancy (path, component) pair — Algorithm 1, L19.
    pub fn culprit(&self) -> Option<Culprit> {
        let mut best: Option<Culprit> = None;
        for p in PathGroup::ALL {
            for c in Component::ALL {
                let q = self.get(p, c);
                if q > 0.0 && best.map(|b| q > b.queue_len).unwrap_or(true) {
                    best = Some(Culprit {
                        path: p,
                        component: c,
                        queue_len: q,
                    });
                }
            }
        }
        best
    }
}

/// The PFAnalyzer mechanism.
pub struct PfAnalyzer;

impl PfAnalyzer {
    /// Estimate per-component queue lengths for one epoch digest.
    pub fn analyze(delta: &SystemDelta, lat: &LatencyModel) -> QueueEstimate {
        let mut out = QueueEstimate::default();
        let clocks = delta.cycles().max(1) as f64;

        // ---- L1D / LFB: only the DRd path is observable (§5.9). ---------
        let l1_hits = delta.core_sum(CoreEvent::MemLoadRetiredL1Hit) as f64;
        let l1_misses = delta.core_sum(CoreEvent::MemLoadRetiredL1Miss) as f64;
        out.q[PathGroup::Drd.idx()][Component::L1d.idx()] =
            (l1_hits / clocks) * lat.l1_hit + (l1_misses / clocks) * lat.l1_tag;
        let fb_hits = delta.core_sum(CoreEvent::MemLoadRetiredL1FbHit) as f64;
        out.q[PathGroup::Drd.idx()][Component::Lfb.idx()] = (fb_hits / clocks) * lat.lfb_hit;

        // ---- L2: per-path hit/miss counters exist. -----------------------
        let l2 = [
            (
                PathGroup::Drd,
                delta.core_sum(CoreEvent::L2RqstsDemandDataRdHit)
                    + delta.core_sum(CoreEvent::L2RqstsSwpfHit),
                delta.core_sum(CoreEvent::L2RqstsDemandDataRdMiss)
                    + delta.core_sum(CoreEvent::L2RqstsSwpfMiss),
            ),
            (
                PathGroup::Rfo,
                delta.core_sum(CoreEvent::L2RqstsRfoHit),
                delta.core_sum(CoreEvent::L2RqstsRfoMiss),
            ),
            (
                PathGroup::HwPf,
                delta.core_sum(CoreEvent::L2RqstsHwpfHit),
                delta.core_sum(CoreEvent::L2RqstsHwpfMiss),
            ),
        ];
        for (p, hits, misses) in l2 {
            out.q[p.idx()][Component::L2.idx()] =
                (hits as f64 / clocks) * lat.l2_hit + (misses as f64 / clocks) * lat.l2_tag;
        }

        // ---- Downstream (FlexBus+MC, device) residencies, per-path split
        // by the share of CXL-destined TOR inserts.
        let m2p_occ = delta.m2p_sum(M2pEvent::RxcOccupancy) as f64;
        let m2p_inserts = delta.m2p_sum(M2pEvent::RxcInserts) as f64;
        let link_transfer = m2p_inserts * lat.flexbus;
        let dev_occ = (delta.cxl_sum(CxlEvent::DevMcRpqOccupancy)
            + delta.cxl_sum(CxlEvent::DevMcWpqOccupancy)) as f64;
        let shares = cxl_insert_shares(delta);

        // ---- LLC via TOR: W_miss measured from occupancy/inserts, with
        // the downstream residency (FlexBus + device) subtracted so the LLC
        // queue reflects time spent *at the CHA/LLC*, not the whole trip —
        // missing entries park in the TOR until completion (§4.5), so the
        // raw occupancy includes everything below.
        for p in [PathGroup::Drd, PathGroup::Rfo, PathGroup::HwPf] {
            let (hit_ins, hit_occ, miss_ins, miss_occ) = tor_family(delta, p);
            let downstream = shares[p.idx()] * (m2p_occ + link_transfer + dev_occ);
            let excl_miss_occ = (miss_occ as f64 - downstream).max(0.0);
            let w_hit = lat.llc_hit;
            let w_miss = if miss_ins > 0 {
                excl_miss_occ / miss_ins as f64
            } else {
                0.0
            };
            out.q[p.idx()][Component::Llc.idx()] =
                (hit_ins as f64 / clocks) * w_hit + (miss_ins as f64 / clocks) * w_miss;
            // CHA queueing: the exclusive occupancy expressed directly as
            // entries per cycle (an occupancy integral / cycles IS a queue
            // length — no model needed where the hardware measures it).
            out.q[p.idx()][Component::Cha.idx()] = (hit_occ as f64 + excl_miss_occ) / clocks;
        }

        // ---- FlexBus+MC and the DIMM: hit-only model. ---------------------
        for p in [PathGroup::Drd, PathGroup::Rfo, PathGroup::HwPf] {
            let s = shares[p.idx()];
            out.q[p.idx()][Component::FlexBusMc.idx()] = s * (m2p_occ + link_transfer) / clocks;
            out.q[p.idx()][Component::CxlDimm.idx()] = s * dev_occ / clocks;
        }
        // DWr: the write-side device queue.
        let wr_occ = delta.cxl_sum(CxlEvent::RxcPackBufOccupancyMemData) as f64;
        out.q[PathGroup::Dwr.idx()][Component::CxlDimm.idx()] = wr_occ / clocks;

        out
    }
}

/// TOR (hit inserts, hit occupancy, miss inserts, miss occupancy) for a
/// read-like path family.
fn tor_family(delta: &SystemDelta, p: PathGroup) -> (u64, u64, u64, u64) {
    match p {
        PathGroup::Drd => (
            delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissLlc)),
        ),
        PathGroup::Rfo => (
            delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaRfo(TorRfoScen::MissLlc)),
        ),
        PathGroup::HwPf => (
            delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::HitLlc))
                + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(TorDrdScen::HitLlc))
                + delta.cha_sum(ChaEvent::TorOccupancyIaRfoPref(TorRfoScen::HitLlc)),
            delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissLlc))
                + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::MissLlc)),
            delta.cha_sum(ChaEvent::TorOccupancyIaDrdPref(TorDrdScen::MissLlc))
                + delta.cha_sum(ChaEvent::TorOccupancyIaRfoPref(TorRfoScen::MissLlc)),
        ),
        PathGroup::Dwr => (0, 0, 0, 0),
    }
}

/// Shares of CXL-destined TOR inserts per path group.
fn cxl_insert_shares(delta: &SystemDelta) -> [f64; PathGroup::COUNT] {
    let drd = delta.cha_sum(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl));
    let rfo = delta.cha_sum(ChaEvent::TorInsertsIaRfo(TorRfoScen::MissCxl));
    let pf = delta.cha_sum(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissCxl))
        + delta.cha_sum(ChaEvent::TorInsertsIaRfoPref(TorRfoScen::MissCxl));
    let total = (drd + rfo + pf) as f64;
    let mut out = [0.0; PathGroup::COUNT];
    if total > 0.0 {
        out[PathGroup::Drd.idx()] = drd as f64 / total;
        out[PathGroup::Rfo.idx()] = rfo as f64 / total;
        out[PathGroup::HwPf.idx()] = pf as f64 / total;
    }
    out
}

// ====================== Anomaly diagnosis (paper §6) ======================
//
// §6 argues that the per-path traffic matrices and queue-delay estimates
// PathFinder already collects localise hardware faults: a degraded FlexBus
// link, a throttled device MC, poisoned-line retries, and transient
// CHA/IMC stalls each leave a distinct per-stage signature in the same
// counters the four techniques read. The detector distils one epoch digest
// into per-stage wait metrics, compares them against a recorded healthy
// baseline, and names the faulted stage.

/// Per-stage wait metrics distilled from one epoch digest — the traffic
/// matrix the anomaly detector compares against a healthy baseline.
///
/// Each metric is a mean residency per request at exactly one stage, so
/// the five fault classes perturb disjoint entries: link degradation only
/// moves `w_link` (M2PCIe occupancy retires when the link takes the flit,
/// before any device wait), device throttling only moves `w_dev`, and
/// poisoned-line retries re-issue the M2S Req without a new TOR insert,
/// which moves only `read_amp`.
#[derive(Clone, Debug, Default)]
pub struct StageMetrics {
    /// Per-device FlexBus link wait: M2PCIe ingress occupancy per insert.
    pub w_link: Vec<f64>,
    /// Per-device device-MC read wait: device RPQ occupancy per read CAS.
    pub w_dev: Vec<f64>,
    /// Read amplification: M2S Req allocations per CXL-destined TOR insert.
    /// Healthy ≈ 1.0; a poisoned line with period `p` retries once per
    /// poisoned completion, pushing this to `p / (p - 1)`.
    pub read_amp: f64,
    /// IMC read wait: RPQ occupancy per insert, summed over channels.
    pub w_imc: f64,
    /// CHA wait: TOR occupancy per insert over all IA requests.
    pub w_cha: f64,
}

impl StageMetrics {
    /// Distil the detector's input metrics from one epoch digest.
    pub fn from_delta(delta: &SystemDelta) -> StageMetrics {
        let n_dev = delta.pmu.cxls.len();
        let mut w_link = Vec::with_capacity(n_dev);
        let mut w_dev = Vec::with_capacity(n_dev);
        for d in 0..n_dev {
            let m2p = &delta.pmu.m2ps[d];
            w_link.push(ratio(
                m2p.read(M2pEvent::RxcOccupancy),
                m2p.read(M2pEvent::RxcInserts),
            ));
            let cxl = &delta.pmu.cxls[d];
            w_dev.push(ratio(
                cxl.read(CxlEvent::DevMcRpqOccupancy),
                cxl.read(CxlEvent::DevMcRdCas),
            ));
        }
        StageMetrics {
            w_link,
            w_dev,
            read_amp: ratio(
                delta.cxl_sum(CxlEvent::RxcPackBufInsertsMemReq),
                delta.cha_sum(ChaEvent::TorInsertsIa(IaScen::MissCxl)),
            ),
            w_imc: ratio(
                delta.imc_sum(ImcEvent::RpqOccupancy),
                delta.imc_sum(ImcEvent::RpqInserts),
            ),
            w_cha: ratio(
                delta.cha_sum(ChaEvent::TorOccupancyIa(IaScen::Total)),
                delta.cha_sum(ChaEvent::TorInsertsIa(IaScen::Total)),
            ),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A recorded healthy-run fingerprint to diagnose against.
///
/// Record it from a fault-free run of the *same workload mix* that will be
/// diagnosed: the metrics are load-dependent, so comparing across different
/// workloads confuses load shifts with faults. Kernel page-migration
/// traffic (`background_read`) issues M2S Reqs without TOR inserts and
/// would skew `read_amp`; record baselines without migration active.
#[derive(Clone, Debug)]
pub struct HealthyBaseline {
    metrics: StageMetrics,
}

impl HealthyBaseline {
    pub fn from_delta(delta: &SystemDelta) -> HealthyBaseline {
        HealthyBaseline {
            metrics: StageMetrics::from_delta(delta),
        }
    }

    pub fn metrics(&self) -> &StageMetrics {
        &self.metrics
    }
}

/// A diagnosed anomaly: the faulted stage (named as in
/// `simarch::StageId`'s display form — `cxl0`, `imc0`, `cha0`) and the
/// fault class whose signature matched.
#[derive(Clone, Debug, PartialEq)]
pub struct Anomaly {
    pub stage: String,
    pub class: FaultClass,
    /// How far past the detection bound the offending metric sits
    /// (observed / bound; > 1 by construction). Dropout and poison are
    /// binary signatures and report the raw evidence instead (0 for
    /// dropout, the amplification factor for poison).
    pub score: f64,
}

impl Anomaly {
    /// One-line rendering for reports: `dev_throttle at cxl0 (score 5.31)`.
    pub fn render(&self) -> String {
        format!(
            "{} at {} (score {:.2})",
            self.class.label(),
            self.stage,
            self.score
        )
    }
}

/// Compares epoch digests against a [`HealthyBaseline`] and names the
/// faulted stage.
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    base: StageMetrics,
    /// Multiplicative elevation bound: a wait metric is anomalous beyond
    /// `ratio × baseline + floor`.
    ratio: f64,
    /// Absolute slack added to every bound — guards near-zero baselines
    /// (an idle stage's wait is 0.0 and any ratio alone would trip).
    floor: f64,
    /// Additive bound on read amplification over the baseline. 0.25
    /// detects poison periods ≤ 5 (amplification `p/(p-1)` ≥ 1.25).
    amp_margin: f64,
}

impl AnomalyDetector {
    pub fn new(baseline: HealthyBaseline) -> AnomalyDetector {
        AnomalyDetector {
            base: baseline.metrics,
            ratio: 1.5,
            floor: 2.0,
            amp_margin: 0.25,
        }
    }

    /// Diagnose one epoch digest. Returns the best-matching anomaly, or
    /// `None` when every stage is within bounds.
    ///
    /// Order matters. PMU dropout is checked first: it needs no baseline,
    /// and a frozen bank corrupts every ratio below. Poison is next: its
    /// retries legitimately elevate the link and device waits, so the
    /// amplification signature must win before the wait checks run. The
    /// remaining wait checks compete on *relative* elevation — a stalled
    /// IMC also parks entries in the TOR (its occupancy spans the whole
    /// downstream trip), but the stage actually at fault is always the
    /// most elevated against its own baseline.
    pub fn diagnose(&self, delta: &SystemDelta) -> Option<Anomaly> {
        if delta.cycles() == 0 {
            return None;
        }
        if let Some(a) = self.dropout(delta) {
            return Some(a);
        }
        let cur = StageMetrics::from_delta(delta);
        if self.base.read_amp > 0.0 && cur.read_amp > self.base.read_amp + self.amp_margin {
            let dev = (0..delta.pmu.cxls.len())
                .max_by_key(|&d| delta.pmu.cxls[d].read(CxlEvent::RxcPackBufInsertsMemReq))
                .unwrap_or(0);
            return Some(Anomaly {
                stage: format!("cxl{dev}"),
                class: FaultClass::PoisonedLine,
                score: cur.read_amp,
            });
        }
        let mut best: Option<Anomaly> = None;
        let mut consider = |stage: String, class: FaultClass, cur_v: f64, base_v: f64| {
            let bound = base_v * self.ratio + self.floor;
            if cur_v > bound {
                let score = cur_v / bound;
                if best.as_ref().map(|b| score > b.score).unwrap_or(true) {
                    best = Some(Anomaly {
                        stage,
                        class,
                        score,
                    });
                }
            }
        };
        for d in 0..cur.w_dev.len() {
            let base_dev = self.base.w_dev.get(d).copied().unwrap_or(0.0);
            consider(
                format!("cxl{d}"),
                FaultClass::DevThrottle,
                cur.w_dev[d],
                base_dev,
            );
            let base_link = self.base.w_link.get(d).copied().unwrap_or(0.0);
            consider(
                format!("cxl{d}"),
                FaultClass::LinkDegrade,
                cur.w_link[d],
                base_link,
            );
        }
        consider(
            "imc0".to_string(),
            FaultClass::QueueStall,
            cur.w_imc,
            self.base.w_imc,
        );
        consider(
            "cha0".to_string(),
            FaultClass::QueueStall,
            cur.w_cha,
            self.base.w_cha,
        );
        best
    }

    /// Uncore banks gain ClockTicks at every epoch drain; a bank frozen
    /// while the machine advanced is a PMU dropout, not a quiet stage.
    fn dropout(&self, delta: &SystemDelta) -> Option<Anomaly> {
        let frozen = |stage: String| {
            Some(Anomaly {
                stage,
                class: FaultClass::PmuDropout,
                score: 0.0,
            })
        };
        if delta.cha_sum(ChaEvent::ClockTicks) == 0 {
            return frozen("cha0".to_string());
        }
        if delta.imc_sum(ImcEvent::ClockTicks) == 0 {
            return frozen("imc0".to_string());
        }
        for d in 0..delta.pmu.cxls.len() {
            if delta.pmu.m2ps[d].read(M2pEvent::ClockTicks) == 0
                || delta.pmu.cxls[d].read(CxlEvent::ClockTicks) == 0
            {
                return frozen(format!("cxl{d}"));
            }
        }
        None
    }
}

// ================= Fabric attribution (multi-host pooling) ===============
//
// A pooling fabric adds a failure surface no single-host baseline covers:
// the *other tenants*. The fabric detector consumes the switch + pooled
// device banks (`SystemPmu::fabric`) and answers the question the paper's
// §6 poses for multi-host CXL: which host is the culprit, which hosts are
// victims, and is the fault in the fabric or in the tenancy mix — from
// counters alone.

/// Per-host fabric wait metrics distilled from one fabric epoch digest.
#[derive(Clone, Debug, Default)]
pub struct FabricMetrics {
    /// Switch ingress wait per granted request, per host.
    pub port_wait: Vec<f64>,
    /// Pooled-MC queueing wait per CAS, per host.
    pub pool_wait: Vec<f64>,
    /// Share of pooled-device CAS bandwidth, per host (sums to 1 under
    /// load).
    pub pool_share: Vec<f64>,
    /// Excess-over-alone wait per CAS, per host — the fabric's own
    /// pricing of cross-tenant contention.
    pub excess: Vec<f64>,
    /// Fraction of the epoch each host spent HOL-blocked at the switch.
    pub hol: Vec<f64>,
}

impl FabricMetrics {
    pub fn from_delta(delta: &SystemDelta) -> FabricMetrics {
        use pmu::{PoolEvent, SwitchEvent};
        let hosts = delta.pmu.switches.len();
        let total_cas: u64 = delta
            .pmu
            .pools
            .iter()
            .map(|b| b.read(PoolEvent::McRdCas) + b.read(PoolEvent::McWrCas))
            .sum();
        let mut m = FabricMetrics::default();
        for h in 0..hosts {
            let sw = &delta.pmu.switches[h];
            let pool = &delta.pmu.pools[h];
            let grants = sw.read(SwitchEvent::ArbGrants);
            let cas = pool.read(PoolEvent::McRdCas) + pool.read(PoolEvent::McWrCas);
            m.port_wait
                .push(ratio(sw.read(SwitchEvent::IngressOccupancy), grants));
            m.pool_wait
                .push(ratio(pool.read(PoolEvent::McWaitCycles), cas));
            m.pool_share.push(ratio(cas, total_cas));
            m.excess
                .push(ratio(pool.read(PoolEvent::ExcessWaitCycles), cas));
            m.hol.push(ratio(
                sw.read(SwitchEvent::HolBlockedCycles),
                sw.read(SwitchEvent::ClockTicks),
            ));
        }
        m
    }
}

/// A recorded healthy fabric fingerprint (same workload-mix caveat as
/// [`HealthyBaseline`]).
#[derive(Clone, Debug)]
pub struct FabricBaseline {
    metrics: FabricMetrics,
}

impl FabricBaseline {
    pub fn from_delta(delta: &SystemDelta) -> FabricBaseline {
        FabricBaseline {
            metrics: FabricMetrics::from_delta(delta),
        }
    }

    pub fn metrics(&self) -> &FabricMetrics {
        &self.metrics
    }
}

/// What the fabric detector concluded about an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricDiagnosis {
    /// One upstream port's requests are stuck at arbitration
    /// (`FaultClass::SwitchPortStall` signature): its wait is elevated
    /// while the rest of the fabric sits at baseline.
    SwitchPortStall,
    /// Every host's switch wait is elevated with the tenancy mix
    /// unchanged (`FaultClass::SharedLinkDegrade` signature).
    SharedLinkDegrade,
    /// One tenant's bandwidth share grew and the other tenants' waits
    /// grew with it — interference, not a hardware fault.
    NoisyNeighbor,
}

impl FabricDiagnosis {
    pub fn label(self) -> &'static str {
        match self {
            FabricDiagnosis::SwitchPortStall => "switch_port_stall",
            FabricDiagnosis::SharedLinkDegrade => "shared_link_degrade",
            FabricDiagnosis::NoisyNeighbor => "noisy_neighbor",
        }
    }
}

/// A fabric-level finding: the faulted stage, the culprit host (for
/// tenancy problems), and the victim hosts whose waits were inflated.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricAnomaly {
    /// Stage named as in `simarch::StageId` display form (`cxlsw1` = the
    /// switch port of host 1; `cxlsw0` conventionally carries shared-link
    /// findings).
    pub stage: String,
    pub kind: FabricDiagnosis,
    /// The host responsible, when one is (noisy neighbor: the flooding
    /// tenant; port stall: the stalled port's tenant — responsible for
    /// its own delay, not the others').
    pub culprit: Option<usize>,
    /// Hosts whose waits sit beyond the detection bound.
    pub victims: Vec<usize>,
    /// Peak elevation over the bound (observed / bound).
    pub score: f64,
}

impl FabricAnomaly {
    /// `noisy_neighbor at cxlpool: culprit host0, victims [host1] (score 3.20)`
    pub fn render(&self) -> String {
        let culprit = self
            .culprit
            .map(|h| format!("culprit host{h}, "))
            .unwrap_or_default();
        let victims: Vec<String> = self.victims.iter().map(|h| format!("host{h}")).collect();
        format!(
            "{} at {}: {}victims [{}] (score {:.2})",
            self.kind.label(),
            self.stage,
            culprit,
            victims.join(" "),
            self.score
        )
    }
}

/// Compares fabric epoch digests against a [`FabricBaseline`] and names
/// the culprit/victim hosts.
#[derive(Clone, Debug)]
pub struct FabricDetector {
    base: FabricMetrics,
    /// Multiplicative elevation bound on per-host waits.
    ratio: f64,
    /// Absolute slack (cycles of wait per request) added to every bound.
    floor: f64,
    /// Additive bound on a host's pooled-bandwidth share over baseline.
    share_margin: f64,
    /// Maximum peak/trough elevation ratio still read as *uniform*: a
    /// shared-link fault hits every tenant alike, so wildly unequal
    /// elevations point at one port even when everybody is over bound.
    uniform_spread: f64,
}

impl FabricDetector {
    pub fn new(baseline: FabricBaseline) -> FabricDetector {
        FabricDetector {
            base: baseline.metrics,
            ratio: 1.5,
            floor: 25.0,
            share_margin: 0.15,
            uniform_spread: 4.0,
        }
    }

    /// Total fabric wait per request for host `h` under metrics `m`.
    fn wait(m: &FabricMetrics, h: usize) -> f64 {
        m.port_wait.get(h).copied().unwrap_or(0.0) + m.pool_wait.get(h).copied().unwrap_or(0.0)
    }

    /// Diagnose one fabric epoch digest.
    ///
    /// Order matters: the tenancy check (bandwidth share) runs first
    /// because a flooding tenant also elevates everyone's link wait — the
    /// share skew is what separates "host 0 is hogging the pool" from
    /// "the link itself degraded". A uniform elevation with the mix
    /// unchanged is a shared-link fault; an isolated elevation is a stuck
    /// port.
    pub fn diagnose(&self, delta: &SystemDelta) -> Option<FabricAnomaly> {
        let cur = FabricMetrics::from_delta(delta);
        let hosts = cur.port_wait.len();
        if hosts == 0 || delta.cycles() == 0 {
            return None;
        }
        let bound = |h: usize| Self::wait(&self.base, h) * self.ratio + self.floor;
        let elevation = |h: usize| Self::wait(&cur, h) / bound(h);
        let elevated: Vec<usize> = (0..hosts).filter(|&h| elevation(h) > 1.0).collect();
        if elevated.is_empty() {
            return None;
        }
        let peak = elevated
            .iter()
            .copied()
            .max_by(|&a, &b| elevation(a).total_cmp(&elevation(b)))
            .expect("elevated is non-empty");
        // Tenancy first: did one host's share of the pool grow while
        // others pay for it?
        let hog = (0..hosts)
            .filter(|&h| {
                cur.pool_share[h]
                    > self.base.pool_share.get(h).copied().unwrap_or(0.0) + self.share_margin
            })
            .max_by(|&a, &b| cur.pool_share[a].total_cmp(&cur.pool_share[b]));
        if let Some(culprit) = hog {
            let victims: Vec<usize> = elevated.iter().copied().filter(|&h| h != culprit).collect();
            if !victims.is_empty() {
                let score = victims
                    .iter()
                    .map(|&h| elevation(h))
                    .fold(0.0_f64, f64::max);
                return Some(FabricAnomaly {
                    stage: "cxlpool0".to_string(),
                    kind: FabricDiagnosis::NoisyNeighbor,
                    culprit: Some(culprit),
                    victims,
                    score,
                });
            }
        }
        let trough = elevated
            .iter()
            .copied()
            .min_by(|&a, &b| elevation(a).total_cmp(&elevation(b)))
            .expect("elevated is non-empty");
        if elevated.len() == hosts
            && hosts > 1
            && elevation(peak) <= elevation(trough) * self.uniform_spread
        {
            return Some(FabricAnomaly {
                stage: "cxlsw0".to_string(),
                kind: FabricDiagnosis::SharedLinkDegrade,
                culprit: None,
                victims: elevated,
                score: elevation(peak),
            });
        }
        Some(FabricAnomaly {
            stage: format!("cxlsw{peak}"),
            kind: FabricDiagnosis::SwitchPortStall,
            culprit: Some(peak),
            victims: elevated,
            score: elevation(peak),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::{SystemPmu, SystemSnapshot};

    fn delta_with(cycles: u64, f: impl FnOnce(&mut SystemPmu)) -> SystemDelta {
        let mut pmu = SystemPmu::new(1, 1, 2, 1, 1);
        let s0: SystemSnapshot = pmu.snapshot(0);
        f(&mut pmu);
        pmu.snapshot(cycles).delta(&s0)
    }

    #[test]
    fn littles_law_on_l1d() {
        let lat = LatencyModel::spr();
        // 1000 cycles, 100 L1 hits (W=l1_hit), 50 misses (W=l1_tag).
        let d = delta_with(1000, |p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 100);
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Miss, 50);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        let want = 0.1 * lat.l1_hit + 0.05 * lat.l1_tag;
        assert!((q.get(PathGroup::Drd, Component::L1d) - want).abs() < 1e-12);
    }

    #[test]
    fn llc_miss_delay_is_measured_not_modelled() {
        let lat = LatencyModel::spr();
        let d = delta_with(10_000, |p| {
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissLlc), 10);
            // Mean miss residency 700 cycles.
            p.chas[0].add(ChaEvent::TorOccupancyIaDrd(TorDrdScen::MissLlc), 7_000);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        // L = λ_miss × W_miss = (10/10_000) × 700 = 0.7.
        assert!((q.get(PathGroup::Drd, Component::Llc) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn culprit_is_max_queue() {
        let lat = LatencyModel::spr();
        let d = delta_with(1_000, |p| {
            p.cores[0].add(CoreEvent::MemLoadRetiredL1Hit, 10);
            p.m2ps[0].add(M2pEvent::RxcOccupancy, 90_000);
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl), 100);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        let c = q.culprit().unwrap();
        assert_eq!(c.component, Component::FlexBusMc);
        assert_eq!(c.path, PathGroup::Drd);
        assert!((c.queue_len - 90.0).abs() < 1e-9);
    }

    #[test]
    fn cxl_queue_splits_by_path_shares() {
        let lat = LatencyModel::spr();
        let d = delta_with(1_000, |p| {
            p.chas[0].add(ChaEvent::TorInsertsIaDrd(TorDrdScen::MissCxl), 25);
            p.chas[0].add(ChaEvent::TorInsertsIaDrdPref(TorDrdScen::MissCxl), 75);
            p.cxls[0].add(CxlEvent::DevMcRpqOccupancy, 4_000);
        });
        let q = PfAnalyzer::analyze(&d, &lat);
        assert!((q.get(PathGroup::Drd, Component::CxlDimm) - 1.0).abs() < 1e-9);
        assert!((q.get(PathGroup::HwPf, Component::CxlDimm) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_delta_has_no_culprit() {
        let lat = LatencyModel::spr();
        let d = delta_with(100, |_| {});
        assert!(PfAnalyzer::analyze(&d, &lat).culprit().is_none());
    }

    // ---- anomaly-detector fixtures -------------------------------------

    /// All uncore banks tick once over the 1000-cycle window (no dropout).
    fn seed_ticks(p: &mut SystemPmu) {
        p.chas[0].add(ChaEvent::ClockTicks, 1_000);
        for b in p.imcs.iter_mut() {
            b.add(ImcEvent::ClockTicks, 1_000);
        }
        p.m2ps[0].add(M2pEvent::ClockTicks, 1_000);
        p.cxls[0].add(CxlEvent::ClockTicks, 1_000);
    }

    /// Healthy traffic: w_link = 5, w_dev = 600, read_amp = 1.0,
    /// w_imc = 200, w_cha = 833.3.
    fn seed_traffic(p: &mut SystemPmu) {
        p.chas[0].add(ChaEvent::TorInsertsIa(IaScen::Total), 120);
        p.chas[0].add(ChaEvent::TorOccupancyIa(IaScen::Total), 100_000);
        p.chas[0].add(ChaEvent::TorInsertsIa(IaScen::MissCxl), 100);
        p.m2ps[0].add(M2pEvent::RxcInserts, 100);
        p.m2ps[0].add(M2pEvent::RxcOccupancy, 500);
        p.cxls[0].add(CxlEvent::RxcPackBufInsertsMemReq, 100);
        p.cxls[0].add(CxlEvent::DevMcRdCas, 100);
        p.cxls[0].add(CxlEvent::DevMcRpqOccupancy, 60_000);
        p.imcs[0].add(ImcEvent::RpqInserts, 50);
        p.imcs[0].add(ImcEvent::RpqOccupancy, 10_000);
    }

    fn seed_healthy(p: &mut SystemPmu) {
        seed_ticks(p);
        seed_traffic(p);
    }

    fn detector() -> AnomalyDetector {
        let base = delta_with(1_000, seed_healthy);
        AnomalyDetector::new(HealthyBaseline::from_delta(&base))
    }

    #[test]
    fn stage_metrics_compute_expected_ratios() {
        let m = StageMetrics::from_delta(&delta_with(1_000, seed_healthy));
        assert!((m.w_link[0] - 5.0).abs() < 1e-12);
        assert!((m.w_dev[0] - 600.0).abs() < 1e-12);
        assert!((m.read_amp - 1.0).abs() < 1e-12);
        assert!((m.w_imc - 200.0).abs() < 1e-12);
        assert!((m.w_cha - 100_000.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn healthy_digest_is_not_anomalous() {
        assert!(detector()
            .diagnose(&delta_with(1_000, seed_healthy))
            .is_none());
    }

    #[test]
    fn degraded_link_is_named() {
        let d = delta_with(1_000, |p| {
            seed_healthy(p);
            // w_link 5 → 100 while the device wait stays at baseline.
            p.m2ps[0].add(M2pEvent::RxcOccupancy, 9_500);
        });
        let a = detector().diagnose(&d).unwrap();
        assert_eq!(a.class, FaultClass::LinkDegrade);
        assert_eq!(a.stage, "cxl0");
        assert!(a.score > 1.0);
    }

    #[test]
    fn throttled_device_is_named() {
        let d = delta_with(1_000, |p| {
            seed_healthy(p);
            // w_dev 600 → 6000.
            p.cxls[0].add(CxlEvent::DevMcRpqOccupancy, 540_000);
        });
        let a = detector().diagnose(&d).unwrap();
        assert_eq!(a.class, FaultClass::DevThrottle);
        assert_eq!(a.stage, "cxl0");
    }

    #[test]
    fn poison_amplification_wins_over_elevated_waits() {
        let d = delta_with(1_000, |p| {
            seed_healthy(p);
            // Retries double the M2S Reqs without new TOR inserts (period-2
            // poison) and drag the device wait up with them.
            p.cxls[0].add(CxlEvent::RxcPackBufInsertsMemReq, 100);
            p.cxls[0].add(CxlEvent::DevMcRdCas, 100);
            p.cxls[0].add(CxlEvent::DevMcRpqOccupancy, 300_000);
        });
        let a = detector().diagnose(&d).unwrap();
        assert_eq!(a.class, FaultClass::PoisonedLine);
        assert_eq!(a.stage, "cxl0");
        assert!((a.score - 2.0).abs() < 1e-12, "score is the amplification");
    }

    #[test]
    fn stalled_imc_beats_collateral_cha_elevation() {
        let d = delta_with(1_000, |p| {
            seed_healthy(p);
            // The IMC stall parks entries in the TOR too, but the IMC's own
            // elevation (200 → 20_000) dwarfs the CHA's (833 → 4_166).
            p.imcs[0].add(ImcEvent::RpqOccupancy, 990_000);
            p.chas[0].add(ChaEvent::TorOccupancyIa(IaScen::Total), 400_000);
        });
        let a = detector().diagnose(&d).unwrap();
        assert_eq!(a.class, FaultClass::QueueStall);
        assert_eq!(a.stage, "imc0");
    }

    #[test]
    fn stalled_cha_alone_is_named() {
        let d = delta_with(1_000, |p| {
            seed_healthy(p);
            p.chas[0].add(ChaEvent::TorOccupancyIa(IaScen::Total), 400_000);
        });
        let a = detector().diagnose(&d).unwrap();
        assert_eq!(a.class, FaultClass::QueueStall);
        assert_eq!(a.stage, "cha0");
    }

    #[test]
    fn frozen_imc_bank_is_dropout() {
        let d = delta_with(1_000, |p| {
            seed_traffic(p);
            // Every bank ticks except the IMC's.
            p.chas[0].add(ChaEvent::ClockTicks, 1_000);
            p.m2ps[0].add(M2pEvent::ClockTicks, 1_000);
            p.cxls[0].add(CxlEvent::ClockTicks, 1_000);
        });
        let a = detector().diagnose(&d).unwrap();
        assert_eq!(a.class, FaultClass::PmuDropout);
        assert_eq!(a.stage, "imc0");
        assert!(a.render().contains("pmu_dropout at imc0"));
    }

    #[test]
    fn zero_cycle_digest_is_never_diagnosed() {
        assert!(detector().diagnose(&delta_with(0, seed_healthy)).is_none());
    }

    // ---- fabric-detector fixtures --------------------------------------

    fn fabric_delta_with(cycles: u64, f: impl FnOnce(&mut SystemPmu)) -> SystemDelta {
        let mut pmu = SystemPmu::fabric(2);
        let s0 = pmu.snapshot(0);
        f(&mut pmu);
        pmu.snapshot(cycles).delta(&s0)
    }

    /// Balanced healthy fabric: both hosts 100 CAS, wait 10/req, equal
    /// shares.
    fn seed_fabric_healthy(p: &mut SystemPmu) {
        use pmu::{PoolEvent, SwitchEvent};
        for h in 0..2 {
            p.switches[h].add(SwitchEvent::ClockTicks, 1_000);
            p.switches[h].add(SwitchEvent::IngressInserts, 100);
            p.switches[h].add(SwitchEvent::ArbGrants, 100);
            p.switches[h].add(SwitchEvent::IngressOccupancy, 500);
            p.pools[h].add(PoolEvent::ClockTicks, 1_000);
            p.pools[h].add(PoolEvent::McRdCas, 100);
            p.pools[h].add(PoolEvent::McWaitCycles, 500);
        }
    }

    fn fabric_detector() -> FabricDetector {
        let base = fabric_delta_with(1_000, seed_fabric_healthy);
        FabricDetector::new(FabricBaseline::from_delta(&base))
    }

    #[test]
    fn healthy_fabric_is_not_anomalous() {
        assert!(fabric_detector()
            .diagnose(&fabric_delta_with(1_000, seed_fabric_healthy))
            .is_none());
    }

    #[test]
    fn noisy_neighbor_names_culprit_and_victims() {
        use pmu::{PoolEvent, SwitchEvent};
        let d = fabric_delta_with(1_000, |p| {
            seed_fabric_healthy(p);
            // Host 0 floods the pool (share 100/200 → 500/600) and host 1's
            // wait explodes while host 0's own wait stays moderate.
            p.pools[0].add(PoolEvent::McRdCas, 400);
            p.switches[0].add(SwitchEvent::ArbGrants, 400);
            p.switches[0].add(SwitchEvent::IngressInserts, 400);
            p.pools[1].add(PoolEvent::McWaitCycles, 50_000);
        });
        let a = fabric_detector().diagnose(&d).unwrap();
        assert_eq!(a.kind, FabricDiagnosis::NoisyNeighbor);
        assert_eq!(a.culprit, Some(0));
        assert_eq!(a.victims, vec![1]);
        assert!(a.render().contains("culprit host0"));
        assert!(a.render().contains("host1"));
    }

    #[test]
    fn uniform_elevation_with_unchanged_mix_is_shared_link() {
        use pmu::SwitchEvent;
        let d = fabric_delta_with(1_000, |p| {
            seed_fabric_healthy(p);
            // Both hosts' switch wait 5 → 300/req; shares stay 50:50.
            p.switches[0].add(SwitchEvent::IngressOccupancy, 29_500);
            p.switches[1].add(SwitchEvent::IngressOccupancy, 29_500);
        });
        let a = fabric_detector().diagnose(&d).unwrap();
        assert_eq!(a.kind, FabricDiagnosis::SharedLinkDegrade);
        assert_eq!(a.culprit, None);
        assert_eq!(a.victims, vec![0, 1]);
        assert_eq!(a.stage, "cxlsw0");
    }

    #[test]
    fn skewed_elevation_names_the_peak_port_not_the_link() {
        use pmu::SwitchEvent;
        let d = fabric_delta_with(1_000, |p| {
            seed_fabric_healthy(p);
            // Both hosts over bound, but host 1 is ~30x worse: that is a
            // starved port, not a link that degraded for everyone.
            p.switches[0].add(SwitchEvent::IngressOccupancy, 5_500);
            p.switches[1].add(SwitchEvent::IngressOccupancy, 179_500);
        });
        let a = fabric_detector().diagnose(&d).unwrap();
        assert_eq!(a.kind, FabricDiagnosis::SwitchPortStall);
        assert_eq!(a.stage, "cxlsw1");
    }

    #[test]
    fn isolated_elevation_is_a_port_stall() {
        use pmu::SwitchEvent;
        let d = fabric_delta_with(1_000, |p| {
            seed_fabric_healthy(p);
            // Only host 1's port wait explodes; mix unchanged.
            p.switches[1].add(SwitchEvent::IngressOccupancy, 49_500);
        });
        let a = fabric_detector().diagnose(&d).unwrap();
        assert_eq!(a.kind, FabricDiagnosis::SwitchPortStall);
        assert_eq!(a.stage, "cxlsw1");
        assert_eq!(a.culprit, Some(1));
    }

    #[test]
    fn fabric_metrics_compute_expected_ratios() {
        let m = FabricMetrics::from_delta(&fabric_delta_with(1_000, seed_fabric_healthy));
        assert!((m.port_wait[0] - 5.0).abs() < 1e-12);
        assert!((m.pool_wait[0] - 5.0).abs() < 1e-12);
        assert!((m.pool_share[0] - 0.5).abs() < 1e-12);
        assert_eq!(m.excess[0], 0.0);
        assert_eq!(m.hol[0], 0.0);
    }
}
