//! The profiler driver: snapshot loop, technique dispatch, reports,
//! and overhead accounting.
//!
//! Mirrors the paper's workflow (Figure 5-c): the machine runs scheduling
//! epochs; at every boundary the profiler snapshots all PMUs, computes the
//! epoch digest (counter deltas), and feeds the four techniques according to
//! the profiling specification. §5.9's overhead claim (1.3% CPU, 38 MB) is
//! tracked by [`Overhead`].

// Wall-clock time is observed only through the `obs` crate's span recorder
// (§5.9 self-overhead accounting) and never feeds the simulation model or
// report ordering; with obs disabled no clock is read at all.
use crate::analyzer::{
    Anomaly, AnomalyDetector, Culprit, HealthyBaseline, PfAnalyzer, QueueEstimate,
};
use crate::builder::{PathMap, PfBuilder};
use crate::estimator::{PfEstimator, StallBreakdown};
use crate::materializer::Materializer;
use crate::model::{Component, LatencyModel, PathGroup, SystemModel};
use pmu::{SystemDelta, SystemSnapshot};
use simarch::Machine;

/// The profiling-task specification (Figure 5-a): which techniques run and
/// how much state the profiler may keep.
#[derive(Clone, Debug)]
pub struct ProfileSpec {
    /// Run PFBuilder each epoch.
    pub build_paths: bool,
    /// Run PFEstimator each epoch.
    pub estimate_stalls: bool,
    /// Run PFAnalyzer each epoch.
    pub analyze_queues: bool,
    /// Ingest digests into the PFMaterializer time-series DB.
    pub materialize: bool,
    /// Maximum digests retained (max resource consumption knob).
    pub max_db_epochs: usize,
}

impl Default for ProfileSpec {
    fn default() -> Self {
        ProfileSpec {
            build_paths: true,
            estimate_stalls: true,
            analyze_queues: true,
            materialize: true,
            max_db_epochs: 100_000,
        }
    }
}

/// Profiler self-overhead (§5.9).
///
/// Wall-time fields are populated from `obs` span measurements and stay
/// zero when observability is disabled (`obs::enable()` not called);
/// `memory_bytes` is always real retained state and never needs a clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct Overhead {
    /// Wall time spent simulating the machine (the "application").
    pub machine_secs: f64,
    /// Wall time spent in PathFinder's own analysis.
    pub profiler_secs: f64,
    /// Resident bytes of profiler state (DB + retained snapshot).
    pub memory_bytes: usize,
}

impl Overhead {
    /// Profiler CPU overhead as a fraction of total work.
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.machine_secs + self.profiler_secs;
        if total == 0.0 {
            0.0
        } else {
            self.profiler_secs / total
        }
    }

    /// Render the §5.9 overhead lines (CPU split + memory). Wall-clock
    /// derived, so this is kept out of [`Report::render`] and only shown
    /// when timings were requested.
    pub fn render(&self) -> String {
        format!(
            "overhead: {:.2}% CPU ({:.3} s machine + {:.3} s profiler), {:.1} MB profiler state\n",
            100.0 * self.cpu_fraction(),
            self.machine_secs,
            self.profiler_secs,
            self.memory_bytes as f64 / 1e6,
        )
    }
}

/// One profiled epoch's outputs.
pub struct ProfiledEpoch {
    pub epoch: u64,
    pub delta: SystemDelta,
    pub path_map: Option<PathMap>,
    pub stalls: Option<StallBreakdown>,
    pub queues: Option<QueueEstimate>,
    pub culprit: Option<Culprit>,
    /// Anomaly diagnosis for this epoch — only populated once a healthy
    /// baseline was recorded via [`Profiler::set_anomaly_baseline`].
    pub anomaly: Option<Anomaly>,
    pub page_heat: Vec<(u16, u64, u32)>,
    pub ops_per_core: Vec<u64>,
    pub all_done: bool,
}

/// The end-of-run report.
pub struct Report {
    pub epochs: u64,
    pub cycles: u64,
    /// Cumulative path map over the whole run.
    pub path_map: PathMap,
    /// Cumulative stall breakdown.
    pub stalls: StallBreakdown,
    /// Final-epoch queue estimate.
    pub queues: QueueEstimate,
    /// Mean queue estimate over the epochs that had any queueing activity —
    /// more robust than the final epoch when workloads drain at different
    /// times.
    pub mean_queues: QueueEstimate,
    /// Culprit of the final epoch with activity.
    pub culprit: Option<Culprit>,
    /// Last anomaly diagnosed against the recorded healthy baseline, if
    /// any. `None` when no baseline was set or every epoch was healthy.
    pub anomaly: Option<Anomaly>,
    pub overhead: Overhead,
    pub apps: Vec<Option<String>>,
    pub ops_per_core: Vec<u64>,
    pub freq_ghz: f64,
}

impl Report {
    /// Render the headline report: path map, stall breakdown, culprit.
    pub fn render(&self) -> String {
        // Deterministic by construction: nothing here derives from wall
        // time, so obs-enabled and obs-disabled runs render byte-identically
        // (wall-clock overhead lives in [`Overhead::render`], shown only
        // under `--timings`).
        let mut out = String::new();
        out.push_str(&format!(
            "PathFinder report: {} epochs, {:.2} ms simulated, {:.1} MB profiler state\n\n",
            self.epochs,
            self.cycles as f64 / self.freq_ghz / 1e6,
            self.overhead.memory_bytes as f64 / 1e6,
        ));
        out.push_str("== Path map (hits per level, all cores) ==\n");
        let cores: Vec<usize> = (0..self.path_map.per_core.len())
            .filter(|&c| self.path_map.per_core[c].total() > 0)
            .collect();
        out.push_str(&self.path_map.render(&cores));
        out.push_str("\n== CXL-induced stall breakdown (per path, %) ==\n");
        let rows: Vec<Vec<String>> = PathGroup::ALL
            .iter()
            .filter(|&&p| self.stalls.path_total(p) > 0.0)
            .map(|&p| {
                let pct = self.stalls.percentages(p);
                let mut row = vec![p.label().to_string()];
                row.extend(
                    Component::ALL
                        .iter()
                        .map(|c| crate::report::pct(pct[c.idx()])),
                );
                row
            })
            .collect();
        let mut headers = vec!["path"];
        headers.extend(Component::ALL.iter().map(|c| c.label()));
        out.push_str(&crate::report::table(&headers, &rows));
        if let Some(c) = self.culprit {
            out.push_str(&format!(
                "\nculprit: {} on {} (queue length {:.2})\n",
                c.path.label(),
                c.component.label(),
                c.queue_len
            ));
        }
        if let Some(a) = &self.anomaly {
            out.push_str(&format!("\nanomaly: {}\n", a.render()));
        }
        out
    }
}

/// The profiler: drives a machine and applies the four techniques.
pub struct Profiler {
    machine: Machine,
    spec: ProfileSpec,
    lat: LatencyModel,
    model: SystemModel,
    prev: SystemSnapshot,
    pub materializer: Materializer,
    cum_map: Option<PathMap>,
    cum_stalls: StallBreakdown,
    last_queues: QueueEstimate,
    queue_sum: QueueEstimate,
    queue_epochs: u64,
    last_culprit: Option<Culprit>,
    detector: Option<AnomalyDetector>,
    last_anomaly: Option<Anomaly>,
    epoch: u64,
    overhead: Overhead,
    total_ops: Vec<u64>,
    /// Cached per-core workload labels, refreshed only when the machine's
    /// workload generation changes — the epoch loop never re-allocates
    /// label strings (see PERFORMANCE.md).
    apps_cache: Vec<Option<String>>,
    apps_gen: u64,
}

impl Profiler {
    pub fn new(machine: Machine, spec: ProfileSpec) -> Profiler {
        let lat = LatencyModel::from_config(machine.config());
        let model = SystemModel::from_config(machine.config());
        let prev = machine.pmu.snapshot(machine.now());
        let cores = machine.config().cores;
        Profiler {
            machine,
            spec,
            lat,
            model,
            prev,
            materializer: Materializer::new(),
            cum_map: None,
            cum_stalls: StallBreakdown::default(),
            last_queues: QueueEstimate::default(),
            queue_sum: QueueEstimate::default(),
            queue_epochs: 0,
            last_culprit: None,
            detector: None,
            last_anomaly: None,
            epoch: 0,
            overhead: Overhead::default(),
            total_ops: vec![0; cores],
            apps_cache: Vec::new(),
            apps_gen: u64::MAX,
        }
    }

    /// Access the machine (to attach workloads, migrate pages, …).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The Clos system model of the profiled machine.
    pub fn system_model(&self) -> &SystemModel {
        &self.model
    }

    /// Arm per-epoch anomaly diagnosis against a recorded healthy
    /// baseline (paper §6). Off by default: reports stay byte-identical
    /// unless a baseline is installed.
    pub fn set_anomaly_baseline(&mut self, baseline: HealthyBaseline) {
        self.detector = Some(AnomalyDetector::new(baseline));
    }

    /// Workload labels per core.
    pub fn apps(&self) -> Vec<Option<String>> {
        (0..self.machine.config().cores)
            .map(|c| self.machine.workload_name(c).map(|s| s.to_string()))
            .collect()
    }

    /// Refresh the cached per-core labels iff a workload was (re)attached
    /// since the last epoch.
    fn refresh_apps_cache(&mut self) {
        let gen = self.machine.workload_generation();
        if self.apps_gen != gen {
            self.apps_cache = self.apps();
            self.apps_gen = gen;
        }
    }

    /// Run one scheduling epoch and apply the enabled techniques.
    ///
    /// Each phase runs under an `obs` span (`epoch.machine`,
    /// `epoch.profiler`, and per-technique `technique.*` spans); the
    /// measured durations feed this profiler's own [`Overhead`] so that
    /// multiple profilers in one process never cross-contaminate.
    pub fn profile_epoch(&mut self) -> ProfiledEpoch {
        let span_machine = obs::span!("epoch.machine");
        let er = self.machine.run_epoch();
        if let Some(d) = span_machine.finish() {
            self.overhead.machine_secs += d.as_secs_f64();
        }

        let span_profiler = obs::span!("epoch.profiler");
        let delta = er.snapshot.delta(&self.prev);
        // Rotate the snapshot pool: the retired `prev` goes back to the
        // machine, which overwrites it in place next epoch.
        self.machine
            .recycle_snapshot(std::mem::replace(&mut self.prev, er.snapshot));
        self.epoch += 1;
        for (i, &n) in er.ops_per_core.iter().enumerate() {
            self.total_ops[i] += n;
        }

        self.refresh_apps_cache();
        let path_map = if self.spec.build_paths {
            let _t = obs::span!("technique.builder");
            Some(PfBuilder::build(&delta))
        } else {
            None
        };
        let stalls = if self.spec.estimate_stalls {
            let _t = obs::span!("technique.estimator");
            Some(PfEstimator::breakdown(&delta, &self.lat))
        } else {
            None
        };
        let queues = if self.spec.analyze_queues {
            let _t = obs::span!("technique.analyzer");
            Some(PfAnalyzer::analyze(&delta, &self.lat))
        } else {
            None
        };
        let culprit = queues.as_ref().and_then(|q| q.culprit());
        let anomaly = self.detector.as_ref().and_then(|det| {
            let _t = obs::span!("technique.anomaly");
            det.diagnose(&delta)
        });

        // Accumulate run-level state.
        if let Some(map) = &path_map {
            match &mut self.cum_map {
                None => self.cum_map = Some(map.clone()),
                Some(cum) => {
                    for (c, m) in map.per_core.iter().enumerate() {
                        for l in 0..crate::model::HitLevel::COUNT {
                            for p in 0..PathGroup::COUNT {
                                cum.per_core[c].hits[l][p] += m.hits[l][p];
                                cum.total.hits[l][p] =
                                    cum.total.hits[l][p].saturating_add(m.hits[l][p]);
                            }
                        }
                    }
                }
            }
        }
        if let Some(s) = &stalls {
            for p in 0..PathGroup::COUNT {
                for c in 0..Component::COUNT {
                    self.cum_stalls.cycles[p][c] += s.cycles[p][c];
                }
            }
        }
        if let Some(q) = &queues {
            self.last_queues = q.clone();
            let active = q.q.iter().flatten().any(|&v| v > 0.0);
            if active {
                self.queue_epochs += 1;
                for p in 0..PathGroup::COUNT {
                    for c in 0..Component::COUNT {
                        self.queue_sum.q[p][c] += q.q[p][c];
                    }
                }
            }
        }
        if culprit.is_some() {
            self.last_culprit = culprit;
        }
        if anomaly.is_some() {
            self.last_anomaly = anomaly.clone();
        }

        if self.spec.materialize && self.epoch as usize <= self.spec.max_db_epochs {
            let _t = obs::span!("technique.materializer");
            let ts = delta.end_cycle;
            if let Some(map) = &path_map {
                self.materializer.ingest_path_map(ts, map, &self.apps_cache);
            }
            if let Some(q) = &queues {
                self.materializer.ingest_queues(ts, q);
            }
            self.materializer
                .ingest_progress(ts, &er.ops_per_core, &self.apps_cache);
        }
        if let Some(d) = span_profiler.finish() {
            self.overhead.profiler_secs += d.as_secs_f64();
        }

        ProfiledEpoch {
            epoch: self.epoch,
            delta,
            path_map,
            stalls,
            queues,
            culprit,
            anomaly,
            page_heat: er.page_heat,
            ops_per_core: er.ops_per_core,
            all_done: er.all_done,
        }
    }

    /// Run until all workloads finish or `max_epochs` elapse; produce the
    /// run report.
    pub fn run(&mut self, max_epochs: u64) -> Report {
        let mut epochs = 0;
        while epochs < max_epochs {
            let e = self.profile_epoch();
            epochs += 1;
            if e.all_done {
                break;
            }
        }
        self.report()
    }

    /// Real retained profiler state (§5.9): the time-series DB plus the
    /// one PMU snapshot kept for the next epoch digest. Deterministic —
    /// no clock involved — and mirrored into the `overhead.memory_bytes`
    /// obs gauge whenever observability is on. The columnar store's real
    /// heap (`tsdb::Db::resident_bytes`, allocator-side rather than the
    /// logical §5.9 accounting) rides along as `tsdb.resident_bytes`, the
    /// same gauge fleetd publishes on `/metrics`.
    fn retained_bytes(&self) -> usize {
        let bytes = self.materializer.footprint_bytes() + self.prev.footprint_bytes();
        obs::metrics::gauge_set("overhead.memory_bytes", bytes as f64);
        obs::metrics::gauge_set(
            "tsdb.resident_bytes",
            self.materializer.db.resident_bytes() as f64,
        );
        bytes
    }

    /// Snapshot the current run-level report.
    pub fn report(&self) -> Report {
        let cores = self.machine.config().cores;
        let mut overhead = self.overhead;
        overhead.memory_bytes = self.retained_bytes();
        Report {
            epochs: self.epoch,
            cycles: self.machine.now(),
            path_map: self.cum_map.clone().unwrap_or(PathMap {
                per_core: vec![Default::default(); cores],
                total: Default::default(),
            }),
            stalls: self.cum_stalls.clone(),
            queues: self.last_queues.clone(),
            mean_queues: {
                let mut m = self.queue_sum.clone();
                let n = self.queue_epochs.max(1) as f64;
                for row in m.q.iter_mut() {
                    for v in row.iter_mut() {
                        *v /= n;
                    }
                }
                m
            },
            culprit: self.last_culprit,
            anomaly: self.last_anomaly.clone(),
            overhead,
            apps: self.apps(),
            ops_per_core: self.total_ops.clone(),
            freq_ghz: self.machine.config().freq_ghz,
        }
    }

    /// Current overhead accounting.
    pub fn overhead(&self) -> Overhead {
        let mut o = self.overhead;
        o.memory_bytes = self.retained_bytes();
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simarch::trace::SeqReadTrace;
    use simarch::{MachineConfig, MemPolicy, Workload};

    fn profiler_with(policy: MemPolicy, ops: usize) -> Profiler {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new("t", Box::new(SeqReadTrace::new(1 << 20, ops)), policy),
        );
        Profiler::new(m, ProfileSpec::default())
    }

    #[test]
    fn profiles_to_completion_and_reports() {
        let mut p = profiler_with(MemPolicy::Cxl, 20_000);
        let r = p.run(300);
        assert!(r.epochs > 0);
        assert!(
            r.path_map
                .total
                .get(crate::model::HitLevel::CxlMemory, PathGroup::Drd)
                > 0
        );
        assert!(
            r.stalls.total() > 0.0,
            "CXL run must attribute stall cycles"
        );
        let text = r.render();
        assert!(text.contains("Path map"));
        assert!(text.contains("CXL Memory"));
        assert!(text.contains("culprit"));
    }

    #[test]
    fn local_run_attributes_no_cxl_stalls() {
        let mut p = profiler_with(MemPolicy::Local, 20_000);
        let r = p.run(300);
        assert_eq!(r.stalls.total(), 0.0);
        assert_eq!(
            r.path_map
                .total
                .get(crate::model::HitLevel::CxlMemory, PathGroup::Drd),
            0
        );
    }

    #[test]
    fn spec_disables_techniques() {
        let mut m = Machine::new(MachineConfig::tiny());
        m.attach(
            0,
            Workload::new(
                "t",
                Box::new(SeqReadTrace::new(1 << 20, 5_000)),
                MemPolicy::Cxl,
            ),
        );
        let spec = ProfileSpec {
            build_paths: false,
            estimate_stalls: false,
            analyze_queues: false,
            materialize: false,
            max_db_epochs: 0,
        };
        let mut p = Profiler::new(m, spec);
        let e = p.profile_epoch();
        assert!(e.path_map.is_none());
        assert!(e.stalls.is_none());
        assert!(e.queues.is_none());
        assert_eq!(p.materializer.db.len(), 0);
    }

    #[test]
    fn anomaly_detection_is_off_by_default_and_quiet_when_healthy() {
        let mut p = profiler_with(MemPolicy::Cxl, 10_000);
        let r = p.run(300);
        assert!(r.anomaly.is_none());
        assert!(!r.render().contains("anomaly:"));

        // Armed with a baseline recorded from an identical healthy run,
        // the detector must stay quiet.
        let mut healthy = profiler_with(MemPolicy::Cxl, 10_000);
        let baseline = HealthyBaseline::from_delta(&healthy.profile_epoch().delta);
        let mut armed = profiler_with(MemPolicy::Cxl, 10_000);
        armed.set_anomaly_baseline(baseline);
        let e = armed.profile_epoch();
        assert!(e.anomaly.is_none(), "identical run must diagnose healthy");
    }

    #[test]
    fn materializer_receives_records() {
        let mut p = profiler_with(MemPolicy::Cxl, 10_000);
        p.run(200);
        assert!(!p.materializer.db.is_empty());
    }

    #[test]
    fn overhead_is_tracked_when_obs_enabled() {
        obs::enable();
        let mut p = profiler_with(MemPolicy::Local, 10_000);
        p.run(200);
        let o = p.overhead();
        assert!(o.machine_secs > 0.0);
        assert!(o.memory_bytes > 0);
        assert!(o.cpu_fraction() < 1.0);
        assert!(o.render().contains("% CPU"));
    }

    #[test]
    fn memory_overhead_is_clock_free() {
        // memory_bytes must be real retained state, present even with obs
        // off (wall-time fields stay zero in that case).
        let mut p = profiler_with(MemPolicy::Local, 5_000);
        p.run(100);
        let o = p.report().overhead;
        assert!(o.memory_bytes > 0);
        assert!(
            o.memory_bytes >= p.materializer.footprint_bytes(),
            "retained state must cover the tsdb"
        );
    }
}
