//! Text rendering helpers for profiler reports: the aligned tables and the
//! scientific-notation cells of the paper's Table 7.

/// Format a counter the way the paper's tables do: plain below 10^5,
/// `4.7E+09`-style above.
pub fn sci(v: u64) -> String {
    if v < 100_000 {
        v.to_string()
    } else {
        let e = (v as f64).log10().floor() as i32;
        let mantissa = v as f64 / 10f64.powi(e);
        format!("{:.1}E+{:02}", mantissa, e)
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x)
}

/// Render an aligned text table. Every row must have `headers.len()` cells.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        out.push_str(&"-".repeat(widths[i]));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(sci(4_700_000_000), "4.7E+09");
        assert_eq!(sci(310_000_000), "3.1E+08");
        assert_eq!(sci(84_345), "84345");
        assert_eq!(sci(0), "0");
    }

    #[test]
    fn pct_one_decimal() {
        assert_eq!(pct(59.34), "59.3%");
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }
}
