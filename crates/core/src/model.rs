//! The system model (§4.2): the server as a Clos network `G = (V, E)`.
//!
//! Vertices are architectural modules; edges are the on-core FIFOs, the mesh
//! interconnect, and the FlexBus. A memory flow (`mFlow`) is
//! `Core_i ↔ DIMM_j`; it spawns paths classified by request type and
//! destination. The profiler's three report dimensions — component, path
//! group, destination — are all defined here.

use simarch::MemNode;

/// The architectural components (Clos stages) PathFinder reports on — the
/// seven/eight stations of Figure 6 plus the request origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Store buffer (DWr ingress).
    Sb,
    L1d,
    /// Line fill buffer.
    Lfb,
    L2,
    /// The core-observed LLC (core-scope counters).
    Llc,
    /// The caching-and-home agent (socket-scope TOR).
    Cha,
    /// M2PCIe + FlexBus link + host-side MC handling.
    FlexBusMc,
    /// The CXL Type-3 device (controller + media).
    CxlDimm,
}

impl Component {
    pub const ALL: [Component; 8] = [
        Component::Sb,
        Component::L1d,
        Component::Lfb,
        Component::L2,
        Component::Llc,
        Component::Cha,
        Component::FlexBusMc,
        Component::CxlDimm,
    ];

    pub const COUNT: usize = 8;

    pub fn idx(self) -> usize {
        match self {
            Component::Sb => 0,
            Component::L1d => 1,
            Component::Lfb => 2,
            Component::L2 => 3,
            Component::Llc => 4,
            Component::Cha => 5,
            Component::FlexBusMc => 6,
            Component::CxlDimm => 7,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Component::Sb => "SB",
            Component::L1d => "L1D",
            Component::Lfb => "LFB",
            Component::L2 => "L2",
            Component::Llc => "LLC",
            Component::Cha => "CHA",
            Component::FlexBusMc => "FlexBus+MC",
            Component::CxlDimm => "CXL DIMM",
        }
    }
}

/// The four-way path grouping of the paper's reports (Table 7, Figure 6):
/// DRd, DWr, RFO, HW PF. SW prefetch merges into DRd, and the three HW
/// prefetch engines merge into HW PF.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathGroup {
    Drd,
    Rfo,
    HwPf,
    Dwr,
}

impl PathGroup {
    pub const ALL: [PathGroup; 4] = [
        PathGroup::Drd,
        PathGroup::Rfo,
        PathGroup::HwPf,
        PathGroup::Dwr,
    ];
    pub const COUNT: usize = 4;

    pub fn idx(self) -> usize {
        match self {
            PathGroup::Drd => 0,
            PathGroup::Rfo => 1,
            PathGroup::HwPf => 2,
            PathGroup::Dwr => 3,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            PathGroup::Drd => "DRd",
            PathGroup::Rfo => "RFO",
            PathGroup::HwPf => "HW PF",
            PathGroup::Dwr => "DWr",
        }
    }

    pub fn of(path: pmu::PathClass) -> PathGroup {
        use pmu::PathClass::*;
        match path {
            Drd | SwPf => PathGroup::Drd,
            Rfo => PathGroup::Rfo,
            HwPfL1 | HwPfL2Drd | HwPfL2Rfo => PathGroup::HwPf,
            Dwr => PathGroup::Dwr,
        }
    }
}

/// The hit-location rows of PFBuilder's path map (Table 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    Sb,
    L1d,
    Lfb,
    L2,
    LocalLlc,
    SncLlc,
    RemoteLlc,
    LocalDram,
    CxlMemory,
}

impl HitLevel {
    pub const ALL: [HitLevel; 9] = [
        HitLevel::Sb,
        HitLevel::L1d,
        HitLevel::Lfb,
        HitLevel::L2,
        HitLevel::LocalLlc,
        HitLevel::SncLlc,
        HitLevel::RemoteLlc,
        HitLevel::LocalDram,
        HitLevel::CxlMemory,
    ];
    pub const COUNT: usize = 9;

    pub fn idx(self) -> usize {
        match self {
            HitLevel::Sb => 0,
            HitLevel::L1d => 1,
            HitLevel::Lfb => 2,
            HitLevel::L2 => 3,
            HitLevel::LocalLlc => 4,
            HitLevel::SncLlc => 5,
            HitLevel::RemoteLlc => 6,
            HitLevel::LocalDram => 7,
            HitLevel::CxlMemory => 8,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            HitLevel::Sb => "SB",
            HitLevel::L1d => "L1D",
            HitLevel::Lfb => "LFB",
            HitLevel::L2 => "L2",
            HitLevel::LocalLlc => "local LLC",
            HitLevel::SncLlc => "snc LLC",
            HitLevel::RemoteLlc => "remote LLC",
            HitLevel::LocalDram => "local DRAM",
            HitLevel::CxlMemory => "CXL Memory",
        }
    }

    /// True for rows past the private caches (uncore destinations).
    pub fn is_uncore(self) -> bool {
        self.idx() >= HitLevel::LocalLlc.idx()
    }
}

/// A memory flow: `Core_i ↔ DIMM_j` (§4.2). Application-dependent,
/// location-sensitive, bidirectional; an application has at most
/// `cores × dimms` of them.
#[derive(Clone, Debug, PartialEq)]
pub struct MFlow {
    pub core: usize,
    pub dimm: MemNode,
    /// Workload label the flow belongs to.
    pub app: String,
}

impl MFlow {
    pub fn label(&self) -> String {
        format!("{}:core{}<->{}", self.app, self.core, self.dimm.label())
    }
}

/// Platform latency constants the analyzer/estimator need (the `W_hit` and
/// `W_tag` values of §4.5, which on real hardware come from the data sheet).
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    pub l1_hit: f64,
    pub l1_tag: f64,
    pub l2_hit: f64,
    pub l2_tag: f64,
    pub llc_hit: f64,
    pub lfb_hit: f64,
    /// FlexBus one-way transfer.
    pub flexbus: f64,
    /// Nominal local-DRAM access latency (fallback when the TOR has no
    /// measured sample for the epoch).
    pub dram: f64,
    /// Nominal CXL end-to-end access latency (fallback).
    pub cxl_mem: f64,
}

impl LatencyModel {
    /// Derive from a machine configuration.
    pub fn from_config(cfg: &simarch::MachineConfig) -> Self {
        LatencyModel {
            l1_hit: cfg.l1d.hit_latency as f64,
            l1_tag: cfg.l1d.tag_latency as f64,
            l2_hit: cfg.l2.hit_latency as f64,
            l2_tag: cfg.l2.tag_latency as f64,
            llc_hit: cfg.llc.hit_latency as f64,
            lfb_hit: cfg.l1d.hit_latency as f64 + 2.0,
            flexbus: cfg.flexbus_latency as f64,
            dram: (cfg.dram_latency + 2 * cfg.mesh_latency) as f64,
            cxl_mem: (cfg.flexbus_latency + cfg.cxl_media_latency + 2 * cfg.mesh_latency) as f64,
        }
    }

    /// The paper's SPR platform constants.
    pub fn spr() -> Self {
        Self::from_config(&simarch::MachineConfig::spr())
    }
}

/// The Clos-network system model: stages and the modules at each stage.
/// Mostly descriptive — the techniques consume counters directly — but the
/// report renderer uses it to label topology, and tests assert the
/// structural invariants of §4.2.
#[derive(Clone, Debug)]
pub struct SystemModel {
    pub cores: usize,
    pub llc_slices: usize,
    pub dram_channels: usize,
    pub cxl_devices: usize,
}

impl SystemModel {
    pub fn from_config(cfg: &simarch::MachineConfig) -> Self {
        SystemModel {
            cores: cfg.cores,
            llc_slices: cfg.llc_slices,
            dram_channels: cfg.dram_channels,
            cxl_devices: cfg.cxl_devices,
        }
    }

    /// All possible mFlows for an application pinned to `core`:
    /// one per reachable DIMM.
    pub fn mflows_for(&self, core: usize, app: &str) -> Vec<MFlow> {
        let mut v = vec![MFlow {
            core,
            dimm: MemNode::LocalDram,
            app: app.into(),
        }];
        for d in 0..self.cxl_devices {
            v.push(MFlow {
                core,
                dimm: MemNode::CxlDram(d as u8),
                app: app.into(),
            });
        }
        v
    }

    /// Upper bound on concurrent mFlows (§4.2: `Core# × DIMM#`).
    pub fn max_mflows(&self) -> usize {
        self.cores * (1 + self.cxl_devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_indices_are_dense() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
    }

    #[test]
    fn path_group_collapse() {
        assert_eq!(PathGroup::of(pmu::PathClass::SwPf), PathGroup::Drd);
        assert_eq!(PathGroup::of(pmu::PathClass::HwPfL2Rfo), PathGroup::HwPf);
        assert_eq!(PathGroup::of(pmu::PathClass::Dwr), PathGroup::Dwr);
    }

    #[test]
    fn hit_levels_split_core_and_uncore() {
        assert!(!HitLevel::L2.is_uncore());
        assert!(HitLevel::LocalLlc.is_uncore());
        assert!(HitLevel::CxlMemory.is_uncore());
    }

    #[test]
    fn mflow_bound_matches_paper() {
        let m = SystemModel {
            cores: 4,
            llc_slices: 4,
            dram_channels: 2,
            cxl_devices: 2,
        };
        assert_eq!(m.max_mflows(), 12);
        assert_eq!(m.mflows_for(0, "app").len(), 3);
    }

    #[test]
    fn latency_model_tracks_config() {
        let lm = LatencyModel::spr();
        let cfg = simarch::MachineConfig::spr();
        assert_eq!(lm.l2_hit, cfg.l2.hit_latency as f64);
        assert!(lm.l1_tag < lm.l1_hit);
    }

    #[test]
    fn mflow_label_is_descriptive() {
        let f = MFlow {
            core: 3,
            dimm: MemNode::CxlDram(0),
            app: "gups".into(),
        };
        assert_eq!(f.label(), "gups:core3<->cxl0");
    }
}
