//! The PathFinder command-line interface.
//!
//! ```text
//! pathfinder list-counters             # the §3 PMU dissection (232+ events)
//! pathfinder list-apps                 # the Table-6 workload registry
//! pathfinder profile <app> [options]   # profile one application
//! pathfinder compare <app> [options]   # local vs CXL side by side
//!
//! options:
//!   --policy local|cxl|mix:<f>   memory placement (default cxl)
//!   --ops N                      operation budget (default 500000)
//!   --emr                        use the EMR platform preset
//!   --seed N                     workload seed (default 42)
//!   --timings                    print the phase-timing table after the run
//!   --timings-json <path>        write per-phase timings + metrics JSON
//!   --trace-json <path>          write Chrome trace-event JSON
//! ```
//!
//! The three `--timings*`/`--trace-json` flags enable the `obs` recorder
//! (see OBSERVABILITY.md); without them no wall clock is read and output is
//! byte-identical to an instrumented run.

use pathfinder::model::{HitLevel, PathGroup};
use pathfinder::profiler::{ProfileSpec, Profiler};
use simarch::{Machine, MachineConfig, MemPolicy, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: pathfinder <list-counters|list-apps|profile <app>|compare <app>>\n\
         \x20  [--policy local|remote|cxl|mix:<f>] [--ops N] [--emr] [--seed N]\n\
         \x20  [--timings] [--timings-json <path>] [--trace-json <path>]"
    );
    std::process::exit(2);
}

struct Opts {
    policy: MemPolicy,
    ops: u64,
    cfg: MachineConfig,
    seed: u64,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        policy: MemPolicy::Cxl,
        ops: 500_000,
        cfg: MachineConfig::spr(),
        seed: 42,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--emr" => o.cfg = MachineConfig::emr(),
            "--ops" => {
                i += 1;
                o.ops = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                o.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--policy" => {
                i += 1;
                let v = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                o.policy = match v {
                    "local" => MemPolicy::Local,
                    "remote" => MemPolicy::RemoteNuma,
                    "cxl" => MemPolicy::Cxl,
                    m if m.starts_with("mix:") => MemPolicy::Interleave {
                        cxl_fraction: m[4..].parse().unwrap_or_else(|_| usage()),
                    },
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    o
}

fn profile(app: &str, o: &Opts) -> (pathfinder::Report, Profiler) {
    let Some(trace) = workloads::build(app, o.ops, o.seed) else {
        eprintln!("unknown application {app:?}; see `pathfinder list-apps`");
        std::process::exit(1);
    };
    let mut machine = Machine::new(o.cfg.clone());
    machine.attach(0, Workload::new(app, trace, o.policy));
    let mut profiler = Profiler::new(machine, ProfileSpec::default());
    let report = profiler.run(10_000);
    (report, profiler)
}

fn main() -> std::io::Result<()> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (obs_args, args) = obs::cli::ObsArgs::strip(&raw);
    let session = obs::cli::Session::new(obs_args);
    match args.first().map(String::as_str) {
        Some("list-counters") => {
            print!("{}", pmu::registry::render_table());
            let counts = pmu::registry::counts_by_pmu();
            let total: usize = counts.iter().map(|(_, n)| n).sum();
            eprintln!("\n{total} counters across {} PMUs", counts.len());
        }
        Some("list-apps") => {
            println!(
                "{:<20} {:<10} {:>14} {:>14}",
                "name", "suite", "paper WS (MiB)", "scaled (MiB)"
            );
            for a in workloads::suite::APPS {
                println!(
                    "{:<20} {:<10} {:>14.1} {:>14.1}",
                    a.name,
                    a.suite,
                    a.paper_ws_mib,
                    a.ws_bytes() as f64 / 1048576.0
                );
            }
        }
        Some("profile") => {
            let app = args.get(1).cloned().unwrap_or_else(|| usage());
            let o = parse_opts(&args[2..]);
            println!(
                "profiling {app} on {} / {} ({} ops)\n",
                o.cfg.name,
                match o.policy {
                    MemPolicy::Local => "local".into(),
                    MemPolicy::RemoteNuma => "numa-remote".into(),
                    MemPolicy::Cxl => "cxl".into(),
                    MemPolicy::Interleave { cxl_fraction } =>
                        format!("{:.0}% cxl", cxl_fraction * 100.0),
                },
                o.ops
            );
            let (report, _profiler) = profile(&app, &o);
            println!("{}", report.render());
            if obs::is_enabled() {
                print!("{}", report.overhead.render());
            }
        }
        Some("compare") => {
            let app = args.get(1).cloned().unwrap_or_else(|| usage());
            let mut o = parse_opts(&args[2..]);
            o.policy = MemPolicy::Local;
            let (local, _) = profile(&app, &o);
            o.policy = MemPolicy::Cxl;
            let (cxl, _) = profile(&app, &o);
            println!("{app}: local vs CXL on {}\n", o.cfg.name);
            println!(
                "{:<28} {:>14} {:>14} {:>8}",
                "metric", "local", "cxl", "ratio"
            );
            let row = |name: &str, l: f64, c: f64| {
                println!(
                    "{:<28} {:>14.0} {:>14.0} {:>7.2}x",
                    name,
                    l,
                    c,
                    if l > 0.0 { c / l } else { f64::NAN }
                );
            };
            row("run cycles", local.cycles as f64, cxl.cycles as f64);
            row(
                "memory-level hits",
                local.path_map.total.level_total(HitLevel::LocalDram) as f64,
                cxl.path_map.total.level_total(HitLevel::CxlMemory) as f64,
            );
            row(
                "CXL-induced stall (cycles)",
                local.stalls.total(),
                cxl.stalls.total(),
            );
            for p in PathGroup::ALL {
                if cxl.stalls.path_total(p) > 0.0 {
                    let pct = cxl.stalls.percentages(p);
                    // total_cmp: percentages can be NaN when a path saw no
                    // traffic, and user-selected app pairs can produce that.
                    let top = pathfinder::model::Component::ALL
                        .iter()
                        .max_by(|a, b| pct[a.idx()].total_cmp(&pct[b.idx()]));
                    if let Some(top) = top {
                        println!(
                            "{:<28} {:>37}",
                            format!("{} stall concentrates at", p.label()),
                            format!("{} ({:.1}%)", top.label(), pct[top.idx()])
                        );
                    }
                }
            }
        }
        _ => usage(),
    }
    session.finish()
}
