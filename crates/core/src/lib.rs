//! # PathFinder — a CXL.mem profiler
//!
//! A from-scratch Rust reproduction of *"Understanding and Profiling CXL.mem
//! Using PathFinder"* (SIGCOMM 2025). PathFinder views the server processor
//! and its chipset as a **multi-stage Clos network**, equips each
//! architectural module with a PMU-based telemetry engine, classifies
//! CXL.mem transactions into *paths*, and applies classical network-telemetry
//! techniques to the result. It performs snapshot-based, path-driven
//! profiling with four techniques:
//!
//! * **PFBuilder** ([`builder`]) — reconstructs the CXL data-path map from
//!   hit/miss counters (the traceroute analogue, §4.3).
//! * **PFEstimator** ([`estimator`]) — back-propagates CXL-induced stall
//!   cycles from the CXL DIMM up to the core pipeline (the reverse-traceroute
//!   analogue, §4.4).
//! * **PFAnalyzer** ([`analyzer`]) — Little's-law queue-length estimation per
//!   component per path, locating the culprit of hardware contention (the
//!   delay-based queueing-analysis analogue, §4.5).
//! * **PFMaterializer** ([`materializer`]) — a time-series database of
//!   snapshot digests with clustering, forecasting and correlation for
//!   cross-snapshot characteristics (the network-snapshot analogue, §4.6).
//!
//! The [`profiler::Profiler`] drives a [`simarch::Machine`] (the simulated
//! SPR/EMR server standing in for the paper's testbed — see DESIGN.md for
//! the substitution argument), snapshots every PMU at each scheduling epoch,
//! and feeds the four techniques.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder::profiler::{Profiler, ProfileSpec};
//! use simarch::{Machine, MachineConfig, MemPolicy, Workload};
//! use simarch::trace::SeqReadTrace;
//!
//! let mut machine = Machine::new(MachineConfig::tiny());
//! machine.attach(0, Workload::new(
//!     "demo",
//!     Box::new(SeqReadTrace::new(1 << 20, 50_000)),
//!     MemPolicy::Cxl,
//! ));
//! let mut profiler = Profiler::new(machine, ProfileSpec::default());
//! let report = profiler.run(100);
//! assert!(report.epochs > 0);
//! println!("{}", report.render());
//! ```

pub mod analyzer;
pub mod builder;
pub mod estimator;
pub mod materializer;
pub mod model;
pub mod profiler;
pub mod report;

pub use analyzer::{
    Anomaly, AnomalyDetector, Culprit, FabricAnomaly, FabricBaseline, FabricDetector,
    FabricDiagnosis, FabricMetrics, HealthyBaseline, PfAnalyzer, QueueEstimate, StageMetrics,
};
pub use builder::{PathMap, PfBuilder};
pub use estimator::{PfEstimator, StallBreakdown};
pub use materializer::Materializer;
pub use model::{Component, LatencyModel, MFlow, PathGroup, SystemModel};
pub use profiler::{ProfileSpec, Profiler, Report};
