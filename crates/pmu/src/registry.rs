//! A human-readable registry of every counter PathFinder uses.
//!
//! This is the programmatic form of the paper's Tables 1–4: each entry has
//! the perf-style event name, the PMU it lives in, its scope, and a short
//! description. The `pathfinder` CLI uses it for `--list-counters`, and the
//! test below pins the paper's "232 counters" claim.

use crate::event::{ChaEvent, CoreEvent, CxlEvent, Event, ImcEvent, M2pEvent};

/// Which PMU a counter belongs to (§3.1 divides them into four parts; we
/// split Uncore into its IMC and M2PCIe halves as Table 3 does).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PmuKind {
    Core,
    Cha,
    Imc,
    M2Pcie,
    CxlDevice,
}

impl PmuKind {
    pub const ALL: [PmuKind; 5] =
        [PmuKind::Core, PmuKind::Cha, PmuKind::Imc, PmuKind::M2Pcie, PmuKind::CxlDevice];

    pub fn label(self) -> &'static str {
        match self {
            PmuKind::Core => "core",
            PmuKind::Cha => "cha",
            PmuKind::Imc => "imc",
            PmuKind::M2Pcie => "m2pcie",
            PmuKind::CxlDevice => "cxl",
        }
    }
}

/// Counter scope as listed in the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    PerCore,
    PerSocket,
    PerChannel,
    PerDevice,
}

impl Scope {
    pub fn label(self) -> &'static str {
        match self {
            Scope::PerCore => "per-core",
            Scope::PerSocket => "per-socket",
            Scope::PerChannel => "per-channel",
            Scope::PerDevice => "per-device",
        }
    }
}

/// One registry entry.
#[derive(Clone, Debug)]
pub struct EventDesc {
    pub pmu: PmuKind,
    pub scope: Scope,
    pub name: String,
    pub index: usize,
}

/// Enumerate every counter of every PMU, sub-events expanded.
pub fn all_events() -> Vec<EventDesc> {
    let mut v = Vec::new();
    for e in CoreEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::Core,
            scope: Scope::PerCore,
            name: e.name(),
            index: e.index(),
        });
    }
    for e in ChaEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::Cha,
            scope: Scope::PerSocket,
            name: e.name(),
            index: e.index(),
        });
    }
    for e in ImcEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::Imc,
            scope: Scope::PerChannel,
            name: e.name(),
            index: e.index(),
        });
    }
    for e in M2pEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::M2Pcie,
            scope: Scope::PerSocket,
            name: e.name(),
            index: e.index(),
        });
    }
    for e in CxlEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::CxlDevice,
            scope: Scope::PerDevice,
            name: e.name(),
            index: e.index(),
        });
    }
    v
}

/// Number of counters per PMU kind.
pub fn counts_by_pmu() -> Vec<(PmuKind, usize)> {
    PmuKind::ALL
        .iter()
        .map(|&k| (k, all_events().iter().filter(|e| e.pmu == k).count()))
        .collect()
}

/// Render the registry as an aligned text table (one line per counter).
pub fn render_table() -> String {
    let events = all_events();
    let width = events.iter().map(|e| e.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for e in &events {
        out.push_str(&format!(
            "{:<8} {:<12} {:<width$}\n",
            e.pmu.label(),
            e.scope.label(),
            e.name,
            width = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_pmu() {
        for (kind, n) in counts_by_pmu() {
            assert!(n > 0, "no events registered for {:?}", kind);
        }
    }

    #[test]
    fn registry_matches_event_cardinalities() {
        let evs = all_events();
        assert_eq!(
            evs.len(),
            CoreEvent::CARD + ChaEvent::CARD + ImcEvent::CARD + M2pEvent::CARD + CxlEvent::CARD
        );
    }

    #[test]
    fn registry_has_at_least_the_papers_232_counters() {
        assert!(all_events().len() >= 232);
    }

    #[test]
    fn table_render_is_one_line_per_counter() {
        let table = render_table();
        assert_eq!(table.lines().count(), all_events().len());
        assert!(table.contains("resource_stalls.sb"));
        assert!(table.contains("unc_cxlcm_rxc_pack_buf_full.mem_req"));
    }
}
