//! A human-readable registry of every counter PathFinder uses.
//!
//! This is the programmatic form of the paper's Tables 1–4: each entry has
//! the perf-style event name, the PMU it lives in, its scope, and a short
//! description. The `pathfinder` CLI uses it for `--list-counters`, and the
//! test below pins the paper's "232 counters" claim.

use crate::event::{
    ChaEvent, CoreEvent, CxlEvent, Event, ImcEvent, M2pEvent, PoolEvent, SwitchEvent,
};

/// Which PMU a counter belongs to (§3.1 divides them into four parts; we
/// split Uncore into its IMC and M2PCIe halves as Table 3 does; the last
/// two kinds belong to the multi-host fabric: the CXL switch and the
/// pooled Type-3 device).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PmuKind {
    Core,
    Cha,
    Imc,
    M2Pcie,
    CxlDevice,
    CxlSwitch,
    CxlPool,
}

impl PmuKind {
    pub const ALL: [PmuKind; 7] = [
        PmuKind::Core,
        PmuKind::Cha,
        PmuKind::Imc,
        PmuKind::M2Pcie,
        PmuKind::CxlDevice,
        PmuKind::CxlSwitch,
        PmuKind::CxlPool,
    ];

    pub fn label(self) -> &'static str {
        match self {
            PmuKind::Core => "core",
            PmuKind::Cha => "cha",
            PmuKind::Imc => "imc",
            PmuKind::M2Pcie => "m2pcie",
            PmuKind::CxlDevice => "cxl",
            PmuKind::CxlSwitch => "cxlsw",
            PmuKind::CxlPool => "cxlpool",
        }
    }
}

/// Counter scope as listed in the paper's tables (plus the fabric scopes:
/// per switch upstream port and per tenant host of the pooled device).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    PerCore,
    PerSocket,
    PerChannel,
    PerDevice,
    PerPort,
    PerHost,
}

impl Scope {
    pub fn label(self) -> &'static str {
        match self {
            Scope::PerCore => "per-core",
            Scope::PerSocket => "per-socket",
            Scope::PerChannel => "per-channel",
            Scope::PerDevice => "per-device",
            Scope::PerPort => "per-port",
            Scope::PerHost => "per-host",
        }
    }
}

/// What one increment of a counter denotes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Discrete occurrences: instructions, inserts, lookups, CAS commands.
    Events,
    /// Clock cycles a condition held: stall, not-empty, full, clocktick.
    Cycles,
    /// Accumulated entry-cycles (an occupancy integral — divide by elapsed
    /// cycles for the average number of resident entries).
    EntryCycles,
}

impl Unit {
    pub fn label(self) -> &'static str {
        match self {
            Unit::Events => "events",
            Unit::Cycles => "cycles",
            Unit::EntryCycles => "entry-cycles",
        }
    }
}

/// Derive a counter's unit from its perf-style name. The naming grammar is
/// uniform enough (Tables 1–4) that families, not per-event tables, decide:
/// `*occupancy*` and `*outstanding*` accumulate entry-cycles each cycle,
/// `*cycles*`/`*clockticks*`/`*stalls*`/`*_ne*`/`*_full*` count cycles a
/// condition held, and everything else counts discrete events.
pub fn unit_of(name: &str) -> Unit {
    // "cycles_with_*" gates an outstanding counter to 0/1 per cycle, so it
    // counts cycles even though the family is an occupancy integral.
    if name.contains("cycles_with") {
        return Unit::Cycles;
    }
    if name.contains("occupancy") || name.contains("outstanding") {
        return Unit::EntryCycles;
    }
    if name.contains("cycles")
        || name.contains("clockticks")
        || name.contains("clk")
        || name.contains("stalls")
        || name.contains("_ne")
        || name.contains("full")
        || name.contains("bound_on")
    {
        return Unit::Cycles;
    }
    Unit::Events
}

/// Counter-family descriptions, longest-prefix matched against the
/// perf-style name. One row per family of the paper's Tables 1–4.
const FAMILIES: &[(&str, &str)] = &[
    ("inst_retired", "instructions retired"),
    ("cpu_clk_unhalted", "unhalted core clock cycles"),
    (
        "cycle_activity",
        "cycles execution was starved while a demand miss was outstanding",
    ),
    (
        "memory_activity",
        "cycles stalled with a demand load miss outstanding",
    ),
    ("exe_activity", "cycles issue was bound on a resource"),
    (
        "resource_stalls",
        "cycles allocation stalled on a full backend resource",
    ),
    (
        "l1d_pend_miss",
        "cycles the line-fill buffers were exhausted",
    ),
    ("l1d", "L1D cache line replacements"),
    (
        "l2_rqsts",
        "L2 demand/prefetch requests by type and hit/miss",
    ),
    (
        "longest_lat_cache",
        "LLC references and misses as seen by the core",
    ),
    (
        "mem_load_retired",
        "retired loads by the cache level that served them",
    ),
    (
        "mem_load_l3_hit_retired",
        "retired loads that hit the LLC, by snoop data source",
    ),
    (
        "mem_load_l3_miss_retired",
        "retired loads that missed the LLC, by memory data source",
    ),
    (
        "mem_store_retired",
        "retired stores by the cache level that served them",
    ),
    (
        "mem_trans_retired",
        "retired memory transactions (load-latency sampling feed)",
    ),
    ("mem_inst_retired", "retired memory instructions by type"),
    (
        "offcore_requests_outstanding",
        "offcore demand requests outstanding per cycle",
    ),
    (
        "offcore_requests",
        "offcore demand requests sent to the uncore",
    ),
    (
        "ocr",
        "offcore response: request type crossed with data source",
    ),
    (
        "sw_prefetch_access",
        "software prefetch instructions executed",
    ),
    ("unc_cha_clockticks", "CHA uncore clock cycles"),
    ("unc_cha_llc_lookup", "LLC lookups by result"),
    (
        "unc_cha_sf_eviction",
        "snoop-filter capacity evictions (back-invalidations)",
    ),
    ("unc_cha_sf_lookup", "snoop-filter lookups by result"),
    ("unc_cha_snoop_resp", "snoop responses received by type"),
    ("unc_cha_snoops_sent", "snoops sent to local/remote peers"),
    (
        "unc_cha_tor_inserts",
        "TOR entry allocations by transaction class",
    ),
    (
        "unc_cha_tor_occupancy",
        "TOR entries resident per cycle by transaction class",
    ),
    ("unc_cha_tor", "TOR activity by transaction class"),
    (
        "unc_m_cas_count",
        "DRAM CAS commands issued by the memory controller",
    ),
    ("unc_m_clockticks", "IMC DCLK cycles"),
    (
        "unc_m_rpq_cycles_ne",
        "cycles the read pending queue was non-empty",
    ),
    ("unc_m_rpq_inserts", "read pending queue allocations"),
    (
        "unc_m_rpq_occupancy",
        "read pending queue entries resident per cycle",
    ),
    (
        "unc_m_wpq_cycles_ne",
        "cycles the write pending queue was non-empty",
    ),
    ("unc_m_wpq_inserts", "write pending queue allocations"),
    (
        "unc_m_wpq_occupancy",
        "write pending queue entries resident per cycle",
    ),
    ("unc_m2p_clockticks", "M2PCIe uncore clock cycles"),
    (
        "unc_m2p_rxc_cycles_ne",
        "cycles the M2PCIe ingress queue was non-empty",
    ),
    ("unc_m2p_rxc_inserts", "M2PCIe ingress queue allocations"),
    (
        "unc_m2p_rxc_occupancy",
        "M2PCIe ingress entries resident per cycle",
    ),
    (
        "unc_m2p_txc_inserts",
        "M2PCIe egress allocations by message class",
    ),
    ("unc_cxlcm_clockticks", "CXL link-layer clock cycles"),
    (
        "unc_cxlcm_rxc_pack_buf_full",
        "cycles the Rx packing buffer was full",
    ),
    (
        "unc_cxlcm_rxc_pack_buf_inserts",
        "Rx packing-buffer allocations by message class",
    ),
    (
        "unc_cxlcm_rxc_pack_buf_ne",
        "cycles the Rx packing buffer was non-empty",
    ),
    (
        "unc_cxlcm_rxc_pack_buf_occupancy",
        "Rx packing-buffer entries resident per cycle",
    ),
    (
        "unc_cxlcm_txc_pack_buf_inserts",
        "Tx packing-buffer allocations by message class",
    ),
    ("unc_cxldev_mc_cas", "device memory-controller CAS commands"),
    (
        "unc_cxldev_mc_rpq_occupancy",
        "device read-queue entries resident per cycle",
    ),
    (
        "unc_cxldev_mc_wpq_occupancy",
        "device write-queue entries resident per cycle",
    ),
    ("unc_cxlsw_clockticks", "CXL switch clock cycles"),
    (
        "unc_cxlsw_ingress_inserts",
        "switch upstream-port ingress queue allocations",
    ),
    (
        "unc_cxlsw_ingress_occupancy",
        "switch ingress entries resident per cycle before their grant",
    ),
    (
        "unc_cxlsw_arb_grants",
        "shared-downlink arbitration grants won by the port",
    ),
    (
        "unc_cxlsw_hol_blocked_cycles",
        "cycles the port's head-of-line request was blocked behind other ports",
    ),
    (
        "unc_cxlsw_link_busy_cycles",
        "shared-downlink busy cycles attributable to the port",
    ),
    ("unc_cxlpool_clockticks", "pooled-device clock cycles"),
    (
        "unc_cxlpool_mc_cas",
        "pooled-device shared-MC CAS commands on behalf of the host",
    ),
    (
        "unc_cxlpool_mc_occupancy",
        "host's entries resident per cycle in the shared MC queue",
    ),
    (
        "unc_cxlpool_mc_wait_cycles",
        "cycles the host's requests queued before shared-MC service",
    ),
    (
        "unc_cxlpool_mc_excess_wait_cycles",
        "host wait cycles beyond an identical private device (contention penalty)",
    ),
];

/// Family description for a perf-style event name (longest matching prefix).
pub fn describe(name: &str) -> &'static str {
    FAMILIES
        .iter()
        .filter(|(prefix, _)| name.starts_with(prefix))
        .max_by_key(|(prefix, _)| prefix.len())
        .map(|&(_, desc)| desc)
        .unwrap_or("")
}

/// One registry entry.
#[derive(Clone, Debug)]
pub struct EventDesc {
    pub pmu: PmuKind,
    pub scope: Scope,
    pub name: String,
    pub index: usize,
    pub unit: Unit,
    pub description: &'static str,
}

/// Enumerate every counter of every PMU, sub-events expanded.
pub fn all_events() -> Vec<EventDesc> {
    let mut v = Vec::new();
    for e in CoreEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::Core,
            scope: Scope::PerCore,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    for e in ChaEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::Cha,
            scope: Scope::PerSocket,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    for e in ImcEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::Imc,
            scope: Scope::PerChannel,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    for e in M2pEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::M2Pcie,
            scope: Scope::PerSocket,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    for e in CxlEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::CxlDevice,
            scope: Scope::PerDevice,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    for e in SwitchEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::CxlSwitch,
            scope: Scope::PerPort,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    for e in PoolEvent::all() {
        v.push(EventDesc {
            pmu: PmuKind::CxlPool,
            scope: Scope::PerHost,
            unit: unit_of(&e.name()),
            description: describe(&e.name()),
            name: e.name(),
            index: e.index(),
        });
    }
    v
}

/// Look a counter up by its exact perf-style name.
pub fn lookup(name: &str) -> Option<EventDesc> {
    all_events().into_iter().find(|e| e.name == name)
}

/// Number of counters per PMU kind.
pub fn counts_by_pmu() -> Vec<(PmuKind, usize)> {
    PmuKind::ALL
        .iter()
        .map(|&k| (k, all_events().iter().filter(|e| e.pmu == k).count()))
        .collect()
}

/// Render the registry as an aligned text table (one line per counter).
pub fn render_table() -> String {
    let events = all_events();
    let width = events.iter().map(|e| e.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for e in &events {
        out.push_str(&format!(
            "{:<8} {:<12} {:<13} {:<width$}  {}\n",
            e.pmu.label(),
            e.scope.label(),
            e.unit.label(),
            e.name,
            e.description,
            width = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_pmu() {
        for (kind, n) in counts_by_pmu() {
            assert!(n > 0, "no events registered for {:?}", kind);
        }
    }

    #[test]
    fn registry_matches_event_cardinalities() {
        let evs = all_events();
        assert_eq!(
            evs.len(),
            CoreEvent::CARD
                + ChaEvent::CARD
                + ImcEvent::CARD
                + M2pEvent::CARD
                + CxlEvent::CARD
                + SwitchEvent::CARD
                + PoolEvent::CARD
        );
    }

    #[test]
    fn registry_has_at_least_the_papers_232_counters() {
        assert!(all_events().len() >= 232);
    }

    #[test]
    fn every_event_has_a_description_and_unit() {
        for e in all_events() {
            assert!(
                !e.description.is_empty(),
                "no family description for {}",
                e.name
            );
        }
        assert_eq!(unit_of("unc_m_rpq_occupancy"), Unit::EntryCycles);
        assert_eq!(unit_of("unc_m_rpq_cycles_ne"), Unit::Cycles);
        assert_eq!(
            unit_of("offcore_requests_outstanding.cycles_with_data_rd"),
            Unit::Cycles
        );
        assert_eq!(unit_of("inst_retired.any"), Unit::Events);
    }

    #[test]
    fn lookup_finds_exact_names_only() {
        let e = lookup("resource_stalls.sb").expect("known counter");
        assert_eq!(e.pmu, PmuKind::Core);
        assert_eq!(e.unit, Unit::Cycles);
        assert!(lookup("resource_stalls.sbx").is_none());
    }

    #[test]
    fn table_render_is_one_line_per_counter() {
        let table = render_table();
        assert_eq!(table.lines().count(), all_events().len());
        assert!(table.contains("resource_stalls.sb"));
        assert!(table.contains("unc_cxlcm_rxc_pack_buf_full.mem_req"));
    }
}
